// apss_cli: a small automata workbench on the command line.
//
// Usage:
//   apss_cli pcre '<pattern>' '<input text>'
//       Compile a PCRE (Sec. II-B programming model) to an NFA, run the
//       text through the simulator, and print match-end offsets.
//   apss_cli anml <file.anml> '<input text>'
//       Load an ANML network, execute it, and print report events.
//   apss_cli knn <d> <n> <k> [seed] [--backend=cycle|bit] [--packing=<g>]
//            [--threads=<N>] [--artifact-cache=<dir>]
//            [--save-artifact=<path>] [--load-artifact=<path>]
//       Build a random n x d-bit dataset, compile it to Hamming/sorting
//       macros, run one random query end to end, and print the neighbors
//       plus the placement report — the whole paper pipeline in one shot.
//       --backend=bit runs the search on the bit-parallel batch simulator
//       (docs/SIMULATOR_SEMANTICS.md) instead of the cycle-accurate one,
//       and prints the per-configuration compile outcome (per macro
//       family) plus every fallback reason, so cycle-accurate fallbacks
//       are visible. --packing=g builds the Sec. VI-A vector-packed
//       design, g vectors per shared ladder. --threads=N shards the
//       compile and the search over N threads (0 = all hardware threads,
//       the default; 1 = serial); any N returns bit-identical results.
//       The artifact flags need --backend=bit (docs/ARTIFACTS.md):
//       --artifact-cache=dir compiles through the on-disk compile cache
//       and prints its hit/miss/invalidation counters;
//       --save-artifact=path writes configuration 0's compiled program as
//       a versioned artifact; --load-artifact=path loads an artifact,
//       prints its provenance, and cross-checks it bit-for-bit against
//       the freshly compiled configuration 0.

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "anml/anml_io.hpp"
#include "anml/pcre.hpp"
#include "apsim/batch_simulator.hpp"
#include "apsim/placement.hpp"
#include "apsim/simulator.hpp"
#include "artifact/artifact.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace apss;

int run_pcre(const std::string& pattern, const std::string& text) {
  anml::AutomataNetwork net("cli-pcre");
  const auto compiled = anml::compile_pcre(net, pattern, 1);
  std::printf("compiled '%s': %zu states, %zu start, %zu reporting\n",
              pattern.c_str(), compiled.position_count,
              compiled.start_states.size(), compiled.reporting_states.size());
  apsim::Simulator sim(net);
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  const auto events = sim.run(bytes);
  if (events.empty()) {
    std::printf("no matches\n");
    return 0;
  }
  for (const auto& e : events) {
    std::printf("match ending at offset %llu\n",
                static_cast<unsigned long long>(e.cycle));
  }
  return 0;
}

int run_anml(const std::string& path, const std::string& text) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const anml::AutomataNetwork net = anml::from_anml(buffer.str());
  std::printf("loaded '%s': %zu elements, %zu edges\n", net.name().c_str(),
              net.size(), net.edges().size());
  apsim::Simulator sim(net, {8, true});  // permissive: all extensions on
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  for (const auto& e : sim.run(bytes)) {
    std::printf("report code=%u at cycle %llu\n", e.report_code,
                static_cast<unsigned long long>(e.cycle));
  }
  return 0;
}

/// Artifact-related knn flags (all need --backend=bit).
struct ArtifactFlags {
  std::string cache_dir;   ///< --artifact-cache=DIR
  std::string save_path;   ///< --save-artifact=PATH
  std::string load_path;   ///< --load-artifact=PATH

  bool any() const {
    return !cache_dir.empty() || !save_path.empty() || !load_path.empty();
  }
};

int run_knn(std::size_t dims, std::size_t n, std::size_t k,
            std::uint64_t seed, core::SimulationBackend backend,
            std::size_t packing_group, std::size_t threads,
            const ArtifactFlags& artifacts) {
  const auto data = knn::BinaryDataset::uniform(n, dims, seed);
  core::EngineOptions opt;
  opt.backend = backend;
  opt.packing_group_size = packing_group;
  opt.threads = threads;
  opt.artifact_cache_dir = artifacts.cache_dir;
  core::ApKnnEngine engine(data, opt);
  std::printf("threads: %zu simulation thread%s\n",
              engine.simulation_threads(),
              engine.simulation_threads() == 1 ? "" : "s");
  const auto placement = engine.placement(0);
  std::printf("compiled %zu vectors x %zu bits%s: %zu STEs, %zu blocks, "
              "%s routed\n",
              n, dims,
              packing_group > 0 ? " (vector-packed)" : "",
              placement.ste_count, placement.blocks_used,
              placement.routed ? "fully" : "PARTIALLY");
  if (backend == core::SimulationBackend::kBitParallel) {
    const core::BackendCompileStats& bs = engine.backend_stats();
    std::printf("backend: bit-parallel (%zu/%zu configurations compiled: "
                "%zu hamming, %zu packed, %zu multiplexed)\n",
                bs.bit_parallel, bs.configurations, bs.hamming, bs.packed,
                bs.multiplexed);
    for (const auto& [why, count] : bs.fallback_reasons) {
      std::printf("  fallback x%zu -> cycle-accurate: %s\n", count,
                  why.c_str());
    }
    if (!artifacts.cache_dir.empty()) {
      std::printf("artifact cache: %zu hits, %zu misses, %zu invalidations\n",
                  bs.artifact.hits, bs.artifact.misses,
                  bs.artifact.invalidations);
    }
  } else {
    std::printf("backend: cycle-accurate\n");
  }

  if (!artifacts.save_path.empty()) {
    std::string error;
    if (!engine.save_artifact(0, artifacts.save_path, &error)) {
      std::fprintf(stderr, "save-artifact: %s\n", error.c_str());
      return 1;
    }
    std::printf("artifact: saved configuration 0 to %s\n",
                artifacts.save_path.c_str());
  }
  if (!artifacts.load_path.empty()) {
    const artifact::LoadResult loaded = artifact::load(artifacts.load_path);
    if (!loaded) {
      std::fprintf(stderr, "load-artifact: %s: %s\n",
                   artifact::to_string(loaded.error.code),
                   loaded.error.detail.c_str());
      return 1;
    }
    const artifact::ArtifactMeta& meta = loaded.artifact->meta;
    const apsim::BatchProgram& prog = *loaded.artifact->program;
    std::printf("artifact: loaded %s (builder %s, network '%s', %s family, "
                "%zu lanes x %zu dims, key %016llx)\n",
                artifacts.load_path.c_str(), meta.builder.c_str(),
                meta.network_name.c_str(), apsim::to_string(prog.family()),
                prog.macro_count(), prog.dims(),
                static_cast<unsigned long long>(meta.key_hash));
    const auto fresh = engine.program(0);
    if (fresh == nullptr) {
      std::fprintf(stderr,
                   "load-artifact: configuration 0 has no bit-parallel "
                   "program to compare against\n");
      return 1;
    }
    if (meta.key_hash != engine.artifact_key(0) ||
        !(prog.state() == fresh->state())) {
      std::fprintf(stderr,
                   "load-artifact: artifact does NOT match configuration 0 "
                   "(different dataset, options, or builder)\n");
      return 1;
    }
    std::printf("artifact: matches configuration 0 bit-for-bit\n");
  }

  auto queries = knn::perturbed_queries(data, 1, 0.1, seed + 1);
  const auto results = engine.search(queries, k);
  std::printf("query -> %zu nearest neighbors:\n", results[0].size());
  for (const auto& nb : results[0]) {
    std::printf("  vector %6u  distance %u\n", nb.id, nb.distance);
  }
  const auto& stats = engine.last_stats();
  std::printf("device cycles: %zu (%zu per query frame)\n",
              stats.simulated_cycles, stats.cycles_per_query);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  apss_cli pcre '<pattern>' '<text>'\n"
               "  apss_cli anml <file.anml> '<text>'\n"
               "  apss_cli knn <dims> <n> <k> [seed] [--backend=cycle|bit] "
               "[--packing=<group>] [--threads=<N>] "
               "[--artifact-cache=<dir>] [--save-artifact=<path>] "
               "[--load-artifact=<path>]\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 4 && std::strcmp(argv[1], "pcre") == 0) {
      return run_pcre(argv[2], argv[3]);
    }
    if (argc >= 4 && std::strcmp(argv[1], "anml") == 0) {
      return run_anml(argv[2], argv[3]);
    }
    if (argc >= 5 && std::strcmp(argv[1], "knn") == 0) {
      // knn accepts --flags anywhere after the subcommand; pcre/anml take
      // raw positionals only (patterns/text may legitimately start with --).
      std::vector<std::string> args;
      core::SimulationBackend backend =
          core::SimulationBackend::kCycleAccurate;
      std::size_t packing_group = 0;
      std::size_t threads = 0;
      ArtifactFlags artifacts;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--backend=", 0) == 0) {
          const std::string value = arg.substr(10);
          if (value == "bit" || value == "bit-parallel" ||
              value == "bit_parallel") {
            backend = core::SimulationBackend::kBitParallel;
          } else if (value == "cycle" || value == "cycle-accurate") {
            backend = core::SimulationBackend::kCycleAccurate;
          } else {
            std::fprintf(stderr, "unknown backend '%s'\n", value.c_str());
            usage();
            return 2;
          }
        } else if (arg.rfind("--packing=", 0) == 0) {
          // Strict parse: no signs, suffixes, or empty values (std::stoul
          // would accept "-1" and "4x").
          const std::string value = arg.substr(10);
          char* end = nullptr;
          const unsigned long long v =
              value.empty() || value[0] < '0' || value[0] > '9'
                  ? 0
                  : std::strtoull(value.c_str(), &end, 10);
          if (v == 0 || end == nullptr || *end != '\0') {
            std::fprintf(stderr,
                         "--packing needs a positive integer group size\n");
            usage();
            return 2;
          }
          packing_group = static_cast<std::size_t>(v);
        } else if (arg.rfind("--threads=", 0) == 0) {
          // 0 is legal here (= all hardware threads), so only reject
          // non-numeric input.
          const std::string value = arg.substr(10);
          char* end = nullptr;
          const unsigned long long v =
              value.empty() || value[0] < '0' || value[0] > '9'
                  ? ULLONG_MAX
                  : std::strtoull(value.c_str(), &end, 10);
          if (v == ULLONG_MAX || end == nullptr || *end != '\0') {
            std::fprintf(stderr,
                         "--threads needs a non-negative integer "
                         "(0 = all hardware threads)\n");
            usage();
            return 2;
          }
          threads = static_cast<std::size_t>(v);
        } else if (arg.rfind("--artifact-cache=", 0) == 0) {
          artifacts.cache_dir = arg.substr(17);
        } else if (arg.rfind("--save-artifact=", 0) == 0) {
          artifacts.save_path = arg.substr(16);
        } else if (arg.rfind("--load-artifact=", 0) == 0) {
          artifacts.load_path = arg.substr(16);
        } else if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
          usage();
          return 2;
        } else {
          args.push_back(arg);
        }
      }
      if (args.size() < 3) {
        usage();
        return 2;
      }
      const auto dims = static_cast<std::size_t>(std::stoul(args[0]));
      const auto n = static_cast<std::size_t>(std::stoul(args[1]));
      const auto k = static_cast<std::size_t>(std::stoul(args[2]));
      const std::uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 1;
      if (artifacts.any() &&
          backend != core::SimulationBackend::kBitParallel) {
        std::fprintf(stderr,
                     "--artifact-cache/--save-artifact/--load-artifact need "
                     "--backend=bit (artifacts hold bit-parallel programs)\n");
        return 2;
      }
      return run_knn(dims, n, k, seed, backend, packing_group, threads,
                     artifacts);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  usage();
  return 2;
}
