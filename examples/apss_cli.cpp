// apss_cli: a small automata workbench on the command line.
//
// Usage:
//   apss_cli pcre '<pattern>' '<input text>'
//       Compile a PCRE (Sec. II-B programming model) to an NFA, run the
//       text through the simulator, and print match-end offsets.
//   apss_cli anml <file.anml> '<input text>'
//       Load an ANML network, execute it, and print report events.
//   apss_cli knn <d> <n> <k> [seed] [--backend=cycle|bit]
//            [--lane-width=auto|64|256|512] [--packing=<g>]
//            [--threads=<N>] [--max-per-config=<N>]
//            [--artifact-cache=<dir>] [--save-artifact=<path>]
//            [--load-artifact=<path>] [--deadline-ms=<ms>]
//            [--on-error=fail|isolate|retry[:N]]
//            [--inject-fault=<site>[:<hit>[:<count>[:<key>]]]]
//       Build a random n x d-bit dataset, compile it to Hamming/sorting
//       macros, run one random query end to end, and print the neighbors
//       plus the placement report — the whole paper pipeline in one shot.
//       --backend=bit runs the search on the bit-parallel batch simulator
//       (docs/SIMULATOR_SEMANTICS.md) instead of the cycle-accurate one,
//       and prints the per-configuration compile outcome (per macro
//       family) plus every fallback reason, so cycle-accurate fallbacks
//       are visible. --lane-width picks the batch backend's execution
//       width (auto = widest this CPU supports; explicit widths fall back
//       to a portable implementation when the SIMD variant is missing) —
//       results are bit-identical at every width.
//       --packing=g builds the Sec. VI-A vector-packed
//       design, g vectors per shared ladder. --threads=N shards the
//       compile and the search over N threads (0 = all hardware threads,
//       the default; 1 = serial); any N returns bit-identical results.
//       --max-per-config=N caps vectors per board configuration (forces
//       multi-configuration runs on small datasets).
//       The artifact flags need --backend=bit (docs/ARTIFACTS.md):
//       --artifact-cache=dir compiles through the on-disk compile cache
//       and prints its counters; --save-artifact=path writes
//       configuration 0's compiled program as a versioned artifact;
//       --load-artifact=path loads an artifact, prints its provenance,
//       and cross-checks it bit-for-bit against the freshly compiled
//       configuration 0.
//       Robustness flags (docs/ROBUSTNESS.md): --deadline-ms budgets the
//       search (frame-granular enforcement); --on-error picks the shard
//       failure policy (fail = abort on first failure, the default;
//       isolate = skip failed configurations; retry[:N] = isolate after N
//       extra attempts); --inject-fault arms the deterministic fault
//       injector at a named site (e.g. engine.shard, artifact.read) for
//       testing the failure paths from the shell.
//
// Exit codes (asserted by scripts/cli_exit_codes_test.sh):
//   0  success
//   1  unexpected runtime error
//   2  usage / invalid arguments
//   3  load error (ANML file, artifact)
//   4  search/shard failure under --on-error=fail
//   5  deadline exceeded
//   6  cancelled (SIGINT)
//   7  loaded artifact does not match configuration 0

#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "anml/anml_io.hpp"
#include "anml/pcre.hpp"
#include "apsim/batch_simulator.hpp"
#include "apsim/placement.hpp"
#include "apsim/simulator.hpp"
#include "artifact/artifact.hpp"
#include "cli_common.hpp"
#include "core/engine.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace apss;

/// Every typed failure maps to its own nonzero code so scripts can branch
/// on WHAT failed, not just that something did.
enum ExitCode : int {
  kExitOk = 0,
  kExitRuntimeError = 1,
  kExitUsage = 2,
  kExitLoadError = 3,
  kExitSearchFailed = 4,
  kExitDeadline = 5,
  kExitCancelled = 6,
  kExitArtifactMismatch = 7,
};

/// SIGINT requests cooperative cancellation: the search stops at the next
/// query-frame checkpoint and exits kExitCancelled instead of dying
/// mid-write. (An atomic store; async-signal-safe.)
util::CancellationToken g_cancel;

void handle_sigint(int) { g_cancel.request_cancel(); }

int run_pcre(const std::string& pattern, const std::string& text) {
  anml::AutomataNetwork net("cli-pcre");
  const auto compiled = anml::compile_pcre(net, pattern, 1);
  std::printf("compiled '%s': %zu states, %zu start, %zu reporting\n",
              pattern.c_str(), compiled.position_count,
              compiled.start_states.size(), compiled.reporting_states.size());
  apsim::Simulator sim(net);
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  const auto events = sim.run(bytes);
  if (events.empty()) {
    std::printf("no matches\n");
    return kExitOk;
  }
  for (const auto& e : events) {
    std::printf("match ending at offset %llu\n",
                static_cast<unsigned long long>(e.cycle));
  }
  return kExitOk;
}

int run_anml(const std::string& path, const std::string& text) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return kExitLoadError;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::optional<anml::AutomataNetwork> net;
  try {
    net.emplace(anml::from_anml(buffer.str()));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "cannot parse %s: %s\n", path.c_str(), ex.what());
    return kExitLoadError;
  }
  std::printf("loaded '%s': %zu elements, %zu edges\n", net->name().c_str(),
              net->size(), net->edges().size());
  apsim::Simulator sim(*net, {8, true});  // permissive: all extensions on
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  for (const auto& e : sim.run(bytes)) {
    std::printf("report code=%u at cycle %llu\n", e.report_code,
                static_cast<unsigned long long>(e.cycle));
  }
  return kExitOk;
}

/// Everything the knn subcommand's flags configure. The engine-facing
/// flags shared with apss_serve (--backend/--lane-width/--threads/
/// --artifact-cache) parse through cli::EngineFlags (cli_common.hpp).
struct KnnFlags {
  cli::EngineFlags engine;
  std::size_t packing_group = 0;
  std::size_t max_per_config = 0;
  double deadline_ms = 0;
  core::OnError on_error = core::OnError::kFailFast;
  std::size_t max_retries = 2;
  std::string save_artifact;  ///< --save-artifact=PATH
  std::string load_artifact;  ///< --load-artifact=PATH

  /// Any artifact flag set (all need --backend=bit)?
  bool any_artifact() const {
    return !engine.artifact_cache_dir.empty() || !save_artifact.empty() ||
           !load_artifact.empty();
  }
};

int run_knn(std::size_t dims, std::size_t n, std::size_t k,
            std::uint64_t seed, const KnnFlags& flags) {
  const auto data = knn::BinaryDataset::uniform(n, dims, seed);
  core::EngineOptions opt;
  flags.engine.apply(&opt);
  opt.packing_group_size = flags.packing_group;
  opt.max_vectors_per_config = flags.max_per_config;
  opt.deadline_ms = flags.deadline_ms;
  opt.cancel = &g_cancel;
  opt.on_error = flags.on_error;
  opt.max_retries = flags.max_retries;
  core::ApKnnEngine engine(data, opt);
  std::printf("threads: %zu simulation thread%s\n",
              engine.simulation_threads(),
              engine.simulation_threads() == 1 ? "" : "s");
  const auto placement = engine.placement(0);
  std::printf("compiled %zu vectors x %zu bits%s: %zu STEs, %zu blocks, "
              "%s routed\n",
              n, dims,
              flags.packing_group > 0 ? " (vector-packed)" : "",
              placement.ste_count, placement.blocks_used,
              placement.routed ? "fully" : "PARTIALLY");
  if (flags.engine.backend == core::SimulationBackend::kBitParallel) {
    const core::BackendCompileStats& bs = engine.backend_stats();
    std::printf("backend: bit-parallel (%zu/%zu configurations compiled: "
                "%zu hamming, %zu packed, %zu multiplexed)\n",
                bs.bit_parallel, bs.configurations, bs.hamming, bs.packed,
                bs.multiplexed);
    std::printf("lane width: %zu bits (%s)\n", bs.lane_width_bits,
                bs.lane_isa.c_str());
    for (const auto& [why, count] : bs.fallback_reasons) {
      std::printf("  fallback x%zu -> cycle-accurate: %s\n", count,
                  why.c_str());
    }
    if (!flags.engine.artifact_cache_dir.empty()) {
      std::printf("artifact cache: %zu hits, %zu misses, %zu invalidations, "
                  "%zu io-retries, %zu quarantined, %zu stale tmp swept\n",
                  bs.artifact.hits, bs.artifact.misses,
                  bs.artifact.invalidations, bs.artifact.io_retries,
                  bs.artifact.quarantined, bs.artifact.stale_tmp_swept);
    }
  } else {
    std::printf("backend: cycle-accurate\n");
  }

  if (!flags.save_artifact.empty()) {
    std::string error;
    if (!engine.save_artifact(0, flags.save_artifact, &error)) {
      std::fprintf(stderr, "save-artifact: %s\n", error.c_str());
      return kExitLoadError;
    }
    std::printf("artifact: saved configuration 0 to %s\n",
                flags.save_artifact.c_str());
  }
  if (!flags.load_artifact.empty()) {
    const artifact::LoadResult loaded = artifact::load(flags.load_artifact);
    if (!loaded) {
      std::fprintf(stderr, "load-artifact: %s: %s\n",
                   artifact::to_string(loaded.error.code),
                   loaded.error.detail.c_str());
      return kExitLoadError;
    }
    const artifact::ArtifactMeta& meta = loaded.artifact->meta;
    const apsim::BatchProgram& prog = *loaded.artifact->program;
    std::printf("artifact: loaded %s (builder %s, network '%s', %s family, "
                "%zu lanes x %zu dims, key %016llx)\n",
                flags.load_artifact.c_str(), meta.builder.c_str(),
                meta.network_name.c_str(), apsim::to_string(prog.family()),
                prog.macro_count(), prog.dims(),
                static_cast<unsigned long long>(meta.key_hash));
    const auto fresh = engine.program(0);
    if (fresh == nullptr) {
      std::fprintf(stderr,
                   "load-artifact: configuration 0 has no bit-parallel "
                   "program to compare against\n");
      return kExitArtifactMismatch;
    }
    if (meta.key_hash != engine.artifact_key(0) ||
        !(prog.state() == fresh->state())) {
      std::fprintf(stderr,
                   "load-artifact: artifact does NOT match configuration 0 "
                   "(different dataset, options, or builder)\n");
      return kExitArtifactMismatch;
    }
    std::printf("artifact: matches configuration 0 bit-for-bit\n");
  }

  auto queries = knn::perturbed_queries(data, 1, 0.1, seed + 1);
  std::vector<std::vector<knn::Neighbor>> results;
  try {
    results = engine.search(queries, k);
  } catch (const util::DeadlineExceeded& ex) {
    std::fprintf(stderr, "deadline exceeded: %s\n", ex.what());
    return kExitDeadline;
  } catch (const util::OperationCancelled& ex) {
    std::fprintf(stderr, "cancelled: %s\n", ex.what());
    return kExitCancelled;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "search failed: %s\n", ex.what());
    return kExitSearchFailed;
  }
  std::printf("query -> %zu nearest neighbors:\n", results[0].size());
  for (const auto& nb : results[0]) {
    std::printf("  vector %6u  distance %u\n", nb.id, nb.distance);
  }
  const auto& stats = engine.last_stats();
  std::printf("device cycles: %zu (%zu per query frame)\n",
              stats.simulated_cycles, stats.cycles_per_query);
  // Per-configuration fault-isolation outcomes: silent only when everything
  // is healthy under the default policy.
  const std::size_t surviving = stats.surviving_configurations();
  if (surviving != stats.shard_status.size() ||
      flags.on_error != core::OnError::kFailFast) {
    std::printf("shards: %zu/%zu configurations survived (policy %s)\n",
                surviving, stats.shard_status.size(),
                core::to_string(flags.on_error));
    for (std::size_t c = 0; c < stats.shard_status.size(); ++c) {
      const core::ShardStatus& st = stats.shard_status[c];
      if (st.state == core::ShardState::kOk && st.retries == 0) {
        continue;
      }
      std::printf("  config %zu: %s (%u extra attempt%s)%s%s\n", c,
                  core::to_string(st.state), st.retries,
                  st.retries == 1 ? "" : "s", st.error.empty() ? "" : " - ",
                  st.error.c_str());
    }
  }
  return kExitOk;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  apss_cli pcre '<pattern>' '<text>'\n"
               "  apss_cli anml <file.anml> '<text>'\n"
               "  apss_cli knn <dims> <n> <k> [seed] [--backend=cycle|bit] "
               "[--lane-width=auto|64|256|512] "
               "[--packing=<group>] [--threads=<N>] [--max-per-config=<N>] "
               "[--artifact-cache=<dir>] [--save-artifact=<path>] "
               "[--load-artifact=<path>] [--deadline-ms=<ms>] "
               "[--on-error=fail|isolate|retry[:N]] "
               "[--inject-fault=<site>[:<hit>[:<count>[:<key>]]]]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_sigint);
  try {
    if (argc >= 4 && std::strcmp(argv[1], "pcre") == 0) {
      return run_pcre(argv[2], argv[3]);
    }
    if (argc >= 4 && std::strcmp(argv[1], "anml") == 0) {
      return run_anml(argv[2], argv[3]);
    }
    if (argc >= 5 && std::strcmp(argv[1], "knn") == 0) {
      // knn accepts --flags anywhere after the subcommand; pcre/anml take
      // raw positionals only (patterns/text may legitimately start with --).
      std::vector<std::string> args;
      KnnFlags flags;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        unsigned long long v = 0;
        std::string flag_error;
        const cli::FlagParse shared =
            cli::try_parse_engine_flag(arg, &flags.engine, &flag_error);
        if (shared == cli::FlagParse::kError) {
          std::fprintf(stderr, "%s\n", flag_error.c_str());
          usage();
          return kExitUsage;
        }
        if (shared == cli::FlagParse::kParsed) {
          continue;
        }
        if (arg.rfind("--packing=", 0) == 0) {
          if (!cli::parse_uint(arg.substr(10), &v) || v == 0) {
            std::fprintf(stderr,
                         "--packing needs a positive integer group size\n");
            usage();
            return kExitUsage;
          }
          flags.packing_group = static_cast<std::size_t>(v);
        } else if (arg.rfind("--max-per-config=", 0) == 0) {
          if (!cli::parse_uint(arg.substr(17), &v) || v == 0) {
            std::fprintf(stderr,
                         "--max-per-config needs a positive integer\n");
            usage();
            return kExitUsage;
          }
          flags.max_per_config = static_cast<std::size_t>(v);
        } else if (arg.rfind("--deadline-ms=", 0) == 0) {
          if (!cli::parse_positive_double(arg.substr(14), &flags.deadline_ms)) {
            std::fprintf(stderr,
                         "--deadline-ms needs a positive duration in ms\n");
            usage();
            return kExitUsage;
          }
        } else if (arg.rfind("--on-error=", 0) == 0) {
          const std::string value = arg.substr(11);
          if (value == "fail" || value == "fail-fast") {
            flags.on_error = core::OnError::kFailFast;
          } else if (value == "isolate") {
            flags.on_error = core::OnError::kIsolate;
          } else if (value == "retry") {
            flags.on_error = core::OnError::kRetry;
          } else if (value.rfind("retry:", 0) == 0 &&
                     cli::parse_uint(value.substr(6), &v)) {
            flags.on_error = core::OnError::kRetry;
            flags.max_retries = static_cast<std::size_t>(v);
          } else {
            std::fprintf(stderr,
                         "--on-error needs fail, isolate, or retry[:N]\n");
            usage();
            return kExitUsage;
          }
        } else if (arg.rfind("--inject-fault=", 0) == 0) {
          if (!cli::arm_injected_fault(arg.substr(15))) {
            std::fprintf(stderr,
                         "--inject-fault needs SITE[:HIT[:COUNT[:KEY]]]\n");
            usage();
            return kExitUsage;
          }
        } else if (arg.rfind("--save-artifact=", 0) == 0) {
          flags.save_artifact = arg.substr(16);
        } else if (arg.rfind("--load-artifact=", 0) == 0) {
          flags.load_artifact = arg.substr(16);
        } else if (arg.rfind("--", 0) == 0) {
          std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
          usage();
          return kExitUsage;
        } else {
          args.push_back(arg);
        }
      }
      if (args.size() < 3) {
        usage();
        return kExitUsage;
      }
      const auto dims = static_cast<std::size_t>(std::stoul(args[0]));
      const auto n = static_cast<std::size_t>(std::stoul(args[1]));
      const auto k = static_cast<std::size_t>(std::stoul(args[2]));
      const std::uint64_t seed = args.size() > 3 ? std::stoull(args[3]) : 1;
      if (flags.any_artifact() &&
          flags.engine.backend != core::SimulationBackend::kBitParallel) {
        std::fprintf(stderr,
                     "--artifact-cache/--save-artifact/--load-artifact need "
                     "--backend=bit (artifacts hold bit-parallel programs)\n");
        return kExitUsage;
      }
      return run_knn(dims, n, k, seed, flags);
    }
  } catch (const std::invalid_argument& ex) {
    // Typed argument rejections (bad sizes, impossible geometry, malformed
    // numbers) share the usage exit code.
    std::fprintf(stderr, "invalid arguments: %s\n", ex.what());
    return kExitUsage;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return kExitRuntimeError;
  }
  usage();
  return kExitUsage;
}
