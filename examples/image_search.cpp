// Content-based image search (the paper's motivating application, Sec. I):
// SIFT-like float descriptors -> ITQ binary codes (Sec. II-A) -> AP kNN.
//
// The full pipeline the paper assumes happens offline + online:
//   offline: feature extraction (synthesized here), ITQ quantization,
//            automata compilation into board configurations;
//   online:  query encoding, symbol streaming, temporal-sort decoding.
// The example validates AP results against the CPU exact baseline and
// reports recall of binary codes against the float-space ground truth.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "knn/exact.hpp"
#include "quant/itq.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main() {
  using namespace apss;
  constexpr std::size_t kImages = 1024;
  constexpr std::size_t kQueries = 32;
  constexpr std::size_t kFeatureDims = 128;  // SIFT descriptor length
  constexpr std::size_t kBits = 128;         // kNN-SIFT code width (Table II)
  constexpr std::size_t kK = 4;              // kNN-SIFT neighbors (Table II)

  std::printf("== APSS image search example (kNN-SIFT pipeline) ==\n\n");

  // --- Offline: features + ITQ ---------------------------------------------
  std::printf("[offline] synthesizing %zu SIFT-like descriptors...\n", kImages);
  const quant::Matrix features = quant::gaussian_cluster_features(
      kImages + kQueries, kFeatureDims, /*clusters=*/24,
      /*center_scale=*/2.5, /*spread=*/1.5, /*seed=*/2024);

  std::printf("[offline] training ITQ (%zu bits)...\n", kBits);
  util::Timer itq_timer;
  quant::ItqOptions itq_opt;
  itq_opt.bits = kBits;
  itq_opt.iterations = 30;
  const quant::ItqQuantizer quantizer = quant::ItqQuantizer::fit(features, itq_opt);
  std::printf("[offline] ITQ trained in %.2f s, quantization loss %.3f\n",
              itq_timer.seconds(), quantizer.quantization_loss(features));

  knn::BinaryDataset codes(kImages, kBits);
  knn::BinaryDataset query_codes(kQueries, kBits);
  for (std::size_t i = 0; i < kImages; ++i) {
    codes.set_vector(i, quantizer.encode(features.row(i)));
  }
  for (std::size_t q = 0; q < kQueries; ++q) {
    query_codes.set_vector(q, quantizer.encode(features.row(kImages + q)));
  }

  // --- Offline: compile board configurations -------------------------------
  util::ThreadPool pool;
  core::EngineOptions engine_opt;
  engine_opt.pool = &pool;
  util::Timer compile_timer;
  core::ApKnnEngine engine(codes, engine_opt);
  std::printf("[offline] compiled %zu board configuration(s) in %.2f s "
              "(capacity %zu vectors/config)\n\n",
              engine.configurations(), compile_timer.seconds(),
              engine.capacity_per_config());

  // --- Online: search -------------------------------------------------------
  std::printf("[online] streaming %zu queries through the AP simulator...\n",
              kQueries);
  util::Timer search_timer;
  const auto ap_results = engine.search(query_codes, kK);
  const double sim_wall = search_timer.seconds();

  const auto cpu_results = knn::batch_knn(codes, query_codes, kK, &pool);

  // Validation: AP answers must be exact kNN in Hamming space.
  std::size_t valid = 0;
  for (std::size_t q = 0; q < kQueries; ++q) {
    valid += knn::is_valid_knn_result(codes, query_codes.row(q), kK,
                                      ap_results[q]);
  }

  // Recall of the BINARY pipeline against float-space truth.
  double recall = 0.0;
  for (std::size_t q = 0; q < kQueries; ++q) {
    std::vector<std::pair<double, std::uint32_t>> truth;
    for (std::size_t i = 0; i < kImages; ++i) {
      double dist = 0.0;
      for (std::size_t d = 0; d < kFeatureDims; ++d) {
        const double diff =
            features.at(kImages + q, d) - features.at(i, d);
        dist += diff * diff;
      }
      truth.push_back({dist, static_cast<std::uint32_t>(i)});
    }
    std::sort(truth.begin(), truth.end());
    std::size_t hits = 0;
    for (std::size_t t = 0; t < kK; ++t) {
      for (const auto& nb : ap_results[q]) {
        hits += nb.id == truth[t].second;
      }
    }
    recall += static_cast<double>(hits) / kK;
  }
  recall /= kQueries;

  const auto& stats = engine.last_stats();
  util::TablePrinter table("Image search results");
  table.set_header({"metric", "value"});
  table.add_row({"AP answers exact in Hamming space",
                 std::to_string(valid) + "/" + std::to_string(kQueries)});
  table.add_row({"recall@4 vs float-space truth",
                 util::TablePrinter::fmt(recall, 3)});
  table.add_row({"device cycles simulated",
                 std::to_string(stats.simulated_cycles)});
  table.add_row({"modeled device time (133 MHz)",
                 util::TablePrinter::fmt(
                     stats.compute_seconds(engine_opt.device.timing) * 1e3, 3) +
                     " ms"});
  table.add_row({"host simulation wall time",
                 util::TablePrinter::fmt(sim_wall, 2) + " s"});
  table.add_note("ITQ loses some accuracy vs float features (Sec. II-A); "
                 "the AP result is exact in the quantized space.");
  table.print(std::cout);

  if (valid != kQueries) {
    std::printf("ERROR: AP results diverged from CPU exact kNN!\n");
    return 1;
  }
  (void)cpu_results;
  return 0;
}
