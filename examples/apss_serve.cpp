// apss_serve: the always-on kNN serving core on the command line
// (docs/ROBUSTNESS.md "Serving", ROADMAP item 2).
//
// Builds a synthetic n x d-bit dataset, compiles it into worker-resident
// engines (optionally through the artifact cache), then drives the server
// with an in-process open-loop load generator — requests arrive at a fixed
// rate regardless of completions, the arrival pattern that actually
// exposes overload behavior. The generator stands in for a network
// frontend; serve::KnnServer itself is transport-agnostic.
//
// Usage:
//   apss_serve [--dims=<d>] [--n=<vectors>] [--k=<neighbors>] [--seed=<s>]
//              [--backend=cycle|bit] [--lane-width=auto|64|256|512]
//              [--threads=<per-worker>] [--artifact-cache=<dir>]
//              [--workers=<N>] [--max-batch=<N>] [--batch-window-ms=<ms>]
//              [--max-queue-depth=<N>] [--max-inflight=<N>]
//              [--watchdog-timeout-ms=<ms>]
//              [--qps=<arrivals/s>] [--duration-s=<s>] [--deadline-ms=<ms>]
//              [--status-every=<s>]
//              [--inject-fault=<site>[:<hit>[:<count>[:<key>]]]]
//
// SIGTERM/SIGINT begin a graceful drain: admission stops, in-flight work
// finishes (or deadlines out), and every outstanding future resolves.
// On exit the binary waits for EVERY submitted future, prints the response
// tally plus the final ServerStats snapshot, and verifies the zero-leak
// invariant: responses received == requests submitted and the server
// accounts for every one (stats().accounted()). The CI soak smoke runs
// this under injected faults and asserts the exit code.
//
// Exit codes:
//   0  clean run and clean drain (shed/deadline-exceeded responses are
//      still "clean" — they are typed outcomes, not failures)
//   1  unexpected runtime error
//   2  usage / invalid arguments
//   8  response leak: a future never resolved, resolved twice, or the
//      final stats do not account for every submitted request

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "knn/dataset.hpp"
#include "serve/server.hpp"

namespace {

using namespace apss;
using Clock = std::chrono::steady_clock;

enum ExitCode : int {
  kExitOk = 0,
  kExitRuntimeError = 1,
  kExitUsage = 2,
  kExitResponseLeak = 8,
};

/// SIGTERM/SIGINT request a graceful drain (an atomic store;
/// async-signal-safe). The load loop notices and stops submitting.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_release); }

struct ServeFlags {
  cli::EngineFlags engine;
  std::size_t dims = 128;
  std::size_t n = 2048;
  std::size_t k = 10;
  std::uint64_t seed = 1;
  std::size_t workers = 1;
  std::size_t max_batch = 32;
  double batch_window_ms = 1.0;
  std::size_t max_queue_depth = 256;
  std::size_t max_inflight = 1024;
  double watchdog_timeout_ms = 5000;
  double qps = 200;
  double duration_s = 5;
  double deadline_ms = 0;   ///< per request; <= 0 = unlimited
  double status_every = 0;  ///< seconds; <= 0 = no periodic snapshots
};

void usage() {
  std::fprintf(
      stderr,
      "usage: apss_serve [--dims=<d>] [--n=<vectors>] [--k=<neighbors>]\n"
      "         [--seed=<s>] [--backend=cycle|bit]\n"
      "         [--lane-width=auto|64|256|512] [--threads=<per-worker>]\n"
      "         [--artifact-cache=<dir>] [--workers=<N>] [--max-batch=<N>]\n"
      "         [--batch-window-ms=<ms>] [--max-queue-depth=<N>]\n"
      "         [--max-inflight=<N>] [--watchdog-timeout-ms=<ms>]\n"
      "         [--qps=<arrivals/s>] [--duration-s=<s>] [--deadline-ms=<ms>]\n"
      "         [--status-every=<s>]\n"
      "         [--inject-fault=<site>[:<hit>[:<count>[:<key>]]]]\n");
}

/// p-th percentile of an unsorted sample (nearest-rank); 0 when empty.
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) {
    return 0;
  }
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sample.size() - 1) + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

int run(const ServeFlags& flags) {
  const auto data = knn::BinaryDataset::uniform(flags.n, flags.dims, flags.seed);
  serve::ServerOptions options;
  flags.engine.apply(&options.engine);
  options.k = flags.k;
  options.workers = flags.workers;
  options.max_batch = flags.max_batch;
  options.batch_window_ms = flags.batch_window_ms;
  options.max_queue_depth = flags.max_queue_depth;
  options.max_inflight = flags.max_inflight;
  options.watchdog_timeout_ms = flags.watchdog_timeout_ms;

  const auto compile_start = Clock::now();
  serve::KnnServer server(data, options);
  const double compile_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - compile_start)
          .count();
  std::printf("apss_serve: %zu vectors x %zu bits, k=%zu, %zu worker%s "
              "(engines resident, %.1f ms startup%s)\n",
              flags.n, flags.dims, flags.k, server.workers(),
              server.workers() == 1 ? "" : "s", compile_ms,
              flags.engine.artifact_cache_dir.empty() ? ""
                                                      : ", artifact cache");
  std::printf("apss_serve: open-loop load %.0f qps for %.1f s "
              "(queue<=%zu, inflight<=%zu, batch<=%zu/%.1fms)\n",
              flags.qps, flags.duration_s, flags.max_queue_depth,
              flags.max_inflight, flags.max_batch, flags.batch_window_ms);

  // A pool of realistic queries (dataset vectors with bit noise), cycled by
  // the load loop so submissions cost nothing to produce.
  const auto query_pool =
      knn::perturbed_queries(data, 64, 0.1, flags.seed + 1);

  // Periodic health snapshots on their own thread so a saturated load loop
  // cannot starve them.
  std::thread status_thread;
  std::atomic<bool> status_stop{false};
  if (flags.status_every > 0) {
    status_thread = std::thread([&] {
      const auto period = std::chrono::duration<double>(flags.status_every);
      auto next = Clock::now() + std::chrono::duration_cast<Clock::duration>(period);
      while (!status_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (Clock::now() < next) {
          continue;
        }
        next += std::chrono::duration_cast<Clock::duration>(period);
        std::ostringstream os;
        os << server.stats();
        std::printf("%s\n", os.str().c_str());
        std::fflush(stdout);
      }
    });
  }

  // Open loop: arrivals at fixed instants, independent of completions.
  std::vector<std::future<serve::Response>> futures;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / std::max(flags.qps, 1e-3)));
  const auto load_start = Clock::now();
  const auto load_end =
      load_start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(flags.duration_s));
  auto next_arrival = load_start;
  std::size_t i = 0;
  while (!g_stop.load(std::memory_order_acquire) &&
         Clock::now() < load_end) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    futures.push_back(server.submit(
        query_pool.vector(i % query_pool.size()), flags.deadline_ms));
    ++i;
  }

  const bool interrupted = g_stop.load(std::memory_order_acquire);
  std::printf("apss_serve: %s after %zu submissions, draining...\n",
              interrupted ? "stop signal" : "load complete", futures.size());
  std::fflush(stdout);
  server.drain();

  // Every future MUST resolve now that drain returned; wait_for(0) makes a
  // leak a typed failure instead of a hang.
  std::uint64_t tally[8] = {};
  std::uint64_t unresolved = 0;
  std::vector<double> ok_latency_ms;
  for (auto& future : futures) {
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++unresolved;
      continue;
    }
    const serve::Response response = future.get();
    ++tally[static_cast<std::size_t>(response.code)];
    if (response.ok()) {
      ok_latency_ms.push_back(response.total_ms);
    }
  }

  status_stop.store(true, std::memory_order_release);
  if (status_thread.joinable()) {
    status_thread.join();
  }

  const serve::ServerStats stats = server.stats();
  std::ostringstream os;
  os << stats;
  std::printf("%s\n", os.str().c_str());
  std::printf("responses: %llu ok, %llu overloaded, %llu deadline-exceeded, "
              "%llu shutting-down, %llu internal, %llu other\n",
              static_cast<unsigned long long>(
                  tally[static_cast<int>(serve::ResponseCode::kOk)]),
              static_cast<unsigned long long>(
                  tally[static_cast<int>(serve::ResponseCode::kOverloaded)]),
              static_cast<unsigned long long>(tally[static_cast<int>(
                  serve::ResponseCode::kDeadlineExceeded)]),
              static_cast<unsigned long long>(tally[static_cast<int>(
                  serve::ResponseCode::kShuttingDown)]),
              static_cast<unsigned long long>(
                  tally[static_cast<int>(serve::ResponseCode::kInternal)]),
              static_cast<unsigned long long>(
                  tally[static_cast<int>(serve::ResponseCode::kCancelled)] +
                  tally[static_cast<int>(
                      serve::ResponseCode::kInvalidArgument)]));
  if (!ok_latency_ms.empty()) {
    std::printf("latency (ok): p50 %.2f ms, p99 %.2f ms over %zu responses\n",
                percentile(ok_latency_ms, 50), percentile(ok_latency_ms, 99),
                ok_latency_ms.size());
  }

  // The zero-leak invariant the soak smoke asserts: every submitted
  // request produced exactly one response, and the server's own accounting
  // agrees.
  if (unresolved > 0) {
    std::fprintf(stderr,
                 "RESPONSE LEAK: %llu futures unresolved after drain\n",
                 static_cast<unsigned long long>(unresolved));
    return kExitResponseLeak;
  }
  if (stats.submitted != futures.size() || !stats.accounted()) {
    std::fprintf(stderr,
                 "RESPONSE LEAK: submitted %llu futures but server counted "
                 "%llu submitted / %llu resolved / %zu in flight\n",
                 static_cast<unsigned long long>(futures.size()),
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.resolved_total()),
                 stats.inflight);
    return kExitResponseLeak;
  }
  std::printf("drain clean: %llu/%llu requests accounted, zero leaks\n",
              static_cast<unsigned long long>(stats.resolved_total()),
              static_cast<unsigned long long>(stats.submitted));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  ServeFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    unsigned long long v = 0;
    std::string flag_error;
    const cli::FlagParse shared =
        cli::try_parse_engine_flag(arg, &flags.engine, &flag_error);
    if (shared == cli::FlagParse::kError) {
      std::fprintf(stderr, "%s\n", flag_error.c_str());
      usage();
      return kExitUsage;
    }
    if (shared == cli::FlagParse::kParsed) {
      continue;
    }
    const auto uint_flag = [&](const char* name, std::size_t prefix,
                               std::size_t* out, bool positive) {
      if (!cli::parse_uint(arg.substr(prefix), &v) || (positive && v == 0)) {
        std::fprintf(stderr, "%s needs a %s integer\n", name,
                     positive ? "positive" : "non-negative");
        return false;
      }
      *out = static_cast<std::size_t>(v);
      return true;
    };
    bool ok = true;
    if (arg.rfind("--dims=", 0) == 0) {
      ok = uint_flag("--dims", 7, &flags.dims, true);
    } else if (arg.rfind("--n=", 0) == 0) {
      ok = uint_flag("--n", 4, &flags.n, true);
    } else if (arg.rfind("--k=", 0) == 0) {
      ok = uint_flag("--k", 4, &flags.k, true);
    } else if (arg.rfind("--seed=", 0) == 0) {
      ok = cli::parse_uint(arg.substr(7), &v);
      flags.seed = v;
      if (!ok) {
        std::fprintf(stderr, "--seed needs a non-negative integer\n");
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      ok = uint_flag("--workers", 10, &flags.workers, true);
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      ok = uint_flag("--max-batch", 12, &flags.max_batch, true);
    } else if (arg.rfind("--max-queue-depth=", 0) == 0) {
      ok = uint_flag("--max-queue-depth", 18, &flags.max_queue_depth, true);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      ok = uint_flag("--max-inflight", 15, &flags.max_inflight, true);
    } else if (arg.rfind("--batch-window-ms=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(18), &flags.batch_window_ms);
      if (!ok) {
        std::fprintf(stderr, "--batch-window-ms needs a positive duration\n");
      }
    } else if (arg.rfind("--watchdog-timeout-ms=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(22),
                                      &flags.watchdog_timeout_ms);
      if (!ok) {
        std::fprintf(stderr,
                     "--watchdog-timeout-ms needs a positive duration\n");
      }
    } else if (arg.rfind("--qps=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(6), &flags.qps);
      if (!ok) {
        std::fprintf(stderr, "--qps needs a positive rate\n");
      }
    } else if (arg.rfind("--duration-s=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(13), &flags.duration_s);
      if (!ok) {
        std::fprintf(stderr, "--duration-s needs a positive duration\n");
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(14), &flags.deadline_ms);
      if (!ok) {
        std::fprintf(stderr, "--deadline-ms needs a positive duration\n");
      }
    } else if (arg.rfind("--status-every=", 0) == 0) {
      ok = cli::parse_positive_double(arg.substr(15), &flags.status_every);
      if (!ok) {
        std::fprintf(stderr, "--status-every needs a positive period\n");
      }
    } else if (arg.rfind("--inject-fault=", 0) == 0) {
      ok = cli::arm_injected_fault(arg.substr(15));
      if (!ok) {
        std::fprintf(stderr,
                     "--inject-fault needs SITE[:HIT[:COUNT[:KEY]]]\n");
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      ok = false;
    }
    if (!ok) {
      usage();
      return kExitUsage;
    }
  }
  try {
    return run(flags);
  } catch (const std::invalid_argument& ex) {
    std::fprintf(stderr, "invalid arguments: %s\n", ex.what());
    return kExitUsage;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return kExitRuntimeError;
  }
}
