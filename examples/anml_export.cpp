// Automata tooling example: build each macro family from the paper, export
// ANML, re-import it, validate, and print placement reports — the workflow
// a designer would use to inspect APSS-generated automata or feed them to
// external tools (AP Workbench / VASim-style consumers).

#include <cstdio>
#include <iostream>

#include "anml/anml_io.hpp"
#include "apsim/placement.hpp"
#include "core/ext/comparison_macro.hpp"
#include "core/ext/counter_increment.hpp"
#include "core/hamming_macro.hpp"
#include "core/opt/statistical_reduction.hpp"
#include "core/opt/vector_packing.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;

  util::TablePrinter table("APSS macro families (d=16 demo vectors)");
  table.set_header({"design", "STEs", "counters", "booleans", "edges",
                    "blocks", "routed", "ANML bytes"});

  const auto data = knn::BinaryDataset::uniform(8, 16, 7);
  const auto report = [&table](const std::string& name,
                               const anml::AutomataNetwork& net) {
    const auto stats = net.stats();
    const auto placed = apsim::place(net, apsim::DeviceGeometry::one_rank());
    const std::string xml = anml::to_anml(net);
    // Round-trip sanity: the re-imported network must validate.
    const anml::AutomataNetwork back = anml::from_anml(xml);
    if (!back.validate(/*allow_dynamic_threshold=*/true).empty()) {
      std::fprintf(stderr, "%s: round-trip validation failed!\n", name.c_str());
      std::exit(1);
    }
    table.add_row({name, std::to_string(stats.ste_count),
                   std::to_string(stats.counter_count),
                   std::to_string(stats.boolean_count),
                   std::to_string(stats.edge_count),
                   std::to_string(placed.blocks_used),
                   placed.routed ? "yes" : "PARTIAL",
                   std::to_string(xml.size())});
  };

  {
    anml::AutomataNetwork net("hamming");
    for (std::size_t i = 0; i < data.size(); ++i) {
      core::append_hamming_macro(net, data.vector(i),
                                 static_cast<std::uint32_t>(i));
    }
    report("Hamming+sort macros (Fig. 2)", net);
  }
  {
    anml::AutomataNetwork net("packed");
    core::VectorPackingOptions opt;
    opt.group_size = 8;
    core::build_packed_network(net, data, opt);
    report("vector-packed ladder (Fig. 5)", net);
  }
  {
    anml::AutomataNetwork net("reduction");
    core::append_reduction_group(net, data, 0, data.size(), /*k_prime=*/2);
    report("statistical reduction group (Fig. 7)", net);
  }
  {
    anml::AutomataNetwork net("ci-ext");
    for (std::size_t i = 0; i < data.size(); ++i) {
      core::append_ci_macro(net, data.vector(i),
                            static_cast<std::uint32_t>(i));
    }
    report("counter-increment macros (Sec. VII-A)", net);
  }
  {
    anml::AutomataNetwork net("comparison");
    core::append_comparison_macro(net, anml::SymbolSet::single('a'),
                                  anml::SymbolSet::single('b'),
                                  anml::SymbolSet::single('r'), 1);
    report("comparison macro (Fig. 8)", net);
  }

  table.add_note("PARTIAL routing on the packed ladder at high d is the "
                 "paper's Sec. VI-A observation (flat collector fan-in).");
  table.print(std::cout);

  // Show a complete small ANML document.
  anml::AutomataNetwork demo("fig2-demo");
  core::append_hamming_macro(demo, util::BitVector::parse("1011"), 0);
  std::printf("\nANML for the Fig. 2 macro (d=4):\n\n%s\n",
              anml::to_anml(demo).c_str());
  return 0;
}
