#pragma once
// Flag parsing shared by the example binaries (apss_cli, apss_serve).
//
// Both expose the same engine-configuration surface — --backend,
// --lane-width, --threads, --artifact-cache — plus --inject-fault for
// driving the deterministic fault injector from the shell. Parsing lives
// here once so the two binaries cannot drift: a spelling accepted by one
// is accepted, with identical semantics, by the other.
//
// Header-only on purpose: these are leaf helpers for example code, not
// library surface.

#include <cstdlib>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "core/engine.hpp"
#include "util/fault_injection.hpp"

namespace apss::cli {

/// Strict non-negative integer parse (no signs, suffixes, empty values).
inline bool parse_uint(const std::string& value, unsigned long long* out) {
  if (value.empty() || value[0] < '0' || value[0] > '9') {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Strict positive double parse ("--deadline-ms=12.5" and friends).
inline bool parse_positive_double(const std::string& value, double* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || v <= 0) {
    return false;
  }
  *out = v;
  return true;
}

/// The engine flags both binaries accept.
struct EngineFlags {
  core::SimulationBackend backend = core::SimulationBackend::kCycleAccurate;
  apsim::LaneWidth lane_width = apsim::LaneWidth::kAuto;
  std::size_t threads = 0;  ///< 0 = all hardware threads
  std::string artifact_cache_dir;

  /// Copies the parsed flags onto engine options (leaves every field these
  /// flags don't cover untouched).
  void apply(core::EngineOptions* options) const {
    options->backend = backend;
    options->lane_width = lane_width;
    options->threads = threads;
    options->artifact_cache_dir = artifact_cache_dir;
  }
};

enum class FlagParse {
  kNotMine,  ///< not one of the shared engine flags; caller handles it
  kParsed,   ///< consumed into EngineFlags
  kError,    ///< matched a shared flag but the value is malformed
};

/// Tries `arg` against the shared engine flags. On kError, `*error` holds
/// a ready-to-print diagnostic.
inline FlagParse try_parse_engine_flag(const std::string& arg,
                                       EngineFlags* flags,
                                       std::string* error) {
  unsigned long long v = 0;
  if (arg.rfind("--backend=", 0) == 0) {
    const std::string value = arg.substr(10);
    if (value == "bit" || value == "bit-parallel" || value == "bit_parallel") {
      flags->backend = core::SimulationBackend::kBitParallel;
    } else if (value == "cycle" || value == "cycle-accurate") {
      flags->backend = core::SimulationBackend::kCycleAccurate;
    } else {
      *error = "unknown backend '" + value + "'";
      return FlagParse::kError;
    }
    return FlagParse::kParsed;
  }
  if (arg.rfind("--lane-width=", 0) == 0) {
    const std::string value = arg.substr(13);
    if (!apsim::parse_lane_width(value, &flags->lane_width)) {
      *error =
          "--lane-width must be auto, 64, 256 or 512 (got '" + value + "')";
      return FlagParse::kError;
    }
    return FlagParse::kParsed;
  }
  if (arg.rfind("--threads=", 0) == 0) {
    // 0 is legal here (= all hardware threads).
    if (!parse_uint(arg.substr(10), &v)) {
      *error =
          "--threads needs a non-negative integer (0 = all hardware threads)";
      return FlagParse::kError;
    }
    flags->threads = static_cast<std::size_t>(v);
    return FlagParse::kParsed;
  }
  if (arg.rfind("--artifact-cache=", 0) == 0) {
    flags->artifact_cache_dir = arg.substr(17);
    return FlagParse::kParsed;
  }
  return FlagParse::kNotMine;
}

/// "--inject-fault=SITE[:HIT[:COUNT[:KEY]]]" -> arms the process-global
/// fault injector before the engine is built, so the shell can drive any
/// failure path (scripts/cli_exit_codes_test.sh, the CI soak smoke).
inline bool arm_injected_fault(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }
  if (parts[0].empty() || parts.size() > 4) {
    return false;
  }
  util::FaultInjector::Plan plan;
  unsigned long long v = 0;
  if (parts.size() > 1) {
    if (!parse_uint(parts[1], &v) || v == 0) {
      return false;
    }
    plan.fail_on_hit = v;
  }
  if (parts.size() > 2) {
    if (!parse_uint(parts[2], &v) || v == 0) {
      return false;
    }
    plan.fail_count = v;
  }
  if (parts.size() > 3) {
    if (!parse_uint(parts[3], &v)) {
      return false;
    }
    plan.match_key = static_cast<std::int64_t>(v);
  }
  plan.message = "injected via --inject-fault";
  util::FaultInjector::instance().arm(parts[0], plan);
  return true;
}

}  // namespace apss::cli
