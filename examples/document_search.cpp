// Document similarity search with host-side indexing (Sec. III-D):
// word-embedding-style 64-bit codes (kNN-WordEmbed, Table II), a host-side
// kd-forest that prunes the search to a few buckets, and an AP bucket scan
// per probed bucket — exactly the division of labor the paper proposes
// ("the host processor can traverse the index and pick which set of vector
// NFAs to load and query").

#include <cstdio>
#include <iostream>
#include <map>

#include "core/engine.hpp"
#include "index/kd_tree.hpp"
#include "knn/exact.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace apss;
  constexpr std::size_t kDocs = 4096;
  constexpr std::size_t kQueries = 24;
  constexpr std::size_t kDims = 64;  // kNN-WordEmbed (Table II)
  constexpr std::size_t kK = 2;
  constexpr std::size_t kBucket = 256;  // one (shrunk) board configuration

  std::printf("== APSS document search example (kNN-WordEmbed + kd-forest) ==\n\n");

  // Synthetic corpus: clustered binary codes standing in for quantized
  // word-embedding document vectors (Sec. IV-A).
  const auto corpus = knn::BinaryDataset::clustered(kDocs, kDims,
                                                    /*clusters=*/32,
                                                    /*flip_prob=*/0.04, 99);
  const auto queries = knn::perturbed_queries(corpus, kQueries, 0.05, 100);

  // Host-side index: bucket size matched to a board configuration.
  index::KdTreeOptions kd_opt;
  kd_opt.trees = 4;
  kd_opt.leaf_size = kBucket;
  const index::RandomizedKdForest forest(corpus, kd_opt);
  std::printf("kd-forest: %zu trees, %zu buckets, largest bucket %zu\n\n",
              forest.tree_count(), forest.bucket_count(),
              forest.max_bucket_size());

  util::ThreadPool pool;
  double recall_sum = 0.0;
  std::size_t scanned_sum = 0;
  std::size_t ap_cycles = 0;

  for (std::size_t q = 0; q < kQueries; ++q) {
    // 1. Host traverses the index -> candidate bucket.
    index::TraversalStats stats;
    const auto candidate_ids = forest.candidates(queries.row(q), stats);
    scanned_sum += candidate_ids.size();

    // 2. The bucket's vectors are (in production: already) compiled as one
    //    board configuration; the AP scans them for this query.
    const knn::BinaryDataset bucket = corpus.subset(candidate_ids);
    core::EngineOptions opt;
    opt.pool = &pool;
    core::ApKnnEngine engine(bucket, opt);
    knn::BinaryDataset one(1, kDims);
    one.set_vector(0, queries.vector(q));
    const auto local = engine.search(one, kK);
    ap_cycles += engine.last_stats().simulated_cycles;

    // 3. Map bucket-local ids back to corpus ids and score recall.
    std::vector<knn::Neighbor> global;
    for (const auto& nb : local[0]) {
      global.push_back({candidate_ids[nb.id], nb.distance});
    }
    recall_sum += knn::recall_at_k(corpus, queries.row(q), kK, global);
  }

  util::TablePrinter table("Indexed AP search (per-query averages)");
  table.set_header({"metric", "value"});
  table.add_row({"documents scanned",
                 util::TablePrinter::fmt(
                     static_cast<double>(scanned_sum) / kQueries, 1) +
                     " of " + std::to_string(kDocs)});
  table.add_row({"recall@2 vs exhaustive scan",
                 util::TablePrinter::fmt(recall_sum / kQueries, 3)});
  table.add_row({"AP cycles per query",
                 util::TablePrinter::fmt(
                     static_cast<double>(ap_cycles) / kQueries, 0)});
  table.add_note("pruning trades recall for a ~" +
                 util::TablePrinter::fmt(
                     static_cast<double>(kDocs) * kQueries / scanned_sum, 1) +
                 "x smaller scan, mirroring Table V's indexed rows");
  table.print(std::cout);
  return 0;
}
