// Quickstart: the paper's Fig. 3 walked through end to end.
//
// Builds the Hamming + sorting macro for the vector {1,0,1,1}, streams the
// query {1,0,0,1}, prints the cycle-by-cycle activations (compare with
// Fig. 3 of the paper), and finishes with a small multi-vector search whose
// report ORDER demonstrates the temporally encoded sort of Fig. 4.

#include <cstdio>
#include <iostream>
#include <map>

#include "apsim/simulator.hpp"
#include "core/engine.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "core/temporal_decode.hpp"

namespace {

using namespace apss;

/// Renders one line per cycle: symbol, named active elements, count.
struct ConsoleTrace : apsim::TraceSink {
  const anml::AutomataNetwork* net = nullptr;
  anml::ElementId counter = anml::kInvalidElement;

  static const char* symbol_name(std::uint8_t s) {
    switch (s) {
      case core::Alphabet::kSof: return "SOF ";
      case core::Alphabet::kEof: return "EOF ";
      case core::Alphabet::kFill: return "FILL";
      case 0x00: return "'0' ";
      case 0x01: return "'1' ";
      default: return "?   ";
    }
  }

  void on_cycle(std::uint64_t cycle, std::uint8_t symbol,
                std::span<const anml::ElementId> active,
                const apsim::Simulator& sim) override {
    std::printf("  t=%2llu  %s  count=%llu  active: ",
                static_cast<unsigned long long>(cycle), symbol_name(symbol),
                static_cast<unsigned long long>(sim.counter_value(counter)));
    for (const anml::ElementId id : active) {
      std::printf("%s ", net->element(id).name.c_str());
    }
    std::printf("\n");
  }
};

}  // namespace

int main() {
  std::printf("== APSS quickstart: Fig. 3 of the paper ==\n\n");
  std::printf("Encoded vector {1,0,1,1}; query {1,0,0,1}; d=4.\n");
  std::printf("Expected: inverted Hamming distance 3, report at t=9.\n\n");

  // 1. Build the macro.
  anml::AutomataNetwork network("fig3");
  const core::MacroLayout layout = core::append_hamming_macro(
      network, util::BitVector::parse("1011"), /*report_code=*/0);
  const auto stats = network.stats();
  std::printf("Macro: %zu STEs, %zu counter(s), %zu reporting state(s)\n",
              stats.ste_count, stats.counter_count, stats.reporting_count);

  // 2. Encode the query stream (Fig. 2c: SOF, data, fillers, EOF).
  const core::StreamSpec spec = layout.stream_spec(4);
  const core::SymbolStreamEncoder encoder(spec);
  const auto stream = encoder.encode_query(util::BitVector::parse("1001"));
  std::printf("Stream frame: %zu symbols (2d+L+3)\n\n", stream.size());

  // 3. Simulate with a cycle trace.
  apsim::Simulator sim(network);
  ConsoleTrace trace;
  trace.net = &network;
  trace.counter = layout.counter;
  sim.set_trace(&trace);
  const auto events = sim.run(stream);
  std::printf("\nReport events:\n");
  for (const auto& e : events) {
    std::printf("  cycle %llu -> Hamming distance %zu\n",
                static_cast<unsigned long long>(e.cycle),
                spec.distance_from_offset(e.cycle));
  }

  // 4. Fig. 4: the temporal sort across multiple vectors.
  std::printf("\n== Fig. 4: temporally encoded sort ==\n");
  knn::BinaryDataset data(4, 4);
  data.set_vector(0, util::BitVector::parse("1011"));  // distance 1
  data.set_vector(1, util::BitVector::parse("0000"));  // distance 2
  data.set_vector(2, util::BitVector::parse("1001"));  // distance 0
  data.set_vector(3, util::BitVector::parse("1111"));  // distance 2

  core::ApKnnEngine engine(data);
  knn::BinaryDataset queries(1, 4);
  queries.set_vector(0, util::BitVector::parse("1001"));
  const auto results = engine.search(queries, 4);
  std::printf("Neighbors of query {1,0,0,1}, sorted by report time:\n");
  for (const auto& nb : results[0]) {
    std::printf("  vector %u at Hamming distance %u\n", nb.id, nb.distance);
  }
  std::printf(
      "\nThe closest vector reported FIRST: the sort happened on the\n"
      "device in O(d) cycles, not on the host (Sec. III-B).\n");
  return 0;
}
