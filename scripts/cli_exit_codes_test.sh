#!/bin/sh
# Asserts the apss_cli exit-code contract (the table at the top of
# examples/apss_cli.cpp): every typed failure maps to its own nonzero
# code, and no path leaks an uncaught exception (which would abort with
# 134 instead of a small code).
#
# Usage: scripts/cli_exit_codes_test.sh <path-to-apss_cli>

set -u
cli="${1:?usage: cli_exit_codes_test.sh <path-to-apss_cli>}"
status=0
tmp="${TMPDIR:-/tmp}/apss_cli_exit.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

check() {
  want="$1"
  name="$2"
  shift 2
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $name: want exit $want, got $got ($*)" >&2
    status=1
  else
    echo "ok   $name (exit $got)"
  fi
}

# 0: healthy end-to-end runs, both backends.
check 0 "success-cycle"      "$cli" knn 16 32 3 1
check 0 "success-bit"        "$cli" knn 16 32 3 1 --backend=bit
# 2: usage and invalid arguments (missing args, bad flag, bad values).
check 2 "usage-noargs"       "$cli"
check 2 "usage-missing"      "$cli" knn 16 32
check 2 "usage-bad-flag"     "$cli" knn 16 32 3 --frobnicate=1
check 2 "usage-bad-backend"  "$cli" knn 16 32 3 --backend=quantum
check 2 "usage-bad-policy"   "$cli" knn 16 32 3 --on-error=bogus
check 2 "usage-bad-deadline" "$cli" knn 16 32 3 --deadline-ms=-5
check 2 "usage-artifact-needs-bit" "$cli" knn 16 32 3 --artifact-cache="$tmp/c"
# 3: load errors (missing ANML file, malformed ANML, unreadable artifact).
check 3 "load-missing-anml"  "$cli" anml "$tmp/nonexistent.anml" text
printf 'not anml at all' > "$tmp/bad.anml"
check 3 "load-bad-anml"      "$cli" anml "$tmp/bad.anml" text
check 3 "load-missing-artifact" "$cli" knn 16 32 3 1 --backend=bit \
      --load-artifact="$tmp/nonexistent.apss-art"
# 4: shard failure under the default fail-fast policy (deterministic
# injected fault at the shard entry site).
check 4 "shard-fail-fast"    "$cli" knn 16 32 3 1 --threads=1 \
      --inject-fault=engine.shard
# ...but the same fault under isolate/retry is absorbed into shard status.
check 0 "shard-isolated"     "$cli" knn 16 32 3 1 --threads=1 \
      --on-error=isolate --inject-fault=engine.shard
check 0 "shard-retried"      "$cli" knn 16 32 3 1 --threads=1 \
      --on-error=retry:2 --inject-fault=engine.shard:1:1
# 5: a deadline far below one query frame expires at the first checkpoint.
check 5 "deadline"           "$cli" knn 16 32 3 1 --threads=1 \
      --deadline-ms=0.0001
# 7: a valid artifact that belongs to a different design.
"$cli" knn 16 32 3 99 --backend=bit --save-artifact="$tmp/other.apss-art" \
      >/dev/null 2>&1 || { echo "FAIL setup: save-artifact" >&2; status=1; }
check 7 "artifact-mismatch"  "$cli" knn 16 32 3 1 --backend=bit \
      --load-artifact="$tmp/other.apss-art"

exit $status
