#!/bin/sh
# Fails (exit 1) when any relative markdown link in README.md or docs/*.md
# points at a file that does not exist. External links (http/https/mailto)
# and pure in-page anchors are skipped; "#section" suffixes on relative
# links are stripped before the existence check.
#
# Usage: scripts/check_doc_links.sh [repo-root]   (default: cwd)

set -u
root="${1:-.}"
status=0

for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline markdown links: capture the (...) target of every [text](target).
  grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      # The while loop runs in a subshell; signal via a marker file.
      : > "$root/.broken-doc-links"
    fi
  done
done

if [ -e "$root/.broken-doc-links" ]; then
  rm -f "$root/.broken-doc-links"
  status=1
else
  echo "doc link check: all relative links in README.md and docs/*.md resolve"
fi
exit $status
