// Table II: kNN workload parameters, extended with the derived board
// capacities and stream-frame geometry this repo computes for each.

#include <cstdio>
#include <iostream>

#include "apsim/placement.hpp"
#include "core/design.hpp"
#include "core/hamming_macro.hpp"
#include "perf/workloads.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("table2_workloads");
  util::TablePrinter table("Table II: kNN workload parameters");
  table.set_header({"Workload", "Dimensionality", "Neighbors",
                    "frame cycles (2d+L+3)", "macro STEs",
                    "capacity/config (derived)"});
  for (const auto& w : perf::paper_workloads()) {
    anml::AutomataNetwork proto;
    core::append_hamming_macro(proto, util::BitVector(w.dims), 0);
    const auto fp = apsim::footprint_of(proto);
    const std::size_t capacity =
        apsim::max_copies(fp, apsim::DeviceGeometry::one_rank());
    const core::StreamSpec spec{w.dims, 1};
    table.add_row({w.name, std::to_string(w.dims), std::to_string(w.k),
                   std::to_string(spec.cycles_per_query()),
                   std::to_string(fp.stes), std::to_string(capacity)});
    report.write(util::BenchRecord("workload_geometry")
                     .param("workload", w.name)
                     .param("dims", static_cast<std::uint64_t>(w.dims))
                     .param("k", static_cast<std::uint64_t>(w.k))
                     .param("frame_cycles",
                            static_cast<std::uint64_t>(spec.cycles_per_query()))
                     .param("macro_stes", static_cast<std::uint64_t>(fp.stes))
                     .param("capacity", static_cast<std::uint64_t>(capacity)));
  }
  table.add_note("4096 queries per batch (Sec. IV-A); the paper's stated "
                 "capacities are 1024x128-dim / 512x256-dim per board "
                 "configuration (Sec. V-A).");
  table.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
