// Table IV: large-dataset (n = 2^20) run time and energy efficiency.
// All device times come from this repo's models; the paper's testbed
// numbers are printed alongside for shape comparison. The AP rows exercise
// the partial-reconfiguration accounting (Sec. III-C): Gen 1 is dominated
// by 45 ms reconfigurations, Gen 2 shifts the bottleneck back to compute,
// and Opt+Ext applies the compounded Table VIII gains.

#include <iostream>

#include "hwmodels/fpga_accelerator.hpp"
#include "hwmodels/gpu_model.hpp"
#include "hwmodels/platforms.hpp"
#include "perf/projection.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Records one platform's modeled run time for a workload as a JSON line.
void record_platform(apss::util::BenchReport& report,
                     const std::string& workload, const char* platform,
                     std::size_t dims, double model_seconds,
                     const apss::perf::ApEstimate* ap = nullptr) {
  apss::util::BenchRecord rec(workload + "." + platform);
  rec.param("n", static_cast<std::uint64_t>(apss::perf::kLargeN))
      .param("dims", static_cast<std::uint64_t>(dims))
      .param("queries", static_cast<std::uint64_t>(apss::perf::kQueryCount))
      .model_seconds(model_seconds);
  if (ap != nullptr) {
    rec.param("configurations", static_cast<std::uint64_t>(ap->configurations))
        .param("queries_per_joule", ap->queries_per_joule)
        .cycles(static_cast<std::uint64_t>(
            ap->cycles_per_query *
            static_cast<double>(apss::perf::kQueryCount) *
            static_cast<double>(ap->configurations)));
  }
  report.write(rec);
}

}  // namespace

int main() {
  using namespace apss;
  util::BenchReport report("table4_large");
  util::Timer bench_timer;

  util::TablePrinter runtime("Table IV: large-dataset run time (s)");
  runtime.set_header({"Workload", "Xeon", "(paper)", "Titan X", "(paper)",
                      "Kintex", "(paper)", "AP Gen1", "(paper)", "AP Gen2",
                      "(paper)", "Opt+Ext", "(paper)"});
  util::TablePrinter energy("Table IV: energy efficiency (query/Joule)");
  energy.set_header({"Workload", "Xeon", "Titan X", "Kintex", "AP Gen1",
                     "AP Gen2", "Opt+Ext", "Gen2(paper)", "Opt+Ext(paper)"});

  util::TablePrinter breakdown("AP Gen1 vs Gen2: where the time goes");
  breakdown.set_header({"Workload", "configs", "Gen1 compute s",
                        "Gen1 reconfig s", "reconfig share",
                        "Gen2 reconfig share"});

  for (const auto& w : perf::paper_workloads()) {
    const auto& ref = perf::paper_reference(w.name);

    const double xeon_s = perf::scan_seconds(
        hwmodels::platform("Xeon E5-2620"), perf::kQueryCount, perf::kLargeN,
        w.dims);
    const double titan_s = hwmodels::GpuModel::titan_x().seconds(
        perf::kQueryCount, perf::kLargeN, w.dims);
    const hwmodels::FpgaAccelerator fpga(
        knn::BinaryDataset::uniform(4, w.dims, 1), {});
    const auto fpga_stats =
        fpga.project(perf::kQueryCount, perf::kLargeN, w.dims, w.k);
    const double kintex_s = fpga_stats.seconds(fpga.options());

    perf::ApScenario scenario;
    scenario.workload = w;
    scenario.n = perf::kLargeN;
    const perf::ApEstimate gen1 = perf::estimate_ap(scenario);
    scenario.device = apsim::DeviceConfig::gen2();
    const perf::ApEstimate gen2 = perf::estimate_ap(scenario);
    const perf::CompoundGains gains = perf::compound_gains(w);
    const perf::ApEstimate optext = perf::estimate_ap_opt_ext(scenario, gains);

    record_platform(report, w.name, "xeon", w.dims, xeon_s);
    record_platform(report, w.name, "titan_x", w.dims, titan_s);
    record_platform(report, w.name, "kintex", w.dims, kintex_s);
    record_platform(report, w.name, "ap_gen1", w.dims, gen1.total_seconds,
                    &gen1);
    record_platform(report, w.name, "ap_gen2", w.dims, gen2.total_seconds,
                    &gen2);
    record_platform(report, w.name, "ap_opt_ext", w.dims,
                    optext.total_seconds, &optext);

    runtime.add_row({w.name, util::TablePrinter::fmt(xeon_s, 2),
                     util::TablePrinter::fmt(ref.l_xeon_s, 2),
                     util::TablePrinter::fmt(titan_s, 2),
                     util::TablePrinter::fmt(ref.l_titan_s, 2),
                     util::TablePrinter::fmt(kintex_s, 2),
                     util::TablePrinter::fmt(ref.l_kintex_s, 2),
                     util::TablePrinter::fmt(gen1.total_seconds, 2),
                     util::TablePrinter::fmt(ref.l_gen1_s, 2),
                     util::TablePrinter::fmt(gen2.total_seconds, 2),
                     util::TablePrinter::fmt(ref.l_gen2_s, 2),
                     util::TablePrinter::fmt(optext.total_seconds, 3),
                     util::TablePrinter::fmt(ref.l_optext_s, 3)});

    const double xeon_qpj = hwmodels::queries_per_joule(
        perf::kQueryCount, xeon_s,
        hwmodels::platform("Xeon E5-2620").dynamic_power_w);
    const double titan_qpj = hwmodels::queries_per_joule(
        perf::kQueryCount, titan_s,
        hwmodels::platform("Titan X").dynamic_power_w);
    const double kintex_qpj = hwmodels::queries_per_joule(
        perf::kQueryCount, kintex_s,
        hwmodels::platform("Kintex-7").dynamic_power_w);
    energy.add_row({w.name, util::TablePrinter::fmt(xeon_qpj, 2),
                    util::TablePrinter::fmt(titan_qpj, 2),
                    util::TablePrinter::fmt(kintex_qpj, 2),
                    util::TablePrinter::fmt(gen1.queries_per_joule, 2),
                    util::TablePrinter::fmt(gen2.queries_per_joule, 2),
                    util::TablePrinter::fmt(optext.queries_per_joule, 2),
                    util::TablePrinter::fmt(ref.l_gen2_qpj, 2),
                    util::TablePrinter::fmt(ref.l_optext_qpj, 2)});

    breakdown.add_row(
        {w.name, std::to_string(gen1.configurations),
         util::TablePrinter::fmt(gen1.compute_seconds, 2),
         util::TablePrinter::fmt(gen1.reconfig_seconds, 2),
         util::TablePrinter::fmt(
             gen1.reconfig_seconds / gen1.total_seconds * 100.0, 1) + "%",
         util::TablePrinter::fmt(
             gen2.reconfig_seconds / gen2.total_seconds * 100.0, 1) + "%"});
  }

  runtime.add_note("AP columns use the paper's d-cycle throughput "
                   "convention (DESIGN.md); Gen2/Gen1 improvement ~19x, "
                   "matching Sec. V-B.");
  runtime.print(std::cout);
  std::cout << '\n';
  energy.print(std::cout);
  std::cout << '\n';
  breakdown.add_note("Gen1 reconfiguration accounts for the overwhelming "
                     "share of execution (Sec. V-B: 'upwards of 98%').");
  breakdown.print(std::cout);
  report.write(util::BenchRecord("bench_total")
                   .wall_seconds(bench_timer.seconds()));
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
