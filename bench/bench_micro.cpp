// Google-benchmark microbenchmarks for the hot kernels: the Hamming scan
// (CPU baseline), top-k strategies, stream encoding, cycle-accurate
// simulation throughput, and ITQ encoding. These quantify the SIMULATION
// substrate itself (how fast this repo executes automata), complementing
// the modeled device times in the table benches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "apsim/batch_simulator.hpp"
#include "apsim/simulator.hpp"
#include "core/batch_compile.hpp"
#include "core/engine.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "knn/exact.hpp"
#include "quant/itq.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"

namespace {

using namespace apss;

void BM_HammingDistance(benchmark::State& state) {
  const std::size_t dims = state.range(0);
  const auto data = knn::BinaryDataset::uniform(2, dims, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::hamming_distance(data.row(0), data.row(1)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HammingDistance)->Arg(64)->Arg(128)->Arg(256);

void BM_CpuScanQuery(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto data = knn::BinaryDataset::uniform(n, 128, 2);
  const auto query = knn::BinaryDataset::uniform(1, 128, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn::knn_scan(data, query.row(0), 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_CpuScanQuery)->Arg(1024)->Arg(1u << 16);

void BM_TopK(benchmark::State& state) {
  const auto strategy = static_cast<knn::TopKStrategy>(state.range(1));
  const auto data = knn::BinaryDataset::uniform(state.range(0), 128, 4);
  const auto query = knn::BinaryDataset::uniform(1, 128, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn::knn_scan(data, query.row(0), 16, strategy));
  }
}
BENCHMARK(BM_TopK)
    ->ArgsProduct({{4096}, {0 /*heap*/, 1 /*select*/}});

void BM_StreamEncode(benchmark::State& state) {
  const std::size_t dims = state.range(0);
  const core::SymbolStreamEncoder enc(core::StreamSpec{dims, 1});
  const auto queries = knn::BinaryDataset::uniform(16, dims, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_batch(queries));
  }
}
BENCHMARK(BM_StreamEncode)->Arg(128);

void BM_SimulatorQueryFrame(benchmark::State& state) {
  // One full query frame against `n` macros of d=128: measures simulated
  // symbols/second of the frontier-based engine.
  const std::size_t n = state.range(0);
  const auto data = knn::BinaryDataset::uniform(n, 128, 7);
  anml::AutomataNetwork net;
  for (std::size_t i = 0; i < n; ++i) {
    core::append_hamming_macro(net, data.vector(i),
                               static_cast<std::uint32_t>(i));
  }
  apsim::Simulator sim(net);
  const core::SymbolStreamEncoder enc(core::StreamSpec{128, 1});
  const auto query = knn::BinaryDataset::uniform(1, 128, 8);
  std::vector<std::uint8_t> stream;
  enc.append_query(query.row(0), stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          stream.size());
  state.counters["symbols/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * stream.size(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorQueryFrame)->Arg(16)->Arg(128)->Arg(1024);

void BM_BatchSimulatorQueryFrame(benchmark::State& state) {
  // The bit-parallel counterpart of BM_SimulatorQueryFrame: same network,
  // same stream, packed 64-macros-per-word execution.
  const std::size_t n = state.range(0);
  const auto data = knn::BinaryDataset::uniform(n, 128, 7);
  anml::AutomataNetwork net;
  std::vector<core::MacroLayout> layouts;
  for (std::size_t i = 0; i < n; ++i) {
    layouts.push_back(core::append_hamming_macro(
        net, data.vector(i), static_cast<std::uint32_t>(i)));
  }
  std::vector<apsim::HammingMacroSlots> slots;
  for (const auto& layout : layouts) {
    slots.push_back(core::batch_slots(layout));
  }
  apsim::BatchSimulator sim(apsim::BatchProgram::try_compile(net, slots, {}));
  const core::SymbolStreamEncoder enc(core::StreamSpec{128, 1});
  const auto query = knn::BinaryDataset::uniform(1, 128, 8);
  std::vector<std::uint8_t> stream;
  enc.append_query(query.row(0), stream);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          stream.size());
  state.counters["symbols/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * stream.size(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchSimulatorQueryFrame)->Arg(16)->Arg(128)->Arg(1024);

void BM_EngineSearch(benchmark::State& state) {
  const auto data = knn::BinaryDataset::uniform(256, 64, 9);
  core::ApKnnEngine engine(data);
  const auto queries = knn::BinaryDataset::uniform(4, 64, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.search(queries, 4));
  }
}
BENCHMARK(BM_EngineSearch);

void BM_ItqEncode(benchmark::State& state) {
  const quant::Matrix features =
      quant::gaussian_cluster_features(256, 64, 4, 2.0, 0.5, 11);
  quant::ItqOptions opt;
  opt.bits = 64;
  opt.iterations = 10;
  const quant::ItqQuantizer q = quant::ItqQuantizer::fit(features, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.encode(features.row(0)));
  }
}
BENCHMARK(BM_ItqEncode);

/// Console output as usual, plus one BENCH_micro.json line per run:
/// total/per-iteration wall seconds and any rate counters as params.
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(util::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      util::BenchRecord rec(run.benchmark_name());
      rec.param("iterations", static_cast<std::uint64_t>(run.iterations));
      if (run.iterations > 0) {
        rec.param("seconds_per_iteration",
                  run.real_accumulated_time /
                      static_cast<double>(run.iterations));
      }
      for (const auto& [name, counter] : run.counters) {
        rec.param(name, static_cast<double>(counter));
      }
      rec.wall_seconds(run.real_accumulated_time);
      report_.write(rec);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  util::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  util::BenchReport report("micro");
  JsonLinesReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (report.ok()) {
    std::printf("recorded -> %s\n", report.path().c_str());
  }
  return 0;
}
