// Fig. 3: cycle-by-cycle execution of the example NFA (vector {1,0,1,1},
// query {1,0,0,1}). Prints the trace as a table whose rows can be checked
// against the figure, and exits nonzero if any checkpoint diverges.

#include <cstdio>
#include <iostream>
#include <map>
#include <set>

#include "apsim/simulator.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;

struct Capture : apsim::TraceSink {
  anml::ElementId counter;
  std::map<std::uint64_t, std::pair<std::set<anml::ElementId>, std::uint64_t>>
      by_cycle;
  void on_cycle(std::uint64_t cycle, std::uint8_t /*symbol*/,
                std::span<const anml::ElementId> active,
                const apsim::Simulator& sim) override {
    by_cycle[cycle] = {{active.begin(), active.end()},
                       sim.counter_value(counter)};
  }
};

}  // namespace

int main() {
  util::BenchReport report("fig3_trace");
  util::Timer timer;
  anml::AutomataNetwork net;
  const core::MacroLayout layout =
      core::append_hamming_macro(net, util::BitVector::parse("1011"), 0);
  apsim::Simulator sim(net);
  Capture capture;
  capture.counter = layout.counter;
  sim.set_trace(&capture);
  const core::SymbolStreamEncoder enc(layout.stream_spec(4));
  const auto events = sim.run(enc.encode_query(util::BitVector::parse("1001")));

  util::TablePrinter table("Fig. 3 trace: vector {1,0,1,1}, query {1,0,0,1}");
  table.set_header({"t", "symbol", "count(end)", "paper annotation"});
  const char* symbols[] = {"SOF", "1", "0", "0", "1", "^EOF", "^EOF",
                           "^EOF", "^EOF", "^EOF", "^EOF", "EOF"};
  const char* notes[] = {
      "start of file initiates NFA execution",
      "Vector[0] = Query[0] = 1",
      "Vector[1] = Query[1] = 0",
      "Vector[2] != Query[2]",
      "Vector[3] = Query[3] = 1",
      "flush remaining collector activations",
      "inverted Hamming distance is 3, begin temporal sort",
      "counter reaches threshold, emits pulse",
      "reporting state triggers",
      "",
      "",
      "end of file resets counter for next query"};
  for (std::uint64_t t = 1; t <= 12; ++t) {
    table.add_row({std::to_string(t), symbols[t - 1],
                   std::to_string(capture.by_cycle[t].second), notes[t - 1]});
  }
  table.print(std::cout);

  // Checkpoints from the figure.
  const std::uint64_t expected_counts[] = {0, 0, 1, 2, 2, 3, 4, 5, 6, 7, 8, 0};
  for (std::uint64_t t = 1; t <= 12; ++t) {
    if (capture.by_cycle[t].second != expected_counts[t - 1]) {
      std::fprintf(stderr, "FAIL: count at t=%llu is %llu, expected %llu\n",
                   static_cast<unsigned long long>(t),
                   static_cast<unsigned long long>(capture.by_cycle[t].second),
                   static_cast<unsigned long long>(expected_counts[t - 1]));
      return 1;
    }
  }
  if (events.size() != 1 || events[0].cycle != 9) {
    std::fprintf(stderr, "FAIL: expected a single report at t=9\n");
    return 1;
  }
  if (!capture.by_cycle[8].first.count(layout.counter) ||
      capture.by_cycle[7].first.count(layout.counter)) {
    std::fprintf(stderr, "FAIL: counter pulse must land exactly at t=8\n");
    return 1;
  }
  report.write(util::BenchRecord("trace_checkpoints")
                   .param("checkpoints", std::uint64_t{12})
                   .cycles(12)
                   .wall_seconds(timer.seconds()));
  std::printf("\nAll Fig. 3 checkpoints reproduced (pulse t=8, report t=9, "
              "reset t=12).\n");
  if (report.ok()) {
    std::printf("recorded -> %s\n", report.path().c_str());
  }
  return 0;
}
