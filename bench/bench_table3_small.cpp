// Table III: small-dataset run time and energy efficiency.
//
// Columns per workload:
//  * paper values for every platform (testbed artifacts we cannot rerun);
//  * OUR measured CPU linear scan (this machine, single thread);
//  * OUR FPGA accelerator cycle model (functionally validated in-run);
//  * OUR AP model under the paper's d-cycle throughput convention AND the
//    honest 2d+L+3 frame, with the simulator validating a query sample.

#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "hwmodels/fpga_accelerator.hpp"
#include "hwmodels/platforms.hpp"
#include "knn/exact.hpp"
#include "perf/projection.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main() {
  using namespace apss;
  util::ThreadPool pool;
  util::BenchReport report("table3_small");

  util::TablePrinter runtime("Table III: small-dataset run time (ms)");
  runtime.set_header({"Workload", "Xeon(paper)", "CPU(ours,1T)", "ARM(paper)",
                      "Jetson(paper)", "Kintex(model)", "Kintex(paper)",
                      "AP d-cyc", "AP frame", "AP(paper)"});
  util::TablePrinter energy("Table III: energy efficiency (query/Joule)");
  energy.set_header({"Workload", "Xeon(paper)", "ARM(paper)", "Jetson(paper)",
                     "Kintex(model)", "Kintex(paper)", "AP(model)",
                     "AP(paper)"});

  for (const auto& w : perf::paper_workloads()) {
    const auto& ref = perf::paper_reference(w.name);
    const auto data =
        knn::BinaryDataset::uniform(w.small_n, w.dims, 42);
    const auto queries =
        knn::BinaryDataset::uniform(perf::kQueryCount, w.dims, 43);

    // --- Measured CPU (single thread, bounded-heap top-k) ------------------
    util::Timer cpu_timer;
    const auto cpu_results = knn::batch_knn(data, queries, w.k, nullptr);
    const double cpu_ms = cpu_timer.millis();

    // --- FPGA: cycle model + functional validation on a sample -------------
    const hwmodels::FpgaAccelerator fpga(data, {});
    const auto fpga_stats =
        fpga.project(perf::kQueryCount, w.small_n, w.dims, w.k);
    const double fpga_ms = fpga_stats.seconds(fpga.options()) * 1e3;
    {
      hwmodels::FpgaRunStats sample_stats;
      const auto sample = knn::BinaryDataset::uniform(48, w.dims, 44);
      const auto fpga_results = fpga.search(sample, w.k, sample_stats);
      for (std::size_t q = 0; q < sample.size(); ++q) {
        if (!knn::is_valid_knn_result(data, sample.row(q), w.k,
                                      fpga_results[q])) {
          std::cerr << "FPGA functional validation FAILED\n";
          return 1;
        }
      }
    }

    // --- AP: projection models + simulator validation on a sample ----------
    perf::ApScenario scenario;
    scenario.workload = w;
    scenario.n = w.small_n;
    const double ap_paper_ms = perf::estimate_ap(scenario).total_seconds * 1e3;
    scenario.throughput = perf::ApThroughput::kFrameCycles;
    const perf::ApEstimate ap_frame = perf::estimate_ap(scenario);
    {
      core::EngineOptions opt;
      opt.max_vectors_per_config = w.vectors_per_config;
      opt.pool = &pool;
      core::ApKnnEngine engine(data, opt);
      const auto sample = knn::BinaryDataset::uniform(16, w.dims, 45);
      const auto ap_results = engine.search(sample, w.k);
      for (std::size_t q = 0; q < sample.size(); ++q) {
        if (!knn::is_valid_knn_result(data, sample.row(q), w.k,
                                      ap_results[q])) {
          std::cerr << "AP simulator validation FAILED\n";
          return 1;
        }
      }
      // The simulator's cycle count must agree with the frame model.
      const double cycles_per_query =
          static_cast<double>(engine.last_stats().simulated_cycles) /
          static_cast<double>(sample.size());
      if (cycles_per_query != ap_frame.cycles_per_query) {
        std::cerr << "AP cycle accounting mismatch\n";
        return 1;
      }
    }

    runtime.add_row(
        {w.name, util::TablePrinter::fmt(ref.xeon_ms, 2),
         util::TablePrinter::fmt(cpu_ms, 2),
         util::TablePrinter::fmt(ref.arm_ms, 2),
         util::TablePrinter::fmt(ref.jetson_ms, 2),
         util::TablePrinter::fmt(fpga_ms, 2),
         util::TablePrinter::fmt(ref.kintex_ms, 2),
         util::TablePrinter::fmt(ap_paper_ms, 2),
         util::TablePrinter::fmt(ap_frame.total_seconds * 1e3, 2),
         util::TablePrinter::fmt(ref.ap_gen1_ms, 2)});

    report.write(util::BenchRecord("small_runtime")
                     .param("workload", w.name)
                     .param("n", static_cast<std::uint64_t>(w.small_n))
                     .param("dims", static_cast<std::uint64_t>(w.dims))
                     .param("queries",
                            static_cast<std::uint64_t>(perf::kQueryCount))
                     .param("cpu_ms", cpu_ms)
                     .param("fpga_model_ms", fpga_ms)
                     .param("ap_paper_convention_ms", ap_paper_ms)
                     .param("ap_frame_ms", ap_frame.total_seconds * 1e3)
                     .wall_seconds(cpu_ms / 1e3)
                     .model_seconds(ap_frame.total_seconds));

    const double fpga_qpj = hwmodels::queries_per_joule(
        perf::kQueryCount, fpga_ms / 1e3,
        hwmodels::platform("Kintex-7").dynamic_power_w);
    const double ap_qpj = hwmodels::queries_per_joule(
        perf::kQueryCount, ap_paper_ms / 1e3,
        hwmodels::ap_dynamic_power_w(w.dims));
    energy.add_row({w.name, util::TablePrinter::fmt(ref.xeon_qpj, 0),
                    util::TablePrinter::fmt(ref.arm_qpj, 0),
                    util::TablePrinter::fmt(ref.jetson_qpj, 0),
                    util::TablePrinter::fmt(fpga_qpj, 0),
                    util::TablePrinter::fmt(ref.kintex_qpj, 0),
                    util::TablePrinter::fmt(ap_qpj, 0),
                    util::TablePrinter::fmt(ref.ap_gen1_qpj, 0)});

    (void)cpu_results;
  }

  runtime.add_note("AP d-cyc follows the paper's implied d-cycle steady "
                   "state; AP frame uses the exact 2d+L+3-cycle stream "
                   "(factor ~2; see DESIGN.md calibration notes).");
  runtime.add_note("CPU(ours) is THIS machine, one thread - compare shape, "
                   "not absolutes, with the Xeon column.");
  runtime.print(std::cout);
  std::cout << '\n';
  energy.print(std::cout);
  std::cout << "\nShape check: AP(paper-convention) beats the CPUs by >10x "
               "on every workload;\nFPGA and AP are within ~2x of each "
               "other, matching the paper's Table III.\n";
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
