// Sec. V-A: resource utilization per board configuration. Builds the FULL
// configuration network for each workload (1024 / 1024 / 512 macros),
// places it on a one-rank board, and compares apadmin-style block
// utilization with the paper's 41.7 / 90.9 / 78.6 %.

#include <cstdio>
#include <iostream>

#include "apsim/placement.hpp"
#include "core/engine.hpp"
#include "perf/workloads.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("resource_utilization");
  util::TablePrinter table("Sec. V-A: resource utilization per configuration");
  table.set_header({"Workload", "vectors", "STEs", "blocks", "half-cores",
                    "util % (ours)", "util % (paper)", "report BW (Gbit/s)"});

  for (const auto& w : perf::paper_workloads()) {
    const auto data = knn::BinaryDataset::uniform(w.vectors_per_config,
                                                  w.dims, 1234);
    core::EngineOptions opt;
    opt.max_vectors_per_config = w.vectors_per_config;
    util::Timer timer;
    core::ApKnnEngine engine(data, opt);
    const auto placement = engine.placement(0);
    const double util_pct =
        placement.block_utilization(apsim::DeviceGeometry::one_rank()) * 100.0;
    table.add_row(
        {w.name, std::to_string(w.vectors_per_config),
         std::to_string(placement.ste_count),
         std::to_string(placement.blocks_used),
         std::to_string(placement.half_cores_used),
         util::TablePrinter::fmt(util_pct, 1),
         util::TablePrinter::fmt(perf::paper_reference(w.name).utilization_pct, 1),
         util::TablePrinter::fmt(engine.report_bandwidth_gbps(), 1)});
    std::cerr << "[" << w.name << "] built+placed "
              << engine.network(0).size() << " elements in "
              << util::TablePrinter::fmt(timer.seconds(), 1) << " s\n";
    report.write(
        util::BenchRecord("utilization")
            .param("workload", w.name)
            .param("vectors",
                   static_cast<std::uint64_t>(w.vectors_per_config))
            .param("stes", static_cast<std::uint64_t>(placement.ste_count))
            .param("blocks",
                   static_cast<std::uint64_t>(placement.blocks_used))
            .param("utilization_pct", util_pct)
            .param("paper_utilization_pct",
                   perf::paper_reference(w.name).utilization_pct)
            .param("report_bw_gbps", engine.report_bandwidth_gbps())
            .wall_seconds(timer.seconds()));
  }
  table.add_note("encoded payload tops out at 128 Kb per configuration "
                 "(1024 x 128 or 512 x 256), matching Sec. V-A.");
  table.add_note("WordEmbed is PCIe-limited (Sec. V-A footnote): its report "
                 "bandwidth column shows why more macros cannot be used.");
  table.add_note("utilization does not depend on k: sorting adds no states "
                 "(Sec. V-A).");
  table.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
