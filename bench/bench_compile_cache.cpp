// Ahead-of-time compile cache benchmark: how much wall clock does loading
// a versioned on-disk artifact save versus verifying + compiling the
// automata from scratch at the fig8 working point (1024 vectors x 128
// dims, bit-parallel backend)?
//
// Three engine constructions are timed:
//   fresh  — no cache directory: network build + verification compile
//   miss   — empty cache directory: fresh work plus encode + atomic save
//   load   — warm cache directory: decode + validate the artifacts only
// The load arm is best-of-3 (it is fast enough that a single cold page
// cache read would dominate). All three engines must return identical
// neighbor lists, and the loaded programs must compare bit-for-bit equal
// to the freshly compiled ones — the bench fails otherwise.
//
// Usage: bench_compile_cache [n] [dims] [queries]   (default 1024 128 8)
//
// Records BENCH_compile_cache.json: compile_cache_fresh_compile,
// compile_cache_miss_compile_save, compile_cache_artifact_load, and
// compile_cache_speedup (params.speedup = fresh / load wall clock — the
// CI perf gate asserts >= 10x at the default scale).

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "knn/dataset.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;

knn::BinaryDataset random_dataset(util::Rng& rng, std::size_t n,
                                  std::size_t dims) {
  knn::BinaryDataset data(n, dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dims; ++d) {
      data.set(i, d, rng.below(2) == 1);
    }
  }
  return data;
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

std::uint64_t directory_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      total += entry.file_size();
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1024, dims = 128, query_count = 8;
  if (argc > 1) n = bench::parse_positive(argv[1]);
  if (argc > 2) dims = bench::parse_positive(argv[2]);
  if (argc > 3) query_count = bench::parse_positive(argv[3]);
  if (n == 0 || dims == 0 || query_count == 0) {
    std::cerr << "usage: " << argv[0] << " [n] [dims] [queries]\n";
    return 2;
  }

  util::Rng rng(20170529);
  const auto data = random_dataset(rng, n, dims);
  const auto queries = random_dataset(rng, query_count, dims);

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "apss_bench_compile_cache")
          .string();
  std::filesystem::remove_all(cache_dir);

  core::EngineOptions opt;
  opt.backend = core::SimulationBackend::kBitParallel;
  opt.threads = 1;  // serialize compilation so the arms time the same work

  // Arm 1: fresh — network construction + verification compile, no cache.
  util::Timer fresh_timer;
  core::ApKnnEngine fresh(data, opt);
  const double fresh_wall = fresh_timer.seconds();
  const std::size_t configs = fresh.configurations();

  // Arm 2: miss — the fresh work plus artifact encode + atomic save.
  opt.artifact_cache_dir = cache_dir;
  util::Timer miss_timer;
  core::ApKnnEngine miss(data, opt);
  const double miss_wall = miss_timer.seconds();
  if (miss.backend_stats().artifact.misses != configs) {
    std::cerr << "FAIL: cold construction did not miss on every slot\n";
    return 1;
  }
  const std::uint64_t artifact_bytes = directory_bytes(cache_dir);

  // Arm 3: load — decode + validate only, best of 3 constructions.
  double load_wall = 0;
  for (int rep = 0; rep < 3; ++rep) {
    util::Timer load_timer;
    core::ApKnnEngine warm(data, opt);
    const double wall = load_timer.seconds();
    if (warm.backend_stats().artifact.hits != configs) {
      std::cerr << "FAIL: warm construction did not hit on every slot\n";
      return 1;
    }
    if (rep == 0 || wall < load_wall) {
      load_wall = wall;
    }
  }

  // Differential gate: the cache must be invisible to results, and the
  // loaded programs must equal the freshly compiled ones bit for bit.
  core::ApKnnEngine warm(data, opt);
  const std::size_t k = std::min<std::size_t>(10, n);
  const auto expected = fresh.search(queries, k);
  if (miss.search(queries, k) != expected ||
      warm.search(queries, k) != expected) {
    std::cerr << "FAIL: cached engines returned different neighbors\n";
    return 1;
  }
  for (std::size_t c = 0; c < configs; ++c) {
    if (warm.program(c)->state() != fresh.program(c)->state()) {
      std::cerr << "FAIL: loaded program " << c
                << " differs from fresh compile\n";
      return 1;
    }
  }

  const double speedup = load_wall > 0 ? fresh_wall / load_wall : 0.0;
  const double save_overhead = fresh_wall > 0 ? miss_wall / fresh_wall : 0.0;

  util::TablePrinter table("Compile cache: fresh compile vs artifact load (" +
                           std::to_string(n) + "x" + std::to_string(dims) +
                           ", " + std::to_string(configs) +
                           " configurations)");
  table.set_header({"arm", "wall [ms]", "vs fresh"},
                   {util::Align::kLeft, util::Align::kRight,
                    util::Align::kRight});
  table.add_row({"fresh compile", fmt("%.2f", fresh_wall * 1e3), "1.00x"});
  table.add_row({"miss (compile+save)", fmt("%.2f", miss_wall * 1e3),
                 fmt("%.2fx", save_overhead)});
  table.add_row({"artifact load (best of 3)", fmt("%.2f", load_wall * 1e3),
                 fmt("%.1fx faster", speedup)});
  table.add_note("artifact bytes on disk: " + std::to_string(artifact_bytes));
  table.add_note("all arms returned identical neighbors; loaded programs "
                 "are bit-identical to fresh compiles");
  table.print(std::cout);

  util::BenchReport report("compile_cache");
  const auto stamp = [&](util::BenchRecord& rec) {
    rec.param("n", static_cast<std::uint64_t>(n))
        .param("dims", static_cast<std::uint64_t>(dims))
        .param("configurations", static_cast<std::uint64_t>(configs));
  };
  {
    util::BenchRecord rec("compile_cache_fresh_compile");
    stamp(rec);
    report.write(rec.wall_seconds(fresh_wall));
  }
  {
    util::BenchRecord rec("compile_cache_miss_compile_save");
    stamp(rec);
    report.write(rec.wall_seconds(miss_wall));
  }
  {
    util::BenchRecord rec("compile_cache_artifact_load");
    stamp(rec);
    rec.param("artifact_bytes", artifact_bytes);
    report.write(rec.wall_seconds(load_wall));
  }
  {
    util::BenchRecord rec("compile_cache_speedup");
    stamp(rec);
    rec.param("speedup", speedup).param("save_overhead", save_overhead);
    report.write(rec);
  }
  if (!report.ok()) {
    std::cerr << "warning: could not write " << report.path() << "\n";
  } else {
    std::cout << "\nrecorded " << report.path() << "\n";
  }
  std::cout << "artifact load is " << fmt("%.1f", speedup)
            << "x faster than a fresh verification+compile\n";
  return 0;
}
