// Robustness-layer overhead benchmark (docs/ROBUSTNESS.md): what does the
// cooperative checkpoint machinery cost when nothing ever fails, and how
// far past its deadline does a timed-out search run?
//
// Two questions, at the fig8 working point (1024 vectors x 128 dims,
// bit-parallel backend):
//   overhead  — search wall clock with no deadline (the plain fast path)
//               vs a huge never-firing deadline (every frame checkpointed).
//               Both arms are best-of-N and must return bit-identical
//               neighbors; the CI gate asserts the engaged arm costs < 2%.
//   overshoot — a deadline set to ~half the baseline wall clock, under the
//               isolate policy: elapsed - deadline measures the
//               frame-granular enforcement lag.
//
// Usage: bench_robustness [n] [dims] [queries] [reps]  (default 1024 128 32 9)
//
// Records BENCH_robustness.json: robustness_checkpoint_plain,
// robustness_checkpoint_engaged, robustness_checkpoint_overhead
// (params.overhead_pct — the CI gate), and robustness_deadline_overshoot.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "knn/dataset.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;

knn::BinaryDataset random_dataset(util::Rng& rng, std::size_t n,
                                  std::size_t dims) {
  knn::BinaryDataset data(n, dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dims; ++d) {
      data.set(i, d, rng.below(2) == 1);
    }
  }
  return data;
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Best-of-`reps` wall clock for one search configuration.
double best_search_wall(core::ApKnnEngine& engine,
                        const knn::BinaryDataset& queries, std::size_t k,
                        int reps) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    engine.search(queries, k);
    const double wall = timer.seconds();
    if (rep == 0 || wall < best) {
      best = wall;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1024, dims = 128, query_count = 32;
  int reps = 9;
  if (argc > 1) n = bench::parse_positive(argv[1]);
  if (argc > 2) dims = bench::parse_positive(argv[2]);
  if (argc > 3) query_count = bench::parse_positive(argv[3]);
  if (argc > 4) reps = static_cast<int>(bench::parse_positive(argv[4]));
  if (n == 0 || dims == 0 || query_count == 0 || reps == 0) {
    std::cerr << "usage: " << argv[0] << " [n] [dims] [queries] [reps]\n";
    return 2;
  }

  util::Rng rng(20170529);
  const auto data = random_dataset(rng, n, dims);
  const auto queries = random_dataset(rng, query_count, dims);
  const std::size_t k = std::min<std::size_t>(10, n);

  core::EngineOptions opt;
  opt.backend = core::SimulationBackend::kBitParallel;
  opt.threads = 1;  // serialize so both arms time identical work

  // Arm 1: plain — no deadline, no token: the unengaged fast path.
  core::ApKnnEngine plain(data, opt);
  const auto expected = plain.search(queries, k);
  const double plain_wall = best_search_wall(plain, queries, k, reps);
  const std::size_t configs = plain.configurations();

  // Arm 2: engaged — a deadline that never fires, so every query frame
  // pays the checkpoint (clock read + cancellation load) and nothing else.
  opt.deadline_ms = 1e9;
  core::ApKnnEngine engaged(data, opt);
  if (engaged.search(queries, k) != expected) {
    std::cerr << "FAIL: engaged run control changed the neighbors\n";
    return 1;
  }
  const double engaged_wall = best_search_wall(engaged, queries, k, reps);
  const double overhead_pct =
      plain_wall > 0 ? (engaged_wall - plain_wall) / plain_wall * 100.0 : 0.0;

  // Overshoot: a deadline at ~half the baseline wall clock, isolate policy.
  // Elapsed minus deadline is the enforcement lag (at most about one query
  // frame plus wind-down, since checkpoints sit on frame boundaries).
  const double deadline_ms = std::max(0.05, plain_wall * 1e3 / 2.0);
  opt.deadline_ms = deadline_ms;
  opt.on_error = core::OnError::kIsolate;
  core::ApKnnEngine bounded(data, opt);
  double overshoot_ms = 0;
  std::size_t timed_out = 0;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    bounded.search(queries, k);
    const double elapsed_ms = timer.seconds() * 1e3 - deadline_ms;
    if (rep == 0 || elapsed_ms < overshoot_ms) {
      overshoot_ms = elapsed_ms;
      timed_out =
          bounded.last_stats().count_state(core::ShardState::kTimedOut);
    }
  }

  util::TablePrinter table(
      "Robustness layer: checkpoint overhead and deadline overshoot (" +
      std::to_string(n) + "x" + std::to_string(dims) + ", " +
      std::to_string(configs) + " configurations, best of " +
      std::to_string(reps) + ")");
  table.set_header({"arm", "wall [ms]", "note"},
                   {util::Align::kLeft, util::Align::kRight,
                    util::Align::kLeft});
  table.add_row({"no deadline (fast path)", fmt("%.3f", plain_wall * 1e3),
                 "baseline"});
  table.add_row({"huge deadline (checkpointed)",
                 fmt("%.3f", engaged_wall * 1e3),
                 fmt("%+.2f%% vs baseline", overhead_pct)});
  table.add_row({"half-baseline deadline, isolate",
                 fmt("%.3f", deadline_ms + overshoot_ms),
                 fmt("%.3f", deadline_ms) + " ms budget, " +
                     std::to_string(timed_out) + " shards timed out"});
  table.add_note("engaged arm returned bit-identical neighbors");
  table.print(std::cout);

  util::BenchReport report("robustness");
  const auto stamp = [&](util::BenchRecord& rec) {
    rec.param("n", static_cast<std::uint64_t>(n))
        .param("dims", static_cast<std::uint64_t>(dims))
        .param("queries", static_cast<std::uint64_t>(query_count))
        .param("configurations", static_cast<std::uint64_t>(configs));
  };
  {
    util::BenchRecord rec("robustness_checkpoint_plain");
    stamp(rec);
    report.write(rec.wall_seconds(plain_wall));
  }
  {
    util::BenchRecord rec("robustness_checkpoint_engaged");
    stamp(rec);
    report.write(rec.wall_seconds(engaged_wall));
  }
  {
    util::BenchRecord rec("robustness_checkpoint_overhead");
    stamp(rec);
    rec.param("overhead_pct", overhead_pct);
    report.write(rec);
  }
  {
    util::BenchRecord rec("robustness_deadline_overshoot");
    stamp(rec);
    rec.param("deadline_ms", deadline_ms)
        .param("overshoot_ms", overshoot_ms)
        .param("timed_out_configurations",
               static_cast<std::uint64_t>(timed_out));
    report.write(rec);
  }
  if (!report.ok()) {
    std::cerr << "warning: could not write " << report.path() << "\n";
  } else {
    std::cout << "\nrecorded " << report.path() << "\n";
  }
  std::cout << "checkpointed search costs " << fmt("%+.2f", overhead_pct)
            << "% vs the unengaged fast path\n";
  return 0;
}
