// Table V: relative speedups for spatial indexing on kNN-TagSpace (large),
// ARM + AP versus a single-threaded ARM CPU baseline.
//
// Technique traversal profiles are MEASURED from this repo's kd-forest,
// hierarchical k-means tree, and multi-probe LSH over a sampled dataset,
// then evaluated under the Sec. V-B batching model (see
// src/perf/indexing_model.hpp for the cost equations and the documented
// FLANN-backtracking asymmetry on the CPU tree baselines).

#include <cstdio>
#include <iostream>

#include "perf/indexing_model.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("table5_indexing");
  perf::IndexingScenario scenario;
  scenario.workload = perf::workload("kNN-TagSpace");

  std::cerr << "[bench] building and profiling index structures on a 2^15 "
               "sample...\n";
  util::Timer timer;
  const auto techniques = perf::measure_techniques(scenario, 1u << 15, 2026);
  std::cerr << "[bench] profiling took "
            << util::TablePrinter::fmt(timer.seconds(), 1) << " s\n";
  report.write(util::BenchRecord("profiling")
                   .param("sample_size", std::uint64_t{1} << 15)
                   .wall_seconds(timer.seconds()));

  util::TablePrinter profile("Measured traversal profiles (per query)");
  profile.set_header({"Indexing", "traversal us", "candidates",
                      "buckets probed", "reconfigs/batch"});
  for (const auto& t : techniques) {
    profile.add_row({t.name,
                     util::TablePrinter::fmt(t.traversal_seconds * 1e6, 1),
                     util::TablePrinter::fmt(t.candidates_per_query, 0),
                     util::TablePrinter::fmt(t.buckets_per_query, 1),
                     util::TablePrinter::fmt(t.distinct_buckets_per_batch, 0)});
  }
  profile.print(std::cout);
  std::cout << '\n';

  // Paper Table V reference values.
  const double paper_gen1[] = {16.0, 0.89, 0.88, 0.62};
  const double paper_gen2[] = {91.0, 106.0, 120.0, 3.5};

  util::TablePrinter table(
      "Table V: indexing speedups vs 1-thread ARM (kNN-TagSpace)");
  table.set_header({"Indexing", "ARM+AP Gen1 (ours)", "(paper)",
                    "ARM+AP Gen2 (ours)", "(paper)"});
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    const auto gen1 = perf::evaluate_indexing(scenario, techniques[i],
                                              apsim::DeviceConfig::gen1());
    const auto gen2 = perf::evaluate_indexing(scenario, techniques[i],
                                              apsim::DeviceConfig::gen2());
    table.add_row({techniques[i].name,
                   util::TablePrinter::fmt(gen1.speedup, 2) + "x",
                   util::TablePrinter::fmt(paper_gen1[i], 2) + "x",
                   util::TablePrinter::fmt(gen2.speedup, 1) + "x",
                   util::TablePrinter::fmt(paper_gen2[i], 1) + "x"});
    report.write(
        util::BenchRecord("indexing_speedup")
            .param("technique", techniques[i].name)
            .param("traversal_us", techniques[i].traversal_seconds * 1e6)
            .param("candidates", techniques[i].candidates_per_query)
            .param("gen1_speedup", gen1.speedup)
            .param("gen2_speedup", gen2.speedup)
            .param("paper_gen1", paper_gen1[i])
            .param("paper_gen2", paper_gen2[i]));
  }
  table.add_note("shape reproduced: Gen1 indexed rows collapse (reconfig "
                 "dominates); Gen2 recovers large speedups; MPLSH gains "
                 "least. Magnitudes for the indexed rows depend on the "
                 "paper's unpublished FLANN/LSHBOX settings (EXPERIMENTS.md).");
  table.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
