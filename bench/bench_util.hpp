#pragma once
// Small helpers shared by the bench binaries: argument parsing and the
// raw-stream simulation-backend comparison harness used by the fig5
// (packed) and fig6 (multiplexed) benches.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "anml/network.hpp"
#include "apsim/batch_simulator.hpp"
#include "apsim/simulator.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace apss::bench {

/// Strict positive decimal parse: rejects signs, suffixes ("1e3"), and
/// empty/garbage input by returning 0 (the caller's usage trigger).
inline std::size_t parse_positive(const char* s) {
  if (s == nullptr || *s < '0' || *s > '9') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return *end == '\0' ? static_cast<std::size_t>(v) : 0;
}

/// Runs `stream` on the cycle-accurate reference and on the compiled
/// bit-parallel `program` — once at the default (auto) lane width and once
/// per explicit width (64/256/512) — asserts every ReportEvent stream is
/// BIT-IDENTICAL to the reference, prints a comparison table (with
/// `note`), and writes <prefix>_cycle_accurate / <prefix>_bit_parallel /
/// <prefix>_bit_parallel_w{64,256,512} (with a lane_isa param) /
/// <prefix>_backend_speedup records — `stamp` adds the bench's parameters
/// to each. `shape` names the macro shape in the closing message.
/// Returns 0, or 1 when any backend disagrees.
inline int compare_backends_on_stream(
    util::BenchReport& report, const std::string& prefix, const char* shape,
    const std::string& table_title, const char* note,
    const anml::AutomataNetwork& network,
    std::shared_ptr<const apsim::BatchProgram> program,
    std::span<const std::uint8_t> stream,
    const std::function<void(util::BenchRecord&)>& stamp) {
  util::Timer cycle_timer;
  apsim::Simulator reference(network);
  const auto expected = reference.run(stream);
  const double cycle_wall = cycle_timer.seconds();

  util::Timer bit_timer;
  apsim::BatchSimulator batch(program);
  const auto actual = batch.run(stream);
  const double bit_wall = bit_timer.seconds();

  if (actual != expected) {
    std::fprintf(stderr, "FAIL: backends disagree on the report stream\n");
    return 1;
  }
  const double speedup = bit_wall > 0.0 ? cycle_wall / bit_wall : 0.0;

  util::TablePrinter table(table_title);
  table.set_header({"backend", "wall s", "sim cycles", "report events"});
  const auto row = [&](const std::string& name, double wall,
                       const char* isa) {
    table.add_row({name, util::TablePrinter::fmt(wall, 4),
                   std::to_string(stream.size()),
                   std::to_string(expected.size())});
    util::BenchRecord record(prefix + "_" + name);
    stamp(record);
    if (isa != nullptr) {
      record.param("lane_isa", isa);
    }
    report.write(record.cycles(stream.size()).wall_seconds(wall));
  };
  row("cycle_accurate", cycle_wall, nullptr);
  row("bit_parallel", bit_wall, batch.lane_isa());
  for (const apsim::LaneWidth w : {apsim::LaneWidth::k64,
                                   apsim::LaneWidth::k256,
                                   apsim::LaneWidth::k512}) {
    util::Timer width_timer;
    apsim::BatchSimulator wide(program, w);
    const auto wide_actual = wide.run(stream);
    const double wide_wall = width_timer.seconds();
    if (wide_actual != expected) {
      std::fprintf(stderr,
                   "FAIL: %s-bit lane backend disagrees on the report "
                   "stream\n", apsim::to_string(w));
      return 1;
    }
    row("bit_parallel_w" + std::string(apsim::to_string(w)), wide_wall,
        wide.lane_isa());
  }
  table.add_note(note);
  table.print(std::cout);

  util::BenchRecord speed(prefix + "_backend_speedup");
  stamp(speed);
  report.write(speed.param("speedup", speedup));
  std::printf("\nbit-parallel speedup on the %s shape: %.1fx wall-clock "
              "(target at default sizes: >= 50x)\n", shape, speedup);
  return 0;
}

}  // namespace apss::bench
