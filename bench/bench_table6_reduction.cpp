// Table VI: statistical activation reduction accuracy — percentage of
// incorrect results out of 100 randomized runs, p = 16, n = 1024
// (Sec. VI-C). A "run" batches 4096 queries; a run is incorrect when ANY
// query's pooled top-k distance multiset misses the exact answer. The
// bench also reports the per-query failure rate and the achieved report-
// bandwidth reduction (~p/k').
//
// Usage: bench_table6_reduction [runs] [queries_per_run]  (defaults 100 4096;
// smoke runs pass small values — the percentages only converge at defaults)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/opt/statistical_reduction.hpp"
#include "perf/workloads.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

/// Strict positive decimal parse: rejects signs, suffixes ("1e3"), and
/// empty/garbage input by returning 0 (the caller's usage trigger).
std::size_t parse_positive(const char* s) {
  if (s == nullptr || *s < '0' || *s > '9') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return *end == '\0' ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apss;
  util::ThreadPool pool;
  std::size_t runs = 100, queries_per_run = 4096;
  if (argc > 1) runs = parse_positive(argv[1]);
  if (argc > 2) queries_per_run = parse_positive(argv[2]);
  if (runs == 0 || queries_per_run == 0) {
    std::cerr << "usage: bench_table6_reduction [runs] [queries_per_run]  "
                 "(positive integers; defaults 100 4096)\n";
    return 2;
  }

  util::BenchReport report("table6_reduction");
  util::TablePrinter table(
      "Table VI: % incorrect runs (" + std::to_string(runs) +
      " runs, p=16, n=1024)");
  table.set_header({"Workload", "k", "k'=1", "k'=2", "k'=3", "k'=4",
                    "paper k'=1", "paper k'=2", "paper k'=3"});
  util::TablePrinter detail("Per-query failure rate / reports per query");
  detail.set_header({"Workload", "k'=1", "k'=2", "k'=3", "k'=4",
                     "reports@k'=1", "full reports"});

  struct PaperRow {
    const char* name;
    double kp1, kp2, kp3;
  };
  const PaperRow paper_rows[] = {{"kNN-WordEmbed", 100, 1, 0},
                                 {"kNN-SIFT", 100, 1, 0},
                                 {"kNN-TagSpace", 100, 72, 5}};

  const std::size_t k_primes[] = {1, 2, 3, 4};
  for (const PaperRow& row : paper_rows) {
    const auto& w = perf::workload(row.name);
    core::ReductionModelParams params;
    params.n = 1024;
    params.dims = w.dims;
    params.group_size = 16;
    params.k = w.k;
    params.k_prime = 1;
    params.queries_per_run = queries_per_run;
    params.runs = runs;
    params.seed = 77;

    util::Timer timer;
    const auto results =
        core::evaluate_reduction_sweep(params, k_primes, &pool);
    std::cerr << "[" << w.name << "] sweep took "
              << util::TablePrinter::fmt(timer.seconds(), 1) << " s\n";
    for (std::size_t i = 0; i < std::size(k_primes); ++i) {
      report.write(
          util::BenchRecord("reduction_accuracy")
              .param("workload", w.name)
              .param("runs", static_cast<std::uint64_t>(runs))
              .param("queries_per_run",
                     static_cast<std::uint64_t>(queries_per_run))
              .param("k_prime", static_cast<std::uint64_t>(k_primes[i]))
              .param("incorrect_run_fraction",
                     results[i].incorrect_run_fraction)
              .param("incorrect_query_fraction",
                     results[i].incorrect_query_fraction)
              .param("mean_reports_per_query",
                     results[i].mean_reports_per_query)
              .wall_seconds(timer.seconds()));
    }

    const auto pct = [](double f) {
      return util::TablePrinter::fmt(f * 100.0, 0) + "%";
    };
    table.add_row({w.name, std::to_string(w.k),
                   pct(results[0].incorrect_run_fraction),
                   pct(results[1].incorrect_run_fraction),
                   pct(results[2].incorrect_run_fraction),
                   pct(results[3].incorrect_run_fraction),
                   util::TablePrinter::fmt(row.kp1, 0) + "%",
                   util::TablePrinter::fmt(row.kp2, 0) + "%",
                   util::TablePrinter::fmt(row.kp3, 0) + "%"});
    detail.add_row(
        {w.name,
         util::TablePrinter::fmt_auto(results[0].incorrect_query_fraction, 2),
         util::TablePrinter::fmt_auto(results[1].incorrect_query_fraction, 2),
         util::TablePrinter::fmt_auto(results[2].incorrect_query_fraction, 2),
         util::TablePrinter::fmt_auto(results[3].incorrect_query_fraction, 2),
         util::TablePrinter::fmt(results[0].mean_reports_per_query, 0),
         "1024"});
  }
  table.add_note("paper k'>=4 is 0% for all workloads; interpretation of a "
                 "'run' as a 4096-query batch reproduces the 100%-at-k'=1 "
                 "rows (a ~1%-per-query failure rate is certain to hit at "
                 "least once in 4096 queries).");
  table.print(std::cout);
  std::cout << '\n';
  detail.add_note("k'=1 cuts reports from 1024 to 64 per query: the 16x "
                  "(p/k') bandwidth reduction of Sec. VI-C.");
  detail.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
