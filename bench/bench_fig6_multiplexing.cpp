// Fig. 6 / Sec. VI-B: symbol-stream multiplexing. Seven queries ride one
// stream in separate bit slices; the bench verifies correctness against
// per-query streaming, quantifies the 7x frame-count reduction, and shows
// the two costs the paper says make it infeasible on Gen-1 hardware: the
// 7x STE footprint and the 7x report bandwidth.
//
// A second section compares the simulation backends on a full multiplexed
// board configuration (n vectors x 7 slice replicas): the same multiplexed
// frames run on the cycle-accurate reference and on the bit-parallel batch
// backend (which compiles the per-slice match classes since the
// 16-class generalization landed), asserts BIT-IDENTICAL ReportEvent
// streams, and records both wall clocks to BENCH_fig6_multiplexing.json.
//
// Usage: bench_fig6_multiplexing [n] [dims] [queries]
//        (defaults 1024 128 56)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apsim/batch_simulator.hpp"
#include "apsim/placement.hpp"
#include "bench_util.hpp"
#include "core/batch_compile.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;
using apss::bench::parse_positive;

int run_feasibility_table(util::BenchReport& report) {
  const std::size_t dims = 32;
  const auto data = knn::BinaryDataset::uniform(48, dims, 66);
  const auto queries = knn::BinaryDataset::uniform(21, dims, 67);
  constexpr std::size_t kK = 4;

  // Multiplexed path (on the bit-parallel backend, exercising the demux).
  const core::MultiplexedKnn mux(data, core::kMaxSlices, {},
                                 core::SimulationBackend::kBitParallel);
  const auto mux_results = mux.search(queries, kK);

  // Baseline path: one query per frame.
  core::ApKnnEngine baseline_engine(data);
  const auto base_results = baseline_engine.search(queries, kK);

  std::size_t agreements = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    agreements += knn::is_valid_knn_result(data, queries.row(q), kK,
                                           mux_results[q]);
  }

  const auto mux_place =
      apsim::place(mux.network(), apsim::DeviceGeometry::one_rank());
  const auto base_place = apsim::place(baseline_engine.network(0),
                                       apsim::DeviceGeometry::one_rank());

  util::TablePrinter table("Fig. 6: symbol-stream multiplexing (7 slices)");
  table.set_header({"metric", "base design", "multiplexed"});
  table.add_row({"frames for 21 queries", "21", std::to_string(mux.frames_for(21))});
  table.add_row({"frames for 4096 queries", "4096",
                 std::to_string(mux.frames_for(4096))});
  table.add_row({"STEs on board", std::to_string(base_place.ste_count),
                 std::to_string(mux_place.ste_count)});
  table.add_row({"valid kNN answers",
                 std::to_string(queries.size()) + "/" +
                     std::to_string(queries.size()),
                 std::to_string(agreements) + "/" +
                     std::to_string(queries.size())});
  table.add_note("throughput gain is 7x fewer frames at 7x the STE cost and "
                 "7x the report traffic; Sec. VI-B explains why Gen-1 "
                 "capacity and PCIe bandwidth cannot host it yet.");
  table.print(std::cout);
  report.write(util::BenchRecord("feasibility")
                   .param("dims", static_cast<std::uint64_t>(dims))
                   .param("slices", std::uint64_t{7})
                   .param("frames_for_4096",
                          static_cast<std::uint64_t>(mux.frames_for(4096)))
                   .param("base_stes",
                          static_cast<std::uint64_t>(base_place.ste_count))
                   .param("mux_stes",
                          static_cast<std::uint64_t>(mux_place.ste_count))
                   .param("backend",
                          mux.bit_parallel() ? "bit_parallel" : "fallback"));

  (void)base_results;
  return agreements == queries.size() ? 0 : 1;
}

int run_backend_comparison(util::BenchReport& report, std::size_t n,
                           std::size_t dims, std::size_t queries_n) {
  const auto data = knn::BinaryDataset::uniform(n, dims, 68);
  const auto queries = knn::BinaryDataset::uniform(queries_n, dims, 69);

  anml::AutomataNetwork network;
  const auto layouts =
      core::build_multiplexed_network(network, data, core::kMaxSlices);
  const core::StreamSpec spec{dims, core::collector_levels_for(dims)};
  const core::MultiplexedStreamEncoder encoder(spec);
  std::size_t frames = 0;
  const auto stream = encoder.encode_batch(queries, frames);

  std::vector<apsim::HammingMacroSlots> slots;
  slots.reserve(layouts.size());
  for (const auto& layout : layouts) {
    slots.push_back(core::batch_slots(layout));
  }
  std::string reason;
  const auto program =
      apsim::BatchProgram::try_compile(network, slots, {}, &reason);
  if (program == nullptr) {
    std::fprintf(stderr, "FAIL: multiplexed shape did not compile: %s\n",
                 reason.c_str());
    return 1;
  }

  return bench::compare_backends_on_stream(
      report, "mux", "multiplexed",
      "Multiplexed-configuration backend comparison",
      "identical ReportEvent streams from both backends; the "
      "stream packs 7 queries per frame, so the cycle column is "
      "~7x smaller than per-query streaming would need.",
      network, program, stream, [&](util::BenchRecord& r) {
        r.param("n", static_cast<std::uint64_t>(n))
            .param("dims", static_cast<std::uint64_t>(dims))
            .param("queries", static_cast<std::uint64_t>(queries_n))
            .param("slices", std::uint64_t{7})
            .param("frames", static_cast<std::uint64_t>(frames));
      });
}

}  // namespace

int main(int argc, char** argv) try {
  std::size_t n = 1024, dims = 128, queries = 56;
  if (argc > 1) n = parse_positive(argv[1]);
  if (argc > 2) dims = parse_positive(argv[2]);
  if (argc > 3) queries = parse_positive(argv[3]);
  if (n == 0 || dims == 0 || queries == 0) {
    std::fprintf(stderr,
                 "usage: bench_fig6_multiplexing [n] [dims] [queries]  "
                 "(positive integers; defaults 1024 128 56)\n");
    return 2;
  }

  util::BenchReport report("fig6_multiplexing");
  const int feasibility_rc = run_feasibility_table(report);
  std::cout << '\n';
  const int backend_rc = run_backend_comparison(report, n, dims, queries);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return feasibility_rc != 0 ? feasibility_rc : backend_rc;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
