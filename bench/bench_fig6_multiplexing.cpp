// Fig. 6 / Sec. VI-B: symbol-stream multiplexing. Seven queries ride one
// stream in separate bit slices; the bench verifies correctness against
// per-query streaming, quantifies the 7x frame-count reduction, and shows
// the two costs the paper says make it infeasible on Gen-1 hardware: the
// 7x STE footprint and the 7x report bandwidth.

#include <iostream>

#include "apsim/placement.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  const std::size_t dims = 32;
  const auto data = knn::BinaryDataset::uniform(48, dims, 66);
  const auto queries = knn::BinaryDataset::uniform(21, dims, 67);
  constexpr std::size_t kK = 4;

  // Multiplexed path.
  const core::MultiplexedKnn mux(data, core::kMaxSlices);
  const auto mux_results = mux.search(queries, kK);

  // Baseline path: one query per frame.
  core::ApKnnEngine baseline_engine(data);
  const auto base_results = baseline_engine.search(queries, kK);

  std::size_t agreements = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    agreements += knn::is_valid_knn_result(data, queries.row(q), kK,
                                           mux_results[q]);
  }

  const auto mux_place =
      apsim::place(mux.network(), apsim::DeviceGeometry::one_rank());
  const auto base_place = apsim::place(baseline_engine.network(0),
                                       apsim::DeviceGeometry::one_rank());

  util::TablePrinter table("Fig. 6: symbol-stream multiplexing (7 slices)");
  table.set_header({"metric", "base design", "multiplexed"});
  table.add_row({"frames for 21 queries", "21", std::to_string(mux.frames_for(21))});
  table.add_row({"frames for 4096 queries", "4096",
                 std::to_string(mux.frames_for(4096))});
  table.add_row({"STEs on board", std::to_string(base_place.ste_count),
                 std::to_string(mux_place.ste_count)});
  table.add_row({"valid kNN answers",
                 std::to_string(queries.size()) + "/" +
                     std::to_string(queries.size()),
                 std::to_string(agreements) + "/" +
                     std::to_string(queries.size())});
  table.add_note("throughput gain is 7x fewer frames at 7x the STE cost and "
                 "7x the report traffic; Sec. VI-B explains why Gen-1 "
                 "capacity and PCIe bandwidth cannot host it yet.");
  table.print(std::cout);

  (void)base_results;
  return agreements == queries.size() ? 0 : 1;
}
