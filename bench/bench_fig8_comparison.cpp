// Fig. 8 / Sec. VII-B: the dynamic-threshold comparison macro — an
// "if (A > B)" construct. The bench sweeps symbol streams with every
// (a-count, b-count) combination in a grid and checks the macro fires
// exactly when #a > #b held for a cycle.

#include <cstdio>
#include <iostream>
#include <string>

#include "apsim/simulator.hpp"
#include "core/ext/comparison_macro.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  anml::AutomataNetwork net;
  core::append_comparison_macro(net, anml::SymbolSet::single('a'),
                                anml::SymbolSet::single('b'),
                                anml::SymbolSet::single('r'), 1);
  apsim::SimOptions opt;
  opt.allow_dynamic_threshold = true;

  util::TablePrinter table("Fig. 8: comparison macro truth grid");
  table.set_header({"#a \\ #b", "0", "1", "2", "3", "4"});
  std::size_t errors = 0;
  for (std::size_t na = 0; na <= 4; ++na) {
    std::vector<std::string> row = {std::to_string(na)};
    for (std::size_t nb = 0; nb <= 4; ++nb) {
      // Interleave b's first then a's, with settling padding: the macro
      // fires iff the final counts satisfy a > b.
      std::string stream(nb, 'b');
      stream += std::string(na, 'a');
      stream += "....";  // settle + report propagation
      apsim::Simulator sim(net, opt);
      const std::vector<std::uint8_t> bytes(stream.begin(), stream.end());
      const bool fired = !sim.run(bytes).empty();
      const bool expected = na > nb;
      if (fired != expected) {
        ++errors;
      }
      row.push_back(fired ? "FIRE" : ".");
    }
    table.add_row(row);
  }
  table.add_note("expected: FIRE strictly below the diagonal (#a > #b).");
  table.print(std::cout);
  if (errors != 0) {
    std::fprintf(stderr, "FAIL: %zu grid cells diverged\n", errors);
    return 1;
  }
  std::printf("\nAll 25 grid cells match the A > B predicate.\n");
  return 0;
}
