// Fig. 8 / Sec. VII-B: the dynamic-threshold comparison macro — an
// "if (A > B)" construct — plus the simulation-backend comparison for the
// paper's end-to-end kNN path: the same searches run on the cycle-accurate
// reference simulator and on the bit-parallel batch backend, with wall
// clock, simulated cycles, and modeled device time recorded to
// BENCH_fig8_comparison.json.
//
// A thread-sweep section then re-runs the bit-parallel search with
// EngineOptions::threads in {1, 2, 4, ...}, asserting bit-identical
// neighbor lists AND a bit-identical merged ReportEvent stream at every
// thread count, and records the scaling (knn_thread_sweep records).
//
// A lane-width sweep does the same across EngineOptions::lane_width in
// {64, 256, 512}: every width must reproduce the 64-bit results and
// stream exactly (knn_lane_width_sweep records, with the resolved ISA).
//
// Usage: bench_fig8_comparison [n] [dims] [queries]   (defaults 1024 128 32)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apsim/simulator.hpp"
#include "core/engine.hpp"
#include "core/ext/comparison_macro.hpp"
#include "knn/dataset.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;

/// Strict positive decimal parse: rejects signs, suffixes ("1e3"), and
/// empty/garbage input by returning 0 (the caller's usage trigger).
std::size_t parse_positive(const char* s) {
  if (s == nullptr || *s < '0' || *s > '9') {
    return 0;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return *end == '\0' ? static_cast<std::size_t>(v) : 0;
}

int run_comparison_grid(util::BenchReport& report) {
  anml::AutomataNetwork net;
  core::append_comparison_macro(net, anml::SymbolSet::single('a'),
                                anml::SymbolSet::single('b'),
                                anml::SymbolSet::single('r'), 1);
  apsim::SimOptions opt;
  opt.allow_dynamic_threshold = true;

  util::TablePrinter table("Fig. 8: comparison macro truth grid");
  table.set_header({"#a \\ #b", "0", "1", "2", "3", "4"});
  std::size_t errors = 0;
  std::uint64_t cycles = 0;
  util::Timer timer;
  for (std::size_t na = 0; na <= 4; ++na) {
    std::vector<std::string> row = {std::to_string(na)};
    for (std::size_t nb = 0; nb <= 4; ++nb) {
      // Interleave b's first then a's, with settling padding: the macro
      // fires iff the final counts satisfy a > b.
      std::string stream(nb, 'b');
      stream += std::string(na, 'a');
      stream += "....";  // settle + report propagation
      apsim::Simulator sim(net, opt);
      const std::vector<std::uint8_t> bytes(stream.begin(), stream.end());
      const bool fired = !sim.run(bytes).empty();
      cycles += bytes.size();
      const bool expected = na > nb;
      if (fired != expected) {
        ++errors;
      }
      row.push_back(fired ? "FIRE" : ".");
    }
    table.add_row(row);
  }
  report.write(util::BenchRecord("comparison_grid")
                   .param("grid_cells", std::uint64_t{25})
                   .cycles(cycles)
                   .wall_seconds(timer.seconds()));
  table.add_note("expected: FIRE strictly below the diagonal (#a > #b).");
  table.print(std::cout);
  if (errors != 0) {
    std::fprintf(stderr, "FAIL: %zu grid cells diverged\n", errors);
    return 1;
  }
  std::printf("\nAll 25 grid cells match the A > B predicate.\n\n");
  return 0;
}

struct BackendRun {
  double wall_seconds = 0.0;
  std::vector<std::vector<knn::Neighbor>> results;
  core::EngineStats stats;
};

BackendRun run_backend(const knn::BinaryDataset& data,
                       const knn::BinaryDataset& queries, std::size_t k,
                       core::SimulationBackend backend) {
  core::EngineOptions opt;
  opt.backend = backend;
  core::ApKnnEngine engine(data, opt);
  util::Timer timer;
  BackendRun r;
  r.results = engine.search(queries, k);
  r.wall_seconds = timer.seconds();
  r.stats = engine.last_stats();
  return r;
}

int run_backend_comparison(util::BenchReport& report, std::size_t n,
                           std::size_t dims, std::size_t queries_n) {
  const std::size_t k = 10;
  const auto data = knn::BinaryDataset::uniform(n, dims, 97);
  const auto queries = knn::BinaryDataset::uniform(queries_n, dims, 98);
  const apsim::DeviceTiming timing = apsim::DeviceConfig::gen1().timing;

  const BackendRun cycle =
      run_backend(data, queries, k, core::SimulationBackend::kCycleAccurate);
  const BackendRun bit =
      run_backend(data, queries, k, core::SimulationBackend::kBitParallel);

  if (cycle.results != bit.results ||
      !cycle.stats.same_work(bit.stats)) {
    std::fprintf(stderr,
                 "FAIL: backends disagree on results or EngineStats\n");
    return 1;
  }
  if (bit.stats.backend.fallback != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu configurations fell back to the cycle-accurate "
                 "simulator (first reason: %s)\n",
                 bit.stats.backend.fallback,
                 bit.stats.backend.fallback_reasons.front().first.c_str());
    return 1;
  }
  const double speedup = bit.wall_seconds > 0.0
                             ? cycle.wall_seconds / bit.wall_seconds
                             : 0.0;

  util::TablePrinter table("Simulated-AP backend comparison (same searches)");
  table.set_header({"backend", "wall s", "sim cycles", "device model s"});
  const auto row = [&](const char* name, const BackendRun& r) {
    table.add_row({name, util::TablePrinter::fmt(r.wall_seconds, 4),
                   std::to_string(r.stats.simulated_cycles),
                   util::TablePrinter::fmt(r.stats.total_seconds(timing), 5)});
    report.write(
        util::BenchRecord(std::string("knn_") + name)
            .param("n", static_cast<std::uint64_t>(n))
            .param("dims", static_cast<std::uint64_t>(dims))
            .param("queries", static_cast<std::uint64_t>(queries_n))
            .param("k", static_cast<std::uint64_t>(k))
            .cycles(static_cast<std::uint64_t>(r.stats.simulated_cycles))
            .wall_seconds(r.wall_seconds)
            .model_seconds(r.stats.total_seconds(timing)));
  };
  row("cycle_accurate", cycle);
  row("bit_parallel", bit);
  table.add_note("identical neighbor lists and EngineStats from both "
                 "backends; speedup = wall(cycle)/wall(bit).");
  table.print(std::cout);
  report.write(util::BenchRecord("knn_backend_speedup")
                   .param("n", static_cast<std::uint64_t>(n))
                   .param("dims", static_cast<std::uint64_t>(dims))
                   .param("queries", static_cast<std::uint64_t>(queries_n))
                   .param("speedup", speedup));
  std::printf("\nbit-parallel speedup: %.1fx wall-clock "
              "(CI gate at default sizes: >= 150x)\n", speedup);
  return 0;
}

int run_thread_sweep(util::BenchReport& report, std::size_t n,
                     std::size_t dims, std::size_t queries_n) {
  const std::size_t k = 10;
  const auto data = knn::BinaryDataset::uniform(n, dims, 97);
  const auto queries = knn::BinaryDataset::uniform(queries_n, dims, 98);

  // Fixed sweep (not capped at hardware_concurrency): correctness must
  // hold even oversubscribed, and the scaling rows are meaningful wherever
  // the snapshot was recorded. Best-of-3 timing per point — the bit-
  // parallel search is milliseconds, well inside scheduler noise.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  constexpr int kReps = 3;
  util::TablePrinter table(
      "Bit-parallel thread sweep (configuration/frame shards, " +
      std::to_string(hw) + " hardware threads, best of " +
      std::to_string(kReps) + ")");
  table.set_header({"threads", "wall s", "speedup", "stream events"});
  double base_wall = 0.0;
  std::vector<std::vector<knn::Neighbor>> base_results;
  std::vector<apsim::ReportEvent> base_stream;
  std::size_t errors = 0;
  for (const std::size_t t : {1, 2, 4, 8}) {
    core::EngineOptions opt;
    opt.backend = core::SimulationBackend::kBitParallel;
    opt.threads = t;
    opt.collect_report_stream = true;
    core::ApKnnEngine engine(data, opt);
    double wall = 0.0;
    std::vector<std::vector<knn::Neighbor>> results;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Timer timer;
      auto rep_results = engine.search(queries, k);
      const double rep_wall = timer.seconds();
      if (rep == 0) {
        wall = rep_wall;
        results = std::move(rep_results);
      } else if (rep_results != results) {
        std::fprintf(stderr, "FAIL: threads=%zu rep %d diverged\n", t, rep);
        ++errors;
      } else {
        wall = std::min(wall, rep_wall);
      }
    }
    if (t == 1) {
      base_wall = wall;
      base_results = results;
      base_stream = engine.last_report_stream();
    } else if (results != base_results ||
               engine.last_report_stream() != base_stream) {
      std::fprintf(stderr,
                   "FAIL: threads=%zu diverged from the single-threaded "
                   "reference (results or merged report stream)\n", t);
      ++errors;
    }
    const double speedup = wall > 0.0 ? base_wall / wall : 0.0;
    table.add_row({std::to_string(t), util::TablePrinter::fmt(wall, 4),
                   util::TablePrinter::fmt(speedup, 2),
                   std::to_string(engine.last_report_stream().size())});
    report.write(util::BenchRecord("knn_thread_sweep")
                     .param("n", static_cast<std::uint64_t>(n))
                     .param("dims", static_cast<std::uint64_t>(dims))
                     .param("queries", static_cast<std::uint64_t>(queries_n))
                     .param("threads", static_cast<std::uint64_t>(t))
                     .param("hardware_threads", static_cast<std::uint64_t>(hw))
                     .param("speedup_vs_1_thread", speedup)
                     .wall_seconds(wall));
  }
  table.add_note("identical neighbor lists and merged ReportEvent stream at "
                 "every thread count; speedup = wall(1 thread)/wall(t).");
  table.print(std::cout);
  return errors == 0 ? 0 : 1;
}

int run_lane_width_sweep(util::BenchReport& report, std::size_t n,
                         std::size_t dims, std::size_t queries_n) {
  const std::size_t k = 10;
  const auto data = knn::BinaryDataset::uniform(n, dims, 97);
  const auto queries = knn::BinaryDataset::uniform(queries_n, dims, 98);

  constexpr int kReps = 3;
  util::TablePrinter table("Bit-parallel lane-width sweep (best of " +
                           std::to_string(kReps) + ")");
  table.set_header({"width", "isa", "wall s", "speedup vs w64"});
  double base_wall = 0.0;
  std::vector<std::vector<knn::Neighbor>> base_results;
  std::vector<apsim::ReportEvent> base_stream;
  std::size_t errors = 0;
  for (const apsim::LaneWidth w : {apsim::LaneWidth::k64,
                                   apsim::LaneWidth::k256,
                                   apsim::LaneWidth::k512}) {
    core::EngineOptions opt;
    opt.backend = core::SimulationBackend::kBitParallel;
    opt.lane_width = w;
    opt.collect_report_stream = true;
    core::ApKnnEngine engine(data, opt);
    double wall = 0.0;
    std::vector<std::vector<knn::Neighbor>> results;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Timer timer;
      auto rep_results = engine.search(queries, k);
      const double rep_wall = timer.seconds();
      if (rep == 0) {
        wall = rep_wall;
        results = std::move(rep_results);
      } else {
        wall = std::min(wall, rep_wall);
      }
    }
    if (w == apsim::LaneWidth::k64) {
      base_wall = wall;
      base_results = results;
      base_stream = engine.last_report_stream();
    } else if (results != base_results ||
               engine.last_report_stream() != base_stream) {
      std::fprintf(stderr,
                   "FAIL: %s-bit lanes diverged from the 64-bit reference "
                   "(results or merged report stream)\n", apsim::to_string(w));
      ++errors;
    }
    const std::string isa = engine.backend_stats().lane_isa;
    const double speedup = wall > 0.0 ? base_wall / wall : 0.0;
    table.add_row({apsim::to_string(w), isa,
                   util::TablePrinter::fmt(wall, 4),
                   util::TablePrinter::fmt(speedup, 2)});
    report.write(util::BenchRecord("knn_lane_width_sweep")
                     .param("n", static_cast<std::uint64_t>(n))
                     .param("dims", static_cast<std::uint64_t>(dims))
                     .param("queries", static_cast<std::uint64_t>(queries_n))
                     .param("lane_width_bits",
                            static_cast<std::uint64_t>(w))
                     .param("lane_isa", isa)
                     .param("speedup_vs_w64", speedup)
                     .wall_seconds(wall));
  }
  table.add_note("identical neighbor lists and merged ReportEvent stream at "
                 "every lane width; wider words need AVX2/AVX-512 for SIMD, "
                 "else the portable multi-word fallback runs.");
  table.print(std::cout);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  std::size_t n = 1024, dims = 128, queries = 32;
  if (argc > 1) n = parse_positive(argv[1]);
  if (argc > 2) dims = parse_positive(argv[2]);
  if (argc > 3) queries = parse_positive(argv[3]);
  if (n == 0 || dims == 0 || queries == 0) {
    std::fprintf(stderr,
                 "usage: bench_fig8_comparison [n] [dims] [queries]  "
                 "(positive integers; defaults 1024 128 32)\n");
    return 2;
  }

  util::BenchReport report("fig8_comparison");
  const int grid_rc = run_comparison_grid(report);
  const int backend_rc = run_backend_comparison(report, n, dims, queries);
  const int sweep_rc = run_thread_sweep(report, n, dims, queries);
  const int width_rc = run_lane_width_sweep(report, n, dims, queries);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  if (grid_rc != 0) return grid_rc;
  if (backend_rc != 0) return backend_rc;
  return sweep_rc != 0 ? sweep_rc : width_rc;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
