// Ablation: query-frame design vs device throughput.
//
// Tables III/IV of the paper imply d cycles/query; the paper's text says
// 2d; our faithful stream frame is 2d+L+3. This bench compares three
// CONSTRUCTIBLE designs plus the paper's convention, including their area
// cost, and validates each design's results against CPU exact kNN in-run:
//
//   base frame        2d+L+3 cycles/query, 1x area
//   interleaved       d+1 cycles/query, 2x area (parity halves share the
//                     stream; the next query's data doubles as fillers)
//   counter-increment ceil(d/7)+d+4 cycles/query, ~1x area, needs the
//                     Sec. VII-A multi-increment extension
//   paper convention  d cycles/query (not directly constructible)

#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "core/ext/counter_increment.hpp"
#include "core/opt/interleaved.hpp"
#include "knn/exact.hpp"
#include "perf/workloads.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("ablation_interleaved");

  // Correctness gate for both alternative designs.
  const auto data = knn::BinaryDataset::uniform(24, 32, 11);
  const auto queries = knn::BinaryDataset::uniform(9, 32, 12);
  const auto il = core::interleaved_knn_search(data, queries, 4);
  const auto ci = core::ci_knn_search(data, queries, 4);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (!knn::is_valid_knn_result(data, queries.row(q), 4, il[q]) ||
        !knn::is_valid_knn_result(data, queries.row(q), 4, ci[q])) {
      std::cerr << "ablation: design validation FAILED\n";
      return 1;
    }
  }

  util::TablePrinter table("Frame-design ablation (cycles per query / area)");
  table.set_header({"Workload", "base frame", "interleaved", "ctr-increment",
                    "paper conv.", "interleaved speedup", "area cost"});
  for (const auto& w : perf::paper_workloads()) {
    const core::StreamSpec base{w.dims, 1};
    const core::InterleavedSpec inter{w.dims};
    const core::CiStreamSpec dense{w.dims};
    table.add_row({w.name, std::to_string(base.cycles_per_query()),
                   std::to_string(inter.cycles_per_query()),
                   std::to_string(dense.cycles_per_query()),
                   std::to_string(w.dims),
                   util::TablePrinter::fmt(inter.speedup_vs_base(), 2) + "x",
                   "2x STEs"});
    report.write(
        util::BenchRecord("frame_design")
            .param("workload", w.name)
            .param("dims", static_cast<std::uint64_t>(w.dims))
            .param("base_cycles",
                   static_cast<std::uint64_t>(base.cycles_per_query()))
            .param("interleaved_cycles",
                   static_cast<std::uint64_t>(inter.cycles_per_query()))
            .param("ctr_increment_cycles",
                   static_cast<std::uint64_t>(dense.cycles_per_query()))
            .param("paper_convention_cycles",
                   static_cast<std::uint64_t>(w.dims))
            .param("interleaved_speedup", inter.speedup_vs_base()));
  }
  table.add_note("interleaving reaches within 1 cycle of the paper's "
                 "d-cycle convention with stock hardware, at half the "
                 "board capacity; combining it with the counter-increment "
                 "extension is future work (both spend the sort window "
                 "differently).");
  table.print(std::cout);

  // Device-time impact on the Table III small-dataset scenario.
  util::TablePrinter impact("Small-dataset device time under each design (ms)");
  impact.set_header({"Workload", "base", "interleaved (2 configs)",
                     "paper convention"});
  for (const auto& w : perf::paper_workloads()) {
    const double cyc = 1.0 / 133e6;
    const core::StreamSpec base{w.dims, 1};
    const core::InterleavedSpec inter{w.dims};
    const double base_ms =
        perf::kQueryCount * base.cycles_per_query() * cyc * 1e3;
    // Halved capacity -> the small dataset needs two passes.
    const double inter_ms =
        2.0 * perf::kQueryCount * inter.cycles_per_query() * cyc * 1e3;
    const double paper_ms = perf::kQueryCount * w.dims * cyc * 1e3;
    impact.add_row({w.name, util::TablePrinter::fmt(base_ms, 2),
                    util::TablePrinter::fmt(inter_ms, 2),
                    util::TablePrinter::fmt(paper_ms, 2)});
  }
  impact.add_note("when capacity is the binding constraint the interleaved "
                  "design's 2x area cancels its 2x speedup; it wins when "
                  "the dataset fits with room to spare (latency-bound use).");
  impact.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
