// Table VII: STE decomposition resource savings for x = 1..32 (Sec. VII-C),
// computed from the LUT-width analysis of REAL kNN macros under two
// alphabet assumptions (full 8-bit space = the paper's setting; restricted
// kNN alphabet = what an alphabet-aware synthesizer could reach).

#include <cstdio>
#include <iostream>

#include "core/ext/ste_decomposition.hpp"
#include "core/hamming_macro.hpp"
#include "perf/workloads.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("table7_decomposition");
  const std::size_t factors[] = {1, 2, 4, 8, 16, 32};

  struct PaperRow {
    const char* name;
    double savings[6];
  };
  const PaperRow paper_rows[] = {
      {"kNN-WordEmbed", {1.0, 1.98, 3.86, 7.38, 13.56, 23.34}},
      {"kNN-SIFT", {1.0, 1.99, 3.93, 7.67, 14.68, 27.00}},
      {"kNN-TagSpace", {1.0, 1.99, 3.96, 7.83, 15.31, 29.26}},
  };

  util::TablePrinter table("Table VII: STE decomposition savings (ours/paper)");
  table.set_header({"Workload", "x=1", "x=2", "x=4", "x=8", "x=16", "x=32"});

  util::TablePrinter widths("LUT-width histograms (full alphabet)");
  widths.set_header({"Workload", "STEs", "w=0", "w=1", "w=2", "w=3", "w=8"});

  for (const PaperRow& row : paper_rows) {
    const auto& w = perf::workload(row.name);
    anml::AutomataNetwork net;
    core::append_hamming_macro(net, util::BitVector(w.dims), 0);
    const auto full =
        core::analyze_ste_decomposition(net, anml::SymbolSet::all());
    const auto restricted =
        core::analyze_ste_decomposition(net, core::knn_alphabet());

    std::vector<std::string> cells = {w.name};
    for (std::size_t i = 0; i < 6; ++i) {
      cells.push_back(util::TablePrinter::fmt(full.savings(factors[i]), 2) +
                      "/" + util::TablePrinter::fmt(row.savings[i], 2));
      report.write(util::BenchRecord("decomposition_savings")
                       .param("workload", w.name)
                       .param("factor",
                              static_cast<std::uint64_t>(factors[i]))
                       .param("savings", full.savings(factors[i]))
                       .param("paper_savings", row.savings[i])
                       .param("restricted_savings",
                              restricted.savings(factors[i])));
    }
    table.add_row(cells);

    widths.add_row({w.name, std::to_string(full.total_stes),
                    std::to_string(full.width_histogram[0]),
                    std::to_string(full.width_histogram[1]),
                    std::to_string(full.width_histogram[2]),
                    std::to_string(full.width_histogram[3]),
                    std::to_string(full.width_histogram[8])});

    if (row.name == std::string("kNN-SIFT")) {
      std::cout << "restricted-alphabet upper bound for " << w.name
                << ": x=4 -> "
                << util::TablePrinter::fmt(restricted.savings(4), 2)
                << "x, x=32 -> "
                << util::TablePrinter::fmt(restricted.savings(32), 2)
                << "x (theoretical: 4x / 32x)\n\n";
    }
  }

  table.add_note("theoretical bound is x; the gap comes from the three "
                 "control states (SOF guard, ^EOF sort, EOF reset) that "
                 "need full 8-bit matches under arbitrary fillers.");
  table.print(std::cout);
  std::cout << '\n';
  widths.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
