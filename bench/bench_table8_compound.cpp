// Table VIII: total compounded potential performance gains from the
// Sec. VI optimizations and Sec. VII extensions, with every factor
// computed from this repo's own models (vector packing from real packed
// networks; STE decomposition from the LUT-width analysis; counter
// increment from the dense-frame arithmetic).

#include <cstdio>
#include <iostream>

#include "perf/projection.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("table8_compound");

  struct PaperRow {
    const char* name;
    double packing, decomp, total;
  };
  const PaperRow paper_rows[] = {
      {"kNN-WordEmbed", 2.93, 3.86, 63.14},
      {"kNN-SIFT", 3.28, 3.93, 71.96},
      {"kNN-TagSpace", 3.31, 3.96, 73.17},
  };

  util::TablePrinter table("Table VIII: compounded Opt+Ext gains (ours/paper)");
  table.set_header({"Factor", "kNN-WordEmbed", "kNN-SIFT", "kNN-TagSpace"});

  std::vector<perf::CompoundGains> gains;
  for (const PaperRow& row : paper_rows) {
    gains.push_back(perf::compound_gains(perf::workload(row.name)));
    const perf::CompoundGains& g = gains.back();
    report.write(util::BenchRecord("compound_gains")
                     .param("workload", row.name)
                     .param("tech_scaling", g.tech_scaling)
                     .param("vector_packing", g.vector_packing)
                     .param("ste_decomposition", g.ste_decomposition)
                     .param("counter_increment", g.counter_increment)
                     .param("total", g.total())
                     .param("energy_total", g.energy_total())
                     .param("paper_total", row.total));
  }

  const auto fmt2 = [](double v) { return util::TablePrinter::fmt(v, 2); };
  table.add_row({"Technology Scaling", fmt2(gains[0].tech_scaling) + "/3.19",
                 fmt2(gains[1].tech_scaling) + "/3.19",
                 fmt2(gains[2].tech_scaling) + "/3.19"});
  table.add_row({"Vector Packing (g=4)",
                 fmt2(gains[0].vector_packing) + "/" + fmt2(paper_rows[0].packing),
                 fmt2(gains[1].vector_packing) + "/" + fmt2(paper_rows[1].packing),
                 fmt2(gains[2].vector_packing) + "/" + fmt2(paper_rows[2].packing)});
  table.add_row({"STE Decomposition (x=4)",
                 fmt2(gains[0].ste_decomposition) + "/" + fmt2(paper_rows[0].decomp),
                 fmt2(gains[1].ste_decomposition) + "/" + fmt2(paper_rows[1].decomp),
                 fmt2(gains[2].ste_decomposition) + "/" + fmt2(paper_rows[2].decomp)});
  table.add_row({"Counter Increment Ext.",
                 fmt2(gains[0].counter_increment) + "/1.75",
                 fmt2(gains[1].counter_increment) + "/1.75",
                 fmt2(gains[2].counter_increment) + "/1.75"});
  table.add_separator();
  table.add_row({"Total Improvement",
                 fmt2(gains[0].total()) + "/" + fmt2(paper_rows[0].total),
                 fmt2(gains[1].total()) + "/" + fmt2(paper_rows[1].total),
                 fmt2(gains[2].total()) + "/" + fmt2(paper_rows[2].total)});
  table.add_row({"Energy Improvement",
                 fmt2(gains[0].energy_total()) + "/19.8",
                 fmt2(gains[1].energy_total()) + "/22.6",
                 fmt2(gains[2].energy_total()) + "/23.2"});
  table.add_note("our packing factor is measured from real packed networks "
                 "(shared guard/chain/sort) and is slightly more "
                 "conservative than the paper's analytical model.");
  table.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
