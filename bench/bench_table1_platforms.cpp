// Table I: evaluated platforms, plus the calibration constants this repo
// derived from the paper's own results (Sec. V).

#include <cstdio>
#include <iostream>

#include "hwmodels/platforms.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("table1_platforms");
  util::TablePrinter table("Table I: Evaluated platforms");
  table.set_header({"Platform", "Type", "Cores", "Process (nm)", "Clock (MHz)",
                    "Dyn. power (W)*", "Scan rate (Gbit/s)*"});
  const auto type_name = [](hwmodels::PlatformType t) {
    switch (t) {
      case hwmodels::PlatformType::kCpu: return "CPU";
      case hwmodels::PlatformType::kGpu: return "GPU";
      case hwmodels::PlatformType::kFpga: return "FPGA";
      case hwmodels::PlatformType::kAp: return "AP";
    }
    return "?";
  };
  for (const auto& p : hwmodels::platform_catalog()) {
    table.add_row({p.name, type_name(p.type),
                   p.cores > 0 ? std::to_string(p.cores) : "N/A",
                   std::to_string(p.process_nm),
                   util::TablePrinter::fmt(p.clock_mhz, 0),
                   p.dynamic_power_w > 0
                       ? util::TablePrinter::fmt(p.dynamic_power_w, 1)
                       : "-",
                   p.scan_bits_per_second > 0
                       ? util::TablePrinter::fmt(p.scan_bits_per_second / 1e9, 2)
                       : "-"});
    report.write(util::BenchRecord("platform")
                     .param("name", p.name)
                     .param("type", type_name(p.type))
                     .param("clock_mhz", p.clock_mhz)
                     .param("dynamic_power_w", p.dynamic_power_w)
                     .param("scan_gbps", p.scan_bits_per_second / 1e9));
  }
  table.add_note("* columns marked with an asterisk are APSS calibration "
                 "constants back-derived from the paper's Tables III/IV "
                 "(see src/hwmodels/platforms.cpp for the arithmetic).");
  table.print(std::cout);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return 0;
}
