// Fig. 5 / Sec. VI-A: the vector-packing microbenchmark — "places and
// routes eight vectors across 32, 64, and 128 dimensions". Reports the
// measured STE savings of the packed ladder and the routability outcome:
// flat collectors (the naive construction) fail to fully route at high
// dimensionality, exactly the paper's observation; tree collectors restore
// routability at some state cost (the toolchain-maturity outlook).

#include <iostream>

#include "apsim/placement.hpp"
#include "core/opt/vector_packing.hpp"
#include "util/table.hpp"

int main() {
  using namespace apss;
  util::TablePrinter table("Fig. 5 microbenchmark: 8 packed vectors");
  table.set_header({"dims", "unpacked STEs", "packed STEs (flat)", "savings",
                    "flat routed?", "tree STEs", "tree routed?"});

  for (const std::size_t dims : {32u, 64u, 128u}) {
    const auto data = knn::BinaryDataset::uniform(8, dims, 55);

    core::VectorPackingOptions flat;
    flat.group_size = 8;
    const core::PackingSavings savings = core::packing_savings(data, flat);

    anml::AutomataNetwork flat_net;
    core::build_packed_network(flat_net, data, flat);
    const auto flat_place =
        apsim::place(flat_net, apsim::DeviceGeometry::one_rank());

    core::VectorPackingOptions tree = flat;
    tree.style = core::CollectorStyle::kTree;
    anml::AutomataNetwork tree_net;
    core::build_packed_network(tree_net, data, tree);
    const auto tree_place =
        apsim::place(tree_net, apsim::DeviceGeometry::one_rank());

    table.add_row({std::to_string(dims), std::to_string(savings.unpacked_stes),
                   std::to_string(savings.packed_stes),
                   util::TablePrinter::fmt(savings.ratio(), 2) + "x",
                   flat_place.routed ? "yes" : "PARTIAL",
                   std::to_string(tree_net.stats().ste_count),
                   tree_place.routed ? "yes" : "PARTIAL"});
  }
  table.add_note("PARTIAL = placed but fan-in exceeds the routing matrix "
                 "limit, the paper's 'placed but only partially routed' "
                 "finding for high-dimensional packed designs.");
  table.print(std::cout);
  return 0;
}
