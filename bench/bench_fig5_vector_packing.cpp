// Fig. 5 / Sec. VI-A: the vector-packing microbenchmark — "places and
// routes eight vectors across 32, 64, and 128 dimensions". Reports the
// measured STE savings of the packed ladder and the routability outcome:
// flat collectors (the naive construction) fail to fully route at high
// dimensionality, exactly the paper's observation; tree collectors restore
// routability at some state cost (the toolchain-maturity outlook).
//
// A second section compares the simulation backends on a full packed board
// configuration: the same query stream runs on the cycle-accurate
// reference and on the bit-parallel batch backend (which compiles the
// packed shape since the packed try_compile overload landed), asserts the
// ReportEvent streams are BIT-IDENTICAL, and records both wall clocks to
// BENCH_fig5_vector_packing.json.
//
// Usage: bench_fig5_vector_packing [n] [dims] [queries] [group]
//        (defaults 1024 128 32 8)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apsim/batch_simulator.hpp"
#include "apsim/placement.hpp"
#include "bench_util.hpp"
#include "core/batch_compile.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;
using apss::bench::parse_positive;

void run_savings_grid(util::BenchReport& report) {
  util::TablePrinter table("Fig. 5 microbenchmark: 8 packed vectors");
  table.set_header({"dims", "unpacked STEs", "packed STEs (flat)", "savings",
                    "flat routed?", "tree STEs", "tree routed?"});

  for (const std::size_t dims : {32u, 64u, 128u}) {
    const auto data = knn::BinaryDataset::uniform(8, dims, 55);

    core::VectorPackingOptions flat;
    flat.group_size = 8;
    const core::PackingSavings savings = core::packing_savings(data, flat);

    anml::AutomataNetwork flat_net;
    core::build_packed_network(flat_net, data, flat);
    const auto flat_place =
        apsim::place(flat_net, apsim::DeviceGeometry::one_rank());

    core::VectorPackingOptions tree = flat;
    tree.style = core::CollectorStyle::kTree;
    anml::AutomataNetwork tree_net;
    core::build_packed_network(tree_net, data, tree);
    const auto tree_place =
        apsim::place(tree_net, apsim::DeviceGeometry::one_rank());

    table.add_row({std::to_string(dims), std::to_string(savings.unpacked_stes),
                   std::to_string(savings.packed_stes),
                   util::TablePrinter::fmt(savings.ratio(), 2) + "x",
                   flat_place.routed ? "yes" : "PARTIAL",
                   std::to_string(tree_net.stats().ste_count),
                   tree_place.routed ? "yes" : "PARTIAL"});
    report.write(util::BenchRecord("packing_savings")
                     .param("dims", static_cast<std::uint64_t>(dims))
                     .param("group", std::uint64_t{8})
                     .param("unpacked_stes",
                            static_cast<std::uint64_t>(savings.unpacked_stes))
                     .param("packed_stes",
                            static_cast<std::uint64_t>(savings.packed_stes))
                     .param("savings", savings.ratio())
                     .param("flat_routed", flat_place.routed ? "yes" : "no")
                     .param("tree_routed", tree_place.routed ? "yes" : "no"));
  }
  table.add_note("PARTIAL = placed but fan-in exceeds the routing matrix "
                 "limit, the paper's 'placed but only partially routed' "
                 "finding for high-dimensional packed designs.");
  table.print(std::cout);
}

int run_backend_comparison(util::BenchReport& report, std::size_t n,
                           std::size_t dims, std::size_t queries_n,
                           std::size_t group) {
  const auto data = knn::BinaryDataset::uniform(n, dims, 57);
  const auto queries = knn::BinaryDataset::uniform(queries_n, dims, 58);

  core::VectorPackingOptions opt;
  opt.group_size = group;
  opt.style = core::CollectorStyle::kTree;  // routable at high dims
  anml::AutomataNetwork network;
  const auto layouts = core::build_packed_network(network, data, opt);
  const core::StreamSpec spec{dims, layouts.front().collector_levels};
  const auto stream = core::SymbolStreamEncoder(spec).encode_batch(queries);

  std::vector<apsim::PackedGroupSlots> slots;
  slots.reserve(layouts.size());
  for (const auto& layout : layouts) {
    slots.push_back(core::packed_batch_slots(layout));
  }
  std::string reason;
  const auto program =
      apsim::BatchProgram::try_compile(network, slots, {}, &reason);
  if (program == nullptr) {
    std::fprintf(stderr, "FAIL: packed shape did not compile: %s\n",
                 reason.c_str());
    return 1;
  }

  return bench::compare_backends_on_stream(
      report, "packed", "packed", "Packed-configuration backend comparison",
      "identical ReportEvent streams from both backends "
      "(cycle, element id, report code, within-cycle order).",
      network, program, stream, [&](util::BenchRecord& r) {
        r.param("n", static_cast<std::uint64_t>(n))
            .param("dims", static_cast<std::uint64_t>(dims))
            .param("queries", static_cast<std::uint64_t>(queries_n))
            .param("group", static_cast<std::uint64_t>(group));
      });
}

}  // namespace

int main(int argc, char** argv) try {
  std::size_t n = 1024, dims = 128, queries = 32, group = 8;
  if (argc > 1) n = parse_positive(argv[1]);
  if (argc > 2) dims = parse_positive(argv[2]);
  if (argc > 3) queries = parse_positive(argv[3]);
  if (argc > 4) group = parse_positive(argv[4]);
  if (n == 0 || dims == 0 || queries == 0 || group == 0) {
    std::fprintf(stderr,
                 "usage: bench_fig5_vector_packing [n] [dims] [queries] "
                 "[group]  (positive integers; defaults 1024 128 32 8)\n");
    return 2;
  }

  util::BenchReport report("fig5_vector_packing");
  run_savings_grid(report);
  std::cout << '\n';
  const int rc = run_backend_comparison(report, n, dims, queries, group);
  if (report.ok()) {
    std::printf("\nrecorded -> %s\n", report.path().c_str());
  }
  return rc;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
