// Serving-core load benchmark (ISSUE 10, docs/ROBUSTNESS.md "Serving"):
// what does serve::KnnServer do as open-loop load crosses saturation?
//
// Protocol, at the fig8 working point by default (1024 vectors x 128
// dims, bit-parallel backend, 2 workers):
//   calibrate — a closed burst of queries measures the server's sustained
//               batch throughput; its completion rate defines the
//               saturation QPS (1x).
//   phases    — open-loop arrivals (fixed rate, independent of
//               completions) at 1x, 2x, and 4x saturation for a fixed
//               window each, on a fresh server per phase. Per phase:
//               achieved QPS, p50/p99 latency of ADMITTED requests, shed
//               rate (typed kOverloaded), queue high-water, mean batch
//               occupancy.
//
// The overload contract under test: past saturation the server sheds with
// typed kOverloaded instead of queueing without bound, so the p99 of what
// it DOES admit stays bounded by the queue depth, not by the offered
// rate — and every submitted future still resolves exactly once.
//
// Usage: bench_serving [n] [dims] [k] [phase_ms]  (default 1024 128 10 2000)
//
// Records BENCH_serving.json: serving_saturation plus serving_load_{1,2,4}x
// (offered/achieved QPS, p50/p99, shed rate, occupancy).

#include <algorithm>
#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "knn/dataset.hpp"
#include "serve/server.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace apss;
using Clock = std::chrono::steady_clock;

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

serve::ServerOptions bed_options(std::size_t k) {
  serve::ServerOptions options;
  options.engine.backend = core::SimulationBackend::kBitParallel;
  options.engine.threads = 1;
  options.k = k;
  options.workers = 2;
  options.max_batch = 32;
  options.batch_window_ms = 0.5;
  // A deliberately tight queue: overload must surface as typed shedding
  // (and bounded admitted-latency), not as a growing backlog.
  options.max_queue_depth = 64;
  options.max_inflight = 256;
  return options;
}

/// p-th percentile (nearest-rank) of an unsorted sample; 0 when empty.
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) {
    return 0;
  }
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sample.size() - 1) + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

struct PhaseResult {
  double offered_qps = 0;
  double achieved_qps = 0;  ///< kOk completions per second of phase wall
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  double shed_rate_pct = 0;
  double p50_ms = 0;  ///< over admitted-and-served (kOk) requests
  double p99_ms = 0;
  std::size_t queue_high_water = 0;
  double mean_occupancy = 0;
  bool leaked = false;
};

/// One open-loop phase on a FRESH server (clean counters): submit at
/// `qps` for `phase_ms`, drain, account every future.
PhaseResult run_phase(const knn::BinaryDataset& data,
                      const knn::BinaryDataset& queries, std::size_t k,
                      double qps, double phase_ms) {
  serve::KnnServer server(data, bed_options(k));
  PhaseResult out;
  out.offered_qps = qps;

  std::vector<std::future<serve::Response>> futures;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / qps));
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   phase_ms));
  auto next = start;
  std::size_t i = 0;
  while (Clock::now() < end) {
    std::this_thread::sleep_until(next);
    next += interval;
    futures.push_back(server.submit(queries.vector(i % queries.size())));
    ++i;
  }
  server.drain();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> ok_latency_ms;
  for (auto& future : futures) {
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      out.leaked = true;
      continue;
    }
    const serve::Response response = future.get();
    if (response.ok()) {
      ++out.ok;
      ok_latency_ms.push_back(response.total_ms);
    } else if (response.code == serve::ResponseCode::kOverloaded) {
      ++out.shed;
    }
  }
  const serve::ServerStats stats = server.stats();
  out.submitted = futures.size();
  out.leaked = out.leaked || !stats.accounted();
  out.achieved_qps = wall_s > 0 ? static_cast<double>(out.ok) / wall_s : 0;
  out.shed_rate_pct = out.submitted > 0 ? 100.0 *
                                              static_cast<double>(out.shed) /
                                              static_cast<double>(out.submitted)
                                        : 0;
  out.p50_ms = percentile(ok_latency_ms, 50);
  out.p99_ms = percentile(ok_latency_ms, 99);
  out.queue_high_water = stats.queue_high_water;
  out.mean_occupancy = stats.mean_batch_occupancy();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1024, dims = 128, k = 10;
  double phase_ms = 2000;
  if (argc > 1) n = bench::parse_positive(argv[1]);
  if (argc > 2) dims = bench::parse_positive(argv[2]);
  if (argc > 3) k = bench::parse_positive(argv[3]);
  if (argc > 4) phase_ms = static_cast<double>(bench::parse_positive(argv[4]));
  if (n == 0 || dims == 0 || k == 0 || phase_ms <= 0) {
    std::cerr << "usage: " << argv[0] << " [n] [dims] [k] [phase_ms]\n";
    return 2;
  }
  k = std::min(k, n);

  const auto data = knn::BinaryDataset::uniform(n, dims, 20170529);
  const auto queries = knn::perturbed_queries(data, 128, 0.1, 20170530);

  // Calibration: a deliberate-overload probe (arrival rate far past any
  // plausible capacity). Its kOk completion rate IS the sustained batched
  // throughput at full frame occupancy = the 1x saturation QPS. A gentle
  // closed burst would underestimate it badly: dynamic batching gets
  // faster per query as frames fill, so capacity must be measured at full
  // frames.
  const PhaseResult probe =
      run_phase(data, queries, k, 1e6, std::max(phase_ms / 2, 100.0));
  if (probe.ok == 0 || probe.achieved_qps <= 0) {
    std::cerr << "FAIL: calibration probe produced no completions\n";
    return 1;
  }
  const double saturation_qps = probe.achieved_qps;

  std::vector<PhaseResult> phases;
  for (const double mult : {1.0, 2.0, 4.0}) {
    phases.push_back(
        run_phase(data, queries, k, mult * saturation_qps, phase_ms));
  }

  util::TablePrinter table(
      "Serving core under open-loop load (" + std::to_string(n) + "x" +
      std::to_string(dims) + ", 2 workers, queue 64, saturation " +
      fmt("%.0f", saturation_qps) + " qps)");
  table.set_header({"load", "offered qps", "ok qps", "p50 ms", "p99 ms",
                    "shed %", "queue hw", "batch occ"},
                   {util::Align::kLeft, util::Align::kRight,
                    util::Align::kRight, util::Align::kRight,
                    util::Align::kRight, util::Align::kRight,
                    util::Align::kRight, util::Align::kRight});
  const char* labels[] = {"1x", "2x", "4x"};
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const PhaseResult& r = phases[p];
    table.add_row({labels[p], fmt("%.0f", r.offered_qps),
                   fmt("%.0f", r.achieved_qps), fmt("%.2f", r.p50_ms),
                   fmt("%.2f", r.p99_ms), fmt("%.1f", r.shed_rate_pct),
                   std::to_string(r.queue_high_water),
                   fmt("%.1f", r.mean_occupancy)});
  }
  table.add_note("p50/p99 over admitted-and-served requests; shed = typed "
                 "kOverloaded at admission");
  table.print(std::cout);

  util::BenchReport report("serving");
  {
    util::BenchRecord rec("serving_saturation");
    rec.param("n", static_cast<std::uint64_t>(n))
        .param("dims", static_cast<std::uint64_t>(dims))
        .param("k", static_cast<std::uint64_t>(k))
        .param("saturation_qps", saturation_qps);
    report.write(rec);
  }
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const PhaseResult& r = phases[p];
    util::BenchRecord rec("serving_load_" + std::string(labels[p]));
    rec.param("n", static_cast<std::uint64_t>(n))
        .param("dims", static_cast<std::uint64_t>(dims))
        .param("offered_qps", r.offered_qps)
        .param("achieved_qps", r.achieved_qps)
        .param("submitted", r.submitted)
        .param("ok", r.ok)
        .param("shed", r.shed)
        .param("shed_rate_pct", r.shed_rate_pct)
        .param("p50_ms", r.p50_ms)
        .param("p99_ms", r.p99_ms)
        .param("queue_high_water",
               static_cast<std::uint64_t>(r.queue_high_water))
        .param("mean_batch_occupancy", r.mean_occupancy);
    report.write(rec);
  }
  if (!report.ok()) {
    std::cerr << "warning: could not write " << report.path() << "\n";
  } else {
    std::cout << "\nrecorded " << report.path() << "\n";
  }

  for (const PhaseResult& r : phases) {
    if (r.leaked) {
      std::cerr << "FAIL: a phase leaked responses (future unresolved or "
                   "stats unaccounted)\n";
      return 1;
    }
  }
  // The overload contract: past saturation (2x, 4x) the server must shed —
  // bounded queue, typed rejections — rather than absorb the full rate.
  if (phases[2].shed == 0) {
    std::cerr << "FAIL: no shedding at 4x saturation — admission control "
                 "is not bounding the queue\n";
    return 1;
  }
  std::printf("at 4x saturation: %.1f%% shed (typed kOverloaded), admitted "
              "p99 %.2f ms (1x p99 %.2f ms)\n",
              phases[2].shed_rate_pct, phases[2].p99_ms, phases[0].p99_ms);
  return 0;
}
