// Fig. 4: the temporally encoded sort across two vectors. Vector A
// {1,0,1,1} (inverted Hamming distance 3 for query {1,0,0,1}) must report
// BEFORE vector B {0,0,0,0} (inverted distance 2); the cycle gap encodes
// the distance difference. The bench then scales the same check to 64
// random vectors: report times must be a non-decreasing function of
// Hamming distance.

#include <cstdio>
#include <iostream>

#include "apsim/simulator.hpp"
#include "core/engine.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "core/temporal_decode.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace apss;
  util::BenchReport report("fig4_temporal_sort");
  util::Timer timer;

  // --- The exact Fig. 4 pair -------------------------------------------------
  anml::AutomataNetwork net;
  core::append_hamming_macro(net, util::BitVector::parse("1011"), 0);  // A
  core::append_hamming_macro(net, util::BitVector::parse("0000"), 1);  // B
  apsim::Simulator sim(net);
  const core::StreamSpec spec{4, 1};
  const core::SymbolStreamEncoder enc(spec);
  const auto events = sim.run(enc.encode_query(util::BitVector::parse("1001")));

  util::TablePrinter table("Fig. 4: report order for query {1,0,0,1}");
  table.set_header({"vector", "inverted HD", "report cycle", "paper"});
  for (const auto& e : events) {
    const std::size_t distance = spec.distance_from_offset(e.cycle);
    table.add_row({e.report_code == 0 ? "A {1,0,1,1}" : "B {0,0,0,0}",
                   std::to_string(4 - distance), std::to_string(e.cycle),
                   e.report_code == 0 ? "t=9" : "t=10"});
  }
  table.print(std::cout);
  if (events.size() != 2 || events[0].report_code != 0 ||
      events[0].cycle != 9 || events[1].cycle != 10) {
    std::fprintf(stderr, "FAIL: Fig. 4 order not reproduced\n");
    return 1;
  }

  // --- Property at scale: 64 vectors, 8 queries ------------------------------
  util::Rng rng(4242);
  const auto data = knn::BinaryDataset::uniform(64, 32, rng.next());
  anml::AutomataNetwork big;
  for (std::size_t i = 0; i < data.size(); ++i) {
    core::append_hamming_macro(big, data.vector(i),
                               static_cast<std::uint32_t>(i));
  }
  apsim::Simulator big_sim(big);
  const core::StreamSpec big_spec{32, 1};
  const core::SymbolStreamEncoder big_enc(big_spec);
  const auto queries = knn::BinaryDataset::uniform(8, 32, rng.next());
  std::size_t checked = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto evs = big_sim.run(big_enc.encode_query(queries.vector(q)));
    std::size_t prev_distance = 0;
    for (const auto& e : evs) {
      const std::size_t distance = big_spec.distance_from_offset(e.cycle);
      const std::size_t truth =
          util::hamming_distance(data.row(e.report_code), queries.row(q));
      if (distance != truth || distance < prev_distance) {
        std::fprintf(stderr, "FAIL: unsorted or wrong distance\n");
        return 1;
      }
      prev_distance = distance;
      ++checked;
    }
  }
  report.write(util::BenchRecord("temporal_sort_scale")
                   .param("n", std::uint64_t{64})
                   .param("dims", std::uint64_t{32})
                   .param("queries", std::uint64_t{8})
                   .param("events_checked", static_cast<std::uint64_t>(checked))
                   .cycles(8 * big_spec.cycles_per_query())
                   .wall_seconds(timer.seconds()));
  std::printf("\nScale check: %zu report events across 8 queries arrived "
              "sorted by Hamming distance with exact temporal encoding.\n",
              checked);
  if (report.ok()) {
    std::printf("recorded -> %s\n", report.path().c_str());
  }
  return 0;
}
