#include "quant/itq.hpp"

#include <gtest/gtest.h>

#include "knn/exact.hpp"
#include "quant/matrix.hpp"

namespace apss::quant {
namespace {

Matrix clustered_features() {
  return gaussian_cluster_features(/*samples=*/400, /*feature_dims=*/32,
                                   /*clusters=*/5, /*center_scale=*/4.0,
                                   /*spread=*/0.5, /*seed=*/11);
}

TEST(Itq, FitValidatesArguments) {
  const Matrix x = clustered_features();
  ItqOptions opt;
  opt.bits = 0;
  EXPECT_THROW(ItqQuantizer::fit(x, opt), std::invalid_argument);
  opt.bits = 64;  // > feature dims (32)
  EXPECT_THROW(ItqQuantizer::fit(x, opt), std::invalid_argument);
  EXPECT_THROW(ItqQuantizer::fit(Matrix(1, 8), ItqOptions{8, 1, 1}),
               std::invalid_argument);
}

TEST(Itq, RotationStaysOrthonormal) {
  const Matrix x = clustered_features();
  ItqOptions opt;
  opt.bits = 16;
  opt.iterations = 20;
  const ItqQuantizer q = ItqQuantizer::fit(x, opt);
  const Matrix rtr = q.rotation().transpose() * q.rotation();
  EXPECT_LT(rtr.max_abs_diff(Matrix::identity(16)), 1e-8);
}

TEST(Itq, IterationsReduceQuantizationLoss) {
  const Matrix x = clustered_features();
  ItqOptions one;
  one.bits = 16;
  one.iterations = 1;
  ItqOptions many = one;
  many.iterations = 40;
  const double loss_one = ItqQuantizer::fit(x, one).quantization_loss(x);
  const double loss_many = ItqQuantizer::fit(x, many).quantization_loss(x);
  EXPECT_LE(loss_many, loss_one * 1.0001);
}

TEST(Itq, EncodePreservesClusterNeighborhoods) {
  // Points from the same Gaussian cluster should map to nearby codes.
  const Matrix x = gaussian_cluster_features(300, 24, 3, 5.0, 0.3, 21);
  ItqOptions opt;
  opt.bits = 16;
  const ItqQuantizer q = ItqQuantizer::fit(x, opt);
  const knn::BinaryDataset codes = q.encode_all(x);

  // For sampled pairs: same-cluster pairs (close in feature space) must
  // have smaller Hamming distance than cross-cluster pairs on average.
  double same_sum = 0.0, cross_sum = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      double feat_dist = 0.0;
      for (std::size_t d = 0; d < x.cols(); ++d) {
        const double diff = x.at(i, d) - x.at(j, d);
        feat_dist += diff * diff;
      }
      const double hd =
          static_cast<double>(util::hamming_distance(codes.row(i), codes.row(j)));
      if (feat_dist < 10.0) {
        same_sum += hd;
        ++same_n;
      } else {
        cross_sum += hd;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_LT(same_sum / same_n, 0.5 * cross_sum / cross_n);
}

TEST(Itq, CodesPreserveClusterIdentity) {
  // ITQ codes should keep same-cluster points close: the Hamming nearest
  // neighbors of a point must overwhelmingly share its cluster label.
  // (ITQ does NOT promise to preserve fine intra-cluster ranking — cluster
  // members may collapse to identical codes, which is fine for retrieval.)
  std::vector<std::uint32_t> labels;
  const Matrix x = gaussian_cluster_features(500, 40, 8, 4.0, 0.8, 31, &labels);
  ItqOptions opt;
  opt.bits = 20;
  opt.iterations = 50;
  const knn::BinaryDataset codes = ItqQuantizer::fit(x, opt).encode_all(x);

  double same_label = 0.0;
  constexpr std::size_t kQueries = 40, kK = 10;
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    auto approx = knn::knn_scan(codes, codes.row(qi), kK + 1);
    std::erase_if(approx,
                  [&](const knn::Neighbor& nb) { return nb.id == qi; });
    if (approx.size() > kK) {
      approx.resize(kK);
    }
    for (const auto& nb : approx) {
      same_label += labels[nb.id] == labels[qi];
    }
  }
  const double precision = same_label / (kQueries * kK);
  EXPECT_GT(precision, 0.9);
}

TEST(Itq, EncodeRejectsWrongDims) {
  const Matrix x = clustered_features();
  ItqOptions opt;
  opt.bits = 8;
  const ItqQuantizer q = ItqQuantizer::fit(x, opt);
  const std::vector<double> bad(5, 0.0);
  EXPECT_THROW(q.encode(bad), std::invalid_argument);
}

TEST(GaussianClusterFeatures, ShapeAndDeterminism) {
  const Matrix a = gaussian_cluster_features(50, 8, 3, 2.0, 0.1, 5);
  const Matrix b = gaussian_cluster_features(50, 8, 3, 2.0, 0.1, 5);
  EXPECT_EQ(a.rows(), 50u);
  EXPECT_EQ(a.cols(), 8u);
  EXPECT_DOUBLE_EQ(a.at(10, 3), b.at(10, 3));
  EXPECT_THROW(gaussian_cluster_features(10, 8, 0, 1.0, 0.1, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace apss::quant
