#include "quant/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apss::quant {
namespace {

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;  b.at(0, 1) = 8;
  b.at(1, 0) = 9;  b.at(1, 1) = 10;
  b.at(2, 0) = 11; b.at(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
  EXPECT_THROW(b * a * a, std::invalid_argument);
}

TEST(Matrix, TransposeAndIdentity) {
  util::Rng rng(1);
  const Matrix m = Matrix::gaussian(4, 6, rng);
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 6u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_DOUBLE_EQ(t.at(2, 3), m.at(3, 2));
  const Matrix i = Matrix::identity(4);
  EXPECT_NEAR((i * m).max_abs_diff(m), 0.0, 1e-15);
}

TEST(Matrix, CenterColumnsZeroesMeans) {
  util::Rng rng(2);
  Matrix m = Matrix::gaussian(100, 5, rng);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    m.at(r, 2) += 10.0;  // shift one column
  }
  const auto means = m.column_means();
  EXPECT_NEAR(means[2], 10.0, 0.5);
  m.center_columns(means);
  for (const double c : m.column_means()) {
    EXPECT_NEAR(c, 0.0, 1e-12);
  }
}

TEST(Matrix, CovarianceOfIsotropicGaussian) {
  util::Rng rng(3);
  Matrix m = Matrix::gaussian(20000, 3, rng);
  m.center_columns(m.column_means());
  const Matrix cov = m.covariance();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(cov.at(i, j), i == j ? 1.0 : 0.0, 0.05) << i << "," << j;
    }
  }
}

TEST(SymmetricEigen, DiagonalizesKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m.at(0, 0) = 2; m.at(0, 1) = 1;
  m.at(1, 0) = 1; m.at(1, 1) = 2;
  const EigenResult e = symmetric_eigen(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(e.vectors.at(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::fabs(e.vectors.at(1, 0)), std::sqrt(0.5), 1e-10);
}

TEST(SymmetricEigen, ReconstructsRandomSymmetricMatrix) {
  util::Rng rng(4);
  const std::size_t n = 12;
  Matrix g = Matrix::gaussian(n, n, rng);
  const Matrix sym = g * g.transpose();  // SPD
  const EigenResult e = symmetric_eigen(sym);
  // V diag(values) V^T == sym.
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda.at(i, i) = e.values[i];
    if (i + 1 < n) {
      EXPECT_GE(e.values[i], e.values[i + 1]);  // sorted descending
    }
  }
  const Matrix rebuilt = e.vectors * lambda * e.vectors.transpose();
  EXPECT_LT(rebuilt.max_abs_diff(sym), 1e-8);
  // Orthonormal eigenvectors.
  const Matrix vtv = e.vectors.transpose() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-10);
}

TEST(GramSchmidt, ProducesOrthonormalColumns) {
  util::Rng rng(5);
  const Matrix q = gram_schmidt_q(Matrix::gaussian(10, 6, rng));
  const Matrix qtq = q.transpose() * q;
  EXPECT_LT(qtq.max_abs_diff(Matrix::identity(6)), 1e-10);
}

TEST(GramSchmidt, RejectsRankDeficiency) {
  Matrix m(3, 2);
  m.at(0, 0) = 1; m.at(0, 1) = 2;
  m.at(1, 0) = 2; m.at(1, 1) = 4;
  m.at(2, 0) = 3; m.at(2, 1) = 6;  // col1 = 2 x col0
  EXPECT_THROW(gram_schmidt_q(m), std::invalid_argument);
}

TEST(RandomRotation, IsOrthonormalWithUnitDeterminantMagnitude) {
  util::Rng rng(6);
  const Matrix r = Matrix::random_rotation(8, rng);
  const Matrix rtr = r.transpose() * r;
  EXPECT_LT(rtr.max_abs_diff(Matrix::identity(8)), 1e-10);
}

TEST(SvdSquare, ReconstructsMatrix) {
  util::Rng rng(7);
  const Matrix m = Matrix::gaussian(9, 9, rng);
  const SvdResult svd = svd_square(m);
  Matrix sigma(9, 9);
  for (std::size_t i = 0; i < 9; ++i) {
    sigma.at(i, i) = svd.singular_values[i];
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i + 1 < 9) {
      EXPECT_GE(svd.singular_values[i], svd.singular_values[i + 1]);
    }
  }
  const Matrix rebuilt = svd.u * sigma * svd.v.transpose();
  EXPECT_LT(rebuilt.max_abs_diff(m), 1e-8);
  EXPECT_LT((svd.u.transpose() * svd.u).max_abs_diff(Matrix::identity(9)),
            1e-9);
  EXPECT_LT((svd.v.transpose() * svd.v).max_abs_diff(Matrix::identity(9)),
            1e-9);
}

TEST(SvdSquare, HandlesSingularMatrix) {
  Matrix m(3, 3);  // rank 1
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m.at(i, j) = static_cast<double>((i + 1)) * static_cast<double>(j + 1);
    }
  }
  const SvdResult svd = svd_square(m);
  EXPECT_NEAR(svd.singular_values[1], 0.0, 1e-6);
  const Matrix utu = svd.u.transpose() * svd.u;
  EXPECT_LT(utu.max_abs_diff(Matrix::identity(3)), 1e-6);
}

}  // namespace
}  // namespace apss::quant
