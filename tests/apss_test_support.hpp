#pragma once
// Shared fixtures and helpers for the APSS test suites.
//
// Centralizes the setup boilerplate that used to be copy-pasted across the
// core/ and apsim/ test files: seeded random bit vectors and datasets,
// tiny hand-built ANML networks, and the one-macro-one-query simulation
// harness used by the Hamming macro tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "anml/network.hpp"
#include "apsim/simulator.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "knn/dataset.hpp"
#include "knn/exact.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace apss::test {

/// Converts ASCII text to the raw symbol stream fed to a simulator.
inline std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

/// A random bit vector of `dims` dimensions with expected density `p`.
inline util::BitVector random_bitvector(util::Rng& rng, std::size_t dims,
                                        double p = 0.5) {
  util::BitVector v(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    v.set(i, rng.bernoulli(p));
  }
  return v;
}

/// A dataset of `n` random vectors of `dims` dimensions with density `p`.
inline knn::BinaryDataset random_dataset(util::Rng& rng, std::size_t n,
                                         std::size_t dims, double p = 0.5) {
  knn::BinaryDataset data(n, dims);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < dims; ++i) {
      data.set(v, i, rng.bernoulli(p));
    }
  }
  return data;
}

/// Like random_dataset, but every row is guaranteed at least one set bit
/// (Jaccard macros reject empty sets).
inline knn::BinaryDataset random_nonempty_dataset(util::Rng& rng,
                                                  std::size_t n,
                                                  std::size_t dims,
                                                  double p = 0.5) {
  knn::BinaryDataset data = random_dataset(rng, n, dims, p);
  for (std::size_t v = 0; v < n; ++v) {
    data.set(v, rng.below(dims), true);
  }
  return data;
}

/// A random symbol stream of `len` symbols drawn from ['a', 'a' + alphabet).
inline std::vector<std::uint8_t> random_symbol_stream(util::Rng& rng,
                                                      std::size_t len,
                                                      std::size_t alphabet) {
  std::vector<std::uint8_t> stream(len);
  for (auto& s : stream) {
    s = static_cast<std::uint8_t>('a' + rng.below(alphabet));
  }
  return stream;
}

/// A toy macro: `stes` STEs in a chain + one counter + one reporting STE.
/// The smallest network that exercises all three element kinds in
/// placement and resource accounting.
inline anml::AutomataNetwork chain_macro(std::size_t stes) {
  anml::AutomataNetwork net;
  anml::ElementId prev =
      net.add_ste(anml::SymbolSet::all(), anml::StartKind::kAllInput);
  for (std::size_t i = 1; i < stes; ++i) {
    const anml::ElementId next = net.add_ste(anml::SymbolSet::all());
    net.connect(prev, next);
    prev = next;
  }
  const anml::ElementId counter = net.add_counter(4);
  net.connect(prev, counter, anml::CounterPort::kCountEnable);
  const anml::ElementId rep =
      net.add_reporting_ste(anml::SymbolSet::all(), 1);
  net.connect(counter, rep);
  return net;
}

/// Builds one Hamming macro for `vec`, runs one encoded `query` through the
/// simulator, and returns the report events.
inline std::vector<apsim::ReportEvent> run_hamming_query(
    const util::BitVector& vec, const util::BitVector& query,
    const core::HammingMacroOptions& opt = {}) {
  anml::AutomataNetwork net;
  const core::MacroLayout layout =
      core::append_hamming_macro(net, vec, 0, opt);
  apsim::Simulator sim(net);
  const core::SymbolStreamEncoder encoder(layout.stream_spec(vec.size()));
  return sim.run(encoder.encode_query(query));
}

/// Asserts that `results` holds one valid k-NN answer (distance-exact under
/// ties) per query row. `context` prefixes failure messages.
inline void expect_valid_knn_results(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k, const std::vector<std::vector<knn::Neighbor>>& results,
    const std::string& context = {}) {
  ASSERT_EQ(results.size(), queries.size()) << context;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(knn::is_valid_knn_result(data, queries.row(q), k, results[q]))
        << context << (context.empty() ? "" : " ") << "query " << q;
  }
}

}  // namespace apss::test
