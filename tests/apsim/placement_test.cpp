#include "apsim/placement.hpp"

#include <gtest/gtest.h>

#include "apss_test_support.hpp"

namespace apss::apsim {
namespace {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;
using test::chain_macro;

TEST(Placement, CountsResources) {
  const AutomataNetwork net = chain_macro(10);
  const PlacementResult r = place(net, DeviceGeometry::one_rank());
  EXPECT_TRUE(r.placed);
  EXPECT_TRUE(r.routed);
  EXPECT_EQ(r.component_count, 1u);
  EXPECT_EQ(r.ste_count, 11u);
  EXPECT_EQ(r.counter_count, 1u);
  EXPECT_EQ(r.reporting_count, 1u);
  EXPECT_EQ(r.blocks_used, 1u);
  EXPECT_EQ(r.half_cores_used, 1u);
}

TEST(Placement, UtilizationScalesWithCopies) {
  AutomataNetwork net;
  for (int i = 0; i < 64; ++i) {
    net.merge(chain_macro(100));
  }
  const DeviceGeometry g = DeviceGeometry::one_rank();
  const PlacementResult r = place(net, g);
  EXPECT_TRUE(r.placed);
  EXPECT_EQ(r.component_count, 64u);
  // 64 x 101 STEs x 1.15 overhead ~= 7434 placed STEs ~= 30 blocks.
  EXPECT_NEAR(static_cast<double>(r.blocks_used), 30.0, 2.0);
  EXPECT_GT(r.block_utilization(g), 0.0);
  EXPECT_LT(r.block_utilization(g), 0.05);
}

TEST(Placement, ComponentLargerThanHalfCoreFailsToPlace) {
  const DeviceGeometry g = DeviceGeometry::one_rank();
  const AutomataNetwork net = chain_macro(g.stes_per_half_core() + 10);
  const PlacementResult r = place(net, g);
  EXPECT_FALSE(r.placed);
  EXPECT_FALSE(r.issues.empty());
}

TEST(Placement, DeviceFullWhenTooManyComponents) {
  // Shrink the board to 1 half core of 2 blocks; each macro takes a block.
  DeviceGeometry g = DeviceGeometry::one_rank();
  g.ranks = 1;
  g.chips_per_rank = 1;
  g.half_cores_per_chip = 1;
  g.blocks_per_half_core = 2;
  AutomataNetwork net;
  for (int i = 0; i < 3; ++i) {
    net.merge(chain_macro(250));  // ~1 block each after overhead
  }
  const PlacementResult r = place(net, g);
  EXPECT_FALSE(r.placed);
}

TEST(Placement, CounterLimitedPacking) {
  // Macros that are counter-heavy: 1 STE + 4 counters each; blocks are then
  // limited by the 4-counters-per-block rule.
  AutomataNetwork net;
  for (int i = 0; i < 8; ++i) {
    AutomataNetwork m;
    const ElementId s = m.add_ste(SymbolSet::all(), StartKind::kAllInput);
    for (int c = 0; c < 4; ++c) {
      m.connect(s, m.add_counter(2), CounterPort::kCountEnable);
    }
    net.merge(m);
  }
  const PlacementResult r = place(net, DeviceGeometry::one_rank());
  EXPECT_TRUE(r.placed);
  EXPECT_EQ(r.counter_count, 32u);
  EXPECT_EQ(r.blocks_used, 8u);  // 32 counters / 4 per block
}

TEST(Placement, FanInViolationIsPartialRoute) {
  AutomataNetwork net;
  const ElementId sink = net.add_ste(SymbolSet::all());
  PlacementOptions opt;
  opt.max_fan_in = 8;
  for (std::size_t i = 0; i < opt.max_fan_in + 1; ++i) {
    const ElementId src = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
    net.connect(src, sink);
  }
  const PlacementResult r = place(net, DeviceGeometry::one_rank(), opt);
  EXPECT_TRUE(r.placed);   // placement succeeds...
  EXPECT_FALSE(r.routed);  // ...but routing fails (the paper's observation)
  EXPECT_EQ(r.max_observed_fan_in, opt.max_fan_in + 1);
}

TEST(Placement, FanOutViolationIsPartialRoute) {
  AutomataNetwork net;
  const ElementId src = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  PlacementOptions opt;
  opt.max_fan_out = 8;
  for (std::size_t i = 0; i < opt.max_fan_out + 1; ++i) {
    net.connect(src, net.add_ste(SymbolSet::all()));
  }
  const PlacementResult r = place(net, DeviceGeometry::one_rank(), opt);
  EXPECT_FALSE(r.routed);
}

TEST(MaxCopies, MatchesPaperCapacityRule) {
  // The paper's rule of thumb: ~1024 x 128-dim or ~512 x 256-dim vectors
  // per (single-rank) board configuration. A d-dim macro has ~2d+O(d/16)
  // STEs; verify the derived capacities are in the right regime.
  MacroFootprint sift;   // d=128 macro (see core tests for exact counts)
  sift.stes = 269;
  sift.counters = 1;
  sift.reporting = 1;
  const std::size_t cap128 = max_copies(sift, DeviceGeometry::one_rank());
  EXPECT_GE(cap128, 1024u);
  EXPECT_LE(cap128, 1400u);

  MacroFootprint tagspace;  // d=256 macro
  tagspace.stes = 533;
  tagspace.counters = 1;
  tagspace.reporting = 1;
  const std::size_t cap256 = max_copies(tagspace, DeviceGeometry::one_rank());
  EXPECT_GE(cap256, 512u);
  EXPECT_LE(cap256, 700u);
}

TEST(MaxCopies, ZeroSteMacroYieldsZero) {
  EXPECT_EQ(max_copies(MacroFootprint{}, DeviceGeometry::one_rank()), 0u);
}

TEST(DeviceGeometry, PaperNumbers) {
  const DeviceGeometry g;  // full 4-rank device
  EXPECT_EQ(g.stes_per_half_core(), 24576u);
  EXPECT_EQ(g.half_cores(), 64u);
  EXPECT_EQ(g.total_stes(), 1572864u);
  const DeviceGeometry rank = DeviceGeometry::one_rank();
  EXPECT_EQ(rank.total_stes(), 393216u);
  EXPECT_EQ(rank.total_blocks(), 1536u);
}

}  // namespace
}  // namespace apss::apsim
