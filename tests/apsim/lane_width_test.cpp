// Width-sweep differential matrix for the wide-lane batch backend: every
// execution width (64 / 256 / 512, SIMD and forced-portable alike) must
// produce BIT-IDENTICAL ReportEvent streams — same cycles, element ids,
// report codes, within-cycle order — as the cycle-accurate reference on
// every compiled family (hamming, packed, multiplexed), on encoded query
// frames, adversarial random streams and counter-saturating fills, at
// ragged lane counts straddling every word boundary. Also pins the
// resolve_lane_kernels dispatch contract and the exact-multiple tail-mask
// behaviour (lanes % 64 == 0 must yield a full, not empty, tail mask).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "apsim/lane_word.hpp"
#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/batch_compile.hpp"
#include "core/design.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "knn/dataset.hpp"
#include "util/rng.hpp"

namespace apss::apsim {
namespace {

constexpr LaneWidth kWidths[] = {LaneWidth::k64, LaneWidth::k256,
                                 LaneWidth::k512};

/// Scoped APSS_DISABLE_SIMD=1: forces resolve_lane_kernels onto the
/// portable LaneWord paths for simulators constructed inside the scope.
/// Set/restored between constructions only — never concurrently with them.
class ForcePortable {
 public:
  ForcePortable() { setenv("APSS_DISABLE_SIMD", "1", 1); }
  ~ForcePortable() { unsetenv("APSS_DISABLE_SIMD"); }
};

struct Config {
  anml::AutomataNetwork network;
  std::vector<core::MacroLayout> layouts;
  core::StreamSpec spec;

  std::vector<HammingMacroSlots> slots() const {
    std::vector<HammingMacroSlots> s;
    s.reserve(layouts.size());
    for (const core::MacroLayout& l : layouts) {
      s.push_back(core::batch_slots(l));
    }
    return s;
  }
};

Config build_config(const knn::BinaryDataset& data,
                    const core::HammingMacroOptions& opt = {}) {
  Config c;
  for (std::size_t i = 0; i < data.size(); ++i) {
    c.layouts.push_back(core::append_hamming_macro(
        c.network, data.vector(i), static_cast<std::uint32_t>(i), opt));
  }
  c.spec = core::StreamSpec{data.dims(),
                            core::collector_levels_for(data.dims(), opt)};
  return c;
}

std::shared_ptr<const BatchProgram> compile_or_die(const Config& c) {
  std::string reason;
  const auto slots = c.slots();
  auto program = BatchProgram::try_compile(c.network, slots, {}, &reason);
  if (program == nullptr) {
    throw std::runtime_error("try_compile declined: " + reason);
  }
  return program;
}

/// Runs `program` over `stream` at every width, SIMD-if-available AND
/// forced-portable, and asserts each run equals `expected` (the reference
/// simulator's events).
void expect_all_widths(std::shared_ptr<const BatchProgram> program,
                       std::span<const std::uint8_t> stream,
                       const std::vector<ReportEvent>& expected,
                       const std::string& context) {
  for (const LaneWidth w : kWidths) {
    BatchSimulator batch(program, w);
    ASSERT_EQ(batch.lane_width(), w) << context;
    ASSERT_EQ(batch.run(stream), expected)
        << context << " width=" << to_string(w) << " isa=" << batch.lane_isa();
  }
  ForcePortable portable;
  for (const LaneWidth w : kWidths) {
    BatchSimulator batch(program, w);
    ASSERT_FALSE(batch.lane_simd()) << context;
    ASSERT_EQ(batch.run(stream), expected)
        << context << " portable width=" << to_string(w);
  }
}

void expect_all_widths(const Config& c, std::span<const std::uint8_t> stream,
                       const std::string& context) {
  Simulator reference(c.network);
  expect_all_widths(compile_or_die(c), stream, reference.run(stream), context);
}

// --- Ragged lane counts across every word boundary --------------------------

TEST(LaneWidthSweep, RaggedLaneCountsEncodedQueries) {
  // 63/64/65 straddle the 64-bit word boundary, 255/256/257 the 256-bit
  // block boundary (and 256 is half a 512-bit block) — the tail-masking /
  // padding edge cases for every width.
  util::Rng rng(2024);
  const std::size_t lane_grid[] = {63, 64, 65, 255, 256, 257};
  for (const std::size_t n : lane_grid) {
    const std::size_t dims = 1 + rng.below(24);
    const auto data = test::random_dataset(rng, n, dims);
    const Config c = build_config(data);
    const core::SymbolStreamEncoder enc(c.spec);
    const auto queries = test::random_dataset(rng, 2, dims);
    expect_all_widths(c, enc.encode_batch(queries),
                      "n=" + std::to_string(n) + " d=" + std::to_string(dims));
  }
}

TEST(LaneWidthSweep, ExactMultipleLaneCountsReportTheLastLane) {
  // Regression guard for the valid-tail computation: at lanes % 64 == 0 the
  // tail mask must be ALL ones (a naive (1 << (lanes % 64)) - 1 would yield
  // zero and silently kill the last word's lanes). Querying the dataset's
  // final vector exactly must therefore report its lane at every width.
  util::Rng rng(4096);
  for (const std::size_t n : {64u, 256u, 512u}) {
    const std::size_t dims = 8;
    const auto data = test::random_dataset(rng, n, dims);
    const Config c = build_config(data);
    const auto program = compile_or_die(c);
    const core::SymbolStreamEncoder enc(c.spec);
    const auto stream = enc.encode_query(data.vector(n - 1));

    Simulator reference(c.network);
    const auto expected = reference.run(stream);
    // The distance-0 self-match must actually fire — an all-zero tail mask
    // would make this run (and the broken batch run) empty-equal.
    bool last_lane_reported = false;
    for (const ReportEvent& e : expected) {
      if (e.element == c.layouts[n - 1].report) {
        last_lane_reported = true;
      }
    }
    ASSERT_TRUE(last_lane_reported) << "n=" << n;
    expect_all_widths(program, stream, expected, "n=" + std::to_string(n));
  }
}

// --- Adversarial streams -----------------------------------------------------

TEST(LaneWidthSweep, AdversarialRandomStreams) {
  util::Rng rng(31337);
  const std::uint8_t palette[] = {
      core::Alphabet::kSof,  core::Alphabet::kEof, core::Alphabet::kFill,
      core::Alphabet::data_bit(false), core::Alphabet::data_bit(true),
      0x7f, 0x00, 0xff};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dims = 1 + rng.below(20);
    const std::size_t n = 1 + rng.below(140);
    const Config c = build_config(test::random_dataset(rng, n, dims));
    std::vector<std::uint8_t> stream(8 + rng.below(6 * dims + 60));
    for (auto& s : stream) {
      s = palette[rng.below(std::size(palette))];
    }
    expect_all_widths(c, stream, "trial " + std::to_string(trial));
  }
}

TEST(LaneWidthSweep, CounterSaturationLongFill) {
  // Fill far past the counter bit-plane range so the packed counters
  // saturate; the overflow pinning and EOF bias reload must behave
  // identically at every width, including after a fresh frame.
  util::Rng rng(99);
  const std::size_t dims = 6;
  const auto data = test::random_dataset(rng, 70, dims);
  const Config c = build_config(data);
  std::vector<std::uint8_t> stream;
  stream.push_back(core::Alphabet::kSof);
  for (std::size_t i = 0; i < dims; ++i) {
    stream.push_back(core::Alphabet::data_bit(rng.bernoulli(0.5)));
  }
  stream.insert(stream.end(), 500, core::Alphabet::kFill);
  stream.push_back(core::Alphabet::kEof);
  const core::SymbolStreamEncoder enc(c.spec);
  const auto tail = enc.encode_query(test::random_bitvector(rng, dims));
  stream.insert(stream.end(), tail.begin(), tail.end());
  expect_all_widths(c, stream, "saturation");
}

// --- The packed and multiplexed families -------------------------------------

TEST(LaneWidthSweep, PackedFamilyRunsAtEveryWidth) {
  util::Rng rng(808);
  for (const std::size_t n : {65u, 130u, 257u}) {
    const auto data = test::random_dataset(rng, n, 12);
    core::VectorPackingOptions opt;
    opt.group_size = 5;
    anml::AutomataNetwork network;
    const auto layouts = core::build_packed_network(network, data, opt);
    std::vector<PackedGroupSlots> slots;
    slots.reserve(layouts.size());
    for (const core::PackedGroupLayout& l : layouts) {
      slots.push_back(core::packed_batch_slots(l));
    }
    std::string reason;
    const auto program =
        BatchProgram::try_compile(network, slots, {}, &reason);
    ASSERT_NE(program, nullptr) << reason;
    ASSERT_EQ(program->family(), MacroFamily::kPacked);

    const core::StreamSpec spec{data.dims(),
                                layouts.front().collector_levels};
    const core::SymbolStreamEncoder enc(spec);
    const auto stream = enc.encode_batch(test::random_dataset(rng, 3, 12));
    Simulator reference(network);
    expect_all_widths(program, stream, reference.run(stream),
                      "packed n=" + std::to_string(n));
  }
}

TEST(LaneWidthSweep, MultiplexedFamilyRunsAtEveryWidth) {
  util::Rng rng(606);
  const std::size_t dims = 10;
  const std::size_t slices = 7;
  const auto data = test::random_dataset(rng, 67, dims);
  anml::AutomataNetwork network;
  const auto layouts =
      core::build_multiplexed_network(network, data, slices, {});
  std::vector<HammingMacroSlots> slots;
  slots.reserve(layouts.size());
  for (const core::MacroLayout& l : layouts) {
    slots.push_back(core::batch_slots(l));
  }
  std::string reason;
  const auto program = BatchProgram::try_compile(network, slots, {}, &reason);
  ASSERT_NE(program, nullptr) << reason;
  ASSERT_EQ(program->family(), MacroFamily::kMultiplexed);

  const core::StreamSpec spec{dims, core::collector_levels_for(dims, {})};
  const core::MultiplexedStreamEncoder enc(spec);
  std::size_t frames = 0;
  const auto stream =
      enc.encode_batch(test::random_dataset(rng, 9, dims), frames);
  ASSERT_GE(frames, 2u);
  Simulator reference(network);
  expect_all_widths(program, stream, reference.run(stream), "multiplexed");
}

// --- Cross-width property fuzz -----------------------------------------------

TEST(LaneWidthSweep, CrossWidthPropertyFuzz) {
  // Randomized (dims, lanes, stream) sweeps: every width — SIMD and
  // portable — must agree with the reference AND with each other. The seed
  // is in every failure message, so a counterexample replays exactly.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed * 0x9e3779b97f4a7c15ull);
    const std::size_t dims = 1 + rng.below(32);
    const std::size_t n = 1 + rng.below(300);
    const Config c = build_config(test::random_dataset(rng, n, dims));
    const core::SymbolStreamEncoder enc(c.spec);
    std::vector<std::uint8_t> stream =
        enc.encode_batch(test::random_dataset(rng, 1 + rng.below(3), dims));
    // Splice in raw-symbol noise so control/edge symbols hit mid-frame.
    const std::uint8_t palette[] = {core::Alphabet::kSof, core::Alphabet::kEof,
                                    core::Alphabet::kFill, 0x00, 0xff};
    for (int i = 0; i < 16 && !stream.empty(); ++i) {
      stream[rng.below(stream.size())] = palette[rng.below(std::size(palette))];
    }
    Simulator reference(c.network);
    const auto expected = reference.run(stream);
    const auto program = compile_or_die(c);
    expect_all_widths(program, stream, expected,
                      "fuzz seed=" + std::to_string(seed) +
                          " n=" + std::to_string(n) +
                          " d=" + std::to_string(dims));
  }
}

// --- Dispatch contract -------------------------------------------------------

TEST(LaneKernelDispatch, ExplicitWidthsAreAlwaysHonored) {
  for (const LaneWidth w : kWidths) {
    const LaneKernels k = resolve_lane_kernels(w);
    EXPECT_EQ(k.width, w);
    EXPECT_EQ(k.width_bits() % 64, 0u);
    EXPECT_EQ(k.width_bits() / 64, k.block_words());
    EXPECT_LE(k.block_words(), kLaneBlockWords);
    EXPECT_NE(k.or_rows, nullptr);
    EXPECT_NE(k.counter_update, nullptr);
  }
}

TEST(LaneKernelDispatch, AutoNeverReturnsAuto) {
  const LaneKernels k = resolve_lane_kernels(LaneWidth::kAuto);
  EXPECT_NE(k.width, LaneWidth::kAuto);
  EXPECT_NE(k.or_rows, nullptr);
  EXPECT_NE(k.counter_update, nullptr);
}

TEST(LaneKernelDispatch, DisableSimdEnvForcesPortable) {
  ForcePortable portable;
  EXPECT_TRUE(lane_simd_disabled_by_env());
  for (const LaneWidth w : kWidths) {
    const LaneKernels k = resolve_lane_kernels(w);
    EXPECT_EQ(k.width, w);
    EXPECT_FALSE(k.simd);
    EXPECT_TRUE(std::string(k.isa) == "scalar" ||
                std::string(k.isa) == "portable")
        << k.isa;
  }
  // kAuto without SIMD degrades to the classic scalar path.
  const LaneKernels k = resolve_lane_kernels(LaneWidth::kAuto);
  EXPECT_EQ(k.width, LaneWidth::k64);
  EXPECT_STREQ(k.isa, "scalar");
}

TEST(LaneKernelDispatch, SimdVariantsMatchCpuSupport) {
  // An explicit width resolves to its SIMD variant exactly when the build
  // compiled it in AND this CPU supports it; otherwise the portable
  // fallback of the SAME width serves it.
  const LaneKernels k256 = resolve_lane_kernels(LaneWidth::k256);
  const bool avx2_available =
      cpu_supports_avx2() && detail::avx2_lane_kernels() != nullptr;
  EXPECT_EQ(k256.simd, avx2_available);
  EXPECT_STREQ(k256.isa, avx2_available ? "avx2" : "portable");

  const LaneKernels k512 = resolve_lane_kernels(LaneWidth::k512);
  const bool avx512_available =
      cpu_supports_avx512() && detail::avx512_lane_kernels() != nullptr;
  EXPECT_EQ(k512.simd, avx512_available);
  EXPECT_STREQ(k512.isa, avx512_available ? "avx512" : "portable");
}

TEST(LaneKernelDispatch, ParseAndPrintRoundTrip) {
  for (const char* text : {"auto", "64", "256", "512"}) {
    LaneWidth w = LaneWidth::k64;
    ASSERT_TRUE(parse_lane_width(text, &w)) << text;
    EXPECT_STREQ(to_string(w), text);
  }
  LaneWidth w = LaneWidth::kAuto;
  EXPECT_FALSE(parse_lane_width("128", &w));
  EXPECT_FALSE(parse_lane_width("", &w));
  EXPECT_FALSE(parse_lane_width("avx2", &w));
}

TEST(LaneKernelDispatch, SimulatorExposesResolvedWidth) {
  util::Rng rng(11);
  const Config c = build_config(test::random_dataset(rng, 5, 8));
  const auto program = compile_or_die(c);
  for (const LaneWidth w : kWidths) {
    BatchSimulator batch(program, w);
    EXPECT_EQ(batch.lane_width(), w);
    EXPECT_NE(std::string(batch.lane_isa()), "");
  }
  BatchSimulator preset(program);  // default = kAuto, resolved at once
  EXPECT_NE(preset.lane_width(), LaneWidth::kAuto);
}

}  // namespace
}  // namespace apss::apsim
