// Differential validation of the production (frontier-based) simulator
// against an independent, naive dense reference implementation: every
// element re-evaluated from first principles each cycle. Random networks
// and random streams; any divergence in report events or counter values
// is a bug in one of the two engines.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "util/rng.hpp"

namespace apss::apsim {
namespace {

using anml::AutomataNetwork;
using anml::CounterMode;
using anml::CounterPort;
using anml::Element;
using anml::ElementId;
using anml::ElementKind;
using anml::StartKind;
using anml::SymbolSet;

/// Dense reference: O(elements + edges) per cycle, no frontier tricks.
class ReferenceSimulator {
 public:
  ReferenceSimulator(const AutomataNetwork& net, std::uint32_t max_increment)
      : net_(net), max_increment_(max_increment) {
    outputs_.assign(net.size(), 0);
    prev_outputs_.assign(net.size(), 0);
    counts_.assign(net.size(), 0);
    latched_.assign(net.size(), 0);
    pulse_next_.assign(net.size(), 0);
    condition_prev_.assign(net.size(), 0);
  }

  std::vector<ReportEvent> run(std::span<const std::uint8_t> stream) {
    std::vector<ReportEvent> reports;
    std::uint64_t cycle = 0;
    for (const std::uint8_t symbol : stream) {
      ++cycle;
      prev_outputs_ = outputs_;
      std::vector<std::uint8_t> next(net_.size(), 0);

      // Counter outputs staged from last cycle.
      for (ElementId id = 0; id < net_.size(); ++id) {
        if (net_.element(id).kind == ElementKind::kCounter) {
          next[id] = pulse_next_[id] || latched_[id];
          pulse_next_[id] = 0;
        }
      }
      // STEs: enabled = start rule or any predecessor output at t-1.
      for (ElementId id = 0; id < net_.size(); ++id) {
        const Element& e = net_.element(id);
        if (e.kind != ElementKind::kSte) {
          continue;
        }
        bool enabled = e.start == StartKind::kAllInput ||
                       (e.start == StartKind::kStartOfData && cycle == 1);
        for (const anml::Edge& edge : net_.edges()) {
          if (edge.to == id && edge.port == CounterPort::kCountEnable) {
            enabled = enabled || prev_outputs_[edge.from];
          }
        }
        next[id] = enabled && e.symbols.test(symbol);
      }
      // Booleans: iterate to fixpoint (acyclic, so <= |bools| passes).
      for (std::size_t pass = 0; pass < net_.size(); ++pass) {
        bool changed = false;
        for (ElementId id = 0; id < net_.size(); ++id) {
          const Element& e = net_.element(id);
          if (e.kind != ElementKind::kBoolean) {
            continue;
          }
          std::uint32_t inputs = 0, ones = 0;
          for (const anml::Edge& edge : net_.edges()) {
            if (edge.to == id) {
              ++inputs;
              ones += next[edge.from];
            }
          }
          bool value = false;
          switch (e.op) {
            case anml::BooleanOp::kAnd: value = inputs && ones == inputs; break;
            case anml::BooleanOp::kOr: value = ones > 0; break;
            case anml::BooleanOp::kNot: value = ones == 0; break;
            case anml::BooleanOp::kNand: value = !(inputs && ones == inputs); break;
            case anml::BooleanOp::kNor: value = ones == 0; break;
            case anml::BooleanOp::kXor: value = ones % 2 == 1; break;
            case anml::BooleanOp::kXnor: value = ones % 2 == 0; break;
          }
          if (next[id] != static_cast<std::uint8_t>(value)) {
            next[id] = value;
            changed = true;
          }
        }
        if (!changed) {
          break;
        }
      }
      outputs_ = next;

      // Reports.
      for (ElementId id = 0; id < net_.size(); ++id) {
        if (net_.element(id).reporting && outputs_[id]) {
          reports.push_back({cycle, id, net_.element(id).report_code});
        }
      }
      // Counter updates.
      for (ElementId id = 0; id < net_.size(); ++id) {
        const Element& e = net_.element(id);
        if (e.kind != ElementKind::kCounter) {
          continue;
        }
        std::uint32_t increments = 0;
        bool reset = false;
        for (const anml::Edge& edge : net_.edges()) {
          if (edge.to != id || !outputs_[edge.from]) {
            continue;
          }
          if (edge.port == CounterPort::kCountEnable) {
            ++increments;
          } else if (edge.port == CounterPort::kReset) {
            reset = true;
          }
        }
        if (reset) {
          counts_[id] = 0;
          latched_[id] = 0;
        } else {
          counts_[id] += std::min(increments, max_increment_);
        }
        const bool condition = counts_[id] >= e.threshold;
        if (condition && !condition_prev_[id]) {
          if (e.mode == CounterMode::kPulse) {
            pulse_next_[id] = 1;
          } else {
            latched_[id] = 1;
          }
        }
        condition_prev_[id] = condition;
      }
    }
    return reports;
  }

  std::uint64_t count(ElementId id) const { return counts_[id]; }

 private:
  const AutomataNetwork& net_;
  std::uint32_t max_increment_;
  std::vector<std::uint8_t> outputs_, prev_outputs_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint8_t> latched_, pulse_next_, condition_prev_;
};

/// Random network generator: layered STEs with random classes, sprinkled
/// counters and booleans, random reporting flags. Always valid.
AutomataNetwork random_network(util::Rng& rng) {
  AutomataNetwork net;
  const std::size_t stes = 4 + rng.below(20);
  std::vector<ElementId> ste_ids;
  for (std::size_t i = 0; i < stes; ++i) {
    SymbolSet symbols;
    switch (rng.below(4)) {
      case 0: symbols = SymbolSet::all(); break;
      case 1: symbols = SymbolSet::single(static_cast<std::uint8_t>(
                  'a' + rng.below(4))); break;
      case 2: symbols = SymbolSet::ternary(
                  static_cast<std::uint8_t>(rng.below(256)),
                  static_cast<std::uint8_t>(rng.below(256))); break;
      default: symbols = SymbolSet::all_except(static_cast<std::uint8_t>(
                  'a' + rng.below(4))); break;
    }
    if (symbols.empty()) {
      symbols = SymbolSet::all();
    }
    const StartKind start = rng.below(4) == 0
                                ? StartKind::kAllInput
                                : rng.below(8) == 0 ? StartKind::kStartOfData
                                                    : StartKind::kNone;
    const ElementId id = net.add_ste(symbols, start);
    if (rng.below(4) == 0) {
      net.set_reporting(id, static_cast<std::uint32_t>(id));
    }
    ste_ids.push_back(id);
  }
  // Random STE->STE edges (including self-loops).
  const std::size_t edges = stes + rng.below(2 * stes);
  for (std::size_t i = 0; i < edges; ++i) {
    net.connect(ste_ids[rng.below(stes)], ste_ids[rng.below(stes)]);
  }
  // A couple of counters driven/reset by random STEs.
  for (std::size_t c = 0; c < 1 + rng.below(3); ++c) {
    const ElementId counter = net.add_counter(
        1 + static_cast<std::uint32_t>(rng.below(6)),
        rng.bernoulli(0.5) ? CounterMode::kPulse : CounterMode::kLatch);
    for (std::size_t e = 0; e < 1 + rng.below(3); ++e) {
      net.connect(ste_ids[rng.below(stes)], counter,
                  CounterPort::kCountEnable);
    }
    if (rng.bernoulli(0.5)) {
      net.connect(ste_ids[rng.below(stes)], counter, CounterPort::kReset);
    }
    const ElementId rep = net.add_reporting_ste(SymbolSet::all(), 1000 + c);
    net.connect(counter, rep);
  }
  // A boolean gate over random STEs driving another STE.
  if (rng.bernoulli(0.7)) {
    const auto ops = {anml::BooleanOp::kAnd, anml::BooleanOp::kOr,
                      anml::BooleanOp::kNor, anml::BooleanOp::kXor};
    const ElementId gate = net.add_boolean(*(ops.begin() + rng.below(4)));
    for (std::size_t e = 0; e < 1 + rng.below(3); ++e) {
      net.connect(ste_ids[rng.below(stes)], gate);
    }
    net.connect(gate, ste_ids[rng.below(stes)]);
    if (rng.bernoulli(0.3)) {
      net.set_reporting(gate, 2000);
    }
  }
  return net;
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, FrontierSimulatorMatchesDenseReference) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const AutomataNetwork net = random_network(rng);
    ASSERT_TRUE(net.validate().empty());

    const std::vector<std::uint8_t> stream =
        test::random_symbol_stream(rng, 10 + rng.below(60), 5);
    const std::uint32_t max_inc = 1 + static_cast<std::uint32_t>(rng.below(8));

    SimOptions opt;
    opt.max_counter_increment = max_inc;
    Simulator fast(net, opt);
    ReferenceSimulator slow(net, max_inc);
    const auto fast_events = fast.run(stream);
    const auto slow_events = slow.run(stream);

    // Compare as sorted (cycle, element) multisets: within-cycle order is
    // an implementation detail.
    auto key = [](const ReportEvent& e) {
      return std::pair<std::uint64_t, ElementId>(e.cycle, e.element);
    };
    std::multiset<std::pair<std::uint64_t, ElementId>> a, b;
    for (const auto& e : fast_events) a.insert(key(e));
    for (const auto& e : slow_events) b.insert(key(e));
    ASSERT_EQ(a, b) << "trial " << trial << " seed " << GetParam();

    // Counter end states must agree too.
    for (ElementId id = 0; id < net.size(); ++id) {
      if (net.element(id).kind == ElementKind::kCounter) {
        EXPECT_EQ(fast.counter_value(id), slow.count(id))
            << "counter " << id << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace apss::apsim
