#include "apsim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apss_test_support.hpp"

namespace apss::apsim {
namespace {

using anml::AutomataNetwork;
using anml::BooleanOp;
using anml::CounterMode;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;
using test::bytes;

TEST(Simulator, RejectsInvalidNetwork) {
  AutomataNetwork net;
  net.add_ste(SymbolSet());  // empty class
  EXPECT_THROW(Simulator sim(net), std::invalid_argument);
}

TEST(Simulator, AllInputStartFiresOnEveryMatch) {
  AutomataNetwork net;
  const ElementId a =
      net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  net.set_reporting(a, 1);
  Simulator sim(net);
  const auto events = sim.run(bytes("abaa"));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cycle, 1u);
  EXPECT_EQ(events[1].cycle, 3u);
  EXPECT_EQ(events[2].cycle, 4u);
  EXPECT_EQ(events[0].report_code, 1u);
}

TEST(Simulator, StartOfDataOnlyFiresOnFirstCycle) {
  AutomataNetwork net;
  const ElementId a =
      net.add_ste(SymbolSet::single('a'), StartKind::kStartOfData);
  net.set_reporting(a, 1);
  Simulator sim(net);
  EXPECT_EQ(sim.run(bytes("aa")).size(), 1u);
  EXPECT_EQ(sim.run(bytes("ba")).size(), 0u);
}

TEST(Simulator, SequenceMatching) {
  // Classic "abc" matcher: report fires exactly at the end of each "abc".
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::single('b'));
  const ElementId c = net.add_reporting_ste(SymbolSet::single('c'), 9);
  net.connect(a, b);
  net.connect(b, c);
  Simulator sim(net);
  const auto events = sim.run(bytes("xabcabxabc"));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycle, 4u);
  EXPECT_EQ(events[1].cycle, 10u);
}

TEST(Simulator, SelfLoopHoldsActivation) {
  // a b* matcher: star state stays active while 'b's stream.
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId star = net.add_reporting_ste(SymbolSet::single('b'), 2);
  net.connect(a, star);
  net.connect(star, star);
  Simulator sim(net);
  const auto events = sim.run(bytes("abbbab"));
  // 'b' at cycles 2,3,4 after 'a'@1; then 'a'@5, 'b'@6.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 2u);
  EXPECT_EQ(events[2].cycle, 4u);
  EXPECT_EQ(events[3].cycle, 6u);
}

TEST(Simulator, RunIsResettingAndRunContinueIsNot) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId b = net.add_reporting_ste(SymbolSet::single('b'), 1);
  net.connect(a, b);
  Simulator sim(net);
  EXPECT_EQ(sim.run(bytes("a")).size(), 0u);
  // 'b' first: without the preceding 'a' in the same run, no match...
  EXPECT_EQ(sim.run(bytes("b")).size(), 0u);
  // ...but with run_continue the 'a' from the previous call still enables.
  sim.run(bytes("a"));
  EXPECT_EQ(sim.run_continue(bytes("b")).size(), 1u);
}

// --- Counter semantics -------------------------------------------------------

struct CounterRig {
  AutomataNetwork net;
  ElementId inc_in, rst_in, counter, report;

  explicit CounterRig(std::uint32_t threshold,
                      CounterMode mode = CounterMode::kPulse) {
    inc_in = net.add_ste(SymbolSet::single('i'), StartKind::kAllInput);
    rst_in = net.add_ste(SymbolSet::single('r'), StartKind::kAllInput);
    counter = net.add_counter(threshold, mode);
    report = net.add_reporting_ste(SymbolSet::all(), 5);
    net.connect(inc_in, counter, CounterPort::kCountEnable);
    net.connect(rst_in, counter, CounterPort::kReset);
    net.connect(counter, report);
  }
};

TEST(SimulatorCounter, CountsAndPulsesOnce) {
  CounterRig rig(3);
  Simulator sim(rig.net);
  // 'i' at cycles 1,2,3 -> count hits 3 at end of cycle 3 -> counter output
  // during cycle 4 -> report STE active at cycle 5.
  const auto events = sim.run(bytes("iiixxx"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 5u);
  // Count keeps increasing past threshold without re-firing.
  Simulator sim2(rig.net);
  const auto events2 = sim2.run(bytes("iiiiii"));
  EXPECT_EQ(events2.size(), 1u);
  EXPECT_EQ(sim2.counter_value(rig.counter), 6u);
}

TEST(SimulatorCounter, ResetClearsAndReArms) {
  CounterRig rig(2);
  Simulator sim(rig.net);
  // ii -> crossing at end of cycle 2 -> pulse cycle 3 -> report cycle 4;
  // r resets; the second ii crossing lands past the end of this stream.
  const auto events = sim.run(bytes("iirii"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 4u);
  // With two padding symbols the re-armed crossing reports at cycle 7.
  Simulator sim2(rig.net);
  const auto events2 = sim2.run(bytes("iiriixx"));
  ASSERT_EQ(events2.size(), 2u);
  EXPECT_EQ(events2[1].cycle, 7u);
  EXPECT_EQ(sim2.counter_value(rig.counter), 2u);
}

TEST(SimulatorCounter, ResetWinsOverIncrement) {
  CounterRig rig(2);
  Simulator sim(rig.net);
  sim.step('i');
  EXPECT_EQ(sim.counter_value(rig.counter), 1u);
  // Symbol matching both... 'i' and 'r' are distinct symbols; drive both
  // inputs by stepping 'i' then checking reset dominance via a combined
  // symbol is impossible here, so wire a '*' STE to both ports instead.
  AutomataNetwork net;
  const ElementId both = net.add_ste(SymbolSet::single('x'), StartKind::kAllInput);
  const ElementId counter = net.add_counter(10);
  net.connect(both, counter, CounterPort::kCountEnable);
  net.connect(both, counter, CounterPort::kReset);
  Simulator sim2(net);
  sim2.run(bytes("xxx"));
  EXPECT_EQ(sim2.counter_value(counter), 0u);
}

TEST(SimulatorCounter, StockHardwareClampsToOneIncrementPerCycle) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('x'), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::single('x'), StartKind::kAllInput);
  const ElementId counter = net.add_counter(100);
  net.connect(a, counter, CounterPort::kCountEnable);
  net.connect(b, counter, CounterPort::kCountEnable);
  Simulator sim(net);  // default: max increment 1
  sim.run(bytes("xxx"));
  EXPECT_EQ(sim.counter_value(counter), 3u);

  SimOptions ext;
  ext.max_counter_increment = 8;
  Simulator sim_ext(net, ext);
  sim_ext.run(bytes("xxx"));
  EXPECT_EQ(sim_ext.counter_value(counter), 6u);
}

TEST(SimulatorCounter, LatchModeStaysAssertedUntilReset) {
  CounterRig rig(2, CounterMode::kLatch);
  Simulator sim(rig.net);
  // ii -> crossing at end of cycle 2 -> latch output from cycle 3; the
  // report STE (enabled one cycle behind the counter output) fires at
  // cycles 4..7. Reset 'r' at cycle 6 deasserts the latch from cycle 7, so
  // the final report (enabled by the cycle-6 output) lands at cycle 7.
  const auto events = sim.run(bytes("iixxxr x"));
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().cycle, 4u);
  EXPECT_EQ(events.back().cycle, 7u);
}

// --- Boolean semantics -------------------------------------------------------

TEST(SimulatorBoolean, GatesComputeWithinCycle) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::parse("[ab]"), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::parse("[b]"), StartKind::kAllInput);
  const ElementId gate = net.add_boolean(BooleanOp::kAnd);
  net.connect(a, gate);
  net.connect(b, gate);
  net.set_reporting(gate, 3);
  Simulator sim(net);
  const auto events = sim.run(bytes("abab"));
  // AND fires only when both inputs match: symbols 'b' (cycles 2 and 4).
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycle, 2u);
  EXPECT_EQ(events[1].cycle, 4u);
}

TEST(SimulatorBoolean, NotGateInvertsWithinCycle) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId gate = net.add_boolean(BooleanOp::kNot);
  net.connect(a, gate);
  net.set_reporting(gate, 4);
  Simulator sim(net);
  const auto events = sim.run(bytes("ab"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 2u);  // 'b': input inactive -> NOT fires
}

TEST(SimulatorBoolean, BooleanChainsEvaluateInTopologicalOrder) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId or1 = net.add_boolean(BooleanOp::kOr);
  const ElementId or2 = net.add_boolean(BooleanOp::kOr);
  // a -> or1 -> or2; both should light up in the SAME cycle as 'a'.
  net.connect(a, or1);
  net.connect(or1, or2);
  net.set_reporting(or2, 6);
  Simulator sim(net);
  const auto events = sim.run(bytes("a"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 1u);
}

TEST(SimulatorBoolean, BooleanDrivesDownstreamSteNextCycle) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId gate = net.add_boolean(BooleanOp::kOr);
  const ElementId next = net.add_reporting_ste(SymbolSet::all(), 8);
  net.connect(a, gate);
  net.connect(gate, next);
  Simulator sim(net);
  const auto events = sim.run(bytes("ax"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 2u);
}

// --- Dynamic threshold extension (Sec. VII-B) --------------------------------

TEST(SimulatorDynamicThreshold, RequiresOptIn) {
  AutomataNetwork net;
  const ElementId a = net.add_counter(4);
  const ElementId b = net.add_counter(4);
  net.connect(a, b, CounterPort::kThreshold);
  EXPECT_THROW(Simulator sim(net), std::invalid_argument);
  SimOptions opt;
  opt.allow_dynamic_threshold = true;
  EXPECT_NO_THROW(Simulator sim(net, opt));
}

TEST(SimulatorDynamicThreshold, FiresWhenCountExceedsSource) {
  // B counts 'b's; A counts 'a's with threshold driven by B: A's counter
  // fires when #a > #b (the Fig. 8 "if (A > B)" construct).
  AutomataNetwork net;
  const ElementId a_in = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId b_in = net.add_ste(SymbolSet::single('b'), StartKind::kAllInput);
  const ElementId a_cnt = net.add_counter(1);  // static threshold unused
  const ElementId b_cnt = net.add_counter(1000000);
  net.connect(a_in, a_cnt, CounterPort::kCountEnable);
  net.connect(b_in, b_cnt, CounterPort::kCountEnable);
  net.connect(b_cnt, a_cnt, CounterPort::kThreshold);
  const ElementId report = net.add_reporting_ste(SymbolSet::all(), 1);
  net.connect(a_cnt, report);

  SimOptions opt;
  opt.allow_dynamic_threshold = true;
  {
    // The threshold port samples the source count from the END OF THE
    // PREVIOUS cycle (documented one-cycle latency). With "baa": at end of
    // cycle 3, a=2 against b's previous-cycle count 1 -> 2 >= 1+1 fires ->
    // pulse cycle 4 -> report cycle 5.
    Simulator sim(net, opt);
    const auto events = sim.run(bytes("baaxx"));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].cycle, 5u);
  }
  {
    // b always ahead: never fires.
    Simulator sim(net, opt);
    EXPECT_TRUE(sim.run(bytes("bbaab")).empty());
  }
}

}  // namespace
}  // namespace apss::apsim
