// Differential validation of the bit-parallel backend's second and third
// compiled shapes — vector-packed groups (Fig. 5 / Sec. VI-A) and
// stream-multiplexed slice replicas (Fig. 6 / Sec. VI-B) — against the
// cycle-accurate reference simulator: on supported configurations the two
// must produce BIT-IDENTICAL ReportEvent streams (same cycles, element
// ids, report codes, within-cycle order) on encoded query frames AND on
// adversarial random symbol streams. Near-miss configurations (permuted
// lanes, cross-group wiring, tampered counters, double-collected
// dimensions) must be declined so callers fall back.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/batch_compile.hpp"
#include "core/design.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "knn/dataset.hpp"
#include "util/rng.hpp"

namespace apss::apsim {
namespace {

// --- Packed-shape fixtures ---------------------------------------------------

struct PackedConfig {
  anml::AutomataNetwork network;
  std::vector<core::PackedGroupLayout> layouts;
  core::StreamSpec spec;

  std::vector<PackedGroupSlots> slots() const {
    std::vector<PackedGroupSlots> s;
    s.reserve(layouts.size());
    for (const core::PackedGroupLayout& l : layouts) {
      s.push_back(core::packed_batch_slots(l));
    }
    return s;
  }
};

PackedConfig build_packed(const knn::BinaryDataset& data,
                          const core::VectorPackingOptions& opt) {
  PackedConfig c;
  c.layouts = core::build_packed_network(c.network, data, opt);
  c.spec = core::StreamSpec{data.dims(), c.layouts.front().collector_levels};
  return c;
}

std::shared_ptr<const BatchProgram> compile_packed_or_die(
    const PackedConfig& c, SimOptions options = {}) {
  std::string reason;
  const auto slots = c.slots();
  auto program = BatchProgram::try_compile(c.network, slots, options, &reason);
  if (program == nullptr) {
    throw std::runtime_error("packed try_compile declined: " + reason);
  }
  return program;
}

void expect_identical_packed(const PackedConfig& c,
                             std::span<const std::uint8_t> stream,
                             const std::string& context) {
  Simulator reference(c.network);
  BatchSimulator batch(compile_packed_or_die(c));
  const auto expected = reference.run(stream);
  const auto actual = batch.run(stream);
  ASSERT_EQ(actual, expected) << context;
}

// --- Multiplexed-shape fixtures ----------------------------------------------

struct MuxConfig {
  anml::AutomataNetwork network;
  std::vector<core::MacroLayout> layouts;
  core::StreamSpec spec;
  std::size_t slices = 1;

  std::vector<HammingMacroSlots> slots() const {
    std::vector<HammingMacroSlots> s;
    s.reserve(layouts.size());
    for (const core::MacroLayout& l : layouts) {
      s.push_back(core::batch_slots(l));
    }
    return s;
  }
};

MuxConfig build_mux(const knn::BinaryDataset& data, std::size_t slices,
                    const core::HammingMacroOptions& opt = {}) {
  MuxConfig c;
  c.slices = slices;
  c.layouts = core::build_multiplexed_network(c.network, data, slices, opt);
  c.spec = core::StreamSpec{data.dims(),
                            core::collector_levels_for(data.dims(), opt)};
  return c;
}

std::shared_ptr<const BatchProgram> compile_mux_or_die(const MuxConfig& c) {
  std::string reason;
  const auto slots = c.slots();
  auto program = BatchProgram::try_compile(c.network, slots, {}, &reason);
  if (program == nullptr) {
    throw std::runtime_error("mux try_compile declined: " + reason);
  }
  return program;
}

void expect_identical_mux(const MuxConfig& c,
                          std::span<const std::uint8_t> stream,
                          const std::string& context) {
  Simulator reference(c.network);
  BatchSimulator batch(compile_mux_or_die(c));
  const auto expected = reference.run(stream);
  const auto actual = batch.run(stream);
  ASSERT_EQ(actual, expected) << context;
}

// --- Packed differential sweeps ----------------------------------------------

TEST(BatchPackedDifferential, FlatEncodedQuerySweep) {
  util::Rng rng(9001);
  const std::size_t dims_grid[] = {1, 2, 5, 8, 16, 33, 64};
  const std::size_t group_grid[] = {1, 2, 4, 8};
  for (const std::size_t dims : dims_grid) {
    for (const std::size_t group : group_grid) {
      const auto data = test::random_dataset(rng, 3 + rng.below(18), dims);
      core::VectorPackingOptions opt;
      opt.group_size = group;
      opt.style = core::CollectorStyle::kFlat;
      const PackedConfig c = build_packed(data, opt);
      const core::SymbolStreamEncoder enc(c.spec);
      const auto queries = test::random_dataset(rng, 1 + rng.below(4), dims);
      expect_identical_packed(c, enc.encode_batch(queries),
                              "flat d=" + std::to_string(dims) +
                                  " g=" + std::to_string(group));
    }
  }
}

TEST(BatchPackedDifferential, TreeEncodedQuerySweep) {
  util::Rng rng(9002);
  core::VectorPackingOptions deep;
  deep.group_size = 5;
  deep.style = core::CollectorStyle::kTree;
  deep.macro.collector_fan_in = 2;
  deep.macro.max_counter_fan_in = 2;  // forces L = ceil(log2(dims)) levels
  core::VectorPackingOptions wide;
  wide.group_size = 8;
  wide.style = core::CollectorStyle::kTree;
  for (const auto& opt : {deep, wide}) {
    for (const std::size_t dims : {3u, 9u, 40u}) {
      const auto data = test::random_dataset(rng, 11, dims);
      const PackedConfig c = build_packed(data, opt);
      ASSERT_EQ(compile_packed_or_die(c)->collector_levels(),
                c.spec.collector_levels);
      const core::SymbolStreamEncoder enc(c.spec);
      const auto queries = test::random_dataset(rng, 3, dims);
      expect_identical_packed(c, enc.encode_batch(queries),
                              "tree d=" + std::to_string(dims));
    }
  }
}

TEST(BatchPackedDifferential, AdversarialRandomStreams) {
  // Raw random symbols: mid-stream SOFs relaunch the shared wavefront,
  // missing EOFs leave every lane's sort phase running, control symbols
  // hit the value states' don't-care logic. The backends must agree.
  util::Rng rng(9003);
  const std::uint8_t palette[] = {
      core::Alphabet::kSof,  core::Alphabet::kEof, core::Alphabet::kFill,
      core::Alphabet::data_bit(false), core::Alphabet::data_bit(true),
      0x7f, 0x00, 0xff};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t dims = 1 + rng.below(20);
    core::VectorPackingOptions opt;
    opt.group_size = 1 + rng.below(7);
    opt.style = trial % 2 == 0 ? core::CollectorStyle::kFlat
                               : core::CollectorStyle::kTree;
    const auto data = test::random_dataset(rng, 1 + rng.below(40), dims);
    const PackedConfig c = build_packed(data, opt);
    std::vector<std::uint8_t> stream(8 + rng.below(6 * dims + 60));
    for (auto& s : stream) {
      s = palette[rng.below(std::size(palette))];
    }
    expect_identical_packed(c, stream, "trial " + std::to_string(trial));
  }
}

TEST(BatchPackedDifferential, CounterSaturationAndRunContinue) {
  // A fill phase far past the packed counters' bit-plane range saturates
  // them while the shared sort state keeps every lane incrementing; reports
  // must still agree, including across concatenated frames.
  util::Rng rng(9004);
  const std::size_t dims = 6;
  core::VectorPackingOptions opt;
  opt.group_size = 4;
  const auto data = test::random_dataset(rng, 10, dims);
  const PackedConfig c = build_packed(data, opt);
  std::vector<std::uint8_t> stream;
  stream.push_back(core::Alphabet::kSof);
  for (std::size_t i = 0; i < dims; ++i) {
    stream.push_back(core::Alphabet::data_bit(rng.bernoulli(0.5)));
  }
  stream.insert(stream.end(), 500, core::Alphabet::kFill);  // >> 2^planes
  stream.push_back(core::Alphabet::kEof);

  Simulator reference(c.network);
  BatchSimulator batch(compile_packed_or_die(c));
  ASSERT_EQ(batch.run(stream), reference.run(stream));
  const core::SymbolStreamEncoder enc(c.spec);
  for (int frame = 0; frame < 3; ++frame) {
    const auto tail = enc.encode_query(test::random_bitvector(rng, dims));
    ASSERT_EQ(batch.run_continue(tail), reference.run_continue(tail))
        << "frame " << frame;
  }
  ASSERT_EQ(batch.cycle(), reference.cycle());
}

TEST(BatchPackedProgram, CompilesTheEnginePackedFamily) {
  util::Rng rng(9005);
  const auto data = test::random_dataset(rng, 70, 16);
  core::VectorPackingOptions opt;
  opt.group_size = 8;
  const PackedConfig c = build_packed(data, opt);
  const auto program = compile_packed_or_die(c);
  EXPECT_EQ(program->macro_count(), 70u);  // lanes across 9 groups
  EXPECT_EQ(program->dims(), 16u);
  EXPECT_EQ(program->words(), 2u);
  EXPECT_LE(program->match_classes(), 2u);
  EXPECT_EQ(program->family(), MacroFamily::kPacked);
}

// --- Packed near-miss configurations must fall back --------------------------

TEST(BatchPackedProgram, RejectsGroupsOutOfCounterOrder) {
  util::Rng rng(9006);
  PackedConfig c = build_packed(test::random_dataset(rng, 12, 8),
                                core::VectorPackingOptions{.group_size = 4});
  std::swap(c.layouts[0], c.layouts[2]);
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("counter creation order"), std::string::npos)
      << reason;
}

TEST(BatchPackedProgram, RejectsForeignElements) {
  util::Rng rng(9007);
  PackedConfig c = build_packed(test::random_dataset(rng, 8, 8),
                                core::VectorPackingOptions{.group_size = 4});
  c.network.add_ste(anml::SymbolSet::all());  // stray element
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("outside the macro set"), std::string::npos) << reason;
}

TEST(BatchPackedProgram, RejectsTamperedThreshold) {
  util::Rng rng(9008);
  PackedConfig c = build_packed(test::random_dataset(rng, 8, 8),
                                core::VectorPackingOptions{.group_size = 4});
  c.network.element(c.layouts[0].counters[1]).threshold = 3;  // != dims
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("threshold"), std::string::npos) << reason;
}

TEST(BatchPackedProgram, RejectsCrossGroupCollectorEdges) {
  util::Rng rng(9009);
  PackedConfig c = build_packed(test::random_dataset(rng, 8, 8),
                                core::VectorPackingOptions{.group_size = 4});
  // Wire a value state of group 1 into a collector of group 0.
  c.network.connect(c.layouts[1].value_states[0][0],
                    c.layouts[0].collectors[0][0]);
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("crosses packed groups"), std::string::npos) << reason;
}

TEST(BatchPackedProgram, RejectsDoubleCollectedDimension) {
  // Find a dimension carrying two value states and feed BOTH into lane 0's
  // collector: that lane would match the dimension on every data symbol —
  // not a Hamming lane, so the compiler must refuse.
  util::Rng rng(9010);
  for (int attempt = 0; attempt < 20; ++attempt) {
    PackedConfig c = build_packed(test::random_dataset(rng, 4, 8),
                                  core::VectorPackingOptions{.group_size = 4});
    const core::PackedGroupLayout& g = c.layouts[0];
    std::size_t two_dim = g.value_states.size();
    for (std::size_t i = 0; i < g.value_states.size(); ++i) {
      if (g.value_states[i].size() == 2) {
        two_dim = i;
        break;
      }
    }
    if (two_dim == g.value_states.size()) {
      continue;  // all four vectors agreed everywhere; resample
    }
    c.network.connect(g.value_states[two_dim][0], g.collectors[0][0]);
    c.network.connect(g.value_states[two_dim][1], g.collectors[0][0]);
    std::string reason;
    const auto slots = c.slots();
    EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason),
              nullptr);
    EXPECT_NE(reason.find("more than once"), std::string::npos) << reason;
    return;
  }
  FAIL() << "never sampled a dimension with two value states";
}

TEST(BatchPackedProgram, RejectsCounterIncrementCapAboveOne) {
  util::Rng rng(9011);
  const PackedConfig c = build_packed(
      test::random_dataset(rng, 8, 8), core::VectorPackingOptions{});
  SimOptions opt;
  opt.max_counter_increment = 8;
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, opt, &reason),
            nullptr);
  EXPECT_NE(reason.find("max_counter_increment"), std::string::npos) << reason;
}

// --- Multiplexed differential sweeps -----------------------------------------

TEST(BatchMuxDifferential, EncodedFrameSweep) {
  util::Rng rng(9100);
  for (const std::size_t slices : {1u, 2u, 3u, 5u, 7u}) {
    for (const std::size_t dims : {1u, 4u, 12u, 33u}) {
      const auto data = test::random_dataset(rng, 1 + rng.below(12), dims);
      const MuxConfig c = build_mux(data, slices);
      const auto queries =
          test::random_dataset(rng, slices + rng.below(8), dims);
      const core::MultiplexedStreamEncoder enc(c.spec);
      std::size_t frames = 0;
      expect_identical_mux(c, enc.encode_batch(queries, frames),
                           "slices=" + std::to_string(slices) +
                               " d=" + std::to_string(dims));
    }
  }
}

TEST(BatchMuxDifferential, AdversarialRandomStreams) {
  // Multi-bit payload symbols exercise every slice's two classes at once;
  // control symbols and mid-stream SOFs must stay uniform across lanes.
  util::Rng rng(9101);
  const std::uint8_t palette[] = {
      core::Alphabet::kSof,   core::Alphabet::kEof,
      core::Alphabet::kFill,  core::Alphabet::data(0x00),
      core::Alphabet::data(0x55), core::Alphabet::data(0x2a),
      core::Alphabet::data(0x7f), 0xff};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dims = 1 + rng.below(16);
    const std::size_t slices = 1 + rng.below(7);
    const auto data = test::random_dataset(rng, 1 + rng.below(10), dims);
    const MuxConfig c = build_mux(data, slices);
    std::vector<std::uint8_t> stream(8 + rng.below(5 * dims + 50));
    for (auto& s : stream) {
      s = palette[rng.below(std::size(palette))];
    }
    expect_identical_mux(c, stream, "trial " + std::to_string(trial));
  }
}

TEST(BatchMuxProgram, CompilesTwoClassesPerSlice) {
  util::Rng rng(9102);
  const auto data = test::random_dataset(rng, 9, 16);
  const MuxConfig c = build_mux(data, 7);
  const auto program = compile_mux_or_die(c);
  EXPECT_EQ(program->macro_count(), 63u);  // 9 vectors x 7 slices
  EXPECT_EQ(program->match_classes(), 14u);
  EXPECT_EQ(program->words(), 1u);
  EXPECT_EQ(program->family(), MacroFamily::kMultiplexed);
}

TEST(BatchMuxProgram, DeepTreesAndPartialSlices) {
  util::Rng rng(9103);
  core::HammingMacroOptions deep;
  deep.collector_fan_in = 2;
  deep.max_counter_fan_in = 2;
  const auto data = test::random_dataset(rng, 5, 17);
  const MuxConfig c = build_mux(data, 3, deep);
  const core::MultiplexedStreamEncoder enc(c.spec);
  // A full 3-query frame followed by a partial 1-query frame.
  const auto queries = test::random_dataset(rng, 4, 17);
  auto stream = enc.encode_group(queries, 0, 3);
  const auto tail = enc.encode_group(queries, 3, 1);
  stream.insert(stream.end(), tail.begin(), tail.end());
  expect_identical_mux(c, stream, "deep partial");
}

}  // namespace
}  // namespace apss::apsim
