// Differential validation of the bit-parallel batch backend against the
// cycle-accurate reference simulator: on supported (homogeneous
// Hamming/sorting macro) configurations the two must produce BIT-IDENTICAL
// ReportEvent streams — same cycles, same element ids, same report codes,
// same within-cycle order — on encoded query frames AND on adversarial
// random symbol streams (mid-frame SOFs, missing EOFs, overlapping
// wavefronts, counter saturation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/batch_compile.hpp"
#include "core/design.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "knn/dataset.hpp"
#include "util/rng.hpp"

namespace apss::apsim {
namespace {

/// A configuration network plus everything needed to build both simulators.
struct Config {
  anml::AutomataNetwork network;
  std::vector<core::MacroLayout> layouts;
  core::StreamSpec spec;

  std::vector<HammingMacroSlots> slots() const {
    std::vector<HammingMacroSlots> s;
    s.reserve(layouts.size());
    for (const core::MacroLayout& l : layouts) {
      s.push_back(core::batch_slots(l));
    }
    return s;
  }
};

Config build_config(const knn::BinaryDataset& data,
                    const core::HammingMacroOptions& opt = {}) {
  Config c;
  for (std::size_t i = 0; i < data.size(); ++i) {
    c.layouts.push_back(core::append_hamming_macro(
        c.network, data.vector(i), static_cast<std::uint32_t>(i), opt));
  }
  c.spec = core::StreamSpec{data.dims(),
                            core::collector_levels_for(data.dims(), opt)};
  return c;
}

std::shared_ptr<const BatchProgram> compile_or_die(const Config& c,
                                                   SimOptions options = {}) {
  std::string reason;
  const auto slots = c.slots();
  auto program = BatchProgram::try_compile(c.network, slots, options, &reason);
  if (program == nullptr) {
    throw std::runtime_error("try_compile declined: " + reason);
  }
  return program;
}

void expect_identical_runs(const Config& c,
                           std::span<const std::uint8_t> stream,
                           const std::string& context) {
  Simulator reference(c.network);
  BatchSimulator batch(compile_or_die(c));
  const auto expected = reference.run(stream);
  const auto actual = batch.run(stream);
  ASSERT_EQ(actual, expected) << context;
}

// --- Differential sweeps ----------------------------------------------------

TEST(BatchSimulatorDifferential, EncodedQuerySweep) {
  util::Rng rng(4242);
  const std::size_t dims_grid[] = {1, 2, 5, 8, 16, 33, 64, 128};
  const std::size_t n_grid[] = {1, 3, 17, 64, 65};
  for (const std::size_t dims : dims_grid) {
    for (const std::size_t n : n_grid) {
      const auto data = test::random_dataset(rng, n, dims);
      const Config c = build_config(data);
      const auto queries =
          test::random_dataset(rng, 1 + rng.below(4), dims);
      const core::SymbolStreamEncoder enc(c.spec);
      expect_identical_runs(c, enc.encode_batch(queries),
                            "d=" + std::to_string(dims) +
                                " n=" + std::to_string(n));
    }
  }
}

TEST(BatchSimulatorDifferential, DeepCollectorTreesAndBitSlices) {
  util::Rng rng(777);
  core::HammingMacroOptions deep;
  deep.collector_fan_in = 2;
  deep.max_counter_fan_in = 2;  // forces L = ceil(log2(dims)) levels
  core::HammingMacroOptions sliced;
  sliced.bit_slice = 3;
  for (const auto& opt : {deep, sliced}) {
    for (const std::size_t dims : {3u, 9u, 40u}) {
      const auto data = test::random_dataset(rng, 13, dims);
      const Config c = build_config(data, opt);
      ASSERT_GE(compile_or_die(c)->collector_levels(), 1u);
      // Queries must be encoded on the macro's slice to be meaningful, but
      // the equivalence must hold for slice-0 frames either way.
      const core::SymbolStreamEncoder enc(c.spec);
      const auto queries = test::random_dataset(rng, 3, dims);
      expect_identical_runs(c, enc.encode_batch(queries),
                            "slice=" + std::to_string(opt.bit_slice) +
                                " d=" + std::to_string(dims));
    }
  }
}

TEST(BatchSimulatorDifferential, AdversarialRandomStreams) {
  // Raw random symbols: mid-stream SOFs launch overlapping wavefronts,
  // missing EOFs leave the sort phase running, control symbols hit the
  // match states' don't-care logic. The backends must still agree exactly.
  util::Rng rng(31337);
  const std::uint8_t palette[] = {
      core::Alphabet::kSof,  core::Alphabet::kEof, core::Alphabet::kFill,
      core::Alphabet::data_bit(false), core::Alphabet::data_bit(true),
      0x7f, 0x00, 0xff};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dims = 1 + rng.below(24);
    const std::size_t n = 1 + rng.below(70);
    const Config c = build_config(test::random_dataset(rng, n, dims));
    std::vector<std::uint8_t> stream(8 + rng.below(6 * dims + 60));
    for (auto& s : stream) {
      s = palette[rng.below(std::size(palette))];
    }
    expect_identical_runs(c, stream, "trial " + std::to_string(trial));
  }
}

TEST(BatchSimulatorDifferential, CounterSaturationLongFill) {
  // A frame whose fill phase runs far past the counter's bit-plane range:
  // the packed counters saturate, the reference counters keep counting.
  // Only the >= threshold predicate is observable, so reports must agree —
  // including after a late EOF reset and a fresh frame.
  util::Rng rng(99);
  const std::size_t dims = 6;
  const auto data = test::random_dataset(rng, 9, dims);
  const Config c = build_config(data);
  std::vector<std::uint8_t> stream;
  stream.push_back(core::Alphabet::kSof);
  for (std::size_t i = 0; i < dims; ++i) {
    stream.push_back(core::Alphabet::data_bit(rng.bernoulli(0.5)));
  }
  stream.insert(stream.end(), 500, core::Alphabet::kFill);  // >> 2^planes
  stream.push_back(core::Alphabet::kEof);
  const core::SymbolStreamEncoder enc(c.spec);
  const auto tail = enc.encode_query(test::random_bitvector(rng, dims));
  stream.insert(stream.end(), tail.begin(), tail.end());
  expect_identical_runs(c, stream, "saturation");
}

TEST(BatchSimulatorDifferential, RunContinueConcatenatesLikeReference) {
  util::Rng rng(55);
  const std::size_t dims = 12;
  const Config c = build_config(test::random_dataset(rng, 20, dims));
  const core::SymbolStreamEncoder enc(c.spec);

  Simulator reference(c.network);
  BatchSimulator batch(compile_or_die(c));
  reference.reset();
  batch.reset();
  for (int frame = 0; frame < 4; ++frame) {
    const auto stream = enc.encode_query(test::random_bitvector(rng, dims));
    const auto expected = reference.run_continue(stream);
    const auto actual = batch.run_continue(stream);
    ASSERT_EQ(actual, expected) << "frame " << frame;
  }
  ASSERT_EQ(batch.reports(), reference.reports());
  ASSERT_EQ(batch.cycle(), reference.cycle());
}

// --- Support detection ------------------------------------------------------

TEST(BatchProgram, CompilesTheEngineMacroFamily) {
  util::Rng rng(1);
  const Config c = build_config(test::random_dataset(rng, 70, 16));
  const auto program = compile_or_die(c);
  EXPECT_EQ(program->macro_count(), 70u);
  EXPECT_EQ(program->dims(), 16u);
  EXPECT_EQ(program->words(), 2u);  // 70 macros -> two 64-bit words
  EXPECT_EQ(program->family(), MacroFamily::kHamming);  // single-slice classes
}

TEST(BatchSimulator, RejectsNullProgram) {
  // A declined try_compile must never reach a simulator: callers fall back.
  EXPECT_THROW(BatchSimulator(nullptr), std::invalid_argument);
}

TEST(BatchProgram, RejectsCounterIncrementCapAboveOne) {
  util::Rng rng(2);
  const Config c = build_config(test::random_dataset(rng, 4, 8));
  SimOptions opt;
  opt.max_counter_increment = 8;
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, opt, &reason),
            nullptr);
  EXPECT_NE(reason.find("max_counter_increment"), std::string::npos) << reason;
}

TEST(BatchProgram, RejectsForeignElements) {
  util::Rng rng(3);
  Config c = build_config(test::random_dataset(rng, 4, 8));
  c.network.add_ste(anml::SymbolSet::all());  // stray element
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("outside the macro set"), std::string::npos) << reason;
}

TEST(BatchProgram, RejectsTamperedThreshold) {
  util::Rng rng(4);
  Config c = build_config(test::random_dataset(rng, 4, 8));
  c.network.element(c.layouts[0].counter).threshold = 3;  // != dims
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("threshold"), std::string::npos) << reason;
}

TEST(BatchProgram, ExtraMatchClassesCompileAndStayIdentical) {
  // Since the multiplexed-shape generalization, up to kMaxBatchMatchClasses
  // distinct matching classes are supported — a third class (formerly a
  // rejection) must compile AND stay bit-identical to the reference.
  util::Rng rng(5);
  Config c = build_config(test::random_dataset(rng, 4, 8));
  c.network.element(c.layouts[1].match[2]).symbols =
      anml::SymbolSet::single('z');
  const auto program = compile_or_die(c);
  EXPECT_EQ(program->match_classes(), 3u);
  const core::SymbolStreamEncoder enc(c.spec);
  auto stream = enc.encode_batch(test::random_dataset(rng, 2, 8));
  stream.push_back('z');  // exercise the foreign class directly
  expect_identical_runs(c, stream, "three classes");
}

TEST(BatchProgram, RejectsMoreClassesThanTheAcceptanceMaskHolds) {
  util::Rng rng(5);
  Config c = build_config(test::random_dataset(rng, 20, 24));
  // 17 distinct single-symbol classes overflow the 16-bit class budget.
  for (std::size_t i = 0; i <= kMaxBatchMatchClasses; ++i) {
    c.network.element(c.layouts[i].match[0]).symbols =
        anml::SymbolSet::single(static_cast<std::uint8_t>('a' + i));
  }
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("match classes"), std::string::npos) << reason;
}

TEST(BatchProgram, RejectsMacrosOutOfCounterOrder) {
  // The reference emits within-cycle reports in counter creation order;
  // a permuted macro span would silently reorder them, so it must decline.
  util::Rng rng(7);
  Config c = build_config(test::random_dataset(rng, 6, 8));
  std::swap(c.layouts[2], c.layouts[4]);
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("counter creation order"), std::string::npos)
      << reason;
}

TEST(BatchProgram, RejectsTamperedStartKinds) {
  util::Rng rng(6);
  // A legal automaton that is no longer the macro shape must be refused —
  // running it bit-parallel would silently decode wrong distances.
  Config c = build_config(test::random_dataset(rng, 3, 8));
  c.network.element(c.layouts[2].match[5]).start = anml::StartKind::kAllInput;
  std::string reason;
  const auto slots = c.slots();
  EXPECT_EQ(BatchProgram::try_compile(c.network, slots, {}, &reason), nullptr);
  EXPECT_NE(reason.find("start kind"), std::string::npos) << reason;
}

}  // namespace
}  // namespace apss::apsim
