#include "knn/exact.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace apss::knn {
namespace {

BinaryDataset tiny_dataset() {
  BinaryDataset d(4, 4);
  d.set_vector(0, util::BitVector::parse("1011"));
  d.set_vector(1, util::BitVector::parse("0000"));
  d.set_vector(2, util::BitVector::parse("1001"));
  d.set_vector(3, util::BitVector::parse("1111"));
  return d;
}

TEST(KnnScan, FindsExactNeighbors) {
  const BinaryDataset d = tiny_dataset();
  const util::BitVector q = util::BitVector::parse("1001");
  const auto result = knn_scan(d, q.words(), 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 2u);  // exact match, distance 0
  EXPECT_EQ(result[0].distance, 0u);
  EXPECT_EQ(result[1].id, 0u);  // distance 1
  EXPECT_EQ(result[1].distance, 1u);
}

TEST(KnnScan, KClampsToDatasetSize) {
  const BinaryDataset d = tiny_dataset();
  const util::BitVector q(4);
  EXPECT_EQ(knn_scan(d, q.words(), 100).size(), 4u);
  EXPECT_TRUE(knn_scan(d, q.words(), 0).empty());
}

TEST(KnnScan, TieBreaksById) {
  BinaryDataset d(3, 8);  // all identical -> all distance ties
  const auto result = knn_scan(d, util::BitVector(8).words(), 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_EQ(result[1].id, 1u);
  EXPECT_EQ(result[2].id, 2u);
}

TEST(KnnScan, HeapAndSelectAgree) {
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    const std::size_t dims = 8 + rng.below(200);
    const std::size_t k = 1 + rng.below(16);
    const BinaryDataset d = BinaryDataset::uniform(n, dims, rng.next());
    const BinaryDataset q = BinaryDataset::uniform(1, dims, rng.next());
    const auto heap = knn_scan(d, q.row(0), k, TopKStrategy::kBoundedHeap);
    const auto select = knn_scan(d, q.row(0), k, TopKStrategy::kSelect);
    EXPECT_EQ(heap, select) << "n=" << n << " dims=" << dims << " k=" << k;
  }
}

TEST(KnnScan, MatchesBruteForceSort) {
  util::Rng rng(22);
  const BinaryDataset d = BinaryDataset::uniform(300, 64, rng.next());
  const BinaryDataset q = BinaryDataset::uniform(5, 64, rng.next());
  for (std::size_t qi = 0; qi < q.size(); ++qi) {
    std::vector<Neighbor> all;
    for (std::size_t i = 0; i < d.size(); ++i) {
      all.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(
                         util::hamming_distance(d.row(i), q.row(qi)))});
    }
    std::sort(all.begin(), all.end());
    all.resize(10);
    EXPECT_EQ(knn_scan(d, q.row(qi), 10), all);
  }
}

TEST(AllDistances, MatchesPerRowHamming) {
  const BinaryDataset d = tiny_dataset();
  const util::BitVector q = util::BitVector::parse("1001");
  const auto dist = all_distances(d, q.words());
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 2u);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(BatchKnn, SerialAndParallelAgree) {
  const BinaryDataset d = BinaryDataset::uniform(500, 128, 31);
  const BinaryDataset q = BinaryDataset::uniform(64, 128, 32);
  util::ThreadPool pool(4);
  const auto serial = batch_knn(d, q, 5, nullptr);
  const auto parallel = batch_knn(d, q, 5, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "query " << i;
  }
}

TEST(IsValidKnnResult, AcceptsExactAnswerAndTieSwaps) {
  BinaryDataset d(4, 8);
  d.set_vector(0, util::BitVector::parse("00000000"));
  d.set_vector(1, util::BitVector::parse("00000011"));  // distance 2
  d.set_vector(2, util::BitVector::parse("00001100"));  // distance 2
  d.set_vector(3, util::BitVector::parse("11111111"));
  const util::BitVector q(8);
  const auto exact = knn_scan(d, q.words(), 2);
  EXPECT_TRUE(is_valid_knn_result(d, q.words(), 2, exact));

  // Swapping tied ids is still valid: {0, 2} instead of {0, 1}.
  std::vector<Neighbor> swapped = {{0, 0}, {2, 2}};
  EXPECT_TRUE(is_valid_knn_result(d, q.words(), 2, swapped));
}

TEST(IsValidKnnResult, RejectsBadAnswers) {
  const BinaryDataset d = tiny_dataset();
  const util::BitVector q = util::BitVector::parse("1001");
  // Wrong size.
  std::vector<Neighbor> short_result = {{2, 0}};
  EXPECT_FALSE(is_valid_knn_result(d, q.words(), 2, short_result));
  // Wrong distance.
  std::vector<Neighbor> wrong_dist = {{2, 1}, {0, 1}};
  EXPECT_FALSE(is_valid_knn_result(d, q.words(), 2, wrong_dist));
  // Not actually the nearest (distance multiset mismatch).
  std::vector<Neighbor> not_nearest = {{2, 0}, {1, 2}};
  EXPECT_FALSE(is_valid_knn_result(d, q.words(), 2, not_nearest));
  // Duplicate id.
  std::vector<Neighbor> dup = {{2, 0}, {2, 0}};
  EXPECT_FALSE(is_valid_knn_result(d, q.words(), 2, dup));
  // Unsorted.
  std::vector<Neighbor> unsorted = {{0, 1}, {2, 0}};
  EXPECT_FALSE(is_valid_knn_result(d, q.words(), 2, unsorted));
}

TEST(RecallAtK, ComputesOverlap) {
  const BinaryDataset d = tiny_dataset();
  const util::BitVector q = util::BitVector::parse("1001");
  const auto exact = knn_scan(d, q.words(), 2);  // ids {2, 0}
  EXPECT_DOUBLE_EQ(recall_at_k(d, q.words(), 2, exact), 1.0);
  const std::vector<Neighbor> half = {{2, 0}, {3, 2}};
  EXPECT_DOUBLE_EQ(recall_at_k(d, q.words(), 2, half), 0.5);
  const std::vector<Neighbor> none = {{1, 2}, {3, 2}};
  EXPECT_DOUBLE_EQ(recall_at_k(d, q.words(), 2, none), 0.0);
}

}  // namespace
}  // namespace apss::knn
