#include "knn/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace apss::knn {
namespace {

TEST(BinaryDataset, ConstructAndAccess) {
  BinaryDataset d(4, 70);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dims(), 70u);
  EXPECT_EQ(d.word_stride(), 2u);
  EXPECT_FALSE(d.get(2, 65));
  d.set(2, 65, true);
  EXPECT_TRUE(d.get(2, 65));
  EXPECT_FALSE(d.get(1, 65));
  EXPECT_FALSE(d.get(3, 65));
}

TEST(BinaryDataset, VectorRoundTrip) {
  BinaryDataset d(2, 12);
  const util::BitVector v = util::BitVector::parse("101100111000");
  d.set_vector(1, v);
  EXPECT_EQ(d.vector(1), v);
  EXPECT_EQ(d.vector(0).popcount(), 0u);
}

TEST(BinaryDataset, PushBackGrows) {
  BinaryDataset d;
  d.push_back(util::BitVector::parse("1010"));
  d.push_back(util::BitVector::parse("0101"));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dims(), 4u);
  EXPECT_THROW(d.push_back(util::BitVector::parse("11")), std::invalid_argument);
}

TEST(BinaryDataset, SubsetExtractsRows) {
  const BinaryDataset d = BinaryDataset::uniform(10, 64, 1);
  const std::vector<std::uint32_t> ids = {7, 2, 9};
  const BinaryDataset s = d.subset(ids);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.vector(0), d.vector(7));
  EXPECT_EQ(s.vector(1), d.vector(2));
  EXPECT_EQ(s.vector(2), d.vector(9));
}

TEST(BinaryDataset, UniformIsDeterministicAndBalanced) {
  const BinaryDataset a = BinaryDataset::uniform(100, 128, 7);
  const BinaryDataset b = BinaryDataset::uniform(100, 128, 7);
  const BinaryDataset c = BinaryDataset::uniform(100, 128, 8);
  EXPECT_EQ(a.vector(50), b.vector(50));
  EXPECT_NE(a.vector(50), c.vector(50));
  // Bit balance: expect ~50% ones overall.
  std::size_t ones = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ones += a.vector(i).popcount();
  }
  const double frac = static_cast<double>(ones) / (100.0 * 128.0);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(BinaryDataset, UniformMasksTailBits) {
  const BinaryDataset d = BinaryDataset::uniform(50, 70, 3);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto row = d.row(i);
    EXPECT_EQ(row[1] >> 6, 0u) << "tail bits beyond dim 70 must be zero";
  }
}

TEST(BinaryDataset, ClusteredHasTightClusters) {
  const BinaryDataset d = BinaryDataset::clustered(200, 128, 4, 0.02, 11);
  // Vectors are near one of 4 centers: nearest-neighbor distances within
  // the dataset should be far below the ~64 expected for uniform data.
  std::size_t close_pairs = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    std::size_t best = 128;
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (j == i) {
        continue;
      }
      best = std::min(best, util::hamming_distance(d.row(i), d.row(j)));
    }
    close_pairs += best < 20;
  }
  EXPECT_GT(close_pairs, 45u);
}

TEST(BinaryDataset, SaveLoadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "apss_dataset_test.bin")
          .string();
  const BinaryDataset d = BinaryDataset::uniform(33, 100, 5);
  d.save(path);
  const BinaryDataset back = BinaryDataset::load(path);
  ASSERT_EQ(back.size(), d.size());
  ASSERT_EQ(back.dims(), d.dims());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.vector(i), d.vector(i));
  }
  std::remove(path.c_str());
}

TEST(BinaryDataset, LoadRejectsMissingFile) {
  EXPECT_THROW(BinaryDataset::load("/nonexistent/apss.bin"),
               std::runtime_error);
}

TEST(PerturbedQueries, StayNearSources) {
  const BinaryDataset d = BinaryDataset::uniform(64, 128, 9);
  const BinaryDataset q = perturbed_queries(d, 32, 0.05, 10);
  ASSERT_EQ(q.size(), 32u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    std::size_t best = 128;
    for (std::size_t j = 0; j < d.size(); ++j) {
      best = std::min(best, util::hamming_distance(q.row(i), d.row(j)));
    }
    EXPECT_LT(best, 30u);
  }
}

}  // namespace
}  // namespace apss::knn
