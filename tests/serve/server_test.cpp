// serve::KnnServer contract suite (ISSUE 10, docs/ROBUSTNESS.md
// "Serving"): every submitted request resolves exactly once with a typed
// ResponseCode, answers are bit-identical to a standalone engine run at
// any worker count, overload sheds deterministically, drain loses
// nothing, and the watchdog unwedges a stalled batch. Runs under TSan in
// CI (label: serve).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "knn/dataset.hpp"
#include "serve/server.hpp"
#include "util/fault_injection.hpp"

namespace apss::serve {
namespace {

/// Every test starts and ends with the process-global injector disarmed.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::instance().disarm_all(); }
  void TearDown() override { util::FaultInjector::instance().disarm_all(); }
};

constexpr std::size_t kDims = 32;
constexpr std::size_t kVectors = 120;
constexpr std::size_t kK = 5;

knn::BinaryDataset bed_data() {
  return knn::BinaryDataset::uniform(kVectors, kDims, 901);
}

ServerOptions bed_options(std::size_t workers) {
  ServerOptions options;
  options.k = kK;
  options.workers = workers;
  options.engine.threads = 1;  // per worker; scale-out is via workers
  // Several board configurations so batches really shard.
  options.engine.max_vectors_per_config = 40;
  return options;
}

// ---------------------------------------------------------------------------
// Oracle bit-identity: concurrent batched serving vs a single-flight
// standalone engine, at 1 and 4 workers.

TEST_F(ServeTest, ConcurrentClientsMatchSingleFlightOracle) {
  const auto data = bed_data();
  const auto queries = knn::perturbed_queries(data, 48, 0.15, 902);

  core::EngineOptions oracle_options;
  oracle_options.threads = 1;
  oracle_options.max_vectors_per_config = 40;
  core::ApKnnEngine oracle(data, oracle_options);
  const auto want = oracle.search(queries, kK);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    KnnServer server(data, bed_options(workers));
    // 4 client threads race 12 submissions each; batching composition is
    // scheduling-dependent, the ANSWERS must not be.
    std::vector<std::future<Response>> futures(queries.size());
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t q = c; q < queries.size(); q += 4) {
          futures[q] = server.submit(queries.vector(q));
        }
      });
    }
    for (auto& client : clients) {
      client.join();
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const Response response = futures[q].get();
      ASSERT_EQ(response.code, ResponseCode::kOk)
          << "workers=" << workers << " query " << q;
      EXPECT_EQ(response.neighbors, want[q])
          << "workers=" << workers << " query " << q;
      EXPECT_GE(response.batch_seq, 1u);
      EXPECT_GE(response.batch_size, 1u);
    }
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, queries.size());
    EXPECT_EQ(stats.ok, queries.size());
    EXPECT_TRUE(stats.accounted());
    EXPECT_EQ(stats.batched_requests, queries.size());
    EXPECT_GE(stats.batches, 1u);
  }
}

TEST_F(ServeTest, BlockingSearchConvenience) {
  const auto data = bed_data();
  KnnServer server(data, bed_options(1));
  const Response response = server.search(data.vector(3));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.neighbors.size(), kK);
  // The query IS vector 3: it must come back first at distance 0.
  EXPECT_EQ(response.neighbors[0].id, 3u);
  EXPECT_EQ(response.neighbors[0].distance, 0u);
}

// ---------------------------------------------------------------------------
// Admission: typed rejections, the expired-at-submit fast path, shedding.

TEST_F(ServeTest, DimensionMismatchRejectsInvalidArgument) {
  KnnServer server(bed_data(), bed_options(1));
  const Response response =
      server.submit(util::BitVector(kDims + 1)).get();
  EXPECT_EQ(response.code, ResponseCode::kInvalidArgument);
  EXPECT_TRUE(response.neighbors.empty());
}

TEST_F(ServeTest, ExpiredDeadlineResolvesBeforeAnySimulatorWork) {
  // The satellite fix: a deadline already expired at submit time resolves
  // kDeadlineExceeded at ADMISSION. With defer_start there are no workers
  // at all, so a ready future proves no simulator work was involved.
  ServerOptions options = bed_options(1);
  options.defer_start = true;
  KnnServer server(bed_data(), options);
  auto future =
      server.submit(util::BitVector(kDims), util::Deadline::after_ms(-5));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Response response = future.get();
  EXPECT_EQ(response.code, ResponseCode::kDeadlineExceeded);
  EXPECT_EQ(response.batch_seq, 0u);  // never joined a batch

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired_at_admission, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  server.drain();
}

TEST_F(ServeTest, QueueFullShedsDeterministically) {
  // No workers running: exactly max_queue_depth requests are admitted, the
  // rest shed kOverloaded immediately — deterministic, not a race.
  ServerOptions options = bed_options(2);
  options.defer_start = true;
  options.max_queue_depth = 4;
  const auto data = bed_data();
  KnnServer server(data, options);

  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 10; ++i) {
    futures.push_back(server.submit(data.vector(i % data.size())));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (i < 4) {
      EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                std::future_status::timeout)
          << "request " << i << " should still be queued";
    } else {
      ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "request " << i << " should have been shed";
      EXPECT_EQ(futures[i].get().code, ResponseCode::kOverloaded);
    }
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_overload, 6u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.queue_high_water, 4u);

  // Starting the workers serves the admitted four normally.
  server.start();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(futures[i].get().code, ResponseCode::kOk);
  }
  server.drain();
  EXPECT_TRUE(server.stats().accounted());
}

TEST_F(ServeTest, InflightCapSheds) {
  ServerOptions options = bed_options(1);
  options.defer_start = true;
  options.max_queue_depth = 100;
  options.max_inflight = 3;
  const auto data = bed_data();
  KnnServer server(data, options);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(server.submit(data.vector(i)));
  }
  EXPECT_EQ(server.stats().rejected_overload, 3u);
  EXPECT_EQ(server.stats().admitted, 3u);
  server.start();
  server.drain();
  EXPECT_TRUE(server.stats().accounted());
}

TEST_F(ServeTest, SubmitAfterDrainRejectsShuttingDown) {
  const auto data = bed_data();
  KnnServer server(data, bed_options(1));
  server.drain();
  EXPECT_TRUE(server.draining());
  const Response response = server.submit(data.vector(0)).get();
  EXPECT_EQ(response.code, ResponseCode::kShuttingDown);
  server.drain();  // idempotent
  EXPECT_TRUE(server.stats().accounted());
}

TEST_F(ServeTest, DrainWithoutStartResolvesStagedRequests) {
  ServerOptions options = bed_options(1);
  options.defer_start = true;
  const auto data = bed_data();
  KnnServer server(data, options);
  auto future = server.submit(data.vector(0));
  server.drain();
  EXPECT_EQ(future.get().code, ResponseCode::kShuttingDown);
  EXPECT_TRUE(server.stats().accounted());
}

// ---------------------------------------------------------------------------
// Drain under load: every response exactly once, nothing lost.

TEST_F(ServeTest, DrainUnderLoadLosesNothing) {
  const auto data = bed_data();
  const auto queries = knn::perturbed_queries(data, 16, 0.15, 903);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ServerOptions options = bed_options(workers);
    options.max_queue_depth = 64;
    options.max_inflight = 128;
    KnnServer server(data, options);

    // 4 clients hammer the server until drain shuts the door on them.
    std::vector<std::vector<std::future<Response>>> per_client(4);
    std::vector<std::thread> clients;
    std::atomic<bool> go{true};
    for (std::size_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        std::size_t q = c;
        while (go.load(std::memory_order_acquire)) {
          per_client[c].push_back(
              server.submit(queries.vector(q % queries.size())));
          q += 4;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.drain();  // concurrent with active submitters
    go.store(false, std::memory_order_release);
    for (auto& client : clients) {
      client.join();
    }

    std::size_t total = 0;
    std::size_t ok = 0;
    for (auto& futures : per_client) {
      for (auto& future : futures) {
        // Exactly-once: after drain every future is ready, none hangs.
        ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
                  std::future_status::ready)
            << "workers=" << workers;
        const Response response = future.get();
        ok += response.ok();
        EXPECT_TRUE(response.code == ResponseCode::kOk ||
                    response.code == ResponseCode::kOverloaded ||
                    response.code == ResponseCode::kShuttingDown)
            << "workers=" << workers << " unexpected code "
            << to_string(response.code);
        ++total;
      }
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, total) << "workers=" << workers;
    EXPECT_TRUE(stats.accounted()) << "workers=" << workers;
    EXPECT_EQ(stats.ok, ok) << "workers=" << workers;
    EXPECT_GE(ok, 1u) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Deadlines in flight and the watchdog.

TEST_F(ServeTest, QueuedRequestDeadlineIsReapedBehindStalledBatch) {
  // Worker 0 wedges on a stalled batch; a short-deadline request queued
  // behind it must resolve kDeadlineExceeded from the watchdog's queue
  // reap, never reaching a batch.
  ServerOptions options = bed_options(1);
  options.watchdog_timeout_ms = 0;  // deadline reaping only
  options.watchdog_poll_ms = 1;
  const auto data = bed_data();

  util::FaultInjector::Plan stall;
  stall.fail = false;
  stall.fail_on_hit = 1;
  stall.fail_count = 1;
  stall.stall_ms = 1000;  // generous: must outlast the reap under TSan load
  util::FaultInjector::instance().arm(util::kFaultServeBatch, stall);

  KnnServer server(data, options);
  auto stalled = server.submit(data.vector(0));
  // Give the worker time to take the first batch (and hit the stall).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reaped = server.submit(data.vector(1), 30.0);

  const Response reaped_response = reaped.get();
  EXPECT_EQ(reaped_response.code, ResponseCode::kDeadlineExceeded);
  EXPECT_EQ(reaped_response.batch_seq, 0u) << "must be reaped from the queue";
  EXPECT_EQ(stalled.get().code, ResponseCode::kOk);
  server.drain();
  EXPECT_TRUE(server.stats().accounted());
}

TEST_F(ServeTest, WatchdogFailsWedgedBatch) {
  ServerOptions options = bed_options(1);
  // High enough that no healthy batch trips it even under TSan at full
  // ctest parallelism (the follow-up search below runs against the same
  // watchdog), low enough that the wedge resolves well before the stall.
  options.watchdog_timeout_ms = 1500;
  options.watchdog_poll_ms = 1;
  const auto data = bed_data();

  // The first batch wedges for far longer than the watchdog timeout.
  util::FaultInjector::Plan stall;
  stall.fail = false;
  stall.fail_on_hit = 1;
  stall.fail_count = 1;
  stall.stall_ms = 5000;
  util::FaultInjector::instance().arm(util::kFaultServeBatch, stall);

  KnnServer server(data, options);
  const auto start = std::chrono::steady_clock::now();
  auto wedged = server.submit(data.vector(0));
  const Response response = wedged.get();
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  // The watchdog resolves the request long before the stall ends.
  EXPECT_EQ(response.code, ResponseCode::kInternal);
  EXPECT_LT(waited_ms, 4500.0);
  EXPECT_GE(server.stats().watchdog_fired, 1u);

  util::FaultInjector::instance().disarm_all();
  // The server survives: the worker takes fresh batches afterwards.
  EXPECT_EQ(server.search(data.vector(1)).code, ResponseCode::kOk);
  server.drain();
  EXPECT_TRUE(server.stats().accounted());
}

TEST_F(ServeTest, MidBatchExpiryLeavesBatchMatesBitIdentical) {
  // Two requests share one batch; the short-deadline member expires while
  // the batch stalls, the unlimited member still gets the exact answer.
  const auto data = bed_data();
  core::EngineOptions oracle_options;
  oracle_options.threads = 1;
  oracle_options.max_vectors_per_config = 40;
  core::ApKnnEngine oracle(data, oracle_options);
  knn::BinaryDataset one(1, kDims);
  one.set_vector(0, data.vector(7));
  const auto want = oracle.search(one, kK);

  ServerOptions options = bed_options(1);
  options.defer_start = true;
  options.watchdog_timeout_ms = 0;
  options.watchdog_poll_ms = 1;
  options.batch_window_ms = 0;  // flush whatever is queued at once
  KnnServer server(data, options);

  util::FaultInjector::Plan stall;
  stall.fail = false;
  stall.fail_on_hit = 1;
  stall.fail_count = 1;
  stall.stall_ms = 150;
  util::FaultInjector::instance().arm(util::kFaultServeBatch, stall);

  // Stage both BEFORE starting workers so they land in the same batch.
  auto doomed = server.submit(data.vector(3), 40.0);
  auto survivor = server.submit(data.vector(7));
  server.start();

  const Response doomed_response = doomed.get();
  const Response survivor_response = survivor.get();
  EXPECT_EQ(doomed_response.code, ResponseCode::kDeadlineExceeded);
  ASSERT_EQ(survivor_response.code, ResponseCode::kOk);
  EXPECT_EQ(survivor_response.neighbors, want[0]);
  EXPECT_EQ(survivor_response.batch_size, 2u);
  EXPECT_EQ(doomed_response.batch_seq, survivor_response.batch_seq);
  server.drain();
  EXPECT_TRUE(server.stats().accounted());
}

}  // namespace
}  // namespace apss::serve
