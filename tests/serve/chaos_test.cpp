// Chaos extension for the serving core (ISSUE 10): drives the two serve
// fault sites (serve.admit, serve.batch) plus an engine-level degrade
// through the server at 1 and 4 workers, asserting the typed-outcome and
// zero-leak contracts hold under injected failure. Runs under TSan in CI
// (labels: serve, chaos).

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "knn/dataset.hpp"
#include "serve/server.hpp"
#include "util/fault_injection.hpp"

namespace apss::serve {
namespace {

class ServeChaos : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::instance().disarm_all(); }
  void TearDown() override { util::FaultInjector::instance().disarm_all(); }
};

constexpr std::size_t kDims = 32;
constexpr std::size_t kVectors = 120;
constexpr std::size_t kK = 5;

knn::BinaryDataset bed_data() {
  return knn::BinaryDataset::uniform(kVectors, kDims, 911);
}

ServerOptions bed_options(std::size_t workers) {
  ServerOptions options;
  options.k = kK;
  options.workers = workers;
  options.engine.threads = 1;
  options.engine.max_vectors_per_config = 40;
  return options;
}

TEST_F(ServeChaos, AdmitFaultWindowFailsExactlyItsRequests) {
  const auto data = bed_data();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    // Admission attempts 3..5 fail kInternal; hits are counted over
    // sequential submits, so the window is deterministic.
    util::FaultInjector::Plan plan;
    plan.fail_on_hit = 3;
    plan.fail_count = 3;
    util::FaultInjector::instance().arm(util::kFaultServeAdmit, plan);

    KnnServer server(data, bed_options(workers));
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < 12; ++i) {
      futures.push_back(server.submit(data.vector(i)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response response = futures[i].get();
      const bool in_window = i >= 2 && i < 5;  // hits are 1-based
      EXPECT_EQ(response.code, in_window ? ResponseCode::kInternal
                                         : ResponseCode::kOk)
          << "workers=" << workers << " request " << i;
    }
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.internal_errors, 3u) << "workers=" << workers;
    EXPECT_EQ(stats.ok, 9u) << "workers=" << workers;
    EXPECT_EQ(stats.admitted, 9u) << "workers=" << workers;
    EXPECT_TRUE(stats.accounted()) << "workers=" << workers;
    util::FaultInjector::instance().disarm_all();
  }
}

TEST_F(ServeChaos, BatchFaultFailsThatBatchOnly) {
  const auto data = bed_data();
  // Single worker, one request per batch (submit-then-wait), so batch
  // sequence numbers are deterministic: batch 2 fails, 1 and 3..6 serve.
  util::FaultInjector::Plan plan;
  plan.fail_on_hit = 2;
  plan.fail_count = 1;
  util::FaultInjector::instance().arm(util::kFaultServeBatch, plan);

  KnnServer server(data, bed_options(1));
  for (std::size_t i = 0; i < 6; ++i) {
    const Response response = server.search(data.vector(i));
    EXPECT_EQ(response.code,
              i == 1 ? ResponseCode::kInternal : ResponseCode::kOk)
        << "request " << i;
  }
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.internal_errors, 1u);
  EXPECT_EQ(stats.ok, 5u);
  EXPECT_TRUE(stats.accounted());
}

TEST_F(ServeChaos, BatchFaultsUnderConcurrencyStayAccounted) {
  // At 4 workers which requests land in the failing window is
  // scheduling-dependent — and so is the number of batches (one worker may
  // coalesce everything into a single frame), so the window is anchored at
  // the FIRST batch. The invariants are typed outcomes and zero leaks.
  const auto data = bed_data();
  util::FaultInjector::Plan plan;
  plan.fail_on_hit = 1;
  plan.fail_count = 2;
  util::FaultInjector::instance().arm(util::kFaultServeBatch, plan);

  KnnServer server(data, bed_options(4));
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 32; ++i) {
    futures.push_back(server.submit(data.vector(i % data.size())));
  }
  std::size_t internal = 0;
  for (auto& future : futures) {
    const Response response = future.get();
    ASSERT_TRUE(response.code == ResponseCode::kOk ||
                response.code == ResponseCode::kInternal)
        << to_string(response.code);
    internal += response.code == ResponseCode::kInternal;
  }
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.internal_errors, internal);
  EXPECT_GE(internal, 1u);  // at least batch hit 2 existed
  EXPECT_TRUE(stats.accounted());
}

TEST_F(ServeChaos, EngineDegradeStaysOkAndIsCounted) {
  // A persistent bit-parallel frame fault forces the engine's kRetry
  // policy to degrade configurations to the cycle-accurate reference:
  // answers stay exact and kOk, and the server counts the degraded batch.
  const auto data = bed_data();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ServerOptions options = bed_options(workers);
    options.engine.backend = core::SimulationBackend::kBitParallel;
    KnnServer baseline_server(data, options);
    const Response want = baseline_server.search(data.vector(9));
    ASSERT_TRUE(want.ok());
    baseline_server.drain();

    util::FaultInjector::Plan plan;  // every bit-parallel frame attempt
    util::FaultInjector::instance().arm(util::kFaultBatchFrame, plan);
    KnnServer server(data, options);
    const Response response = server.search(data.vector(9));
    util::FaultInjector::instance().disarm_all();

    ASSERT_EQ(response.code, ResponseCode::kOk) << "workers=" << workers;
    EXPECT_EQ(response.neighbors, want.neighbors) << "workers=" << workers;
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.degraded_batches, 1u) << "workers=" << workers;
    EXPECT_TRUE(stats.accounted()) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace apss::serve
