// Engine-level backend equivalence: search() under EngineOptions::backend =
// kBitParallel must return the same neighbor lists AND the same EngineStats
// as the cycle-accurate default, across single/multi-configuration splits,
// thread pools, and chunk sizes — and must fall back gracefully when the
// device features put the configuration outside the fast path's subset.

#include <gtest/gtest.h>

#include "apss_test_support.hpp"
#include "core/engine.hpp"
#include "util/thread_pool.hpp"

namespace apss::core {
namespace {

EngineOptions backend_options(SimulationBackend backend,
                              std::size_t vectors_per_config = 0) {
  EngineOptions opt;
  opt.backend = backend;
  opt.max_vectors_per_config = vectors_per_config;
  return opt;
}

void expect_same_search(const knn::BinaryDataset& data,
                        const knn::BinaryDataset& queries, std::size_t k,
                        EngineOptions cycle_opt, EngineOptions bit_opt,
                        const std::string& context) {
  cycle_opt.backend = SimulationBackend::kCycleAccurate;
  bit_opt.backend = SimulationBackend::kBitParallel;
  ApKnnEngine cycle(data, cycle_opt);
  ApKnnEngine bit(data, bit_opt);
  const auto expected = cycle.search(queries, k);
  const auto actual = bit.search(queries, k);
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(actual[q], expected[q]) << context << " query " << q;
  }
  EXPECT_TRUE(bit.last_stats().same_work(cycle.last_stats())) << context;
  test::expect_valid_knn_results(data, queries, k, actual, context);
}

TEST(EngineBackend, BitParallelCompilesEveryConfiguration) {
  const auto data = knn::BinaryDataset::uniform(37, 16, 301);
  ApKnnEngine engine(data,
                     backend_options(SimulationBackend::kBitParallel, 8));
  EXPECT_EQ(engine.configurations(), 5u);
  EXPECT_EQ(engine.bit_parallel_configurations(), 5u);

  // Per-family counters: every configuration is a plain Hamming board.
  const BackendCompileStats& bs = engine.backend_stats();
  EXPECT_EQ(bs.configurations, 5u);
  EXPECT_EQ(bs.bit_parallel, 5u);
  EXPECT_EQ(bs.fallback, 0u);
  EXPECT_EQ(bs.hamming, 5u);
  EXPECT_EQ(bs.packed, 0u);
  EXPECT_EQ(bs.multiplexed, 0u);
  EXPECT_TRUE(bs.fallback_reasons.empty());
  EXPECT_EQ(engine.project(3).backend, bs);

  ApKnnEngine reference(data,
                        backend_options(SimulationBackend::kCycleAccurate, 8));
  EXPECT_EQ(reference.bit_parallel_configurations(), 0u);
  EXPECT_EQ(reference.backend_stats().configurations, 5u);
  EXPECT_EQ(reference.backend_stats().bit_parallel, 0u);
  EXPECT_EQ(reference.backend_stats().fallback, 0u);  // never attempted
}

TEST(EngineBackend, SearchMatchesAcrossConfigurationSplits) {
  util::Rng rng(302);
  for (const std::size_t cap : {0u, 1u, 7u, 16u}) {
    const auto data = test::random_dataset(rng, 26, 24);
    const auto queries = test::random_dataset(rng, 6, 24);
    expect_same_search(data, queries, 5, backend_options({}, cap),
                       backend_options({}, cap),
                       "cap=" + std::to_string(cap));
  }
}

TEST(EngineBackend, SearchMatchesWithThreadPoolAndChunking) {
  const auto data = knn::BinaryDataset::uniform(30, 32, 303);
  const auto queries = knn::BinaryDataset::uniform(11, 32, 304);
  util::ThreadPool pool(4);
  EngineOptions opt = backend_options({}, 9);
  opt.pool = &pool;
  opt.queries_per_chunk = 3;
  expect_same_search(data, queries, 4, opt, opt, "pooled");
}

TEST(EngineBackend, WideDimsUseDeeperCollectorTrees) {
  // 128-dim macros have a 1-level tree; shrink the fan-in caps to force a
  // deeper tree through the engine path as well.
  const auto data = knn::BinaryDataset::uniform(12, 96, 305);
  const auto queries = knn::BinaryDataset::uniform(4, 96, 306);
  EngineOptions opt = backend_options({}, 5);
  opt.macro.collector_fan_in = 4;
  opt.macro.max_counter_fan_in = 4;
  expect_same_search(data, queries, 3, opt, opt, "deep-tree");
}

TEST(EngineBackend, PackedConfigurationsCompileAndMatch) {
  // Vector-packed configurations (Sec. VI-A) take the fast path too: the
  // packed try_compile overload must accept every engine-built group and
  // search() must stay identical to the cycle-accurate reference.
  util::Rng rng(310);
  for (const auto style :
       {CollectorStyle::kFlat, CollectorStyle::kTree}) {
    const auto data = test::random_dataset(rng, 29, 24);
    const auto queries = test::random_dataset(rng, 6, 24);
    EngineOptions opt = backend_options({}, 10);
    opt.packing_group_size = 4;
    opt.packing_style = style;
    ApKnnEngine bit(data, [&] {
      EngineOptions o = opt;
      o.backend = SimulationBackend::kBitParallel;
      return o;
    }());
    EXPECT_EQ(bit.bit_parallel_configurations(), bit.configurations());
    EXPECT_EQ(bit.backend_stats().packed, bit.configurations());
    EXPECT_EQ(bit.backend_stats().hamming, 0u);
    expect_same_search(data, queries, 5, opt, opt,
                       style == CollectorStyle::kFlat ? "packed-flat"
                                                      : "packed-tree");
  }
}

TEST(EngineBackend, PackedFallsBackWhenDeviceFeaturesUnsupported) {
  const auto data = knn::BinaryDataset::uniform(18, 16, 309);
  const auto queries = knn::BinaryDataset::uniform(5, 16, 311);
  EngineOptions opt = backend_options(SimulationBackend::kBitParallel, 6);
  opt.packing_group_size = 3;
  opt.device = apsim::DeviceConfig::opt_ext();
  ApKnnEngine engine(data, opt);
  EXPECT_EQ(engine.bit_parallel_configurations(), 0u);
  const auto results = engine.search(queries, 4);
  test::expect_valid_knn_results(data, queries, 4, results);
}

TEST(EngineBackend, FallsBackWhenDeviceFeaturesUnsupported) {
  // Opt+Ext raises the counter-increment cap to 8: outside the bit-parallel
  // subset, so every configuration must fall back yet still answer exactly.
  const auto data = knn::BinaryDataset::uniform(18, 16, 307);
  const auto queries = knn::BinaryDataset::uniform(5, 16, 308);
  EngineOptions opt = backend_options(SimulationBackend::kBitParallel, 6);
  opt.device = apsim::DeviceConfig::opt_ext();
  ApKnnEngine engine(data, opt);
  EXPECT_EQ(engine.bit_parallel_configurations(), 0u);
  const auto results = engine.search(queries, 4);
  test::expect_valid_knn_results(data, queries, 4, results);

  // No silent fallback: every declined configuration carries its reason,
  // aggregated per distinct reason, and search() embeds them in the stats.
  const BackendCompileStats& bs = engine.backend_stats();
  EXPECT_EQ(bs.configurations, 3u);
  EXPECT_EQ(bs.bit_parallel, 0u);
  EXPECT_EQ(bs.fallback, 3u);
  ASSERT_EQ(bs.fallback_reasons.size(), 1u);
  EXPECT_EQ(bs.fallback_reasons[0].second, 3u);
  EXPECT_NE(bs.fallback_reasons[0].first.find("max_counter_increment"),
            std::string::npos)
      << bs.fallback_reasons[0].first;
  EXPECT_EQ(engine.last_stats().backend, bs);
}

}  // namespace
}  // namespace apss::core
