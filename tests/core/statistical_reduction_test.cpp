#include "core/opt/statistical_reduction.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apsim/simulator.hpp"
#include "core/stream.hpp"
#include "knn/exact.hpp"

namespace apss::core {
namespace {

TEST(ReductionGroup, BuildsFig7Structure) {
  const auto data = knn::BinaryDataset::uniform(4, 8, 700);
  anml::AutomataNetwork net;
  const auto layout = append_reduction_group(net, data, 0, 4, /*k_prime=*/2);
  EXPECT_EQ(layout.macros.size(), 4u);
  EXPECT_NE(layout.local_neighbor_counter, anml::kInvalidElement);
  EXPECT_EQ(net.element(layout.local_neighbor_counter).threshold, 2u);
  // LNC resets every distance counter (4 edges) and takes enables from
  // every report state (4 edges) plus one EOF re-arm edge.
  EXPECT_EQ(net.fan_out(layout.local_neighbor_counter), 4u);
  EXPECT_EQ(net.fan_in(layout.local_neighbor_counter), 5u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(ReductionGroup, RejectsBadArguments) {
  const auto data = knn::BinaryDataset::uniform(4, 8, 701);
  anml::AutomataNetwork net;
  EXPECT_THROW(append_reduction_group(net, data, 0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(append_reduction_group(net, data, 0, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(append_reduction_group(net, data, 2, 4, 1),
               std::invalid_argument);
}

/// Runs one query against a reduction group and returns report events.
std::vector<apsim::ReportEvent> run_group(const knn::BinaryDataset& data,
                                          std::uint32_t k_prime,
                                          const util::BitVector& query) {
  anml::AutomataNetwork net;
  append_reduction_group(net, data, 0, data.size(), k_prime);
  apsim::Simulator sim(net);
  const SymbolStreamEncoder enc(StreamSpec{data.dims(), 1});
  return sim.run(enc.encode_query(query));
}

TEST(ReductionGroup, SuppressesDistantReports) {
  // 8 vectors at staggered distances from the all-zeros query: vector i has
  // i bits set, so reports arrive one cycle apart. With k'=2 the LNC resets
  // the group shortly after the 2nd report; distant vectors never report.
  const std::size_t d = 16;
  knn::BinaryDataset data(8, d);
  for (std::size_t v = 0; v < 8; ++v) {
    for (std::size_t i = 0; i < v; ++i) {
      data.set(v, i, true);
    }
  }
  const util::BitVector query(d);

  const auto without = run_group(data, /*k_prime=*/255, query);
  EXPECT_EQ(without.size(), 8u);  // threshold never reached: all report

  const auto with = run_group(data, /*k_prime=*/2, query);
  EXPECT_LT(with.size(), 8u);
  EXPECT_GE(with.size(), 2u);  // the top-k' always escape
  // The survivors are the closest vectors (earliest reporters).
  std::set<std::uint32_t> ids;
  for (const auto& e : with) {
    ids.insert(e.report_code);
  }
  EXPECT_TRUE(ids.count(0));
  EXPECT_TRUE(ids.count(1));
  // The farthest vector is suppressed.
  EXPECT_FALSE(ids.count(7));
}

TEST(ReductionGroup, BandwidthReductionApproachesPOverKPrime) {
  // 16 staggered vectors, k'=2: expect ~2-5 reports (reset latency lets a
  // couple extra through) instead of 16 -> report reduction >= 3x.
  const std::size_t d = 32;
  knn::BinaryDataset data(16, d);
  for (std::size_t v = 0; v < 16; ++v) {
    for (std::size_t i = 0; i < v; ++i) {
      data.set(v, i, true);
    }
  }
  const auto events = run_group(data, 2, util::BitVector(d));
  EXPECT_LE(events.size(), 5u);
}

TEST(ReductionGroup, ReArmsForNextQuery) {
  knn::BinaryDataset data(4, 8);
  for (std::size_t v = 0; v < 4; ++v) {
    for (std::size_t i = 0; i < v; ++i) {
      data.set(v, i, true);
    }
  }
  anml::AutomataNetwork net;
  append_reduction_group(net, data, 0, 4, /*k_prime=*/1);
  apsim::Simulator sim(net);
  const SymbolStreamEncoder enc(StreamSpec{8, 1});
  knn::BinaryDataset queries(2, 8);  // two identical all-zero queries
  const auto events = sim.run(enc.encode_batch(queries));
  // Both frames must produce (suppressed) reports; the closest vector id 0
  // reports in each frame.
  const std::size_t cpq = StreamSpec{8, 1}.cycles_per_query();
  bool frame0 = false, frame1 = false;
  for (const auto& e : events) {
    if (e.report_code == 0) {
      (e.cycle <= cpq ? frame0 : frame1) = true;
    }
  }
  EXPECT_TRUE(frame0);
  EXPECT_TRUE(frame1);
}

// --- Table VI Monte Carlo model ----------------------------------------------

TEST(ReductionModel, RejectsUncoveredK) {
  ReductionModelParams p;
  p.n = 32;
  p.group_size = 16;  // 2 groups
  p.k = 4;
  p.k_prime = 1;  // k' x R = 2 < k
  EXPECT_THROW(evaluate_reduction_model(p), std::invalid_argument);
}

TEST(ReductionModel, LargeKPrimeIsAlwaysCorrect) {
  ReductionModelParams p;
  p.n = 128;
  p.dims = 32;
  p.group_size = 16;
  p.k = 4;
  p.k_prime = 16;  // keep everything: lossless
  p.queries_per_run = 16;
  p.runs = 5;
  const auto r = evaluate_reduction_model(p);
  EXPECT_DOUBLE_EQ(r.incorrect_run_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.incorrect_query_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_reports_per_query, 128.0);
}

TEST(ReductionModel, AccuracyImprovesWithKPrime) {
  ReductionModelParams p;
  p.n = 256;
  p.dims = 64;
  p.group_size = 16;
  p.k = 8;
  p.queries_per_run = 64;
  p.runs = 10;
  double prev = 1.1;
  for (const std::size_t kp : {1u, 2u, 4u}) {
    p.k_prime = kp;
    const auto r = evaluate_reduction_model(p);
    EXPECT_LE(r.incorrect_query_fraction, prev) << "k'=" << kp;
    prev = r.incorrect_query_fraction + 1e-12;
  }
}

TEST(ReductionModel, BandwidthScalesWithKPrime) {
  ReductionModelParams p;
  p.n = 256;
  p.dims = 32;
  p.group_size = 16;
  p.k = 2;
  p.k_prime = 2;
  p.queries_per_run = 8;
  p.runs = 2;
  const auto r = evaluate_reduction_model(p);
  // 16 groups x k'=2 = 32 reports instead of 256: an 8x reduction.
  EXPECT_DOUBLE_EQ(r.mean_reports_per_query, 32.0);
}

TEST(ReductionModel, DeterministicForSeed) {
  ReductionModelParams p;
  p.n = 128;
  p.dims = 64;
  p.group_size = 16;
  p.k = 2;
  p.k_prime = 1;
  p.queries_per_run = 32;
  p.runs = 4;
  const auto a = evaluate_reduction_model(p);
  const auto b = evaluate_reduction_model(p);
  EXPECT_DOUBLE_EQ(a.incorrect_query_fraction, b.incorrect_query_fraction);
  util::ThreadPool pool(4);
  const auto c = evaluate_reduction_model(p, &pool);
  EXPECT_DOUBLE_EQ(a.incorrect_query_fraction, c.incorrect_query_fraction);
}

}  // namespace
}  // namespace apss::core
