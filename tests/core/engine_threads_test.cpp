// Configuration-shard scale-out differential tests: ApKnnEngine and
// MultiplexedKnn must produce bit-identical neighbor lists, EngineStats,
// AND merged ReportEvent streams at every thread count — the merge walks
// shards in configuration/frame order, never completion order, so thread
// scheduling can never show through. These run under TSan in CI
// (APSS_SANITIZE=thread) to also prove the sharding is race-free.

#include <gtest/gtest.h>

#include "apss_test_support.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "util/thread_pool.hpp"

namespace apss::core {
namespace {

struct SearchRun {
  std::vector<std::vector<knn::Neighbor>> results;
  std::vector<apsim::ReportEvent> stream;
  EngineStats stats;
  BackendCompileStats compile;
};

SearchRun run_engine(const knn::BinaryDataset& data,
               const knn::BinaryDataset& queries, std::size_t k,
               EngineOptions opt, std::size_t threads) {
  opt.threads = threads;
  opt.collect_report_stream = true;
  ApKnnEngine engine(data, opt);
  SearchRun r;
  r.results = engine.search(queries, k);
  r.stream = engine.last_report_stream();
  r.stats = engine.last_stats();
  r.compile = engine.backend_stats();
  return r;
}

void expect_thread_invariant(const knn::BinaryDataset& data,
                             const knn::BinaryDataset& queries, std::size_t k,
                             EngineOptions opt, const std::string& context) {
  const SearchRun reference = run_engine(data, queries, k, opt, 1);
  EXPECT_FALSE(reference.stream.empty()) << context;
  for (const std::size_t threads : {2, 8}) {
    const SearchRun run = run_engine(data, queries, k, opt, threads);
    const std::string ctx = context + " threads=" + std::to_string(threads);
    EXPECT_EQ(run.results, reference.results) << ctx;
    EXPECT_EQ(run.stream, reference.stream) << ctx;
    EXPECT_EQ(run.stats, reference.stats) << ctx;
    EXPECT_EQ(run.compile, reference.compile) << ctx;
  }
  test::expect_valid_knn_results(data, queries, k, reference.results, context);
}

TEST(EngineThreads, BitParallelStreamIdenticalAcrossThreadCounts) {
  const auto data = knn::BinaryDataset::uniform(41, 24, 601);
  const auto queries = knn::BinaryDataset::uniform(9, 24, 602);
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.max_vectors_per_config = 7;  // 6 configurations
  opt.queries_per_chunk = 2;       // many (config, frame) shards
  expect_thread_invariant(data, queries, 4, opt, "bit-parallel");
}

TEST(EngineThreads, LaneWidthSweepIdenticalAcrossThreadsAndWidths) {
  // One reference run at 64-bit lanes, then every lane width at 1/2/8
  // threads: neighbor lists, merged streams, and EngineStats must all be
  // bit-identical — the shard merge may never observe the SIMD width.
  const auto data = knn::BinaryDataset::uniform(41, 24, 614);
  const auto queries = knn::BinaryDataset::uniform(9, 24, 615);
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.max_vectors_per_config = 7;  // 6 configurations
  opt.queries_per_chunk = 2;
  opt.lane_width = apsim::LaneWidth::k64;
  const SearchRun reference = run_engine(data, queries, 4, opt, 1);
  EXPECT_FALSE(reference.stream.empty());
  for (const apsim::LaneWidth w : {apsim::LaneWidth::k64,
                                   apsim::LaneWidth::k256,
                                   apsim::LaneWidth::k512}) {
    opt.lane_width = w;
    const SearchRun width_ref = run_engine(data, queries, 4, opt, 1);
    for (const std::size_t threads : {1, 2, 8}) {
      const SearchRun run = run_engine(data, queries, 4, opt, threads);
      const std::string ctx = std::string("width=") + apsim::to_string(w) +
                              " threads=" + std::to_string(threads);
      EXPECT_EQ(run.results, reference.results) << ctx;
      EXPECT_EQ(run.stream, reference.stream) << ctx;
      // Stats embed the resolved lane width/isa, so full equality only
      // holds within a width; across widths the device-work accounting
      // must still agree exactly.
      EXPECT_EQ(run.stats, width_ref.stats) << ctx;
      EXPECT_TRUE(run.stats.same_work(reference.stats)) << ctx;
      EXPECT_EQ(run.compile.lane_width_bits, static_cast<std::size_t>(w))
          << ctx;
      EXPECT_FALSE(run.compile.lane_isa.empty()) << ctx;
    }
  }
}

TEST(EngineThreads, CycleAccurateStreamIdenticalAcrossThreadCounts) {
  const auto data = knn::BinaryDataset::uniform(23, 16, 603);
  const auto queries = knn::BinaryDataset::uniform(6, 16, 604);
  EngineOptions opt;
  opt.backend = SimulationBackend::kCycleAccurate;
  opt.max_vectors_per_config = 5;
  opt.queries_per_chunk = 2;
  expect_thread_invariant(data, queries, 3, opt, "cycle-accurate");
}

TEST(EngineThreads, PackedConfigurationsIdenticalAcrossThreadCounts) {
  const auto data = knn::BinaryDataset::uniform(26, 24, 605);
  const auto queries = knn::BinaryDataset::uniform(5, 24, 606);
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.packing_group_size = 4;
  opt.max_vectors_per_config = 9;
  opt.queries_per_chunk = 2;
  expect_thread_invariant(data, queries, 4, opt, "packed");
}

TEST(EngineThreads, FallbackStatsIdenticalAcrossThreadCounts) {
  // Opt+Ext pushes every configuration off the fast path: the per-shard
  // decline reasons must reduce to the same ordered fallback_reasons no
  // matter which worker compiled which configuration.
  const auto data = knn::BinaryDataset::uniform(18, 16, 607);
  const auto queries = knn::BinaryDataset::uniform(4, 16, 608);
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.device = apsim::DeviceConfig::opt_ext();
  opt.max_vectors_per_config = 4;  // 5 configurations, all declining
  const SearchRun reference = run_engine(data, queries, 3, opt, 1);
  ASSERT_EQ(reference.compile.fallback, 5u);
  ASSERT_EQ(reference.compile.fallback_reasons.size(), 1u);
  for (const std::size_t threads : {2, 8}) {
    const SearchRun run = run_engine(data, queries, 3, opt, threads);
    EXPECT_EQ(run.compile, reference.compile) << "threads=" << threads;
    EXPECT_EQ(run.results, reference.results) << "threads=" << threads;
  }
}

TEST(EngineThreads, ExplicitPoolStillWins) {
  const auto data = knn::BinaryDataset::uniform(19, 16, 609);
  const auto queries = knn::BinaryDataset::uniform(5, 16, 610);
  util::ThreadPool pool(3);
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.pool = &pool;
  opt.threads = 1;  // ignored: an explicit pool takes precedence
  opt.max_vectors_per_config = 6;
  ApKnnEngine engine(data, opt);
  EXPECT_EQ(engine.simulation_threads(), 4u);
  const auto results = engine.search(queries, 3);
  test::expect_valid_knn_results(data, queries, 3, results);
}

TEST(EngineThreads, SerialEngineReportsOneThread) {
  const auto data = knn::BinaryDataset::uniform(8, 16, 611);
  EngineOptions opt;
  opt.threads = 1;
  ApKnnEngine engine(data, opt);
  EXPECT_EQ(engine.simulation_threads(), 1u);
}

TEST(EngineThreads, MultiplexedSearchIdenticalAcrossThreadCounts) {
  const auto data = knn::BinaryDataset::uniform(31, 16, 612);
  const auto queries = knn::BinaryDataset::uniform(26, 16, 613);  // 4 frames
  for (const auto backend : {SimulationBackend::kCycleAccurate,
                             SimulationBackend::kBitParallel}) {
    const MultiplexedKnn mux(data, 7, {}, backend);
    if (backend == SimulationBackend::kBitParallel) {
      ASSERT_TRUE(mux.bit_parallel()) << mux.fallback_reason();
    }
    std::vector<apsim::ReportEvent> serial_stream;
    const auto serial = mux.search(queries, 5, nullptr, &serial_stream);
    EXPECT_FALSE(serial_stream.empty());
    for (const std::size_t threads : {2, 8}) {
      util::ThreadPool pool(threads);
      std::vector<apsim::ReportEvent> pooled_stream;
      const auto pooled = mux.search(queries, 5, &pool, &pooled_stream);
      EXPECT_EQ(pooled, serial) << "threads=" << threads;
      EXPECT_EQ(pooled_stream, serial_stream) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace apss::core
