#include "core/opt/stream_multiplexing.hpp"

#include <gtest/gtest.h>

#include "apsim/placement.hpp"
#include "apss_test_support.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

TEST(MuxReportCode, RoundTrips) {
  const std::uint32_t code = MuxReportCode::encode(1234, 6);
  EXPECT_EQ(MuxReportCode::vector_id(code), 1234u);
  EXPECT_EQ(MuxReportCode::slice(code), 6u);
}

TEST(MultiplexedStreamEncoder, PacksSevenQueriesIntoOneFrame) {
  const StreamSpec spec{8, 1};
  const MultiplexedStreamEncoder enc(spec);
  knn::BinaryDataset queries(7, 8);
  // Query s has bit pattern: dim i set iff i == s.
  for (std::size_t s = 0; s < 7; ++s) {
    queries.set(s, s, true);
  }
  const auto frame = enc.encode_group(queries, 0, 7);
  ASSERT_EQ(frame.size(), spec.cycles_per_query());
  EXPECT_EQ(frame[0], Alphabet::kSof);
  // Data symbol for dim i carries bit s=i set (query i has dim i set).
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(frame[1 + i], Alphabet::data(1u << i)) << i;
  }
  EXPECT_EQ(frame[8], Alphabet::data(0));  // dim 7: no query has it set
  EXPECT_FALSE(Alphabet::is_control(frame[1]));
}

TEST(MultiplexedStreamEncoder, RejectsBadGroups) {
  const MultiplexedStreamEncoder enc(StreamSpec{8, 1});
  const auto queries = knn::BinaryDataset::uniform(10, 8, 1);
  EXPECT_THROW(enc.encode_group(queries, 0, 0), std::invalid_argument);
  EXPECT_THROW(enc.encode_group(queries, 0, 8), std::invalid_argument);
  EXPECT_THROW(enc.encode_group(queries, 8, 3), std::invalid_argument);
}

TEST(MultiplexedNetwork, ReplicatesMacrosPerSlice) {
  const auto data = knn::BinaryDataset::uniform(3, 8, 2);
  anml::AutomataNetwork net;
  const auto layouts = build_multiplexed_network(net, data, 7);
  EXPECT_EQ(layouts.size(), 21u);
  EXPECT_TRUE(net.validate().empty());
  // 7x the states of a single-slice network, as the paper notes the
  // current generation lacks capacity for.
  anml::AutomataNetwork single;
  build_multiplexed_network(single, data, 1);
  EXPECT_EQ(net.stats().ste_count, 7 * single.stats().ste_count);
}

TEST(MultiplexedKnn, MatchesCpuExactForSevenParallelQueries) {
  util::Rng rng(600);
  const auto data = knn::BinaryDataset::uniform(24, 16, rng.next());
  const auto queries = knn::BinaryDataset::uniform(7, 16, rng.next());
  const MultiplexedKnn mux(data, 7);
  const auto results = mux.search(queries, 5);
  test::expect_valid_knn_results(data, queries, 5, results);
}

TEST(MultiplexedKnn, HandlesPartialLastGroup) {
  const auto data = knn::BinaryDataset::uniform(12, 12, 601);
  const auto queries = knn::BinaryDataset::uniform(10, 12, 602);  // 7 + 3
  const MultiplexedKnn mux(data, 7);
  const auto results = mux.search(queries, 3);
  ASSERT_EQ(results.size(), 10u);
  test::expect_valid_knn_results(data, queries, 3, results);
}

TEST(MultiplexedKnn, SevenfoldThroughputInFrames) {
  const auto data = knn::BinaryDataset::uniform(4, 16, 603);
  const MultiplexedKnn mux(data, 7);
  EXPECT_EQ(mux.frames_for(4096), 586u);  // ceil(4096/7)
  EXPECT_EQ(mux.frames_for(7), 1u);
  EXPECT_EQ(mux.frames_for(8), 2u);
}

TEST(MultiplexedKnn, SliceMacrosUseTernaryBitMatches) {
  // Fig. 6: slice-s STEs must discriminate exactly bit s (plus the control
  // flag), i.e. the ternary pattern 0b*......s.
  const auto data = knn::BinaryDataset::uniform(1, 4, 604);
  anml::AutomataNetwork net;
  const auto layouts = build_multiplexed_network(net, data, 3);
  for (std::size_t s = 0; s < 3; ++s) {
    const MacroLayout& m = layouts[s];
    const anml::SymbolSet& sym = net.element(m.match[0]).symbols;
    const bool bit = data.get(0, 0);
    const auto expected = anml::SymbolSet::ternary(
        static_cast<std::uint8_t>(bit ? (1u << s) : 0),
        static_cast<std::uint8_t>(0x80u | (1u << s)));
    EXPECT_EQ(sym, expected) << "slice " << s;
  }
}

TEST(MultiplexedKnn, ResourceCostIsSevenfold) {
  // Sec. VI-B: "Replicating the base design 7x is infeasible since our
  // design already uses 41-91% of the board capacity." Verify the placement
  // model agrees: 7 slices of a 1024-vector 64-dim design overflow a rank.
  MultiplexedKnn tiny(knn::BinaryDataset::uniform(2, 8, 605), 7);
  const auto r =
      apsim::place(tiny.network(), apsim::DeviceGeometry::one_rank());
  EXPECT_TRUE(r.placed);

  // Scale check via footprints instead of building 7168 macros: a 64-dim
  // macro is ~141 STEs; 7 x 1024 x 141 x 1.15 > 393216 (one rank).
  apsim::MacroFootprint macro;
  macro.stes = 141;
  macro.counters = 1;
  macro.reporting = 1;
  const std::size_t capacity =
      apsim::max_copies(macro, apsim::DeviceGeometry::one_rank());
  EXPECT_LT(capacity, 7 * 1024u);
}

}  // namespace
}  // namespace apss::core
