// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// every end-to-end path — base engine, packed ladder, multiplexed slices,
// counter-increment extension, interleaved frames — must return exact kNN
// answers across a grid of dimensionalities, dataset sizes, k values, and
// board-capacity splits.

#include <gtest/gtest.h>

#include <tuple>

#include "apss_test_support.hpp"
#include "core/engine.hpp"
#include "core/ext/counter_increment.hpp"
#include "core/opt/interleaved.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "core/temporal_decode.hpp"
#include "knn/exact.hpp"

namespace apss::core {
namespace {

struct SweepParam {
  std::size_t n;
  std::size_t dims;
  std::size_t k;
  std::size_t vectors_per_config;  // 0 = single configuration

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "n" << p.n << "_d" << p.dims << "_k" << p.k << "_cap"
              << p.vectors_per_config;
  }
};

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweep, ApEngineReturnsExactKnn) {
  const SweepParam p = GetParam();
  const auto data = knn::BinaryDataset::uniform(p.n, p.dims, 7000 + p.n);
  const auto queries = knn::BinaryDataset::uniform(5, p.dims, 7100 + p.dims);
  EngineOptions opt;
  opt.max_vectors_per_config = p.vectors_per_config;
  ApKnnEngine engine(data, opt);
  const auto results = engine.search(queries, p.k);
  test::expect_valid_knn_results(data, queries, p.k, results);
}

TEST_P(EngineSweep, BitParallelBackendAgreesWithCycleAccurate) {
  const SweepParam p = GetParam();
  const auto data = knn::BinaryDataset::uniform(p.n, p.dims, 7600 + p.n);
  const auto queries = knn::BinaryDataset::uniform(5, p.dims, 7700 + p.dims);
  EngineOptions cycle_opt;
  cycle_opt.max_vectors_per_config = p.vectors_per_config;
  EngineOptions bit_opt = cycle_opt;
  bit_opt.backend = SimulationBackend::kBitParallel;
  ApKnnEngine cycle(data, cycle_opt);
  ApKnnEngine bit(data, bit_opt);
  ASSERT_EQ(bit.bit_parallel_configurations(), bit.configurations());
  const auto expected = cycle.search(queries, p.k);
  const auto actual = bit.search(queries, p.k);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(actual[q], expected[q]) << "query " << q;
  }
  EXPECT_TRUE(bit.last_stats().same_work(cycle.last_stats()));
}

TEST_P(EngineSweep, InterleavedDesignAgrees) {
  const SweepParam p = GetParam();
  if (p.dims < 2) {
    GTEST_SKIP();
  }
  const auto data = knn::BinaryDataset::uniform(p.n, p.dims, 7200 + p.n);
  const auto queries = knn::BinaryDataset::uniform(4, p.dims, 7300 + p.dims);
  const auto results = interleaved_knn_search(data, queries, p.k);
  test::expect_valid_knn_results(data, queries, p.k, results);
}

TEST_P(EngineSweep, CounterIncrementDesignAgrees) {
  const SweepParam p = GetParam();
  const auto data = knn::BinaryDataset::uniform(p.n, p.dims, 7400 + p.n);
  const auto queries = knn::BinaryDataset::uniform(4, p.dims, 7500 + p.dims);
  const auto results = ci_knn_search(data, queries, p.k);
  test::expect_valid_knn_results(data, queries, p.k, results);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Values(
        SweepParam{1, 4, 1, 0}, SweepParam{3, 7, 2, 0},
        SweepParam{16, 8, 3, 5}, SweepParam{25, 16, 4, 0},
        SweepParam{40, 24, 8, 12}, SweepParam{33, 33, 5, 9},
        SweepParam{48, 64, 6, 0}, SweepParam{20, 65, 20, 7},
        SweepParam{12, 128, 2, 4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::ostringstream oss;
      oss << info.param;
      return oss.str();
    });

// --- Packing equivalence across group sizes ----------------------------------

class PackingSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, CollectorStyle>> {
};

TEST_P(PackingSweep, PackedReportsEqualUnpackedReports) {
  const auto [group_size, style] = GetParam();
  const std::size_t dims = 20;
  const auto data = knn::BinaryDataset::uniform(11, dims, 8000 + group_size);
  const auto queries = knn::BinaryDataset::uniform(3, dims, 8100);

  anml::AutomataNetwork unpacked;
  for (std::size_t i = 0; i < data.size(); ++i) {
    append_hamming_macro(unpacked, data.vector(i),
                         static_cast<std::uint32_t>(i));
  }
  anml::AutomataNetwork packed;
  VectorPackingOptions opt;
  opt.group_size = group_size;
  opt.style = style;
  build_packed_network(packed, data, opt);

  const StreamSpec spec{dims, 1};
  apsim::Simulator su(unpacked);
  apsim::Simulator sp(packed);
  const SymbolStreamEncoder enc(spec);
  const auto eu = su.run(enc.encode_batch(queries));
  const auto ep = sp.run(enc.encode_batch(queries));
  const TemporalSortDecoder decoder(spec, queries.size());
  EXPECT_EQ(decoder.decode(eu), decoder.decode(ep));
}

TEST_P(PackingSweep, BitParallelBackendAgreesOnPackedEngines) {
  // Same grid, end to end through the engine: packed configurations on the
  // bit-parallel backend must reproduce the cycle-accurate neighbor lists
  // and stats for every group size and collector style.
  const auto [group_size, style] = GetParam();
  const std::size_t dims = 20;
  const auto data = knn::BinaryDataset::uniform(11, dims, 8400 + group_size);
  const auto queries = knn::BinaryDataset::uniform(3, dims, 8500);
  EngineOptions cycle_opt;
  cycle_opt.packing_group_size = group_size;
  cycle_opt.packing_style = style;
  cycle_opt.max_vectors_per_config = 6;
  EngineOptions bit_opt = cycle_opt;
  bit_opt.backend = SimulationBackend::kBitParallel;
  ApKnnEngine cycle(data, cycle_opt);
  ApKnnEngine bit(data, bit_opt);
  ASSERT_EQ(bit.bit_parallel_configurations(), bit.configurations());
  const auto expected = cycle.search(queries, 4);
  const auto actual = bit.search(queries, 4);
  ASSERT_EQ(actual, expected);
  EXPECT_TRUE(bit.last_stats().same_work(cycle.last_stats()));
  test::expect_valid_knn_results(data, queries, 4, actual);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackingSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 8u, 11u),
                       ::testing::Values(CollectorStyle::kFlat,
                                         CollectorStyle::kTree)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, CollectorStyle>>&
           info) {
      return "g" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == CollectorStyle::kFlat ? "_flat"
                                                               : "_tree");
    });

// --- Multiplexing equivalence across slice counts -----------------------------

class MuxSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MuxSweep, EverySliceCountReturnsExactKnn) {
  const std::size_t slices = GetParam();
  const auto data = knn::BinaryDataset::uniform(18, 12, 8200 + slices);
  const auto queries =
      knn::BinaryDataset::uniform(2 * slices + 1, 12, 8300);
  const MultiplexedKnn mux(data, slices);
  const auto results = mux.search(queries, 3);
  test::expect_valid_knn_results(data, queries, 3, results,
                                 "slices=" + std::to_string(slices));
}

TEST_P(MuxSweep, BitParallelBackendAgreesForEverySliceCount) {
  // The multiplexed shape compiles to the batch backend (two match classes
  // per slice); its demuxed kNN answers must equal the reference path's.
  const std::size_t slices = GetParam();
  const auto data = knn::BinaryDataset::uniform(18, 12, 8200 + slices);
  const auto queries =
      knn::BinaryDataset::uniform(2 * slices + 1, 12, 8300);
  const MultiplexedKnn cycle(data, slices);
  const MultiplexedKnn bit(data, slices, {},
                           SimulationBackend::kBitParallel);
  ASSERT_TRUE(bit.bit_parallel());
  EXPECT_EQ(bit.search(queries, 3), cycle.search(queries, 3));
}

INSTANTIATE_TEST_SUITE_P(Grid, MuxSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u));

}  // namespace
}  // namespace apss::core
