// Tests for the Sec. VII architectural extensions: counter-increment dense
// encoding, the dynamic-threshold comparison macro, and the STE
// decomposition analysis.

#include <gtest/gtest.h>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/ext/comparison_macro.hpp"
#include "core/ext/counter_increment.hpp"
#include "core/ext/ste_decomposition.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

// --- Counter-increment extension ---------------------------------------------

TEST(CiStreamSpec, FrameShrinksByDimsPerSymbol) {
  const CiStreamSpec spec{128};
  EXPECT_EQ(spec.data_symbols(), 19u);  // ceil(128/7)
  EXPECT_EQ(spec.cycles_per_query(), 19u + 128u + 4u);
  // Base frame: 2*128+4 = 260 cycles; dense frame: 151.
  EXPECT_NEAR(spec.speedup_vs_base(), 260.0 / 151.0, 1e-12);
  EXPECT_GT(spec.speedup_vs_base(), 1.7);  // the paper's ~1.75x
}

TEST(CiMacro, UsesOneChainStatePerSymbolGroup) {
  anml::AutomataNetwork net;
  const auto layout = append_ci_macro(net, util::BitVector(21), 0);
  EXPECT_EQ(layout.chain.size(), 3u);  // 21 dims / 7 per symbol
  EXPECT_EQ(layout.match.size(), 21u);
  EXPECT_EQ(layout.slice_collectors.size(), 7u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(CiMacro, RequiresMultiIncrementCounters) {
  // On stock hardware (increment cap 1) simultaneous per-slice matches
  // collapse and the counter undercounts -> wrong distances.
  const auto data = knn::BinaryDataset::uniform(1, 14, 800);
  anml::AutomataNetwork net;
  append_ci_macro(net, data.vector(0), 0);
  const auto stream = encode_ci_query(data.vector(0));  // exact match: h=14

  apsim::SimOptions stock;  // cap 1
  apsim::Simulator sim_stock(net, stock);
  const auto stock_events = sim_stock.run(stream);
  const CiStreamSpec spec{14};
  ASSERT_EQ(stock_events.size(), 1u);
  EXPECT_GT(spec.distance_from_offset(stock_events[0].cycle), 0u);  // WRONG

  apsim::SimOptions ext;
  ext.max_counter_increment = 8;
  apsim::Simulator sim_ext(net, ext);
  const auto ext_events = sim_ext.run(stream);
  ASSERT_EQ(ext_events.size(), 1u);
  EXPECT_EQ(spec.distance_from_offset(ext_events[0].cycle), 0u);  // exact
}

TEST(CiKnn, MatchesCpuExactProperty) {
  util::Rng rng(801);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 8 + rng.below(16);
    const std::size_t d = 7 + rng.below(40);
    const std::size_t k = 1 + rng.below(5);
    const auto data = knn::BinaryDataset::uniform(n, d, rng.next());
    const auto queries = knn::BinaryDataset::uniform(3, d, rng.next());
    const auto results = ci_knn_search(data, queries, k);
    test::expect_valid_knn_results(
        data, queries, k, results,
        "trial " + std::to_string(trial) + " d=" + std::to_string(d));
  }
}

TEST(CiKnn, NonMultipleOfSevenDims) {
  const auto data = knn::BinaryDataset::uniform(10, 13, 802);
  const auto queries = knn::BinaryDataset::uniform(4, 13, 803);
  const auto results = ci_knn_search(data, queries, 3);
  test::expect_valid_knn_results(data, queries, 3, results);
}

// --- Comparison macro (Fig. 8) -----------------------------------------------

struct CmpRig {
  anml::AutomataNetwork net;
  ComparisonLayout layout;
  CmpRig() {
    layout = append_comparison_macro(net, anml::SymbolSet::single('a'),
                                     anml::SymbolSet::single('b'),
                                     anml::SymbolSet::single('r'), 1);
  }
  std::vector<apsim::ReportEvent> run(const std::string& s) {
    apsim::SimOptions opt;
    opt.allow_dynamic_threshold = true;
    apsim::Simulator sim(net, opt);
    return sim.run(test::bytes(s));
  }
};

TEST(ComparisonMacro, FiresOnlyWhenAExceedsB) {
  CmpRig rig;
  // With a one-cycle threshold-sampling latency, A>B must HOLD for a cycle:
  // "aa" -> at end of cycle 2, A=2 vs B's previous count 0 -> fires.
  EXPECT_FALSE(rig.run("ab...").empty());
  EXPECT_TRUE(rig.run("babab").empty());   // A never exceeds B
  EXPECT_TRUE(rig.run(".....").empty());   // nothing counted
  EXPECT_FALSE(rig.run("bbaaa..").empty());  // A pulls ahead at the end
}

TEST(ComparisonMacro, ResetRearmsComparison) {
  CmpRig rig;
  // A wins, reset, then B stays ahead: exactly one report.
  const auto events = rig.run("aa..r.bb..");
  EXPECT_EQ(events.size(), 1u);
  // A wins twice across a reset: two reports.
  const auto twice = rig.run("aa..r.aa..");
  EXPECT_EQ(twice.size(), 2u);
}

TEST(ComparisonMacro, NeedsDynamicThresholdFeature) {
  CmpRig rig;
  EXPECT_THROW(apsim::Simulator sim(rig.net), std::invalid_argument);
}

// --- STE decomposition (Sec. VII-C, Table VII) -------------------------------

TEST(SteDecomposition, WidthHistogramForKnnMacro) {
  anml::AutomataNetwork net;
  append_hamming_macro(net, util::BitVector(64), 0);
  // Restricted alphabet: every state needs <= 3 bits.
  const auto analysis = analyze_ste_decomposition(net, knn_alphabet());
  EXPECT_EQ(analysis.total_stes, net.stats().ste_count);
  for (std::size_t w = 4; w <= 8; ++w) {
    EXPECT_EQ(analysis.width_histogram[w], 0u) << "w=" << w;
  }
  // The 64 matching states need 2 bits each.
  EXPECT_GE(analysis.width_histogram[2], 64u);
}

TEST(SteDecomposition, FullAlphabetHasWideControlStates) {
  anml::AutomataNetwork net;
  append_hamming_macro(net, util::BitVector(64), 0);
  const auto analysis =
      analyze_ste_decomposition(net, anml::SymbolSet::all());
  // guard (SOF exact), EOF exact, sort (^EOF) all need 8 bits.
  EXPECT_EQ(analysis.width_histogram[8], 3u);
}

TEST(SteDecomposition, SavingsApproachTheoreticalBound) {
  anml::AutomataNetwork net;
  append_hamming_macro(net, util::BitVector(128), 0);
  const auto analysis =
      analyze_ste_decomposition(net, anml::SymbolSet::all());
  double prev = 0.9;
  for (const std::size_t x : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double s = analysis.savings(x);
    EXPECT_GT(s, prev) << "x=" << x;         // monotone in x
    EXPECT_LE(s, static_cast<double>(x) + 1e-9) << "x=" << x;  // bounded by x
    prev = s;
  }
  // Table VII regime at x=4: close to but below 4x.
  EXPECT_GT(analysis.savings(4), 3.5);
  EXPECT_LT(analysis.savings(32), 32.0);  // wide states keep it sub-theoretical
}

TEST(SteDecomposition, RestrictedAlphabetReachesTheoreticalBound) {
  anml::AutomataNetwork net;
  append_hamming_macro(net, util::BitVector(128), 0);
  const auto analysis = analyze_ste_decomposition(net, knn_alphabet());
  EXPECT_DOUBLE_EQ(analysis.savings(4), 4.0);
  EXPECT_DOUBLE_EQ(analysis.savings(32), 32.0);
}

TEST(SteDecomposition, RejectsNonPowerOfTwoFactor) {
  DecompositionAnalysis a;
  a.total_stes = 1;
  a.width_histogram[0] = 1;
  EXPECT_THROW(a.ste_cost(3), std::invalid_argument);
  EXPECT_THROW(a.ste_cost(0), std::invalid_argument);
  EXPECT_NO_THROW(a.ste_cost(4));
}

}  // namespace
}  // namespace apss::core
