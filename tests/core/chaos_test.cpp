// Chaos suite (docs/ROBUSTNESS.md): drives every named fault site through
// every failure policy and differentially asserts the fault-isolation
// contract — surviving shards return results and merged ReportEvent
// streams BIT-IDENTICAL to an uninjected run, at 1 and 4 threads. Faults
// are keyed by configuration / frame index, so which shard fails never
// depends on thread scheduling. Runs under TSan in CI (label: chaos).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apss_test_support.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "knn/exact.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace apss::core {
namespace {

/// Every test starts and ends with the process-global injector disarmed.
class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::instance().disarm_all(); }
  void TearDown() override { util::FaultInjector::instance().disarm_all(); }
};
using ChaosEngine = Chaos;
using ChaosMux = Chaos;
using ChaosArtifact = Chaos;
using ChaosControl = Chaos;

struct SearchRun {
  std::vector<std::vector<knn::Neighbor>> results;
  std::vector<apsim::ReportEvent> stream;
  EngineStats stats;
};

SearchRun run_engine(const knn::BinaryDataset& data,
               const knn::BinaryDataset& queries, std::size_t k,
               EngineOptions opt, std::size_t threads) {
  opt.threads = threads;
  opt.collect_report_stream = true;
  ApKnnEngine engine(data, opt);
  SearchRun r;
  r.results = engine.search(queries, k);
  r.stream = engine.last_report_stream();
  r.stats = engine.last_stats();
  return r;
}

/// The 4-configuration test bed shared by the engine matrix: report_code
/// is the GLOBAL vector id, so configuration c owns codes
/// [c * 7, (c + 1) * 7) and dropping a configuration from the baseline
/// stream is a pure filter.
constexpr std::size_t kCap = 7;
constexpr std::size_t kVectors = 26;  // 4 configurations (7+7+7+5)
constexpr std::size_t kConfigs = 4;
constexpr std::int64_t kVictim = 1;  // injected configuration

EngineOptions bed_options(SimulationBackend backend) {
  EngineOptions opt;
  opt.backend = backend;
  opt.max_vectors_per_config = kCap;
  opt.queries_per_chunk = 2;  // several (config, frame) shards per config
  return opt;
}

/// Baseline stream minus every event of configuration `config` — what a
/// fault-isolated run must emit when that configuration is lost.
std::vector<apsim::ReportEvent> without_config(
    const std::vector<apsim::ReportEvent>& stream, std::size_t config) {
  std::vector<apsim::ReportEvent> out;
  for (const apsim::ReportEvent& e : stream) {
    if (e.report_code / kCap != config) {
      out.push_back(e);
    }
  }
  return out;
}

/// The dataset minus configuration `config`'s vectors — the ground truth
/// an isolated run must answer against.
knn::BinaryDataset without_config_data(const knn::BinaryDataset& data,
                                       std::size_t config) {
  const std::size_t lo = config * kCap;
  const std::size_t hi = std::min(lo + kCap, data.size());
  knn::BinaryDataset out(data.size() - (hi - lo), data.dims());
  std::size_t row = 0;
  for (std::size_t v = 0; v < data.size(); ++v) {
    if (v >= lo && v < hi) {
      continue;
    }
    for (std::size_t i = 0; i < data.dims(); ++i) {
      out.set(row, i, data.get(v, i));
    }
    ++row;
  }
  return out;
}

/// Global ids -> ids in the without_config_data() numbering.
std::vector<knn::Neighbor> remap_without_config(
    const std::vector<knn::Neighbor>& list, std::size_t config) {
  std::vector<knn::Neighbor> out;
  for (knn::Neighbor nb : list) {
    EXPECT_NE(nb.id / kCap, config) << "victim id leaked: " << nb.id;
    if (nb.id / kCap > config) {
      nb.id -= static_cast<std::uint32_t>(kCap);
    }
    out.push_back(nb);
  }
  return out;
}

void expect_states(const EngineStats& stats, ShardState victim_state,
                   const std::string& ctx) {
  ASSERT_EQ(stats.shard_status.size(), kConfigs) << ctx;
  for (std::size_t c = 0; c < kConfigs; ++c) {
    const ShardState want = c == static_cast<std::size_t>(kVictim)
                                ? victim_state
                                : ShardState::kOk;
    EXPECT_EQ(stats.shard_status[c].state, want) << ctx << " config " << c;
  }
  EXPECT_FALSE(stats.shard_status[kVictim].error.empty()) << ctx;
}

/// The heart of the matrix: arm `site` (keyed to the victim configuration,
/// persistent), search under `policy` at 1 and 4 threads, and check the
/// survivors against the uninjected baseline.
void expect_isolation(const knn::BinaryDataset& data,
                      const knn::BinaryDataset& queries,
                      SimulationBackend backend, std::string_view site,
                      OnError policy, ShardState victim_state,
                      const std::string& ctx,
                      apsim::LaneWidth lane_width = apsim::LaneWidth::kAuto) {
  EngineOptions opt = bed_options(backend);
  opt.lane_width = lane_width;
  const SearchRun baseline = run_engine(data, queries, 4, opt, 1);
  ASSERT_FALSE(baseline.stream.empty()) << ctx;

  opt.on_error = policy;
  util::FaultInjector::Plan plan;
  plan.match_key = kVictim;
  util::FaultInjector::instance().arm(site, plan);

  const bool survives = victim_state == ShardState::kOk ||
                        victim_state == ShardState::kDegraded;
  const auto want_stream =
      survives ? baseline.stream : without_config(baseline.stream, kVictim);
  const knn::BinaryDataset survivors = without_config_data(data, kVictim);
  SearchRun first;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tctx = ctx + " threads=" + std::to_string(threads);
    const SearchRun run = run_engine(data, queries, 4, opt, threads);
    expect_states(run.stats, victim_state, tctx);
    EXPECT_EQ(run.stream, want_stream) << tctx;
    if (survives) {
      EXPECT_EQ(run.results, baseline.results) << tctx;
    } else {
      // Losing a configuration backfills the top-k from the survivors'
      // partial lists (the baseline truncated those candidates away), so
      // the right expectation is the exact oracle over surviving vectors.
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto mapped = remap_without_config(run.results[q], kVictim);
        EXPECT_TRUE(
            knn::is_valid_knn_result(survivors, queries.row(q), 4, mapped))
            << tctx << " query " << q;
      }
    }
    EXPECT_EQ(run.stats.surviving_configurations(),
              survives ? kConfigs : kConfigs - 1)
        << tctx;
    EXPECT_EQ(run.stats.simulated_cycles,
              queries.size() * run.stats.cycles_per_query *
                  run.stats.surviving_configurations())
        << tctx;
    if (threads == 1) {
      first = run;
    } else {
      // The injected run itself is thread-count invariant. (Error strings
      // embed the scheduling-dependent injector hit number, so compare the
      // deterministic fields only.)
      EXPECT_EQ(run.results, first.results) << tctx;
      EXPECT_EQ(run.stream, first.stream) << tctx;
      ASSERT_EQ(run.stats.shard_status.size(),
                first.stats.shard_status.size())
          << tctx;
      for (std::size_t c = 0; c < kConfigs; ++c) {
        EXPECT_EQ(run.stats.shard_status[c].state,
                  first.stats.shard_status[c].state)
            << tctx << " config " << c;
        EXPECT_EQ(run.stats.shard_status[c].retries,
                  first.stats.shard_status[c].retries)
            << tctx << " config " << c;
      }
    }
  }
  util::FaultInjector::instance().disarm_all();
}

TEST_F(ChaosEngine, ShardSiteIsolatesConfigCycleAccurate) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 701);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 702);
  expect_isolation(data, queries, SimulationBackend::kCycleAccurate,
                   util::kFaultEngineShard, OnError::kIsolate,
                   ShardState::kFailed, "engine.shard/isolate/cycle");
}

TEST_F(ChaosEngine, ShardSiteIsolatesConfigEvenWithRetries) {
  // Persistent fault: every retry AND the degrade attempt re-enter the
  // shard site, so the configuration still ends kFailed under kRetry —
  // on both backends.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 703);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 704);
  expect_isolation(data, queries, SimulationBackend::kCycleAccurate,
                   util::kFaultEngineShard, OnError::kRetry,
                   ShardState::kFailed, "engine.shard/retry/cycle");
  expect_isolation(data, queries, SimulationBackend::kBitParallel,
                   util::kFaultEngineShard, OnError::kRetry,
                   ShardState::kFailed, "engine.shard/retry/bit");
}

TEST_F(ChaosEngine, SimFrameSiteIsolatesConfig) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 705);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 706);
  expect_isolation(data, queries, SimulationBackend::kCycleAccurate,
                   util::kFaultSimFrame, OnError::kIsolate,
                   ShardState::kFailed, "sim.frame/isolate/cycle");
  expect_isolation(data, queries, SimulationBackend::kCycleAccurate,
                   util::kFaultSimFrame, OnError::kRetry, ShardState::kFailed,
                   "sim.frame/retry/cycle");
}

TEST_F(ChaosEngine, BatchFrameFaultDegradesToCycleAccurate) {
  // The bit-parallel simulator keeps failing, the cycle-accurate rerun
  // succeeds: the configuration is DEGRADED, not lost — results and the
  // merged stream equal the full baseline bit for bit.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 707);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 708);
  expect_isolation(data, queries, SimulationBackend::kBitParallel,
                   util::kFaultBatchFrame, OnError::kIsolate,
                   ShardState::kDegraded, "batch.frame/isolate/bit");
  expect_isolation(data, queries, SimulationBackend::kBitParallel,
                   util::kFaultBatchFrame, OnError::kRetry,
                   ShardState::kDegraded, "batch.frame/retry/bit");
}

TEST_F(ChaosEngine, FaultSitesIsolateAtWideLaneWidth) {
  // The fault-isolation matrix pinned to 512-bit lanes: shard loss, the
  // degrade-to-cycle-accurate rerun (which re-enters sim.frame), and the
  // 1/4-thread merges must behave exactly as they do at 64 bits.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 723);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 724);
  expect_isolation(data, queries, SimulationBackend::kBitParallel,
                   util::kFaultEngineShard, OnError::kIsolate,
                   ShardState::kFailed, "engine.shard/isolate/bit/w512",
                   apsim::LaneWidth::k512);
  expect_isolation(data, queries, SimulationBackend::kBitParallel,
                   util::kFaultBatchFrame, OnError::kIsolate,
                   ShardState::kDegraded, "batch.frame/isolate/bit/w512",
                   apsim::LaneWidth::k512);
  // lane_width is a bit-parallel knob: on the cycle-accurate backend it
  // must be inert, including on the sim.frame failure path.
  expect_isolation(data, queries, SimulationBackend::kCycleAccurate,
                   util::kFaultSimFrame, OnError::kIsolate,
                   ShardState::kFailed, "sim.frame/isolate/cycle/w512",
                   apsim::LaneWidth::k512);
}

TEST_F(ChaosEngine, RetryRecoversTransientFault) {
  // One-shot fault window: the first attempt on the victim configuration
  // fails, its retry succeeds — full baseline results, one extra attempt.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 709);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 710);
  EngineOptions opt = bed_options(SimulationBackend::kCycleAccurate);
  const SearchRun baseline = run_engine(data, queries, 4, opt, 1);

  opt.on_error = OnError::kRetry;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::FaultInjector::Plan plan;
    plan.match_key = kVictim;
    plan.fail_on_hit = 1;
    plan.fail_count = 1;
    util::FaultInjector::instance().arm(util::kFaultEngineShard, plan);
    const SearchRun run = run_engine(data, queries, 4, opt, threads);
    EXPECT_EQ(run.results, baseline.results) << threads;
    EXPECT_EQ(run.stream, baseline.stream) << threads;
    ASSERT_EQ(run.stats.shard_status.size(), kConfigs);
    EXPECT_EQ(run.stats.shard_status[kVictim].state, ShardState::kOk);
    EXPECT_EQ(run.stats.shard_status[kVictim].retries, 1u);
    EXPECT_TRUE(run.stats.shard_status[kVictim].error.empty());
    util::FaultInjector::instance().disarm_all();
  }
}

TEST_F(ChaosEngine, FailFastRethrowsInjectedFault) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 711);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 712);
  EngineOptions opt = bed_options(SimulationBackend::kCycleAccurate);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    opt.threads = threads;
    util::FaultInjector::Plan plan;
    plan.match_key = kVictim;
    util::FaultInjector::instance().arm(util::kFaultEngineShard, plan);
    ApKnnEngine engine(data, opt);
    EXPECT_THROW(engine.search(queries, 4), util::InjectedFault);
    util::FaultInjector::instance().disarm_all();
    // The engine stays usable after the aborted search.
    const auto results = engine.search(queries, 4);
    EXPECT_EQ(results.size(), queries.size());
  }
}

TEST_F(ChaosEngine, IsolatePolicyWithoutFaultsMatchesBaseline) {
  // The policies must be pure failure-path behavior: with nothing armed,
  // kIsolate/kRetry produce byte-identical results, streams, and stats.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 713);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 714);
  EngineOptions opt = bed_options(SimulationBackend::kBitParallel);
  const SearchRun baseline = run_engine(data, queries, 4, opt, 1);
  for (const OnError policy : {OnError::kIsolate, OnError::kRetry}) {
    opt.on_error = policy;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const SearchRun run = run_engine(data, queries, 4, opt, threads);
      EXPECT_EQ(run.results, baseline.results);
      EXPECT_EQ(run.stream, baseline.stream);
      EXPECT_TRUE(run.stats.same_work(baseline.stats));
      EXPECT_EQ(run.stats.surviving_configurations(), kConfigs);
      EXPECT_EQ(run.stats.count_state(ShardState::kOk), kConfigs);
    }
  }
}

TEST_F(ChaosControl, TinyDeadlineTimesOutEveryConfiguration) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 715);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 716);
  EngineOptions opt = bed_options(SimulationBackend::kCycleAccurate);
  opt.on_error = OnError::kIsolate;
  opt.deadline_ms = 1e-4;  // expires before the first frame completes
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto start = std::chrono::steady_clock::now();
    const SearchRun run = run_engine(data, queries, 4, opt, threads);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(run.stats.count_state(ShardState::kTimedOut), kConfigs);
    EXPECT_EQ(run.stats.surviving_configurations(), 0u);
    EXPECT_EQ(run.stats.simulated_cycles, 0u);
    EXPECT_TRUE(run.stream.empty());
    for (const auto& list : run.results) {
      EXPECT_TRUE(list.empty());
    }
    // Frame-granular enforcement: the whole search (construction aside)
    // winds down in far less than a second once the deadline is gone.
    EXPECT_LT(elapsed_ms, 5000.0);
  }
}

TEST_F(ChaosControl, FailFastDeadlineThrows) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 717);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 718);
  EngineOptions opt = bed_options(SimulationBackend::kCycleAccurate);
  opt.deadline_ms = 1e-4;
  opt.threads = 1;
  ApKnnEngine engine(data, opt);
  EXPECT_THROW(engine.search(queries, 4), util::DeadlineExceeded);
}

TEST_F(ChaosControl, PreCancelledTokenCancelsEveryConfiguration) {
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 719);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 720);
  util::CancellationToken token;
  token.request_cancel();
  EngineOptions opt = bed_options(SimulationBackend::kCycleAccurate);
  opt.cancel = &token;

  opt.threads = 1;
  ApKnnEngine fail_fast(data, opt);
  EXPECT_THROW(fail_fast.search(queries, 4), util::OperationCancelled);

  opt.on_error = OnError::kIsolate;
  const SearchRun run = run_engine(data, queries, 4, opt, 4);
  EXPECT_EQ(run.stats.count_state(ShardState::kCancelled), kConfigs);
  EXPECT_EQ(run.stats.surviving_configurations(), 0u);
}

TEST_F(ChaosControl, EngagedRunControlIsBitIdenticalToPlainRun) {
  // The checkpointed simulator paths must not perturb semantics: a huge
  // deadline (engaged, never fires) produces the exact baseline.
  const auto data = knn::BinaryDataset::uniform(kVectors, 24, 721);
  const auto queries = knn::BinaryDataset::uniform(6, 24, 722);
  for (const auto backend : {SimulationBackend::kCycleAccurate,
                             SimulationBackend::kBitParallel}) {
    EngineOptions opt = bed_options(backend);
    const SearchRun baseline = run_engine(data, queries, 4, opt, 1);
    opt.deadline_ms = 1e9;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const SearchRun run = run_engine(data, queries, 4, opt, threads);
      EXPECT_EQ(run.results, baseline.results);
      EXPECT_EQ(run.stream, baseline.stream);
      EXPECT_TRUE(run.stats.same_work(baseline.stats));
    }
  }
}

// ---------------------------------------------------------------------------
// Multiplexed engine: the FRAME is the isolation unit.

TEST_F(ChaosMux, FrameFaultIsolatesOneFrame) {
  const auto data = knn::BinaryDataset::uniform(20, 16, 731);
  const auto queries = knn::BinaryDataset::uniform(26, 16, 732);  // 4 frames
  const MultiplexedKnn mux(data, 7);
  std::vector<apsim::ReportEvent> base_stream;
  const auto baseline = mux.search(queries, 5, nullptr, &base_stream);
  ASSERT_FALSE(base_stream.empty());

  constexpr std::size_t kVictimFrame = 2;
  const std::size_t cpq = mux.spec().cycles_per_query();
  std::vector<apsim::ReportEvent> want_stream;
  for (const apsim::ReportEvent& e : base_stream) {
    if (e.cycle / cpq != kVictimFrame) {
      want_stream.push_back(e);
    }
  }

  MuxSearchOptions mopt;
  mopt.on_error = OnError::kIsolate;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::FaultInjector::Plan plan;
    plan.match_key = kVictimFrame;
    util::FaultInjector::instance().arm(util::kFaultMuxFrame, plan);
    util::ThreadPool pool(3);  // 4 runners incl. the submitter
    std::vector<apsim::ReportEvent> stream;
    std::vector<ShardStatus> status;
    const auto results = mux.search(queries, 5, threads > 1 ? &pool : nullptr,
                                    &stream, mopt, &status);
    util::FaultInjector::instance().disarm_all();
    EXPECT_EQ(stream, want_stream) << threads;
    ASSERT_EQ(status.size(), 4u);
    for (std::size_t f = 0; f < status.size(); ++f) {
      EXPECT_EQ(status[f].state,
                f == kVictimFrame ? ShardState::kFailed : ShardState::kOk)
          << "frame " << f;
    }
    // Queries of the dead frame return empty; every other query is
    // bit-identical to the baseline.
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (q / 7 == kVictimFrame) {
        EXPECT_TRUE(results[q].empty()) << "query " << q;
      } else {
        EXPECT_EQ(results[q], baseline[q]) << "query " << q;
      }
    }
  }
}

TEST_F(ChaosMux, BatchFrameFaultDegradesToCycleAccurate) {
  const auto data = knn::BinaryDataset::uniform(20, 16, 733);
  const auto queries = knn::BinaryDataset::uniform(26, 16, 734);
  const MultiplexedKnn mux(data, 7, {}, SimulationBackend::kBitParallel);
  ASSERT_TRUE(mux.bit_parallel()) << mux.fallback_reason();
  std::vector<apsim::ReportEvent> base_stream;
  const auto baseline = mux.search(queries, 5, nullptr, &base_stream);

  util::FaultInjector::Plan plan;
  plan.match_key = 1;  // frame 1, every attempt
  util::FaultInjector::instance().arm(util::kFaultBatchFrame, plan);
  MuxSearchOptions mopt;
  mopt.on_error = OnError::kIsolate;
  std::vector<apsim::ReportEvent> stream;
  std::vector<ShardStatus> status;
  const auto results = mux.search(queries, 5, nullptr, &stream, mopt, &status);
  util::FaultInjector::instance().disarm_all();
  // Degradation, not loss: the cycle-accurate rerun of frame 1 emits the
  // same events, so everything matches the baseline in full.
  EXPECT_EQ(results, baseline);
  EXPECT_EQ(stream, base_stream);
  ASSERT_EQ(status.size(), 4u);
  EXPECT_EQ(status[1].state, ShardState::kDegraded);
  EXPECT_GE(status[1].retries, 1u);
  EXPECT_FALSE(status[1].error.empty());
}

TEST_F(ChaosMux, RetryRecoversAndDeadlineTimesOut) {
  const auto data = knn::BinaryDataset::uniform(20, 16, 735);
  const auto queries = knn::BinaryDataset::uniform(26, 16, 736);
  const MultiplexedKnn mux(data, 7);
  const auto baseline = mux.search(queries, 5);

  // One-shot fault on frame 0: recovered by the retry.
  util::FaultInjector::Plan plan;
  plan.match_key = 0;
  plan.fail_count = 1;
  util::FaultInjector::instance().arm(util::kFaultMuxFrame, plan);
  MuxSearchOptions mopt;
  mopt.on_error = OnError::kRetry;
  std::vector<ShardStatus> status;
  const auto results = mux.search(queries, 5, nullptr, nullptr, mopt, &status);
  util::FaultInjector::instance().disarm_all();
  EXPECT_EQ(results, baseline);
  ASSERT_EQ(status.size(), 4u);
  EXPECT_EQ(status[0].state, ShardState::kOk);
  EXPECT_EQ(status[0].retries, 1u);

  // A vanishing deadline times out every frame under kIsolate...
  mopt = {};
  mopt.deadline_ms = 1e-4;
  mopt.on_error = OnError::kIsolate;
  status.clear();
  const auto timed = mux.search(queries, 5, nullptr, nullptr, mopt, &status);
  for (const auto& st : status) {
    EXPECT_EQ(st.state, ShardState::kTimedOut);
  }
  for (const auto& list : timed) {
    EXPECT_TRUE(list.empty());
  }
  // ...and throws under the default fail-fast policy.
  mopt.on_error = OnError::kFailFast;
  EXPECT_THROW(mux.search(queries, 5, nullptr, nullptr, mopt),
               util::DeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Artifact cache: transient-I/O retry, quarantine, stale-tmp sweep.

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "apss_chaos_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

EngineOptions cached_options(const std::string& dir) {
  EngineOptions opt;
  opt.backend = SimulationBackend::kBitParallel;
  opt.threads = 1;
  opt.artifact_cache_dir = dir;
  return opt;
}

TEST_F(ChaosArtifact, TransientReadFaultIsRetriedThenSucceeds) {
  util::Rng rng(51);
  const auto data = test::random_dataset(rng, 14, 16);
  const std::string dir = fresh_dir("read_retry");
  {  // populate the cache
    ApKnnEngine warm(data, cached_options(dir));
    ASSERT_EQ(warm.backend_stats().artifact.misses, 1u);
  }
  // Two transient read failures, then success: the load retries through
  // them and still serves the HIT.
  util::FaultInjector::Plan plan;
  plan.fail_on_hit = 1;
  plan.fail_count = 2;
  util::FaultInjector::instance().arm(util::kFaultArtifactRead, plan);
  ApKnnEngine engine(data, cached_options(dir));
  util::FaultInjector::instance().disarm_all();
  const ArtifactCacheStats& st = engine.backend_stats().artifact;
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.io_retries, 2u);
  EXPECT_EQ(st.quarantined, 0u);
}

TEST_F(ChaosArtifact, PersistentReadFaultDegradesToRecompile) {
  util::Rng rng(52);
  const auto data = test::random_dataset(rng, 14, 16);
  const std::string dir = fresh_dir("read_fail");
  { ApKnnEngine warm(data, cached_options(dir)); }
  util::FaultInjector::Plan plan;  // every read fails
  util::FaultInjector::instance().arm(util::kFaultArtifactRead, plan);
  ApKnnEngine engine(data, cached_options(dir));
  util::FaultInjector::instance().disarm_all();
  const ArtifactCacheStats& st = engine.backend_stats().artifact;
  // The retry budget is exhausted, the slot counts as invalidated, and the
  // engine compiled fresh — the cache never fails construction.
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.invalidations, 1u);
  EXPECT_EQ(st.io_retries, 3u);
  EXPECT_EQ(st.quarantined, 0u);  // transient I/O is not corruption
  EXPECT_EQ(engine.bit_parallel_configurations(), 1u);
}

TEST_F(ChaosArtifact, PersistentWriteFaultIsBestEffort) {
  util::Rng rng(53);
  const auto data = test::random_dataset(rng, 14, 16);
  const std::string dir = fresh_dir("write_fail");
  util::FaultInjector::Plan plan;  // every write fails
  util::FaultInjector::instance().arm(util::kFaultArtifactWrite, plan);
  ApKnnEngine engine(data, cached_options(dir));
  util::FaultInjector::instance().disarm_all();
  const ArtifactCacheStats& st = engine.backend_stats().artifact;
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.io_retries, 3u);
  EXPECT_FALSE(std::filesystem::exists(engine.artifact_cache_file(0)));
  // Nothing was stored, but the engine works (compile-every-time).
  EXPECT_EQ(engine.bit_parallel_configurations(), 1u);
}

TEST_F(ChaosArtifact, CorruptSlotIsQuarantinedNotDeleted) {
  util::Rng rng(54);
  const auto data = test::random_dataset(rng, 14, 16);
  const std::string dir = fresh_dir("quarantine");
  std::string slot;
  {
    ApKnnEngine warm(data, cached_options(dir));
    slot = warm.artifact_cache_file(0);
  }
  {  // damage the bytes (bad magic from offset 0)
    std::ofstream out(slot, std::ios::binary | std::ios::trunc);
    out << "damaged beyond recognition";
  }
  ApKnnEngine engine(data, cached_options(dir));
  const ArtifactCacheStats& st = engine.backend_stats().artifact;
  EXPECT_EQ(st.invalidations, 1u);
  EXPECT_EQ(st.quarantined, 1u);
  // The damaged bytes moved aside for a post-mortem; the recompile
  // overwrote the slot, so the NEXT engine hits again.
  EXPECT_TRUE(std::filesystem::exists(slot + ".quarantined"));
  ApKnnEngine again(data, cached_options(dir));
  EXPECT_EQ(again.backend_stats().artifact.hits, 1u);
}

TEST_F(ChaosArtifact, StaleTmpFilesAreSweptOnOpen) {
  util::Rng rng(55);
  const auto data = test::random_dataset(rng, 14, 16);
  const std::string dir = fresh_dir("tmp_sweep");
  // A crash between write and rename leaks temp files; quarantined slots
  // must survive the sweep.
  const std::string stale1 = dir + "/apss-knn-engine.config0000.apss-art.tmp.7";
  const std::string stale2 = dir + "/apss-knn-engine.config0001.apss-art.tmp.2";
  const std::string keep = dir + "/old.apss-art.quarantined";
  for (const std::string& path : {stale1, stale2, keep}) {
    std::ofstream(path) << "leftover";
  }
  ApKnnEngine engine(data, cached_options(dir));
  EXPECT_EQ(engine.backend_stats().artifact.stale_tmp_swept, 2u);
  EXPECT_FALSE(std::filesystem::exists(stale1));
  EXPECT_FALSE(std::filesystem::exists(stale2));
  EXPECT_TRUE(std::filesystem::exists(keep));
}

// ---------------------------------------------------------------------------
// FaultInjector semantics the whole suite leans on.

TEST_F(ChaosControl, InjectorHitWindowAndKeyMatching) {
  auto& inj = util::FaultInjector::instance();
  EXPECT_FALSE(util::FaultInjector::armed());
  util::FaultInjector::check("nothing.armed");  // no-throw when unarmed

  util::FaultInjector::Plan plan;
  plan.fail_on_hit = 2;
  plan.fail_count = 2;
  plan.match_key = 7;
  inj.arm("site.a", plan);
  EXPECT_TRUE(util::FaultInjector::armed());
  util::FaultInjector::check("site.a", 3);      // wrong key: not even a hit
  util::FaultInjector::check("site.b", 7);      // wrong site
  util::FaultInjector::check("site.a", 7);      // hit 1: before the window
  EXPECT_THROW(util::FaultInjector::check("site.a", 7), util::InjectedFault);
  EXPECT_THROW(util::FaultInjector::check("site.a", 7), util::InjectedFault);
  util::FaultInjector::check("site.a", 7);      // hit 4: window exhausted
  EXPECT_EQ(inj.hits("site.a"), 4u);
  inj.disarm_all();
  EXPECT_FALSE(util::FaultInjector::armed());
}

TEST_F(ChaosControl, InjectorStallDelaysWithoutFailing) {
  auto& inj = util::FaultInjector::instance();
  util::FaultInjector::Plan plan;
  plan.fail = false;
  plan.fail_on_hit = 0;  // every hit
  plan.stall_ms = 30;
  inj.arm("site.slow", plan);
  const auto start = std::chrono::steady_clock::now();
  util::FaultInjector::check("site.slow");
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 25.0);
  inj.disarm_all();
}

}  // namespace
}  // namespace apss::core
