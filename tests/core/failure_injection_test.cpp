// Failure injection: corrupted symbol streams, malformed inputs, and
// protocol violations must either produce detectable decode errors or
// well-defined degraded behaviour — never silently wrong neighbors.

#include <gtest/gtest.h>

#include "anml/anml_io.hpp"
#include "apsim/simulator.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"
#include "core/temporal_decode.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

struct Rig {
  anml::AutomataNetwork net;
  MacroLayout layout;
  StreamSpec spec;

  Rig() {
    layout = append_hamming_macro(net, util::BitVector::parse("10110010"), 0);
    spec = layout.stream_spec(8);
  }
  std::vector<apsim::ReportEvent> run(std::vector<std::uint8_t> stream) {
    apsim::Simulator sim(net);
    return sim.run(stream);
  }
  std::vector<std::uint8_t> good_stream() {
    return SymbolStreamEncoder(spec).encode_query(
        util::BitVector::parse("10110010"));
  }
};

TEST(FailureInjection, MissingSofYieldsNoReports) {
  Rig rig;
  auto stream = rig.good_stream();
  stream[0] = Alphabet::kFill;  // clobber SOF
  EXPECT_TRUE(rig.run(stream).empty());
}

TEST(FailureInjection, TruncatedFillPhaseShiftsOrSuppressesReports) {
  Rig rig;
  auto stream = rig.good_stream();
  stream.resize(stream.size() - 4);  // drop 3 fills + EOF
  const auto events = rig.run(stream);
  // An exact-match query reports before the cut; the decoder still maps
  // it correctly. But the counter was never reset...
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(rig.spec.distance_from_offset(events[0].cycle), 0u);
  // ...so a SECOND frame after the truncated one is SUPPRESSED (the dirty
  // counter never re-crosses its threshold): queries after the corruption
  // lose their reports rather than returning wrong neighbors.
  auto corrupted = rig.good_stream();
  corrupted.resize(corrupted.size() - 4);
  const auto good = rig.good_stream();
  corrupted.insert(corrupted.end(), good.begin(), good.end());
  apsim::Simulator sim(rig.net);
  const auto all_events = sim.run(corrupted);
  bool second_frame_report = false;
  for (const auto& e : all_events) {
    second_frame_report |= e.cycle > corrupted.size() - rig.good_stream().size();
  }
  EXPECT_FALSE(second_frame_report)
      << "a frame after a truncated one must not report (missing beats wrong)";
}

TEST(FailureInjection, MissingEofLeavesCounterDirty) {
  Rig rig;
  auto stream = rig.good_stream();
  stream.back() = Alphabet::kFill;  // EOF never arrives
  apsim::Simulator sim(rig.net);
  sim.run(stream);
  EXPECT_GT(sim.counter_value(rig.layout.counter), 0u)
      << "without EOF the inverted-Hamming counter must stay dirty";
}

TEST(FailureInjection, DataSymbolsInFillPhaseDoNotCorruptTheSort) {
  // The sort state matches ^EOF, so stray DATA symbols during the fill
  // phase still increment uniformly — the design is robust to a host that
  // pads with garbage instead of the canonical FILL (Sec. III-B's only
  // requirement is "not EOF").
  Rig rig;
  auto stream = rig.good_stream();
  for (std::size_t i = 10; i < stream.size() - 1; ++i) {
    if (stream[i] == Alphabet::kFill) {
      stream[i] = Alphabet::data_bit(i % 2 == 0);
    }
  }
  const auto events = rig.run(stream);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(rig.spec.distance_from_offset(events[0].cycle), 0u);
}

TEST(FailureInjection, DoubleSofRestartsTheFrame) {
  // A spurious SOF mid-frame re-triggers the guard; the encoded vector
  // matches the tail of the corrupted frame, producing a bogus (but
  // in-window) second activation path. The decoder cannot detect this —
  // stream integrity is the host's job — but the simulation must not
  // produce out-of-range distances.
  Rig rig;
  auto stream = rig.good_stream();
  stream[3] = Alphabet::kSof;
  const auto events = rig.run(stream);
  for (const auto& e : events) {
    EXPECT_NO_THROW(rig.spec.distance_from_offset(e.cycle));
  }
}

TEST(FailureInjection, DecoderRejectsForeignEvents) {
  const StreamSpec spec{8, 1};
  const TemporalSortDecoder decoder(spec, 1);
  // Cycle 0 is impossible.
  EXPECT_THROW(decoder.decode_event({0, 0, 0}), std::out_of_range);
  // Compute-phase cycles are outside the sort window.
  EXPECT_THROW(decoder.decode_event({4, 0, 0}), std::out_of_range);
  // Beyond the declared query count.
  EXPECT_THROW(decoder.decode_event({100, 0, 0}), std::out_of_range);
}

TEST(FailureInjection, AnmlParserSurvivesGarbage) {
  util::Rng rng(31337);
  const std::string alphabet =
      "<>/=\"' abcdefXYZ0123-_&;\n\tautomatanetworkstate";
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      garbage += alphabet[rng.below(alphabet.size())];
    }
    try {
      (void)anml::from_anml(garbage);  // may succeed on trivial inputs
    } catch (const std::exception&) {
      // Throwing is fine; crashing/UB is not (ASan-clean by construction).
    }
  }
  SUCCEED();
}

TEST(FailureInjection, SimulatorHandlesAllSymbolValues) {
  // Every possible byte, including control-flagged ones, must be safely
  // consumable even by networks that never match them.
  Rig rig;
  apsim::Simulator sim(rig.net);
  std::vector<std::uint8_t> everything(256);
  for (int s = 0; s < 256; ++s) {
    everything[s] = static_cast<std::uint8_t>(s);
  }
  EXPECT_NO_THROW(sim.run(everything));
}

}  // namespace
}  // namespace apss::core
