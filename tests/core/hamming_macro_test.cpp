#include "core/hamming_macro.hpp"

#include <gtest/gtest.h>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/stream.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

using test::random_bitvector;
using test::run_hamming_query;
using util::BitVector;

TEST(HammingMacro, StructureCountsForD4) {
  anml::AutomataNetwork net;
  const MacroLayout layout =
      append_hamming_macro(net, BitVector::parse("1011"), 0);
  EXPECT_EQ(layout.chain.size(), 4u);
  EXPECT_EQ(layout.match.size(), 4u);
  EXPECT_EQ(layout.collectors.size(), 1u);
  EXPECT_EQ(layout.collector_levels, 1u);
  EXPECT_EQ(layout.bridge.size(), 1u);
  // guard + 4 chain + 4 match + 1 collector + 1 bridge + sort + eof + report
  const anml::NetworkStats s = net.stats();
  EXPECT_EQ(s.ste_count, 14u);
  EXPECT_EQ(s.counter_count, 1u);
  EXPECT_EQ(s.reporting_count, 1u);
  EXPECT_EQ(s.start_count, 1u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(HammingMacro, CounterThresholdEqualsDims) {
  anml::AutomataNetwork net;
  const MacroLayout layout =
      append_hamming_macro(net, BitVector::parse("10110100"), 3);
  EXPECT_EQ(net.element(layout.counter).threshold, 8u);
  EXPECT_EQ(net.element(layout.report).report_code, 3u);
}

TEST(HammingMacro, SteCountFormula) {
  // STEs = 1 guard + 2d compute + collectors + L bridge + sort + eof + report.
  for (const std::size_t d : {16u, 64u, 128u, 256u}) {
    anml::AutomataNetwork net;
    BitVector v(d);
    const MacroLayout layout = append_hamming_macro(net, v, 0);
    const std::size_t collectors = layout.collectors.size();
    EXPECT_EQ(net.stats().ste_count,
              1 + 2 * d + collectors + layout.collector_levels + 3);
    EXPECT_EQ(collectors, (d + 15) / 16);  // default fan-in 16, one level
  }
}

TEST(HammingMacro, CollectorTreeDepthGrowsWhenFanInTight) {
  HammingMacroOptions opt;
  opt.collector_fan_in = 4;
  opt.max_counter_fan_in = 4;
  // d=64: level 1 -> 16 roots (+1 sort > 4) -> level 2 -> 4 roots (+1 > 4)
  // -> level 3 -> 1 root (+1 <= 4): L = 3.
  EXPECT_EQ(collector_levels_for(64, opt), 3u);
  anml::AutomataNetwork net;
  const MacroLayout layout = append_hamming_macro(net, BitVector(64), 0, opt);
  EXPECT_EQ(layout.collector_levels, 3u);
  EXPECT_EQ(layout.collectors.size(), 16u + 4u + 1u);
  EXPECT_EQ(layout.bridge.size(), 3u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(HammingMacro, RejectsBadOptions) {
  anml::AutomataNetwork net;
  EXPECT_THROW(append_hamming_macro(net, BitVector(0), 0),
               std::invalid_argument);
  HammingMacroOptions bad_slice;
  bad_slice.bit_slice = 7;
  EXPECT_THROW(append_hamming_macro(net, BitVector(4), 0, bad_slice),
               std::invalid_argument);
}

TEST(HammingMacroExecution, PaperFig3Example) {
  // Vector {1,0,1,1}, query {1,0,0,1}: inverted Hamming distance 3,
  // report at cycle 2d+L+3-h = 12-3 = 9 (paper: t=9).
  const auto events =
      run_hamming_query(BitVector::parse("1011"), BitVector::parse("1001"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 9u);
}

TEST(HammingMacroExecution, PaperFig4BothVectors) {
  // A={1,0,1,1} reports at t=9; B={0,0,0,0} (h=2) at t=10.
  const BitVector query = BitVector::parse("1001");
  const auto a = run_hamming_query(BitVector::parse("1011"), query);
  const auto b = run_hamming_query(BitVector::parse("0000"), query);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].cycle, 9u);
  EXPECT_EQ(b[0].cycle, 10u);
}

TEST(HammingMacroExecution, ExactMatchAndWorstCaseOffsets) {
  const StreamSpec spec{8, 1};
  // h = d (identical): earliest report.
  const BitVector v = BitVector::parse("10110100");
  const auto hit = run_hamming_query(v, v);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].cycle, spec.report_offset(8));
  // h = 0 (complement): latest report, at the EOF cycle.
  const BitVector comp = BitVector::parse("01001011");
  const auto miss = run_hamming_query(v, comp);
  ASSERT_EQ(miss.size(), 1u);
  EXPECT_EQ(miss[0].cycle, spec.cycles_per_query());
  EXPECT_EQ(spec.distance_from_offset(miss[0].cycle), 8u);
}

TEST(HammingMacroExecution, ReportOffsetEncodesDistanceProperty) {
  util::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t d = 1 + rng.below(96);
    const BitVector vec = random_bitvector(rng, d);
    const BitVector query = random_bitvector(rng, d);
    const auto events = run_hamming_query(vec, query);
    ASSERT_EQ(events.size(), 1u) << "d=" << d;
    const StreamSpec spec{d, 1};
    const std::size_t expected_h = d - util::hamming_distance(vec, query);
    EXPECT_EQ(events[0].cycle, spec.report_offset(expected_h)) << "d=" << d;
    EXPECT_EQ(spec.distance_from_offset(events[0].cycle),
              util::hamming_distance(vec, query));
  }
}

TEST(HammingMacroExecution, DeepCollectorTreeStillCorrect) {
  util::Rng rng(78);
  HammingMacroOptions opt;
  opt.collector_fan_in = 4;
  opt.max_counter_fan_in = 4;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t d = 32 + rng.below(64);
    const BitVector vec = random_bitvector(rng, d);
    const BitVector query = random_bitvector(rng, d);
    anml::AutomataNetwork net;
    const MacroLayout layout = append_hamming_macro(net, vec, 0, opt);
    ASSERT_GT(layout.collector_levels, 1u);
    apsim::Simulator sim(net);
    const StreamSpec spec = layout.stream_spec(d);
    const SymbolStreamEncoder encoder(spec);
    const auto events = sim.run(encoder.encode_query(query));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(spec.distance_from_offset(events[0].cycle),
              util::hamming_distance(vec, query));
  }
}

TEST(HammingMacroExecution, BackToBackQueriesAreIndependent) {
  const BitVector vec = BitVector::parse("110100101100");
  anml::AutomataNetwork net;
  const MacroLayout layout = append_hamming_macro(net, vec, 0);
  const StreamSpec spec = layout.stream_spec(vec.size());
  const SymbolStreamEncoder encoder(spec);

  util::Rng rng(79);
  const knn::BinaryDataset queries = test::random_dataset(rng, 5, vec.size());
  apsim::Simulator sim(net);
  const auto events = sim.run(encoder.encode_batch(queries));
  ASSERT_EQ(events.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t offset = events[q].cycle - q * spec.cycles_per_query();
    EXPECT_EQ(spec.distance_from_offset(offset),
              util::hamming_distance(vec, queries.vector(q)))
        << "query " << q;
  }
}

}  // namespace
}  // namespace apss::core
