#include "core/jaccard.hpp"

#include <gtest/gtest.h>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "core/stream.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

TEST(JaccardMacro, RejectsEmptySets) {
  anml::AutomataNetwork net;
  EXPECT_THROW(append_jaccard_macro(net, util::BitVector(8), 0),
               std::invalid_argument);
  EXPECT_THROW(append_jaccard_macro(net, util::BitVector(0), 0),
               std::invalid_argument);
}

TEST(JaccardMacro, ThresholdEqualsCardinality) {
  anml::AutomataNetwork net;
  const auto layout =
      append_jaccard_macro(net, util::BitVector::parse("10110100"), 3);
  EXPECT_EQ(layout.set_bits, 4u);
  EXPECT_EQ(net.element(layout.counter).threshold, 4u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(ExactJaccard, KnownValues) {
  const auto a = util::BitVector::parse("1100");
  const auto b = util::BitVector::parse("0110");
  EXPECT_DOUBLE_EQ(exact_jaccard(a.words(), b.words()), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(exact_jaccard(a.words(), a.words()), 1.0);
  const util::BitVector zero(4);
  EXPECT_DOUBLE_EQ(exact_jaccard(zero.words(), zero.words()), 0.0);
}

TEST(JaccardSearch, IntersectionCountsAreExactProperty) {
  util::Rng rng(909);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 6 + rng.below(14);
    const std::size_t d = 6 + rng.below(40);
    // Dense-ish random sets, guaranteed nonempty.
    const knn::BinaryDataset data = test::random_nonempty_dataset(rng, n, d);
    const knn::BinaryDataset queries =
        test::random_nonempty_dataset(rng, 3, d);
    const auto results = jaccard_search(data, queries, n);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(results[q].size(), n) << "every macro reports once";
      for (const JaccardResult& r : results[q]) {
        std::size_t expected_i = 0;
        for (std::size_t i = 0; i < d; ++i) {
          expected_i += data.get(r.id, i) && queries.get(q, i);
        }
        EXPECT_EQ(r.intersection, expected_i)
            << "trial " << trial << " vector " << r.id;
        EXPECT_NEAR(r.jaccard,
                    exact_jaccard(data.row(r.id), queries.row(q)), 1e-12);
      }
      // Host-side rescoring sorted by descending Jaccard.
      for (std::size_t i = 1; i < results[q].size(); ++i) {
        EXPECT_GE(results[q][i - 1].jaccard, results[q][i].jaccard);
      }
    }
  }
}

TEST(JaccardSearch, FullIntersectionReportsEarlyButDecodesExactly) {
  // A query that is a superset of the encoded set: i = m, which crosses
  // the threshold during the compute phase (before offset d+4).
  knn::BinaryDataset data(1, 8);
  data.set_vector(0, util::BitVector::parse("11000000"));
  knn::BinaryDataset queries(1, 8);
  queries.set_vector(0, util::BitVector::parse("11110000"));
  const auto results = jaccard_search(data, queries, 1);
  ASSERT_EQ(results[0].size(), 1u);
  EXPECT_EQ(results[0][0].intersection, 2u);
  EXPECT_DOUBLE_EQ(results[0][0].jaccard, 0.5);  // 2 / (2 + 4 - 2)
}

TEST(JaccardSearch, IdenticalSetsScoreOne) {
  knn::BinaryDataset data(2, 12);
  data.set_vector(0, util::BitVector::parse("101101001011"));
  data.set_vector(1, util::BitVector::parse("010010110100"));
  knn::BinaryDataset queries(1, 12);
  queries.set_vector(0, data.vector(0));
  const auto results = jaccard_search(data, queries, 2);
  ASSERT_EQ(results[0].size(), 2u);
  EXPECT_EQ(results[0][0].id, 0u);
  EXPECT_DOUBLE_EQ(results[0][0].jaccard, 1.0);
  EXPECT_EQ(results[0][1].id, 1u);
  EXPECT_DOUBLE_EQ(results[0][1].jaccard, 0.0);  // disjoint complement
}

TEST(JaccardSearch, TopKTruncatesAfterRescoring) {
  util::Rng rng(911);
  knn::BinaryDataset data(10, 16);
  for (std::size_t v = 0; v < 10; ++v) {
    for (std::size_t i = 0; i < 16; ++i) {
      data.set(v, i, rng.bernoulli(0.4));
    }
    data.set(v, 0, true);
  }
  knn::BinaryDataset queries(1, 16);
  queries.set_vector(0, data.vector(3));
  const auto results = jaccard_search(data, queries, 3);
  ASSERT_EQ(results[0].size(), 3u);
  EXPECT_EQ(results[0][0].id, 3u);  // self-match wins
}

}  // namespace
}  // namespace apss::core
