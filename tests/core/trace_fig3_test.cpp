// Cycle-by-cycle validation of the paper's Fig. 3 execution example:
// vector {1,0,1,1}, query {1,0,0,1}, d=4. Every row of the figure is
// asserted: which states are active at each time step and the counter value.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "apsim/simulator.hpp"
#include "core/hamming_macro.hpp"
#include "core/stream.hpp"

namespace apss::core {
namespace {

struct Recorder : apsim::TraceSink {
  struct Snapshot {
    std::uint8_t symbol = 0;
    std::set<anml::ElementId> active;
    std::uint64_t counter_after = 0;  ///< count at END of the cycle
  };
  std::map<std::uint64_t, Snapshot> cycles;
  anml::ElementId counter_id = anml::kInvalidElement;

  void on_cycle(std::uint64_t cycle, std::uint8_t symbol,
                std::span<const anml::ElementId> active,
                const apsim::Simulator& sim) override {
    Snapshot snap;
    snap.symbol = symbol;
    snap.active.insert(active.begin(), active.end());
    snap.counter_after = sim.counter_value(counter_id);
    cycles[cycle] = snap;
  }
};

class Fig3Trace : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = append_hamming_macro(net_, util::BitVector::parse("1011"), 0);
    sim_ = std::make_unique<apsim::Simulator>(net_);
    recorder_.counter_id = layout_.counter;
    sim_->set_trace(&recorder_);
    const SymbolStreamEncoder encoder(layout_.stream_spec(4));
    events_ = sim_->run(encoder.encode_query(util::BitVector::parse("1001")));
  }

  bool active(std::uint64_t cycle, anml::ElementId id) const {
    return recorder_.cycles.at(cycle).active.count(id) > 0;
  }
  std::uint64_t count_after(std::uint64_t cycle) const {
    return recorder_.cycles.at(cycle).counter_after;
  }

  anml::AutomataNetwork net_;
  MacroLayout layout_;
  std::unique_ptr<apsim::Simulator> sim_;
  Recorder recorder_;
  std::vector<apsim::ReportEvent> events_;
};

TEST_F(Fig3Trace, T1_SofActivatesGuard) {
  EXPECT_TRUE(active(1, layout_.guard));
  EXPECT_EQ(count_after(1), 0u);
}

TEST_F(Fig3Trace, T2_Dim0Matches) {
  // Vector[0] = Query[0] = 1: chain and matching state both fire.
  EXPECT_TRUE(active(2, layout_.chain[0]));
  EXPECT_TRUE(active(2, layout_.match[0]));
  EXPECT_EQ(count_after(2), 0u);  // collector lags one cycle
}

TEST_F(Fig3Trace, T3_Dim1MatchesAndCollectorFlushesDim0) {
  EXPECT_TRUE(active(3, layout_.match[1]));
  EXPECT_TRUE(active(3, layout_.collectors[0]));
  EXPECT_EQ(count_after(3), 1u);  // dim-0 match banked
}

TEST_F(Fig3Trace, T4_Dim2Mismatch) {
  // Vector[2]=1, Query[2]=0: matching state idle.
  EXPECT_FALSE(active(4, layout_.match[2]));
  EXPECT_TRUE(active(4, layout_.chain[2]));
  EXPECT_EQ(count_after(4), 2u);  // dim-1 match banked
}

TEST_F(Fig3Trace, T5_Dim3Matches) {
  EXPECT_TRUE(active(5, layout_.match[3]));
  EXPECT_EQ(count_after(5), 2u);
}

TEST_F(Fig3Trace, T6_FlushRemainingCollectorActivations) {
  // Paper t=6: "Flush remaining collector state activations to counter".
  EXPECT_TRUE(active(6, layout_.collectors[0]));
  EXPECT_EQ(count_after(6), 3u);  // inverted Hamming distance = 3
  EXPECT_FALSE(active(6, layout_.sort_state));
}

TEST_F(Fig3Trace, T7_TemporalSortBegins) {
  // Paper t=7: "Inverted Hamming distance is 3, begin temporal sorting".
  EXPECT_TRUE(active(7, layout_.sort_state));
  EXPECT_EQ(count_after(7), 4u);  // crosses threshold at END of t=7
}

TEST_F(Fig3Trace, T8_CounterEmitsPulse) {
  // Paper: "The counter activates at time step t=8 and emits a single
  // activation pulse to the reporting state".
  EXPECT_TRUE(active(8, layout_.counter));
  EXPECT_FALSE(active(7, layout_.counter));
  EXPECT_FALSE(active(9, layout_.counter));
}

TEST_F(Fig3Trace, T9_ReportingStateFires) {
  EXPECT_TRUE(active(9, layout_.report));
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].cycle, 9u);
}

TEST_F(Fig3Trace, SortStateActiveThroughFillPhase) {
  for (std::uint64_t t = 7; t <= 11; ++t) {
    EXPECT_TRUE(active(t, layout_.sort_state)) << "t=" << t;
  }
  EXPECT_FALSE(active(12, layout_.sort_state));  // EOF breaks the self-loop
}

TEST_F(Fig3Trace, T12_EofResetsCounterForNextQuery) {
  EXPECT_TRUE(active(12, layout_.eof_state));
  EXPECT_EQ(count_after(12), 0u);
  // Count just before the reset kept climbing past the threshold.
  EXPECT_EQ(count_after(11), 8u);
}

TEST_F(Fig3Trace, CounterValuesMatchFig3Row) {
  // Count at the END of each cycle t=1..12 (the paper displays the value at
  // the START of the next step): 0 0 1 2 2 3 4 5 6 7 8 0.
  const std::vector<std::uint64_t> expected = {0, 0, 1, 2, 2, 3,
                                               4, 5, 6, 7, 8, 0};
  for (std::uint64_t t = 1; t <= 12; ++t) {
    EXPECT_EQ(count_after(t), expected[t - 1]) << "t=" << t;
  }
}

}  // namespace
}  // namespace apss::core
