#include "core/opt/interleaved.hpp"

#include <gtest/gtest.h>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

TEST(InterleavedSpec, FrameArithmetic) {
  const InterleavedSpec spec{128};
  EXPECT_EQ(spec.cycles_per_query(), 129u);
  EXPECT_NEAR(spec.speedup_vs_base(), 260.0 / 129.0, 1e-12);
  // Query j's report window is [S_{j+1}+2, S_{j+1}+d+2].
  const auto [q0, d0] = spec.decode(129 + 1 + 2);  // S_1 = 130
  EXPECT_EQ(q0, 0u);
  EXPECT_EQ(d0, 0u);
  const auto [q0b, dmax] = spec.decode(130 + 128 + 2);
  EXPECT_EQ(q0b, 0u);
  EXPECT_EQ(dmax, 128u);
}

TEST(InterleavedSpec, RejectsPreWindowCycles) {
  const InterleavedSpec spec{8};
  EXPECT_THROW(spec.decode(2), std::out_of_range);
  EXPECT_THROW(spec.decode(5), std::out_of_range);
}

TEST(InterleavedMacro, StructureHasTwoParityHalves) {
  anml::AutomataNetwork net;
  const auto layout =
      append_interleaved_macro(net, util::BitVector::parse("1011"), 7);
  const auto stats = net.stats();
  EXPECT_EQ(stats.counter_count, 2u);
  EXPECT_EQ(stats.reporting_count, 2u);
  EXPECT_EQ(stats.start_count, 2u);
  EXPECT_EQ(net.element(layout.counter[0]).threshold, 4u);
  EXPECT_EQ(net.element(layout.report[1]).report_code, 7u);
  EXPECT_TRUE(net.validate().empty());
  // Roughly 2x the base macro's STE count.
  anml::AutomataNetwork base;
  append_hamming_macro(base, util::BitVector::parse("1011"), 7);
  EXPECT_NEAR(static_cast<double>(stats.ste_count),
              2.0 * base.stats().ste_count, 4.0);
}

TEST(InterleavedMacro, RejectsTinyDims) {
  anml::AutomataNetwork net;
  EXPECT_THROW(append_interleaved_macro(net, util::BitVector(1), 0),
               std::invalid_argument);
}

TEST(InterleavedEncoding, AlternatesSofMarkersAndFlushes) {
  const auto queries = knn::BinaryDataset::uniform(3, 8, 1);
  const auto stream = encode_interleaved_batch(queries);
  const InterleavedSpec spec{8};
  ASSERT_EQ(stream.size(), spec.stream_length(3));
  EXPECT_EQ(stream[0], InterleavedAlphabet::kSofA);
  EXPECT_EQ(stream[9], InterleavedAlphabet::kSofB);
  EXPECT_EQ(stream[18], InterleavedAlphabet::kSofA);
  EXPECT_EQ(stream[27], InterleavedAlphabet::kSofB);  // flush marker
  for (std::size_t i = 28; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i], Alphabet::kFill);
  }
}

TEST(InterleavedSearch, SingleQueryMatchesCpu) {
  const auto data = knn::BinaryDataset::uniform(20, 16, 2);
  const auto queries = knn::BinaryDataset::uniform(1, 16, 3);
  const auto results = interleaved_knn_search(data, queries, 5);
  test::expect_valid_knn_results(data, queries, 5, results);
}

TEST(InterleavedSearch, BackToBackQueriesProperty) {
  util::Rng rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 8 + rng.below(24);
    const std::size_t d = 4 + rng.below(36);
    const std::size_t q = 2 + rng.below(9);
    const std::size_t k = 1 + rng.below(6);
    const auto data = knn::BinaryDataset::uniform(n, d, rng.next());
    const auto queries = knn::BinaryDataset::uniform(q, d, rng.next());
    const auto results = interleaved_knn_search(data, queries, k);
    test::expect_valid_knn_results(
        data, queries, k, results,
        "trial " + std::to_string(trial) + " (n=" + std::to_string(n) +
            ", d=" + std::to_string(d) + ", k=" + std::to_string(k) + ")");
  }
}

TEST(InterleavedSearch, ThroughputIsDPlusOneCyclesPerQuery) {
  // Stream length grows by exactly d+1 per additional query.
  const InterleavedSpec spec{64};
  const auto q10 = knn::BinaryDataset::uniform(10, 64, 5);
  const auto q11 = knn::BinaryDataset::uniform(11, 64, 5);
  EXPECT_EQ(encode_interleaved_batch(q11).size() -
                encode_interleaved_batch(q10).size(),
            spec.cycles_per_query());
  // ~2x fewer cycles than the base frame for large d.
  EXPECT_GT(spec.speedup_vs_base(), 1.9);
}

TEST(InterleavedSearch, ReportsArriveSortedWithinEachQuery) {
  const auto data = knn::BinaryDataset::uniform(32, 24, 6);
  anml::AutomataNetwork net;
  for (std::size_t v = 0; v < data.size(); ++v) {
    append_interleaved_macro(net, data.vector(v),
                             static_cast<std::uint32_t>(v));
  }
  apsim::Simulator sim(net);
  const auto queries = knn::BinaryDataset::uniform(5, 24, 7);
  const auto events = sim.run(encode_interleaved_batch(queries));
  const InterleavedSpec spec{24};
  // Every vector reports once per query.
  EXPECT_EQ(events.size(), data.size() * queries.size());
  std::vector<std::size_t> last_distance(queries.size(), 0);
  for (const auto& e : events) {
    const auto [query, distance] = spec.decode(e.cycle);
    ASSERT_LT(query, queries.size());
    EXPECT_GE(distance, last_distance[query]);
    last_distance[query] = distance;
    EXPECT_EQ(distance, util::hamming_distance(data.row(e.report_code),
                                               queries.row(query)));
  }
}

}  // namespace
}  // namespace apss::core
