#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "anml/anml_io.hpp"
#include "apss_test_support.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

EngineOptions small_engine_options(std::size_t vectors_per_config = 0) {
  EngineOptions opt;
  opt.max_vectors_per_config = vectors_per_config;
  return opt;
}

TEST(ApKnnEngine, RejectsEmptyDataset) {
  EXPECT_THROW(ApKnnEngine(knn::BinaryDataset(), {}), std::invalid_argument);
}

TEST(ApKnnEngine, SingleConfigurationMatchesCpuExact) {
  const auto data = knn::BinaryDataset::uniform(40, 24, 101);
  const auto queries = knn::BinaryDataset::uniform(8, 24, 102);
  ApKnnEngine engine(data, small_engine_options());
  EXPECT_EQ(engine.configurations(), 1u);
  const auto results = engine.search(queries, 5);
  test::expect_valid_knn_results(data, queries, 5, results);
}

TEST(ApKnnEngine, MultiConfigurationPartialReconfiguration) {
  const auto data = knn::BinaryDataset::uniform(37, 16, 103);
  const auto queries = knn::BinaryDataset::uniform(6, 16, 104);
  // Force 8 vectors per board image -> ceil(37/8) = 5 configurations.
  ApKnnEngine engine(data, small_engine_options(8));
  EXPECT_EQ(engine.configurations(), 5u);
  const auto results = engine.search(queries, 4);
  test::expect_valid_knn_results(data, queries, 4, results);
  const EngineStats& stats = engine.last_stats();
  EXPECT_EQ(stats.configurations, 5u);
  EXPECT_EQ(stats.queries, 6u);
  EXPECT_EQ(stats.cycles_per_query, (StreamSpec{16, 1}.cycles_per_query()));
  EXPECT_EQ(stats.simulated_cycles, 5u * 6u * stats.cycles_per_query);
  // Every vector reports once per query per configuration pass.
  EXPECT_EQ(stats.report_events, 6u * 37u);
}

TEST(ApKnnEngine, ParallelPoolAgreesWithSerial) {
  const auto data = knn::BinaryDataset::uniform(30, 32, 105);
  const auto queries = knn::BinaryDataset::uniform(12, 32, 106);
  ApKnnEngine serial(data, small_engine_options(16));
  util::ThreadPool pool(4);
  EngineOptions par_opt = small_engine_options(16);
  par_opt.pool = &pool;
  par_opt.queries_per_chunk = 3;
  ApKnnEngine parallel(data, par_opt);
  const auto a = serial.search(queries, 7);
  const auto b = parallel.search(queries, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q], b[q]) << "query " << q;
  }
}

TEST(ApKnnEngine, ClusteredDataProperty) {
  util::Rng rng(200);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 16 + rng.below(48);
    const std::size_t d = 8 + rng.below(40);
    const std::size_t k = 1 + rng.below(8);
    const auto data =
        knn::BinaryDataset::clustered(n, d, 3, 0.05, rng.next());
    const auto queries = knn::perturbed_queries(data, 4, 0.1, rng.next());
    ApKnnEngine engine(data, small_engine_options(1 + rng.below(n)));
    const auto results = engine.search(queries, k);
    test::expect_valid_knn_results(data, queries, k, results,
                                   "trial " + std::to_string(trial));
  }
}

TEST(ApKnnEngine, KLargerThanDatasetReturnsAll) {
  const auto data = knn::BinaryDataset::uniform(5, 16, 107);
  const auto queries = knn::BinaryDataset::uniform(2, 16, 108);
  ApKnnEngine engine(data, small_engine_options());
  const auto results = engine.search(queries, 50);
  for (const auto& r : results) {
    EXPECT_EQ(r.size(), 5u);
  }
}

TEST(ApKnnEngine, RejectsBadQueries) {
  const auto data = knn::BinaryDataset::uniform(8, 16, 109);
  ApKnnEngine engine(data, small_engine_options());
  EXPECT_THROW(engine.search(knn::BinaryDataset::uniform(2, 8, 1), 3),
               std::invalid_argument);
  EXPECT_THROW(engine.search(knn::BinaryDataset::uniform(2, 16, 1), 0),
               std::invalid_argument);
}

TEST(ApKnnEngine, CapacityFollowsPlacementModel) {
  // 128-dim macros on a one-rank board: the paper's ~1024-vector capacity.
  const auto data = knn::BinaryDataset::uniform(4, 128, 110);
  ApKnnEngine engine(data, small_engine_options());
  EXPECT_GE(engine.capacity_per_config(), 1024u);
  EXPECT_LE(engine.capacity_per_config(), 1400u);
}

TEST(ApKnnEngine, ProjectionMatchesPaperLargeDatasetMath) {
  // SIFT large (Table IV): 2^20 vectors, 1024/config -> 1024 configs;
  // Gen 2: 1024 reconfigs x 0.45 ms + compute. With the paper's d-cycle
  // throughput assumption the compute is 4.02 s; with our honest 2d+4-cycle
  // frame it is ~8.2 s. Check OUR model's internal consistency here.
  const auto data = knn::BinaryDataset::uniform(4, 128, 111);
  EngineOptions opt;
  opt.device = apsim::DeviceConfig::gen2();
  opt.max_vectors_per_config = 1024;
  ApKnnEngine engine(data, opt);
  EngineStats stats = engine.project(4096);
  stats.configurations = 1024;  // pretend the full 2^20 dataset
  stats.simulated_cycles =
      stats.queries * stats.cycles_per_query * stats.configurations;
  const double compute = stats.compute_seconds(opt.device.timing);
  const double reconfig = stats.reconfig_seconds(opt.device.timing);
  const double cycle = 1.0 / 133e6;  // the paper rounds this to 7.5 ns
  EXPECT_NEAR(compute, 4096.0 * 260.0 * cycle * 1024.0, 1e-6);
  EXPECT_NEAR(reconfig, 1024 * 0.45e-3, 1e-9);
}

TEST(ApKnnEngine, ReportBandwidthModelMatchesPaperFormula) {
  // Sec. VI-C: 32*(n+d) bits per query. For n=1024, d=128 @133 MHz the
  // paper (using 2d cycles) gets 18.1 Gbps; our frame is 2d+4 cycles.
  const auto data = knn::BinaryDataset::uniform(4, 128, 112);
  EngineOptions opt;
  opt.max_vectors_per_config = 1024;
  ApKnnEngine engine(data, opt);
  const double gbps = engine.report_bandwidth_gbps();
  const double expected = 32.0 * (1024 + 128) / (260.0 / 133e6) / 1e9;
  EXPECT_NEAR(gbps, expected, 1e-9);
  EXPECT_NEAR(gbps, 18.9, 0.2);  // paper: 18.1 with the 2d-cycle frame
}

TEST(ApKnnEngine, NetworksExportToAnml) {
  const auto data = knn::BinaryDataset::uniform(6, 8, 113);
  ApKnnEngine engine(data, small_engine_options(4));
  ASSERT_EQ(engine.configurations(), 2u);
  const std::string xml = anml::to_anml(engine.network(0));
  const anml::AutomataNetwork back = anml::from_anml(xml);
  EXPECT_EQ(back.size(), engine.network(0).size());
  EXPECT_TRUE(back.validate().empty());
}

}  // namespace
}  // namespace apss::core
