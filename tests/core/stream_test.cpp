#include "core/stream.hpp"

#include <gtest/gtest.h>

#include "core/temporal_decode.hpp"

namespace apss::core {
namespace {

TEST(StreamSpec, FrameArithmetic) {
  const StreamSpec spec{4, 1};
  EXPECT_EQ(spec.fill_symbols(), 6u);
  EXPECT_EQ(spec.cycles_per_query(), 12u);  // matches the paper's Fig. 3
  EXPECT_EQ(spec.report_offset(3), 9u);     // h=3 reports at t=9
  EXPECT_EQ(spec.report_offset(0), 12u);
  EXPECT_EQ(spec.distance_from_offset(9), 1u);
  EXPECT_EQ(spec.distance_from_offset(8), 0u);   // h=d
  EXPECT_EQ(spec.distance_from_offset(12), 4u);  // h=0
}

TEST(StreamSpec, RejectsOffsetsOutsideSortWindow) {
  const StreamSpec spec{4, 1};
  EXPECT_THROW(spec.distance_from_offset(7), std::out_of_range);
  EXPECT_THROW(spec.distance_from_offset(13), std::out_of_range);
}

TEST(SymbolStreamEncoder, EncodesPaperFig3Stream) {
  const StreamSpec spec{4, 1};
  const SymbolStreamEncoder enc(spec);
  const auto stream = enc.encode_query(util::BitVector::parse("1001"));
  ASSERT_EQ(stream.size(), 12u);
  EXPECT_EQ(stream[0], Alphabet::kSof);
  EXPECT_EQ(stream[1], Alphabet::data_bit(true));
  EXPECT_EQ(stream[2], Alphabet::data_bit(false));
  EXPECT_EQ(stream[3], Alphabet::data_bit(false));
  EXPECT_EQ(stream[4], Alphabet::data_bit(true));
  for (std::size_t i = 5; i < 11; ++i) {
    EXPECT_EQ(stream[i], Alphabet::kFill) << i;
  }
  EXPECT_EQ(stream[11], Alphabet::kEof);
}

TEST(SymbolStreamEncoder, BatchConcatenatesFrames) {
  const StreamSpec spec{8, 1};
  const SymbolStreamEncoder enc(spec);
  const knn::BinaryDataset queries = knn::BinaryDataset::uniform(3, 8, 5);
  const auto stream = enc.encode_batch(queries);
  ASSERT_EQ(stream.size(), 3 * spec.cycles_per_query());
  for (std::size_t q = 0; q < 3; ++q) {
    const std::size_t base = q * spec.cycles_per_query();
    EXPECT_EQ(stream[base], Alphabet::kSof);
    EXPECT_EQ(stream[base + spec.cycles_per_query() - 1], Alphabet::kEof);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(stream[base + 1 + i],
                Alphabet::data_bit(queries.get(q, i)));
    }
  }
}

TEST(SymbolStreamEncoder, RejectsDimsMismatch) {
  const SymbolStreamEncoder enc(StreamSpec{8, 1});
  EXPECT_THROW(enc.encode_query(util::BitVector(4)), std::invalid_argument);
  EXPECT_THROW(enc.encode_batch(knn::BinaryDataset(2, 4)),
               std::invalid_argument);
}

TEST(SymbolStreamEncoder, EmptyBatchProducesEmptyStream) {
  const SymbolStreamEncoder enc(StreamSpec{4, 1});
  EXPECT_TRUE(enc.encode_batch(knn::BinaryDataset(0, 4)).empty());
}

TEST(StreamSpec, SingleDimensionFrame) {
  // d=1 is the smallest legal frame: SOF + 1 data + 3 fill + EOF.
  const StreamSpec spec{1, 1};
  EXPECT_EQ(spec.fill_symbols(), 3u);
  EXPECT_EQ(spec.cycles_per_query(), 6u);
  EXPECT_EQ(spec.report_offset(1), 5u);  // exact match (h = d)
  EXPECT_EQ(spec.report_offset(0), 6u);  // total miss (h = 0)
  EXPECT_EQ(spec.distance_from_offset(5), 0u);
  EXPECT_EQ(spec.distance_from_offset(6), 1u);
  EXPECT_THROW(spec.distance_from_offset(4), std::out_of_range);
}

TEST(SymbolStreamEncoder, SingleSymbolQueryFrames) {
  const SymbolStreamEncoder enc(StreamSpec{1, 1});
  for (const bool bit : {false, true}) {
    util::BitVector q(1);
    q.set(0, bit);
    const auto stream = enc.encode_query(q);
    ASSERT_EQ(stream.size(), 6u);
    EXPECT_EQ(stream[0], Alphabet::kSof);
    EXPECT_EQ(stream[1], Alphabet::data_bit(bit));
    EXPECT_EQ(stream[2], Alphabet::kFill);
    EXPECT_EQ(stream[3], Alphabet::kFill);
    EXPECT_EQ(stream[4], Alphabet::kFill);
    EXPECT_EQ(stream[5], Alphabet::kEof);
  }
}

TEST(TemporalSortDecoder, EmptyEventsDecodeToEmptyListsPerQuery) {
  const TemporalSortDecoder decoder(StreamSpec{4, 1}, 2);
  const auto result = decoder.decode({});
  ASSERT_EQ(result.size(), 2u);  // one list per query, even with no events
  EXPECT_TRUE(result[0].empty());
  EXPECT_TRUE(result[1].empty());
}

TEST(Alphabet, ControlSymbolsAreFlagged) {
  EXPECT_TRUE(Alphabet::is_control(Alphabet::kSof));
  EXPECT_TRUE(Alphabet::is_control(Alphabet::kEof));
  EXPECT_TRUE(Alphabet::is_control(Alphabet::kFill));
  EXPECT_FALSE(Alphabet::is_control(Alphabet::data_bit(false)));
  EXPECT_FALSE(Alphabet::is_control(Alphabet::data_bit(true)));
  EXPECT_FALSE(Alphabet::is_control(Alphabet::data(0x7f)));
}

TEST(TemporalSortDecoder, DecodesEventsToNeighbors) {
  const StreamSpec spec{4, 1};
  const TemporalSortDecoder decoder(spec, 2);
  // Query 0: id 7 at offset 9 (distance 1); id 3 at offset 12 (distance 4).
  // Query 1 (cycles 13..24): id 5 at offset 8+12=20 (distance 0).
  const std::vector<apsim::ReportEvent> events = {
      {9, 0, 7}, {12, 0, 3}, {20, 0, 5}};
  const auto result = decoder.decode(events);
  ASSERT_EQ(result.size(), 2u);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0], (knn::Neighbor{7, 1}));
  EXPECT_EQ(result[0][1], (knn::Neighbor{3, 4}));
  ASSERT_EQ(result[1].size(), 1u);
  EXPECT_EQ(result[1][0], (knn::Neighbor{5, 0}));
}

TEST(TemporalSortDecoder, TruncatesToK) {
  const StreamSpec spec{4, 1};
  const TemporalSortDecoder decoder(spec, 1);
  const std::vector<apsim::ReportEvent> events = {
      {8, 0, 1}, {9, 0, 2}, {10, 0, 3}};
  const auto result = decoder.decode(events, 2);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0].id, 1u);
  EXPECT_EQ(result[0][1].id, 2u);
}

TEST(TemporalSortDecoder, NormalizesTieOrderById) {
  const StreamSpec spec{4, 1};
  const TemporalSortDecoder decoder(spec, 1);
  // Two ids report on the same cycle (a distance tie), higher id first.
  const std::vector<apsim::ReportEvent> events = {{9, 1, 9}, {9, 0, 4}};
  const auto result = decoder.decode(events);
  ASSERT_EQ(result[0].size(), 2u);
  EXPECT_EQ(result[0][0].id, 4u);
  EXPECT_EQ(result[0][1].id, 9u);
}

TEST(TemporalSortDecoder, RejectsOutOfWindowEvents) {
  const StreamSpec spec{4, 1};
  const TemporalSortDecoder decoder(spec, 1);
  const std::vector<apsim::ReportEvent> early = {{3, 0, 1}};
  EXPECT_THROW(decoder.decode(early), std::out_of_range);
  const std::vector<apsim::ReportEvent> beyond = {{25, 0, 1}};
  EXPECT_THROW(decoder.decode(beyond), std::out_of_range);
}

}  // namespace
}  // namespace apss::core
