#include "core/opt/vector_packing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apsim/placement.hpp"
#include "apsim/simulator.hpp"
#include "core/stream.hpp"
#include "core/temporal_decode.hpp"
#include "util/rng.hpp"

namespace apss::core {
namespace {

TEST(VectorPacking, Fig5LadderSharesCommonValueStates) {
  // The paper's Fig. 5: vectors {1,1,0,1} and {1,0,0,0}.
  knn::BinaryDataset data(2, 4);
  data.set_vector(0, util::BitVector::parse("1101"));
  data.set_vector(1, util::BitVector::parse("1000"));
  anml::AutomataNetwork net;
  VectorPackingOptions opt;
  opt.group_size = 2;
  const PackedGroupLayout layout = append_packed_group(net, data, 0, 2, opt);

  // Dim 0: both vectors have '1' -> one shared state. Dims 1 and 3 differ
  // -> two states each. Dim 2: both '0' -> one state.
  EXPECT_EQ(layout.value_states[0].size(), 1u);
  EXPECT_EQ(layout.value_states[1].size(), 2u);
  EXPECT_EQ(layout.value_states[2].size(), 1u);
  EXPECT_EQ(layout.value_states[3].size(), 2u);
  EXPECT_EQ(layout.counters.size(), 2u);
  EXPECT_EQ(layout.reports.size(), 2u);
  EXPECT_TRUE(net.validate().empty());
}

/// Runs packed and unpacked networks over the same queries and compares
/// decoded results.
void expect_packed_matches_unpacked(const knn::BinaryDataset& data,
                                    const knn::BinaryDataset& queries,
                                    const VectorPackingOptions& opt) {
  anml::AutomataNetwork unpacked;
  std::size_t levels = 1;
  for (std::size_t i = 0; i < data.size(); ++i) {
    levels = append_hamming_macro(unpacked, data.vector(i),
                                  static_cast<std::uint32_t>(i), opt.macro)
                 .collector_levels;
  }
  anml::AutomataNetwork packed;
  const auto layouts = build_packed_network(packed, data, opt);
  ASSERT_EQ(layouts.front().collector_levels,
            opt.style == CollectorStyle::kFlat ? 1u : levels);

  const StreamSpec unpacked_spec{data.dims(), levels};
  const StreamSpec packed_spec{data.dims(), layouts.front().collector_levels};

  apsim::Simulator su(unpacked);
  apsim::Simulator sp(packed);
  const auto events_u =
      su.run(SymbolStreamEncoder(unpacked_spec).encode_batch(queries));
  const auto events_p =
      sp.run(SymbolStreamEncoder(packed_spec).encode_batch(queries));

  const auto results_u =
      TemporalSortDecoder(unpacked_spec, queries.size()).decode(events_u);
  const auto results_p =
      TemporalSortDecoder(packed_spec, queries.size()).decode(events_p);
  ASSERT_EQ(results_u.size(), results_p.size());
  for (std::size_t q = 0; q < results_u.size(); ++q) {
    EXPECT_EQ(results_u[q], results_p[q]) << "query " << q;
  }
}

TEST(VectorPacking, FlatPackingIsSemanticallyEquivalent) {
  util::Rng rng(500);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4 + rng.below(12);
    const std::size_t d = 4 + rng.below(28);
    const auto data = knn::BinaryDataset::uniform(n, d, rng.next());
    const auto queries = knn::BinaryDataset::uniform(4, d, rng.next());
    VectorPackingOptions opt;
    opt.group_size = 1 + rng.below(6);
    expect_packed_matches_unpacked(data, queries, opt);
  }
}

TEST(VectorPacking, TreePackingIsSemanticallyEquivalent) {
  util::Rng rng(501);
  VectorPackingOptions opt;
  opt.style = CollectorStyle::kTree;
  opt.group_size = 4;
  const auto data = knn::BinaryDataset::uniform(8, 40, rng.next());
  const auto queries = knn::BinaryDataset::uniform(3, 40, rng.next());
  expect_packed_matches_unpacked(data, queries, opt);
}

TEST(VectorPacking, SavingsGrowWithGroupSize) {
  const auto data = knn::BinaryDataset::uniform(16, 64, 502);
  double prev_ratio = 1.0;
  for (const std::size_t g : {2u, 4u, 8u}) {
    VectorPackingOptions opt;
    opt.group_size = g;
    const PackingSavings s = packing_savings(data, opt);
    EXPECT_GT(s.ratio(), prev_ratio) << "group size " << g;
    prev_ratio = s.ratio();
  }
}

TEST(VectorPacking, SavingsNearPaperForGroupsOf4) {
  // Table VIII models packing into groups of 4 as ~2.9-3.3x fewer states.
  const auto data = knn::BinaryDataset::uniform(64, 128, 503);
  VectorPackingOptions opt;
  opt.group_size = 4;
  const PackingSavings s = packing_savings(data, opt);
  EXPECT_GT(s.ratio(), 2.2);
  EXPECT_LT(s.ratio(), 3.6);
}

TEST(VectorPacking, FlatCollectorsFailRoutingAtHighDims) {
  // The paper's Sec. VI-A finding: packed designs place but only partially
  // route for d in {64, 128}; d=32 is fine. Flat collectors have fan-in d.
  for (const std::size_t d : {32u, 64u, 128u}) {
    const auto data = knn::BinaryDataset::uniform(8, d, 504);
    anml::AutomataNetwork net;
    VectorPackingOptions opt;
    opt.group_size = 8;
    build_packed_network(net, data, opt);
    const auto result = apsim::place(net, apsim::DeviceGeometry::one_rank());
    EXPECT_TRUE(result.placed) << d;
    if (d <= 32) {
      EXPECT_TRUE(result.routed) << d;
    } else {
      EXPECT_FALSE(result.routed) << d;
    }
  }
}

TEST(VectorPacking, TreeCollectorsRestoreRoutability) {
  const auto data = knn::BinaryDataset::uniform(8, 128, 505);
  anml::AutomataNetwork net;
  VectorPackingOptions opt;
  opt.group_size = 8;
  opt.style = CollectorStyle::kTree;
  build_packed_network(net, data, opt);
  const auto result = apsim::place(net, apsim::DeviceGeometry::one_rank());
  EXPECT_TRUE(result.placed);
  EXPECT_TRUE(result.routed);
}

TEST(VectorPacking, RejectsBadArguments) {
  const auto data = knn::BinaryDataset::uniform(4, 8, 506);
  anml::AutomataNetwork net;
  EXPECT_THROW(append_packed_group(net, data, 0, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(append_packed_group(net, data, 2, 5, {}),
               std::invalid_argument);
  VectorPackingOptions zero;
  zero.group_size = 0;
  EXPECT_THROW(build_packed_network(net, data, zero), std::invalid_argument);
}

TEST(VectorPacking, LastGroupMayBeSmaller) {
  const auto data = knn::BinaryDataset::uniform(10, 8, 507);
  anml::AutomataNetwork net;
  VectorPackingOptions opt;
  opt.group_size = 4;
  const auto layouts = build_packed_network(net, data, opt);
  ASSERT_EQ(layouts.size(), 3u);
  EXPECT_EQ(layouts[2].counters.size(), 2u);
}

}  // namespace
}  // namespace apss::core
