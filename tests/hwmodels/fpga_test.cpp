#include "hwmodels/fpga_accelerator.hpp"

#include <gtest/gtest.h>

#include "knn/exact.hpp"
#include "util/rng.hpp"

namespace apss::hwmodels {
namespace {

TEST(HardwarePriorityQueue, KeepsKSmallestSorted) {
  HardwarePriorityQueue pq(3);
  pq.insert({1, 10});
  pq.insert({2, 5});
  pq.insert({3, 7});
  pq.insert({4, 20});  // rejected: worse than current worst
  pq.insert({5, 1});   // displaces 10
  const auto& c = pq.contents();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], (knn::Neighbor{5, 1}));
  EXPECT_EQ(c[1], (knn::Neighbor{2, 5}));
  EXPECT_EQ(c[2], (knn::Neighbor{3, 7}));
}

TEST(HardwarePriorityQueue, TieBreaksById) {
  HardwarePriorityQueue pq(2);
  pq.insert({9, 4});
  pq.insert({3, 4});
  pq.insert({7, 4});
  const auto& c = pq.contents();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].id, 3u);
  EXPECT_EQ(c[1].id, 7u);
}

TEST(HardwarePriorityQueue, RejectsZeroK) {
  EXPECT_THROW(HardwarePriorityQueue(0), std::invalid_argument);
}

TEST(FpgaAccelerator, ResultsMatchCpuExact) {
  util::Rng rng(900);
  const auto data = knn::BinaryDataset::uniform(300, 128, rng.next());
  const auto queries = knn::BinaryDataset::uniform(50, 128, rng.next());
  const FpgaAccelerator fpga(data, {});
  FpgaRunStats stats;
  const auto results = fpga.search(queries, 4, stats);
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(knn::is_valid_knn_result(data, queries.row(q), 4, results[q]))
        << "query " << q;
  }
  EXPECT_EQ(stats.batches, 3u);  // ceil(50 / 24 lanes)
}

TEST(FpgaAccelerator, CycleModelMatchesPaperKintexRows) {
  // Table III: SIFT small (n=1024, d=128, q=4096) on Kintex-7 = 3.78 ms.
  FpgaOptions opt;  // 24 lanes @ 185 MHz
  const auto data = knn::BinaryDataset::uniform(4, 128, 901);
  const FpgaAccelerator fpga(data, opt);
  const FpgaRunStats sift = fpga.project(4096, 1024, 128, 4);
  EXPECT_NEAR(sift.seconds(opt) * 1e3, 3.78, 0.3);

  const FpgaRunStats word = fpga.project(4096, 1024, 64, 2);
  EXPECT_NEAR(word.seconds(opt) * 1e3, 1.89, 0.2);

  const FpgaRunStats tag = fpga.project(4096, 512, 256, 16);
  EXPECT_NEAR(tag.seconds(opt) * 1e3, 4.33, 0.6);

  // Table IV: SIFT large (n=2^20) = 3.69 s.
  const FpgaRunStats large = fpga.project(4096, 1u << 20, 128, 4);
  EXPECT_NEAR(large.seconds(opt), 3.69, 0.3);
}

TEST(FpgaAccelerator, CyclesScaleLinearlyWithNAndBatches) {
  const auto data = knn::BinaryDataset::uniform(4, 64, 902);
  const FpgaAccelerator fpga(data, {});
  const auto a = fpga.project(24, 1000, 64, 4);
  const auto b = fpga.project(24, 2000, 64, 4);
  const auto c = fpga.project(48, 1000, 64, 4);
  EXPECT_NEAR(static_cast<double>(b.cycles) / a.cycles, 2.0, 0.05);
  EXPECT_NEAR(static_cast<double>(c.cycles) / a.cycles, 2.0, 0.1);
}

TEST(FpgaAccelerator, RejectsBadArguments) {
  EXPECT_THROW(FpgaAccelerator(knn::BinaryDataset(), {}),
               std::invalid_argument);
  const auto data = knn::BinaryDataset::uniform(4, 16, 903);
  FpgaOptions bad;
  bad.query_lanes = 0;
  EXPECT_THROW(FpgaAccelerator(data, bad), std::invalid_argument);
  const FpgaAccelerator ok(data, {});
  FpgaRunStats stats;
  EXPECT_THROW(ok.search(knn::BinaryDataset::uniform(2, 8, 1), 3, stats),
               std::invalid_argument);
}

}  // namespace
}  // namespace apss::hwmodels
