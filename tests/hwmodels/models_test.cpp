// Platform catalog + GPU model calibration checks against the paper's
// reported values.

#include <gtest/gtest.h>

#include "hwmodels/gpu_model.hpp"
#include "hwmodels/platforms.hpp"

namespace apss::hwmodels {
namespace {

TEST(Platforms, CatalogMatchesTableI) {
  const auto catalog = platform_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  const Platform& xeon = platform("Xeon E5-2620");
  EXPECT_EQ(xeon.cores, 6);
  EXPECT_EQ(xeon.process_nm, 32);
  EXPECT_DOUBLE_EQ(xeon.clock_mhz, 2000.0);
  const Platform& ap = platform("Automata Processor");
  EXPECT_EQ(ap.process_nm, 50);
  EXPECT_DOUBLE_EQ(ap.clock_mhz, 133.0);
  EXPECT_THROW(platform("TPU"), std::out_of_range);
}

TEST(Platforms, PowerConstantsReproducePaperEnergyRows) {
  // Table III SIFT small: Xeon 37.50 ms and 2081 q/J must be consistent
  // with the calibrated 52.5 W.
  const double qpj =
      queries_per_joule(4096, 37.50e-3, platform("Xeon E5-2620").dynamic_power_w);
  EXPECT_NEAR(qpj, 2081, 50);

  const double arm_qpj =
      queries_per_joule(4096, 191.44e-3, platform("Cortex A15").dynamic_power_w);
  EXPECT_NEAR(arm_qpj, 2674, 60);

  const double kintex_qpj =
      queries_per_joule(4096, 3.78e-3, platform("Kintex-7").dynamic_power_w);
  EXPECT_NEAR(kintex_qpj, 289607, 8000);
}

TEST(Platforms, ScanRateReproducesPaperCpuRows) {
  // rate calibrated on SIFT: check it predicts the OTHER workloads' rows.
  const Platform& xeon = platform("Xeon E5-2620");
  const double word_ms =
      4096.0 * 1024 * 64 / xeon.scan_bits_per_second * 1e3;
  EXPECT_NEAR(word_ms, 23.33, 6.0);  // paper: 23.33 ms
  const double tag_ms = 4096.0 * 512 * 256 / xeon.scan_bits_per_second * 1e3;
  EXPECT_NEAR(tag_ms, 33.97, 8.0);  // paper: 33.97 ms
}

TEST(Platforms, ApPowerByWorkload) {
  EXPECT_DOUBLE_EQ(ap_dynamic_power_w(64), 18.8);
  EXPECT_DOUBLE_EQ(ap_dynamic_power_w(128), 23.3);
  EXPECT_DOUBLE_EQ(ap_dynamic_power_w(256), 23.3);
}

TEST(Platforms, QueriesPerJouleRejectsBadInput) {
  EXPECT_THROW(queries_per_joule(10, 0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(queries_per_joule(10, 1.0, 0.0), std::invalid_argument);
}

TEST(GpuModel, TitanXLargeDatasetIsLaunchBound) {
  const GpuModel titan = GpuModel::titan_x();
  // Table IV: ~0.99 / 1.02 / 1.03 s across workloads — nearly flat.
  const double word = titan.seconds(4096, 1u << 20, 64);
  const double sift = titan.seconds(4096, 1u << 20, 128);
  const double tag = titan.seconds(4096, 1u << 20, 256);
  EXPECT_NEAR(word, 0.99, 0.1);
  EXPECT_NEAR(sift, 1.02, 0.1);
  EXPECT_NEAR(tag, 1.03, 0.12);
  // Flatness: doubling d changes time by < 5%.
  EXPECT_LT(tag / word, 1.05);
}

TEST(GpuModel, JetsonLargeDataset) {
  const GpuModel jetson = GpuModel::jetson_tk1();
  EXPECT_NEAR(jetson.seconds(4096, 1u << 20, 128), 16.73, 1.0);
}

}  // namespace
}  // namespace apss::hwmodels
