// The Table III/IV/VIII projection models checked against the paper's
// reported rows.

#include <gtest/gtest.h>

#include "perf/projection.hpp"

namespace apss::perf {
namespace {

TEST(Workloads, TableII) {
  const auto all = paper_workloads();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(workload("kNN-WordEmbed").dims, 64u);
  EXPECT_EQ(workload("kNN-WordEmbed").k, 2u);
  EXPECT_EQ(workload("kNN-SIFT").dims, 128u);
  EXPECT_EQ(workload("kNN-SIFT").k, 4u);
  EXPECT_EQ(workload("kNN-TagSpace").dims, 256u);
  EXPECT_EQ(workload("kNN-TagSpace").k, 16u);
  EXPECT_THROW(workload("kNN-Bogus"), std::out_of_range);
}

TEST(ApProjection, SmallDatasetMatchesTableIII) {
  // AP Gen 1 small rows: 1.97 / 3.94 / 7.88 ms.
  for (const auto& [name, paper_ms] :
       std::vector<std::pair<std::string, double>>{
           {"kNN-WordEmbed", 1.97}, {"kNN-SIFT", 3.94}, {"kNN-TagSpace", 7.88}}) {
    ApScenario s;
    s.workload = workload(name);
    s.n = s.workload.small_n;
    const ApEstimate e = estimate_ap(s);
    EXPECT_EQ(e.configurations, 1u);
    EXPECT_DOUBLE_EQ(e.reconfig_seconds, 0.0);
    EXPECT_NEAR(e.total_seconds * 1e3, paper_ms, paper_ms * 0.02) << name;
  }
}

TEST(ApProjection, SmallDatasetEnergyMatchesTableIII) {
  ApScenario s;
  s.workload = workload("kNN-SIFT");
  s.n = 1024;
  const ApEstimate e = estimate_ap(s);
  EXPECT_NEAR(e.queries_per_joule, 44603, 1500);  // paper: 44603 q/J
}

TEST(ApProjection, LargeDatasetMatchesTableIV) {
  struct Row {
    const char* name;
    double gen1_s, gen2_s;
  };
  for (const Row& row : {Row{"kNN-WordEmbed", 48.10, 2.48},
                         Row{"kNN-SIFT", 50.11, 4.50},
                         Row{"kNN-TagSpace", 108.31, 17.07}}) {
    ApScenario s;
    s.workload = workload(row.name);
    s.n = kLargeN;
    const ApEstimate gen1 = estimate_ap(s);
    EXPECT_NEAR(gen1.total_seconds, row.gen1_s, row.gen1_s * 0.03) << row.name;
    s.device = apsim::DeviceConfig::gen2();
    const ApEstimate gen2 = estimate_ap(s);
    EXPECT_NEAR(gen2.total_seconds, row.gen2_s, row.gen2_s * 0.03) << row.name;
    // Gen 1 reconfiguration dominates ("upwards of 98% of execution time"
    // -- Sec. V-B; ~92-96% across workloads with exact Table IV math).
    EXPECT_GT(gen1.reconfig_seconds / gen1.total_seconds, 0.8) << row.name;
    // Gen 2 shifts the bottleneck back to compute.
    EXPECT_LT(gen2.reconfig_seconds / gen2.total_seconds, 0.3) << row.name;
  }
}

TEST(ApProjection, HonestFrameIsRoughlyTwiceThePaperThroughput) {
  ApScenario s;
  s.workload = workload("kNN-SIFT");
  s.n = 1024;
  const double paper = estimate_ap(s).total_seconds;
  s.throughput = ApThroughput::kFrameCycles;
  const double frame = estimate_ap(s).total_seconds;
  EXPECT_NEAR(frame / paper, 260.0 / 128.0, 1e-9);
}

TEST(ScanSeconds, ReproducesCpuRows) {
  const auto& xeon = hwmodels::platform("Xeon E5-2620");
  EXPECT_NEAR(scan_seconds(xeon, 4096, 1024, 128) * 1e3, 37.5, 1.0);
  const auto& arm = hwmodels::platform("Cortex A15");
  EXPECT_NEAR(scan_seconds(arm, 4096, 1024, 128) * 1e3, 191.44, 6.0);
  // Large dataset scales linearly: Xeon SIFT large ~ 38 s (paper: 33.18 —
  // the paper's large runs are slightly more efficient per byte).
  EXPECT_NEAR(scan_seconds(xeon, 4096, 1u << 20, 128), 38.4, 1.5);
}

TEST(CompoundGains, FactorsInPaperRegime) {
  const CompoundGains g = compound_gains(workload("kNN-SIFT"));
  EXPECT_DOUBLE_EQ(g.tech_scaling, 3.19);
  EXPECT_GT(g.vector_packing, 2.2);   // paper: 3.28
  EXPECT_LT(g.vector_packing, 3.6);
  EXPECT_GT(g.ste_decomposition, 3.5);  // paper: 3.93
  EXPECT_LE(g.ste_decomposition, 4.0);
  EXPECT_GT(g.counter_increment, 1.6);  // paper: 1.75
  EXPECT_LE(g.counter_increment, 1.75);
  // Total in the paper's 63-73x band (ours slightly lower: measured
  // packing is more conservative than the paper's model).
  EXPECT_GT(g.total(), 45.0);
  EXPECT_LT(g.total(), 80.0);
  EXPECT_DOUBLE_EQ(g.energy_total(), g.total() / 3.19);
}

TEST(OptExtProjection, TableIVLastColumnShape) {
  ApScenario s;
  s.workload = workload("kNN-SIFT");
  s.n = kLargeN;
  s.device = apsim::DeviceConfig::gen2();
  const CompoundGains g = compound_gains(s.workload);
  const ApEstimate gen2 = estimate_ap(s);
  const ApEstimate opt = estimate_ap_opt_ext(s, g);
  EXPECT_NEAR(opt.total_seconds, gen2.total_seconds / g.total(), 1e-12);
  // Paper: 0.062 s; ours lands in the same order of magnitude.
  EXPECT_GT(opt.total_seconds, 0.03);
  EXPECT_LT(opt.total_seconds, 0.12);
  EXPECT_GT(opt.queries_per_joule, gen2.queries_per_joule * 10);
}

}  // namespace
}  // namespace apss::perf
