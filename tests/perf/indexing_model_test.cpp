// Table V indexing-model checks: exact linear-row math and the qualitative
// shape for indexed techniques.

#include <gtest/gtest.h>

#include "perf/indexing_model.hpp"

namespace apss::perf {
namespace {

IndexingScenario tagspace_scenario() {
  IndexingScenario s;
  s.workload = workload("kNN-TagSpace");
  return s;
}

TEST(IndexingModel, LinearRowReproducesTableIVMath) {
  const IndexingScenario s = tagspace_scenario();
  IndexingTechniqueModel linear;
  linear.name = "Linear (No Index)";
  linear.candidates_per_query = static_cast<double>(s.n);
  linear.buckets_per_query = 2048.0;
  linear.distinct_buckets_per_batch = 2048.0;

  const auto gen1 = evaluate_indexing(s, linear, apsim::DeviceConfig::gen1());
  // AP side must equal the Table IV TagSpace rows: 108.31 s / 17.07 s.
  EXPECT_NEAR(gen1.ap_seconds, 108.31, 1.5);
  const auto gen2 = evaluate_indexing(s, linear, apsim::DeviceConfig::gen2());
  EXPECT_NEAR(gen2.ap_seconds, 17.07, 0.5);
  // Single-thread ARM linear scan ~ 4 x 382.82 s (Table IV quad-core row).
  EXPECT_NEAR(gen1.cpu_seconds, 4.0 * 382.82, 40.0);
  // Speedups: paper reports 16x / 91x.
  EXPECT_NEAR(gen1.speedup, 14.2, 1.5);
  EXPECT_NEAR(gen2.speedup, 90.0, 5.0);
}

TEST(IndexingModel, MeasuredTechniquesQualitativeShape) {
  const IndexingScenario s = tagspace_scenario();
  const auto techniques = measure_techniques(s, /*sample_n=*/1u << 13, 7);
  ASSERT_EQ(techniques.size(), 4u);
  EXPECT_EQ(techniques[0].name, "Linear (No Index)");
  EXPECT_EQ(techniques[1].name, "KD-Tree");
  EXPECT_EQ(techniques[2].name, "K-Means");
  EXPECT_EQ(techniques[3].name, "MPLSH");

  for (const auto& t : techniques) {
    const auto gen1 = evaluate_indexing(s, t, apsim::DeviceConfig::gen1());
    const auto gen2 = evaluate_indexing(s, t, apsim::DeviceConfig::gen2());
    // Gen 2 always improves on Gen 1 (reconfiguration is the bottleneck).
    EXPECT_GT(gen2.speedup, gen1.speedup) << t.name;
  }

  // Indexed techniques scan far fewer candidates than linear on the CPU.
  EXPECT_LT(techniques[1].candidates_per_query, 0.05 * s.n);
  EXPECT_LT(techniques[2].candidates_per_query, 0.05 * s.n);

  // kd probes one bucket per tree; k-means exactly one.
  EXPECT_NEAR(techniques[1].buckets_per_query, 4.0, 0.5);
  EXPECT_NEAR(techniques[2].buckets_per_query, 1.0, 0.1);
  // MPLSH probes many more buckets (multi-probe fan-out).
  EXPECT_GT(techniques[3].buckets_per_query,
            techniques[1].buckets_per_query);
}

TEST(IndexingModel, Gen1IndexingIsReconfigurationBound) {
  // The paper's core Gen-1 finding: indexing does NOT pay off because
  // every bucket load costs 45 ms (kd/k-means/LSH rows < 1x in Table V,
  // i.e. far below the 16x of the linear row).
  const IndexingScenario s = tagspace_scenario();
  const auto techniques = measure_techniques(s, 1u << 13, 8);
  const auto linear_gen1 =
      evaluate_indexing(s, techniques[0], apsim::DeviceConfig::gen1());
  for (std::size_t i = 1; i < techniques.size(); ++i) {
    const auto r =
        evaluate_indexing(s, techniques[i], apsim::DeviceConfig::gen1());
    EXPECT_LT(r.speedup, linear_gen1.speedup) << techniques[i].name;
    EXPECT_LT(r.speedup, 2.0) << techniques[i].name;
  }
}

TEST(IndexingModel, Gen2MplshTrailsTreeIndexes) {
  // Table V: MPLSH gains far less from Gen 2 (3.5x vs 106/120x) because
  // multi-probe touches many buckets per query.
  const IndexingScenario s = tagspace_scenario();
  const auto techniques = measure_techniques(s, 1u << 13, 9);
  const auto kd = evaluate_indexing(s, techniques[1], apsim::DeviceConfig::gen2());
  const auto mplsh =
      evaluate_indexing(s, techniques[3], apsim::DeviceConfig::gen2());
  EXPECT_LT(mplsh.speedup, kd.speedup);
}

TEST(IndexingModel, RejectsBadArguments) {
  IndexingScenario s = tagspace_scenario();
  s.cpu_scan_bits_per_second = 0.0;
  EXPECT_THROW(evaluate_indexing(s, {}, apsim::DeviceConfig::gen1()),
               std::invalid_argument);
  EXPECT_THROW(measure_techniques(tagspace_scenario(), /*sample_n=*/100),
               std::invalid_argument);
}

}  // namespace
}  // namespace apss::perf
