#include "util/bitvector.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace apss::util {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SetGetFlip) {
  BitVector v(130);  // spans three words
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_FALSE(v.get(i));
  }
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
}

TEST(BitVector, ParseRoundTrip) {
  const std::string s = "1011001110001111";
  const BitVector v = BitVector::parse(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 10u);
}

TEST(BitVector, ParseRejectsNonBinary) {
  EXPECT_THROW(BitVector::parse("10x1"), std::invalid_argument);
}

TEST(BitVector, FromBitsMatchesParse) {
  const std::vector<int> bits = {1, 0, 1, 1};
  const BitVector a = BitVector::from_bits(bits);
  const BitVector b = BitVector::parse("1011");
  EXPECT_EQ(a, b);
}

TEST(BitVector, FromBitsRejectsOutOfRange) {
  const std::vector<int> bits = {1, 2};
  EXPECT_THROW(BitVector::from_bits(bits), std::invalid_argument);
}

TEST(HammingDistance, KnownValues) {
  const BitVector a = BitVector::parse("1011");
  const BitVector b = BitVector::parse("1001");
  EXPECT_EQ(hamming_distance(a, b), 1u);
  EXPECT_EQ(hamming_distance(a, a), 0u);
  const BitVector z(4);
  EXPECT_EQ(hamming_distance(a, z), 3u);
}

TEST(HammingDistance, MatchesNaiveOnRandomVectors) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dims = 1 + rng.below(300);
    BitVector a(dims), b(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      a.set(i, rng.bernoulli(0.5));
      b.set(i, rng.bernoulli(0.5));
    }
    std::size_t naive = 0;
    for (std::size_t i = 0; i < dims; ++i) {
      naive += a.get(i) != b.get(i);
    }
    EXPECT_EQ(hamming_distance(a, b), naive) << "dims=" << dims;
  }
}

TEST(HammingDistance, SymmetryAndTriangleInequality) {
  Rng rng(7);
  const std::size_t dims = 128;
  for (int trial = 0; trial < 30; ++trial) {
    BitVector a(dims), b(dims), c(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      a.set(i, rng.bernoulli(0.5));
      b.set(i, rng.bernoulli(0.5));
      c.set(i, rng.bernoulli(0.5));
    }
    EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
    EXPECT_LE(hamming_distance(a, c),
              hamming_distance(a, b) + hamming_distance(b, c));
  }
}

TEST(BitVector, WordBoundarySizes) {
  // 63/64/65 straddle the one-word/two-word transition.
  for (const std::size_t n : {63u, 64u, 65u}) {
    BitVector v(n);
    EXPECT_EQ(v.size(), n);
    EXPECT_EQ(v.words().size(), words_for_bits(n));
    v.set(n - 1, true);
    EXPECT_TRUE(v.get(n - 1));
    EXPECT_EQ(v.popcount(), 1u) << "n=" << n;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_FALSE(v.get(i)) << "n=" << n << " i=" << i;
    }
    v.set(n - 1, false);
    EXPECT_EQ(v.popcount(), 0u);
  }
}

TEST(BitVector, PopcountAfterFlipAllAtBoundaries) {
  // Flipping every bit must count exactly n ones: padding bits in the
  // final word must never leak into popcount or to_string.
  for (const std::size_t n : {63u, 64u, 65u}) {
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.flip(i);
    }
    EXPECT_EQ(v.popcount(), n) << "n=" << n;
    EXPECT_EQ(v.to_string(), std::string(n, '1'));
    for (std::size_t i = 0; i < n; ++i) {
      v.flip(i);
    }
    EXPECT_EQ(v.popcount(), 0u) << "n=" << n;
    EXPECT_EQ(v.to_string(), std::string(n, '0'));
  }
}

TEST(HammingDistance, ComplementAtWordBoundaries) {
  for (const std::size_t n : {63u, 64u, 65u}) {
    const BitVector zero(n);
    BitVector ones(n);
    for (std::size_t i = 0; i < n; ++i) {
      ones.flip(i);
    }
    EXPECT_EQ(hamming_distance(zero, ones), n);
    EXPECT_EQ(hamming_distance(ones, ones), 0u);
  }
}

TEST(WordsForBits, Boundaries) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

}  // namespace
}  // namespace apss::util
