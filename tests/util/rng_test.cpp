#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace apss::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next();
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  // bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(12);
  constexpr int kSamples = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng rng(14);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

}  // namespace
}  // namespace apss::util
