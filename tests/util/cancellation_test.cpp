// Deadline / CancellationToken / RunControl unit tests, including the
// already-expired-at-construction edge case the serving layer's admission
// fast path relies on (docs/ROBUSTNESS.md "Serving"): a request whose
// budget is gone when it is submitted must be detectable WITHOUT running
// any simulator work — Deadline::expired() has to be true immediately,
// not only at the first frame checkpoint.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/cancellation.hpp"

namespace apss::util {
namespace {

TEST(DeadlineTest, DefaultIsUnsetAndNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.set());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ExpiredAtConstructionIsVisibleImmediately) {
  // Zero and negative budgets are expired by the time anyone can look —
  // the admission fast path must shed such requests before any simulator
  // work is enqueued, so this must hold without an intervening sleep.
  const Deadline zero = Deadline::after_ms(0);
  EXPECT_TRUE(zero.set());
  EXPECT_TRUE(zero.expired());

  const Deadline negative = Deadline::after_ms(-5);
  EXPECT_TRUE(negative.set());
  EXPECT_TRUE(negative.expired());
  EXPECT_LT(negative.remaining_ms(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineNotExpiredUntilItPasses) {
  const Deadline d = Deadline::after_ms(60'000);
  EXPECT_TRUE(d.set());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);

  const Deadline soon = Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(soon.expired());
}

TEST(DeadlineTest, LatestPrefersTheLongerBudgetAndUnsetWins) {
  const Deadline unset;
  const Deadline shorter = Deadline::after_ms(10);
  const Deadline longer = Deadline::after_ms(60'000);

  // Unset = never expires, so it is always the latest.
  EXPECT_FALSE(Deadline::latest(unset, shorter).set());
  EXPECT_FALSE(Deadline::latest(shorter, unset).set());
  EXPECT_FALSE(Deadline::latest(unset, unset).set());

  const Deadline picked = Deadline::latest(shorter, longer);
  ASSERT_TRUE(picked.set());
  EXPECT_GT(picked.remaining_ms(), 1'000.0);
  // Symmetric.
  EXPECT_GT(Deadline::latest(longer, shorter).remaining_ms(), 1'000.0);
}

TEST(DeadlineTest, EarliestPrefersTheShorterBudgetAndSetWins) {
  const Deadline unset;
  const Deadline shorter = Deadline::after_ms(10);
  const Deadline longer = Deadline::after_ms(60'000);

  EXPECT_TRUE(Deadline::earliest(unset, shorter).set());
  EXPECT_TRUE(Deadline::earliest(shorter, unset).set());
  EXPECT_FALSE(Deadline::earliest(unset, unset).set());

  EXPECT_LT(Deadline::earliest(shorter, longer).remaining_ms(), 1'000.0);
  EXPECT_LT(Deadline::earliest(longer, shorter).remaining_ms(), 1'000.0);
}

TEST(CancellationTokenTest, OneWayAndVisibleAcrossThreads) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  std::thread t([&] { token.request_cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent; there is no un-cancel
  EXPECT_TRUE(token.cancelled());
}

TEST(RunControlTest, EngagedOnlyWithASetDeadlineOrAToken) {
  RunControl idle;
  EXPECT_FALSE(idle.engaged());
  idle.checkpoint();  // no-op, must not throw

  const Deadline unset;
  RunControl with_unset;
  with_unset.deadline = &unset;
  EXPECT_FALSE(with_unset.engaged());

  const Deadline far = Deadline::after_ms(60'000);
  RunControl with_deadline;
  with_deadline.deadline = &far;
  EXPECT_TRUE(with_deadline.engaged());
  with_deadline.checkpoint();  // not expired, must not throw

  CancellationToken token;
  RunControl with_token;
  with_token.cancel = &token;
  EXPECT_TRUE(with_token.engaged());
}

TEST(RunControlTest, CheckpointThrowsTypedErrorsCancelFirst) {
  const Deadline expired = Deadline::after_ms(-1);
  RunControl ctl;
  ctl.deadline = &expired;
  EXPECT_THROW(ctl.checkpoint(), DeadlineExceeded);

  // Cancellation wins the attribution when both fire.
  CancellationToken token;
  token.request_cancel();
  ctl.cancel = &token;
  EXPECT_THROW(ctl.checkpoint(), OperationCancelled);
}

}  // namespace
}  // namespace apss::util
