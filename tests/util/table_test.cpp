#include "util/table.hpp"

#include <gtest/gtest.h>

namespace apss::util {
namespace {

TEST(TablePrinter, RendersAlignedTable) {
  TablePrinter t("Demo");
  t.set_header({"Workload", "ms"});
  t.add_row({"SIFT", "3.94"});
  t.add_row({"WordEmbed", "1.97"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("| Workload  |"), std::string::npos);
  EXPECT_NE(s.find("3.94"), std::string::npos);
  // All data rows have the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::string line = s.substr(pos, eol - pos);
    if (!line.empty() && (line[0] == '|' || line[0] == '+')) {
      if (width == 0) {
        width = line.size();
      }
      EXPECT_EQ(line.size(), width) << line;
    }
    pos = eol + 1;
  }
}

TEST(TablePrinter, RowSizeMismatchThrows) {
  TablePrinter t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, NotesAppearAfterTable) {
  TablePrinter t;
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_note("calibrated against the paper");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("note: calibrated"), std::string::npos);
}

TEST(TablePrinter, FmtFixedAndAuto) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::fmt_auto(0.5), "0.50");
  const std::string big = TablePrinter::fmt_auto(1.23e9);
  EXPECT_NE(big.find('e'), std::string::npos);
}

}  // namespace
}  // namespace apss::util
