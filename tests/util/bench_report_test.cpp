// util::BenchReport writes one JSON object per line to BENCH_<name>.json;
// downstream tooling (CI artifacts, trajectory diffs) depends on the exact
// field names, so the format is pinned here.

#include "util/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace apss::util {
namespace {

class BenchReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("apss_bench_report_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ::setenv("APSS_BENCH_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("APSS_BENCH_DIR");
    std::filesystem::remove_all(dir_);
  }

  std::string slurp(const std::string& path) const {
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
  }

  std::filesystem::path dir_;
};

TEST_F(BenchReportTest, PathHonorsEnvDirectory) {
  EXPECT_EQ(BenchReport::default_path("micro"),
            dir_.string() + "/BENCH_micro.json");
}

TEST_F(BenchReportTest, WritesOneJsonObjectPerLine) {
  BenchReport report("demo");
  ASSERT_TRUE(report.ok());
  report.write(BenchRecord("first")
                   .param("n", std::uint64_t{1024})
                   .param("backend", "bit_parallel")
                   .cycles(2600)
                   .wall_seconds(0.5)
                   .model_seconds(0.03125));
  report.write(BenchRecord("second").param("ratio", 2.5));

  const std::string text = slurp(report.path());
  std::istringstream lines(text);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(lines, line1));
  ASSERT_TRUE(std::getline(lines, line2));
  EXPECT_EQ(line1,
            "{\"bench\":\"demo\",\"case\":\"first\","
            "\"params\":{\"n\":1024,\"backend\":\"bit_parallel\"},"
            "\"cycles\":2600,\"wall_seconds\":0.5,"
            "\"model_seconds\":0.03125}");
  EXPECT_EQ(line2,
            "{\"bench\":\"demo\",\"case\":\"second\","
            "\"params\":{\"ratio\":2.5}}");
}

TEST_F(BenchReportTest, EscapesStringsAndOmitsUnsetMetrics) {
  BenchReport report("esc");
  report.write(BenchRecord("quote\"back\\slash\nnewline")
                   .param("note", "tab\there"));
  const std::string text = slurp(report.path());
  EXPECT_NE(text.find("\"case\":\"quote\\\"back\\\\slash\\nnewline\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"note\":\"tab\\there\""), std::string::npos) << text;
  EXPECT_EQ(text.find("wall_seconds"), std::string::npos) << text;
}

TEST_F(BenchReportTest, TruncatesOnReopen) {
  {
    BenchReport report("trunc");
    report.write(BenchRecord("stale"));
  }
  BenchReport report("trunc");
  report.write(BenchRecord("fresh"));
  const std::string text = slurp(report.path());
  EXPECT_EQ(text.find("stale"), std::string::npos);
  EXPECT_NE(text.find("fresh"), std::string::npos);
}

}  // namespace
}  // namespace apss::util
