#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace apss::util {
namespace {

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : xs) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
}

TEST(Stats, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_THROW(percentile(empty, 50.0), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

}  // namespace
}  // namespace apss::util
