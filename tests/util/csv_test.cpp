#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace apss::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "apss_csv_test.csv").string();
  {
    CsvWriter csv(path, {"workload", "ms"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"sift", "3.94"});
    csv.add_row({"tagspace", "7.88"});
  }
  EXPECT_EQ(slurp(path), "workload,ms\nsift,3.94\ntagspace,7.88\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  const auto path =
      (std::filesystem::temp_directory_path() / "apss_csv_esc.csv").string();
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"has,comma", "has \"quote\""});
    csv.add_row({"line\nbreak", "plain"});
  }
  EXPECT_EQ(slurp(path),
            "a,b\n\"has,comma\",\"has \"\"quote\"\"\"\n\"line\nbreak\","
            "plain\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  const auto path =
      (std::filesystem::temp_directory_path() / "apss_csv_bad.csv").string();
  CsvWriter csv(path, {"x", "y"});
  EXPECT_THROW(csv.add_row({"only"}), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apss::util
