#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace apss::util {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_chunks(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LT(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) {
          ++hits[i];
        }
      },
      64);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReductionMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          local += static_cast<long long>(i);
        }
        total += local;
      },
      1024);
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    // Nested submission must not deadlock.
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::size_t seen = 99;
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++count;
    seen = i;
  });
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(seen, 7u);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(3);
  const auto caller = std::this_thread::get_id();
  std::size_t calls = 0;
  pool.parallel_for_chunks(
      0, 10,
      [&](std::size_t lo, std::size_t hi) {
        // One chunk, on the submitting thread (the small-range fast path).
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
      },
      /*grain=*/100);
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, OneThreadPoolCoversRange) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ExceptionRethrownOnSubmittingThread) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t i) {
                          if (i == 333) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable: the job drained, no worker died.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionInChunkedBodyAbandonsRemainingChunks) {
  ThreadPool pool(2);
  std::atomic<int> chunks_run{0};
  try {
    pool.parallel_for_chunks(
        0, 1 << 20,
        [&](std::size_t lo, std::size_t) {
          ++chunks_run;
          if (lo == 0) {
            throw std::invalid_argument("first chunk fails");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        },
        /*grain=*/64);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_STREQ(ex.what(), "first chunk fails");
  }
  // Unclaimed chunks are abandoned once the failure is recorded: far fewer
  // bodies ran than the 16384 chunks the range holds.
  EXPECT_LT(chunks_run.load(), 1 << 14);
}

TEST(ThreadPool, ThrowingBodyDoesNotSerializeLaterJobs) {
  // Regression: run_job used to reset its inside-a-job flag with a plain
  // assignment, so a throwing body left it stuck and every later
  // parallel_for on that thread silently degraded to serial execution.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   0, 64,
                   [&](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);

  std::mutex mu;
  std::set<std::thread::id> threads_seen;
  pool.parallel_for(0, 64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    threads_seen.insert(std::this_thread::get_id());
  });
  // With the flag stuck, every iteration would run on the submitting
  // thread; 4 idle workers and 64 x 1ms bodies make >= 2 threads certain.
  EXPECT_GE(threads_seen.size(), 2u);
}

TEST(ThreadPool, ExceptionFromSubmitterParticipationPropagates) {
  // The submitting thread participates in its own job; a throw in the
  // chunk it claims must follow the same capture-and-rethrow path.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for_chunks(
                   0, 4,
                   [&](std::size_t, std::size_t) {
                     ++ran;
                     throw std::logic_error("either thread");
                   },
                   /*grain=*/1),
               std::logic_error);
  EXPECT_GE(ran.load(), 1);
  // Nested degradation still works afterwards (flag restored everywhere).
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ConcurrentSubmittersShareOnePool) {
  // Several threads race parallel_for calls on the SAME pool; submission
  // is serialized (submit_mutex_), so every job still runs every iteration
  // exactly once and no submitter observes another job's state.
  ThreadPool pool(4);
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kRounds = 25;
  constexpr std::size_t kN = 512;
  std::vector<std::atomic<std::size_t>> totals(kSubmitters);
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::atomic<std::size_t> count{0};
        pool.parallel_for(0, kN, [&](std::size_t) { ++count; });
        totals[s] += count.load();
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(totals[s].load(), kRounds * kN) << "submitter " << s;
  }
}

TEST(ThreadPool, ExceptionFromNestedParallelForPropagates) {
  // A nested parallel_for degrades to serial execution inside the job
  // body; a throw from the NESTED loop must surface through the outer
  // job's capture-and-rethrow path, and the pool must stay healthy.
  ThreadPool pool(4);
  std::atomic<int> outer_bodies{0};
  try {
    pool.parallel_for(0, 64, [&](std::size_t i) {
      ++outer_bodies;
      pool.parallel_for(0, 8, [&](std::size_t j) {
        if (i == 5 && j == 3) {
          throw std::out_of_range("nested boom");
        }
      });
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& ex) {
    EXPECT_STREQ(ex.what(), "nested boom");
  }
  EXPECT_GE(outer_bodies.load(), 1);
  // Both nesting levels still work afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, FirstExceptionInClaimOrderWinsWhenAllThrow) {
  // Every chunk throws. Exactly one exception is captured (the first to
  // record), the rest are swallowed, and each runner abandons the job
  // after its first failing claim — so at most workers + submitter bodies
  // ever run out of the 256 chunks.
  ThreadPool pool(3);
  constexpr std::size_t kChunks = 256;
  std::atomic<int> bodies_run{0};
  std::string caught;
  try {
    pool.parallel_for_chunks(
        0, kChunks,
        [&](std::size_t lo, std::size_t) {
          ++bodies_run;
          throw std::runtime_error("chunk " + std::to_string(lo));
        },
        /*grain=*/1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& ex) {
    caught = ex.what();
  }
  EXPECT_EQ(caught.rfind("chunk ", 0), 0u) << caught;
  const int runners = static_cast<int>(pool.size()) + 1;
  EXPECT_GE(bodies_run.load(), 1);
  EXPECT_LE(bodies_run.load(), runners);
  // The winning exception came from a chunk that actually ran: with every
  // body throwing on its first claim, that chunk index is below the number
  // of runners.
  const std::size_t winner = std::stoul(caught.substr(6));
  EXPECT_LT(winner, static_cast<std::size_t>(runners));
  // Drained clean: the next job is unaffected.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace apss::util
