#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace apss::util {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedVariantCoversRange) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_chunks(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LT(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) {
          ++hits[i];
        }
      },
      64);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReductionMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          local += static_cast<long long>(i);
        }
        total += local;
      },
      1024);
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    // Nested submission must not deadlock.
    pool.parallel_for(0, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 100) << "round " << round;
  }
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace apss::util
