#include "anml/anml_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

namespace apss::anml {
namespace {

AutomataNetwork sample_network() {
  AutomataNetwork net("sample & <net>");
  const ElementId guard =
      net.add_ste(SymbolSet::single(0x81), StartKind::kAllInput, "guard");
  const ElementId star = net.add_ste(SymbolSet::all(), StartKind::kNone, "s");
  const ElementId match = net.add_ste(SymbolSet::ternary(0x01, 0x81));
  const ElementId counter = net.add_counter(4, CounterMode::kPulse, "ihd");
  const ElementId gate = net.add_boolean(BooleanOp::kNor);
  const ElementId report = net.add_reporting_ste(SymbolSet::all(), 42, "rep");
  net.connect(guard, star);
  net.connect(guard, match);
  net.connect(star, star);
  net.connect(match, counter, CounterPort::kCountEnable);
  net.connect(star, counter, CounterPort::kReset);
  net.connect(counter, report);
  net.connect(star, gate);
  net.connect(match, gate);
  return net;
}

bool networks_equivalent(const AutomataNetwork& a, const AutomataNetwork& b) {
  if (a.size() != b.size() || a.edges().size() != b.edges().size()) {
    return false;
  }
  for (ElementId i = 0; i < a.size(); ++i) {
    const Element& x = a.element(i);
    const Element& y = b.element(i);
    if (x.kind != y.kind || !(x.symbols == y.symbols) || x.start != y.start ||
        x.threshold != y.threshold || x.mode != y.mode || x.op != y.op ||
        x.reporting != y.reporting || x.report_code != y.report_code) {
      return false;
    }
  }
  // Edge MULTISETS must match: the writer groups edges under their source
  // element, so document order differs from insertion order.
  const auto sorted_edges = [](const AutomataNetwork& n) {
    auto edges = n.edges();
    std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
      return std::tie(x.from, x.to, x.port) < std::tie(y.from, y.to, y.port);
    });
    return edges;
  };
  return sorted_edges(a) == sorted_edges(b);
}

TEST(AnmlIo, RoundTripPreservesStructure) {
  const AutomataNetwork net = sample_network();
  const std::string xml = to_anml(net);
  const AutomataNetwork back = from_anml(xml);
  EXPECT_EQ(back.name(), net.name());
  EXPECT_TRUE(networks_equivalent(net, back));
}

TEST(AnmlIo, EmitsExpectedTags) {
  const std::string xml = to_anml(sample_network());
  EXPECT_NE(xml.find("<automata-network"), std::string::npos);
  EXPECT_NE(xml.find("<state-transition-element"), std::string::npos);
  EXPECT_NE(xml.find("<counter"), std::string::npos);
  EXPECT_NE(xml.find("<boolean"), std::string::npos);
  EXPECT_NE(xml.find("report-on-match reportcode=\"42\""), std::string::npos);
  EXPECT_NE(xml.find("port=\"rst\""), std::string::npos);
  // Name with XML metacharacters is escaped.
  EXPECT_NE(xml.find("sample &amp; &lt;net&gt;"), std::string::npos);
  EXPECT_EQ(xml.find("<net>"), std::string::npos);
}

TEST(AnmlIo, ToleratesCommentsAndWhitespace) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<automata-network name=\"t\">\n"
      "  <state-transition-element id=\"0\" symbol-set=\"*\" "
      "start=\"all-input\"/>\n"
      "</automata-network>\n";
  const AutomataNetwork net = from_anml(xml);
  EXPECT_EQ(net.size(), 1u);
  EXPECT_EQ(net.element(0).start, StartKind::kAllInput);
}

TEST(AnmlIo, SelfClosingElementsHaveNoChildren) {
  const std::string xml =
      "<automata-network name=\"t\">"
      "<counter id=\"0\" target=\"7\" mode=\"latch\"/>"
      "</automata-network>";
  const AutomataNetwork net = from_anml(xml);
  EXPECT_EQ(net.size(), 1u);
  EXPECT_EQ(net.element(0).threshold, 7u);
  EXPECT_EQ(net.element(0).mode, CounterMode::kLatch);
}

TEST(AnmlIo, RejectsMalformedDocuments) {
  EXPECT_THROW(from_anml("<bogus/>"), std::runtime_error);
  EXPECT_THROW(from_anml("<automata-network name=\"t\">"
                         "<state-transition-element id=\"0\"/>"
                         "</automata-network>"),
               std::runtime_error);  // missing symbol-set
  EXPECT_THROW(from_anml("<automata-network name=\"t\">"
                         "<counter id=\"0\" target=\"x\"/>"
                         "</automata-network>"),
               std::runtime_error);  // bad number
  EXPECT_THROW(from_anml("<automata-network name=\"t\">"
                         "<state-transition-element id=\"0\" symbol-set=\"*\">"
                         "<activate-on-match element=\"9\"/>"
                         "</state-transition-element>"
                         "</automata-network>"),
               std::runtime_error);  // dangling edge target
}

}  // namespace
}  // namespace apss::anml
