#include "anml/network.hpp"

#include <gtest/gtest.h>

namespace apss::anml {
namespace {

AutomataNetwork small_chain() {
  AutomataNetwork net("chain");
  const ElementId a = net.add_ste(SymbolSet::single('a'), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::single('b'));
  const ElementId c = net.add_reporting_ste(SymbolSet::all(), 7);
  net.connect(a, b);
  net.connect(b, c);
  return net;
}

TEST(AutomataNetwork, BuildAndStats) {
  AutomataNetwork net = small_chain();
  const ElementId counter = net.add_counter(4);
  const ElementId gate = net.add_boolean(BooleanOp::kOr);
  net.connect(0, counter, CounterPort::kCountEnable);
  net.connect(1, gate);

  const NetworkStats s = net.stats();
  EXPECT_EQ(s.ste_count, 3u);
  EXPECT_EQ(s.counter_count, 1u);
  EXPECT_EQ(s.boolean_count, 1u);
  EXPECT_EQ(s.reporting_count, 1u);
  EXPECT_EQ(s.start_count, 1u);
  EXPECT_EQ(s.edge_count, 4u);
  EXPECT_EQ(s.max_fan_out, 2u);  // element 0 and 1 both have fan-out 2
  EXPECT_EQ(s.max_fan_in, 1u);
}

TEST(AutomataNetwork, FanInFanOut) {
  AutomataNetwork net = small_chain();
  EXPECT_EQ(net.fan_out(0), 1u);
  EXPECT_EQ(net.fan_in(1), 1u);
  EXPECT_EQ(net.fan_in(0), 0u);
  EXPECT_EQ(net.out_edges(0).size(), 1u);
  EXPECT_EQ(net.in_edges(2).size(), 1u);
}

TEST(AutomataNetwork, ConnectRejectsBadIds) {
  AutomataNetwork net = small_chain();
  EXPECT_THROW(net.connect(0, 99), std::out_of_range);
  EXPECT_THROW(net.connect(99, 0), std::out_of_range);
}

TEST(AutomataNetwork, ComponentsCountsIslands) {
  AutomataNetwork net = small_chain();  // one component of 3
  net.add_ste(SymbolSet::all());        // isolated
  AutomataNetwork other = small_chain();
  net.merge(other);  // second chain island

  std::vector<std::uint32_t> labels;
  const std::size_t n = net.components(labels);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(labels.size(), 7u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[3], labels[4]);
}

TEST(AutomataNetwork, MergeOffsetsIds) {
  AutomataNetwork net = small_chain();
  AutomataNetwork other = small_chain();
  const ElementId offset = net.merge(other);
  EXPECT_EQ(offset, 3u);
  EXPECT_EQ(net.size(), 6u);
  // The merged chain's edges reference offset ids.
  EXPECT_EQ(net.fan_in(offset + 1), 1u);
  EXPECT_EQ(net.in_edges(offset + 1)[0].from, offset);
}

TEST(AutomataNetworkValidate, AcceptsWellFormed) {
  AutomataNetwork net = small_chain();
  EXPECT_TRUE(net.validate().empty());
}

TEST(AutomataNetworkValidate, RejectsEmptySymbolClass) {
  AutomataNetwork net;
  net.add_ste(SymbolSet());
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, RejectsZeroThresholdCounter) {
  AutomataNetwork net;
  net.add_counter(0);
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, RejectsInputlessBoolean) {
  AutomataNetwork net;
  net.add_boolean(BooleanOp::kAnd);
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, RejectsMultiInputNot) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId gate = net.add_boolean(BooleanOp::kNot);
  net.connect(a, gate);
  net.connect(b, gate);
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, RejectsCounterPortOnSte) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId b = net.add_ste(SymbolSet::all());
  net.connect(a, b, CounterPort::kReset);
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, DynamicThresholdGated) {
  AutomataNetwork net;
  const ElementId a = net.add_counter(4);
  const ElementId b = net.add_counter(4);
  net.connect(a, b, CounterPort::kThreshold);
  EXPECT_FALSE(net.validate(false).empty());
  EXPECT_TRUE(net.validate(true).empty());
}

TEST(AutomataNetworkValidate, DynamicThresholdSourceMustBeCounter) {
  AutomataNetwork net;
  const ElementId a = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId b = net.add_counter(4);
  net.connect(a, b, CounterPort::kThreshold);
  EXPECT_FALSE(net.validate(true).empty());
}

TEST(AutomataNetworkValidate, RejectsBooleanCycle) {
  AutomataNetwork net;
  const ElementId src = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId g1 = net.add_boolean(BooleanOp::kOr);
  const ElementId g2 = net.add_boolean(BooleanOp::kOr);
  net.connect(src, g1);
  net.connect(g1, g2);
  net.connect(g2, g1);  // combinational loop
  EXPECT_FALSE(net.validate().empty());
}

TEST(AutomataNetworkValidate, BooleanCycleThroughSteIsFine) {
  AutomataNetwork net;
  const ElementId src = net.add_ste(SymbolSet::all(), StartKind::kAllInput);
  const ElementId g1 = net.add_boolean(BooleanOp::kOr);
  const ElementId ste = net.add_ste(SymbolSet::all());
  net.connect(src, g1);
  net.connect(g1, ste);
  net.connect(ste, g1);  // loop broken by a clocked element
  EXPECT_TRUE(net.validate().empty());
}

}  // namespace
}  // namespace apss::anml
