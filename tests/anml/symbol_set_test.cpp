#include "anml/symbol_set.hpp"

#include <gtest/gtest.h>

namespace apss::anml {
namespace {

TEST(SymbolSet, EmptyAndAll) {
  SymbolSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  const SymbolSet all = SymbolSet::all();
  EXPECT_TRUE(all.is_all());
  EXPECT_EQ(all.count(), 256);
  for (int s = 0; s < 256; ++s) {
    EXPECT_TRUE(all.test(static_cast<std::uint8_t>(s)));
  }
}

TEST(SymbolSet, SingleAndAllExcept) {
  const SymbolSet s = SymbolSet::single(0x41);
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.test(0x41));
  EXPECT_FALSE(s.test(0x42));

  const SymbolSet not_eof = SymbolSet::all_except(0x82);
  EXPECT_EQ(not_eof.count(), 255);
  EXPECT_FALSE(not_eof.test(0x82));
  EXPECT_TRUE(not_eof.test(0x81));
}

TEST(SymbolSet, TernaryMatchesMaskedBits) {
  // 0b*******1: all odd symbols.
  const SymbolSet odd = SymbolSet::ternary(0x01, 0x01);
  EXPECT_EQ(odd.count(), 128);
  EXPECT_TRUE(odd.test(0x01));
  EXPECT_TRUE(odd.test(0xff));
  EXPECT_FALSE(odd.test(0x00));
  EXPECT_FALSE(odd.test(0xfe));

  // Full mask = exact match.
  const SymbolSet exact = SymbolSet::ternary(0xab, 0xff);
  EXPECT_EQ(exact.count(), 1);
  EXPECT_TRUE(exact.test(0xab));

  // Empty mask = match everything.
  EXPECT_TRUE(SymbolSet::ternary(0x00, 0x00).is_all());
}

TEST(SymbolSet, ParseStar) { EXPECT_TRUE(SymbolSet::parse("*").is_all()); }

TEST(SymbolSet, ParseSingleCharacterAndEscape) {
  EXPECT_TRUE(SymbolSet::parse("a").test('a'));
  EXPECT_EQ(SymbolSet::parse("a").count(), 1);
  EXPECT_TRUE(SymbolSet::parse("\\x41").test(0x41));
  EXPECT_TRUE(SymbolSet::parse("\\*").test('*'));
  EXPECT_EQ(SymbolSet::parse("\\*").count(), 1);
}

TEST(SymbolSet, ParseClassWithRangeAndNegation) {
  const SymbolSet cls = SymbolSet::parse("[a-c]");
  EXPECT_EQ(cls.count(), 3);
  EXPECT_TRUE(cls.test('a'));
  EXPECT_TRUE(cls.test('b'));
  EXPECT_TRUE(cls.test('c'));
  EXPECT_FALSE(cls.test('d'));

  const SymbolSet neg = SymbolSet::parse("[^a]");
  EXPECT_EQ(neg.count(), 255);
  EXPECT_FALSE(neg.test('a'));

  const SymbolSet multi = SymbolSet::parse("[ac\\x00]");
  EXPECT_EQ(multi.count(), 3);
  EXPECT_TRUE(multi.test(0));
}

TEST(SymbolSet, ParseBitPattern) {
  const SymbolSet s = SymbolSet::parse("0b*******1");
  EXPECT_EQ(s, SymbolSet::ternary(0x01, 0x01));
  const SymbolSet hi = SymbolSet::parse("0b1*******");
  EXPECT_EQ(hi, SymbolSet::ternary(0x80, 0x80));
}

TEST(SymbolSet, ParseRejectsMalformed) {
  EXPECT_THROW(SymbolSet::parse(""), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("[ab"), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("ab"), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("0b***"), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("0b*******2"), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("[z-a]"), std::invalid_argument);
  EXPECT_THROW(SymbolSet::parse("\\x4"), std::invalid_argument);
}

TEST(SymbolSet, SetOperations) {
  const SymbolSet a = SymbolSet::parse("[a-m]");
  const SymbolSet b = SymbolSet::parse("[h-z]");
  EXPECT_EQ((a | b).count(), 26);
  EXPECT_EQ((a & b).count(), 6);  // h..m
  EXPECT_EQ((~a).count(), 256 - 13);
}

TEST(SymbolSet, PatternRoundTrip) {
  const SymbolSet cases[] = {
      SymbolSet::all(),
      SymbolSet::single(0x00),
      SymbolSet::single(0xff),
      SymbolSet::parse("[a-f]"),
      SymbolSet::ternary(0x01, 0x81),
      SymbolSet::all_except(0x82),
  };
  for (const SymbolSet& s : cases) {
    EXPECT_EQ(SymbolSet::parse(s.to_pattern()), s) << s.to_pattern();
  }
}

TEST(SymbolSet, RequiredBitsFullAlphabet) {
  // Over the full alphabet, matching a single symbol needs all 8 bits...
  EXPECT_EQ(SymbolSet::single(0x01).required_bits(SymbolSet::all()), 8);
  // ...but a ternary 1-bit slice needs exactly 1,
  EXPECT_EQ(SymbolSet::ternary(0x01, 0x01).required_bits(SymbolSet::all()), 1);
  // ...and match-all / match-none need none.
  EXPECT_EQ(SymbolSet::all().required_bits(SymbolSet::all()), 0);
  EXPECT_EQ(SymbolSet().required_bits(SymbolSet::all()), 0);
}

TEST(SymbolSet, RequiredBitsRestrictedAlphabet) {
  // The kNN alphabet: data 0x00/0x01, SOF 0x81, EOF 0x82, FILL 0x83.
  SymbolSet alphabet;
  alphabet.insert(0x00);
  alphabet.insert(0x01);
  alphabet.insert(0x81);
  alphabet.insert(0x82);
  alphabet.insert(0x83);

  // A matching state (bit 0 within data symbols) needs few bits: bit 0 and
  // bit 7 separate {0x01} from {0x00, 0x81, 0x82, 0x83}... bit0=1 also held
  // by 0x81/0x83 so bit 7 is required too -> 2 bits.
  SymbolSet match1 = SymbolSet::ternary(0x01, 0x81);
  EXPECT_EQ(match1.required_bits(alphabet), 2);

  // The EOF state must separate 0x82 from 0x81/0x83 (bit 0) and from data
  // (bit 1 or 7): 2 bits suffice.
  EXPECT_EQ(SymbolSet::single(0x82).required_bits(alphabet), 2);

  // Match-all still needs nothing.
  EXPECT_EQ(SymbolSet::all().required_bits(alphabet), 0);
}

}  // namespace
}  // namespace apss::anml
