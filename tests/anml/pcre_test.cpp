#include "anml/pcre.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apsim/simulator.hpp"
#include "apss_test_support.hpp"

namespace apss::anml {
namespace {

/// Compiles `pattern` and returns the cycles at which it reports on `text`
/// (1-based; a report at cycle c means a match ENDING at position c).
std::vector<std::uint64_t> match_ends(const std::string& pattern,
                                      const std::string& text) {
  AutomataNetwork net;
  compile_pcre(net, pattern, 1);
  EXPECT_TRUE(net.validate().empty()) << pattern;
  apsim::Simulator sim(net);
  std::vector<std::uint64_t> ends;
  for (const auto& e : sim.run(test::bytes(text))) {
    ends.push_back(e.cycle);
  }
  return ends;
}

TEST(Pcre, LiteralSequence) {
  EXPECT_EQ(match_ends("abc", "xabcabz"),
            (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(match_ends("abc", "abcabc"),
            (std::vector<std::uint64_t>{3, 6}));
  EXPECT_TRUE(match_ends("abc", "ab").empty());
}

TEST(Pcre, Alternation) {
  EXPECT_EQ(match_ends("cat|dog", "a cat and a dog"),
            (std::vector<std::uint64_t>{5, 15}));
}

TEST(Pcre, StarAndPlus) {
  // ab*c: 'b' may repeat zero or more times.
  EXPECT_EQ(match_ends("ab*c", "ac abc abbbc"),
            (std::vector<std::uint64_t>{2, 6, 12}));
  // ab+c: at least one 'b'.
  EXPECT_EQ(match_ends("ab+c", "ac abc abbbc"),
            (std::vector<std::uint64_t>{6, 12}));
}

TEST(Pcre, Optional) {
  EXPECT_EQ(match_ends("colou?r", "color colour"),
            (std::vector<std::uint64_t>{5, 12}));
}

TEST(Pcre, DotMatchesAnySymbol) {
  EXPECT_EQ(match_ends("a.c", "abc a7c axx"),
            (std::vector<std::uint64_t>{3, 7}));
}

TEST(Pcre, CharacterClasses) {
  EXPECT_EQ(match_ends("[0-9]+x", "12x 9x ax"),
            (std::vector<std::uint64_t>{3, 6}));
  EXPECT_EQ(match_ends("[^a]b", "ab xb"),
            (std::vector<std::uint64_t>{5}));
}

TEST(Pcre, GroupsCompose) {
  EXPECT_EQ(match_ends("(ab)+c", "ababc abc"),
            (std::vector<std::uint64_t>{5, 9}));
  EXPECT_EQ(match_ends("x(a|b)y", "xay xby xcy"),
            (std::vector<std::uint64_t>{3, 7}));
}

TEST(Pcre, AnchoredMatchesOnlyAtStart) {
  EXPECT_EQ(match_ends("^ab", "abab"), (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(match_ends("^ab", "xab").empty());
  // Unanchored: both occurrences.
  EXPECT_EQ(match_ends("ab", "abab"), (std::vector<std::uint64_t>{2, 4}));
}

TEST(Pcre, EscapesAndHexSymbols) {
  EXPECT_EQ(match_ends("a\\*b", "a*b ab"), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(match_ends("\\x41\\x42", "zAB"), (std::vector<std::uint64_t>{3}));
}

TEST(Pcre, OverlappingMatchesAllReport) {
  // 'aa' in "aaaa": ends at 2, 3, 4 (NFA semantics report every match).
  EXPECT_EQ(match_ends("aa", "aaaa"), (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(Pcre, TernaryBitPatternAtoms) {
  // The Sec. VI-B style bit-slice class as a PCRE class via SymbolSet.
  AutomataNetwork net;
  const auto result = compile_pcre(net, "[\\x01\\x03\\x05\\x07]", 9);
  EXPECT_EQ(result.position_count, 1u);
  apsim::Simulator sim(net);
  const std::vector<std::uint8_t> stream = {0x00, 0x01, 0x02, 0x03};
  EXPECT_EQ(sim.run(stream).size(), 2u);
}

TEST(Pcre, PositionCountIsGlushkov) {
  AutomataNetwork net;
  // 5 symbol positions regardless of operator structure.
  const auto result = compile_pcre(net, "(a|b)*c(de)?", 1);
  EXPECT_EQ(result.position_count, 5u);
  EXPECT_EQ(net.stats().ste_count, 5u);
}

TEST(Pcre, RejectsMalformedPatterns) {
  AutomataNetwork net;
  EXPECT_THROW(compile_pcre(net, "", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "(ab", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "a)", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "*a", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "[ab", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "a\\", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "^", 1), std::invalid_argument);
}

TEST(Pcre, RejectsEmptyStringAcceptors) {
  AutomataNetwork net;
  EXPECT_THROW(compile_pcre(net, "a*", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "a?", 1), std::invalid_argument);
  EXPECT_THROW(compile_pcre(net, "(a|b?)", 1), std::invalid_argument);
  // But nullable SUBexpressions are fine.
  EXPECT_NO_THROW(compile_pcre(net, "a*b", 1));
}

}  // namespace
}  // namespace apss::anml
