#include "index/index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/kd_tree.hpp"
#include "index/kmeans_tree.hpp"
#include "index/lsh.hpp"

namespace apss::index {
namespace {

knn::BinaryDataset clustered(std::size_t n = 600, std::size_t d = 64) {
  return knn::BinaryDataset::clustered(n, d, 6, 0.03, 42);
}

// --- Randomized kd-trees -----------------------------------------------------

TEST(KdForest, BuildsRequestedTrees) {
  const auto data = clustered();
  KdTreeOptions opt;
  opt.trees = 3;
  opt.leaf_size = 64;
  const RandomizedKdForest forest(data, opt);
  EXPECT_EQ(forest.tree_count(), 3u);
  EXPECT_GT(forest.bucket_count(), 3u);
  EXPECT_LE(forest.max_bucket_size(), 64u);
}

TEST(KdForest, CandidatesComeFromOneBucketPerTree) {
  const auto data = clustered();
  KdTreeOptions opt;
  opt.trees = 4;
  opt.leaf_size = 64;
  const RandomizedKdForest forest(data, opt);
  TraversalStats stats;
  const auto ids = forest.candidates(data.row(0), stats);
  EXPECT_EQ(stats.buckets_probed, 4u);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_EQ(stats.distance_computations, 0u);  // kd traversal is bit tests
  EXPECT_FALSE(ids.empty());
  EXPECT_LE(ids.size(), 4u * 64u);
  // No duplicates.
  const std::set<std::uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
}

TEST(KdForest, SelfQueryFindsSelf) {
  const auto data = clustered(300, 32);
  KdTreeOptions opt;
  opt.leaf_size = 32;
  const RandomizedKdForest forest(data, opt);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto ids = forest.candidates(data.row(i));
    EXPECT_NE(std::find(ids.begin(), ids.end(), i), ids.end()) << i;
  }
}

TEST(KdForest, HighRecallOnClusteredData) {
  const auto data = clustered();
  const auto queries = knn::perturbed_queries(data, 32, 0.01, 7);
  KdTreeOptions opt;
  opt.trees = 4;
  opt.leaf_size = 128;
  const RandomizedKdForest forest(data, opt);
  EXPECT_GT(index_recall(forest, data, queries, 4), 0.7);
}

TEST(KdForest, RejectsBadInput) {
  EXPECT_THROW(RandomizedKdForest(knn::BinaryDataset(), {}),
               std::invalid_argument);
  const auto data = clustered(10, 16);
  KdTreeOptions zero;
  zero.trees = 0;
  EXPECT_THROW(RandomizedKdForest(data, zero), std::invalid_argument);
}

// --- Hierarchical k-means ----------------------------------------------------

TEST(KMeansTree, PartitionsIntoLeafBuckets) {
  const auto data = clustered();
  KMeansTreeOptions opt;
  opt.branching = 4;
  opt.leaf_size = 64;
  const HierarchicalKMeansTree tree(data, opt);
  EXPECT_GT(tree.bucket_count(), 1u);
  EXPECT_GT(tree.depth(), 0u);
}

TEST(KMeansTree, TraversalCostsDistanceComputations) {
  // Sec. II-A: "traversing the k-means index requires a distance
  // calculation at each node".
  const auto data = clustered();
  KMeansTreeOptions opt;
  opt.branching = 4;
  opt.leaf_size = 64;
  const HierarchicalKMeansTree tree(data, opt);
  TraversalStats stats;
  const auto ids = tree.candidates(data.row(5), stats);
  EXPECT_EQ(stats.buckets_probed, 1u);  // one bucket per traversal
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GE(stats.distance_computations, stats.nodes_visited);
  EXPECT_FALSE(ids.empty());
}

TEST(KMeansTree, HighRecallOnClusteredData) {
  const auto data = clustered();
  const auto queries = knn::perturbed_queries(data, 32, 0.01, 8);
  KMeansTreeOptions opt;
  opt.branching = 6;
  opt.leaf_size = 128;
  const HierarchicalKMeansTree tree(data, opt);
  EXPECT_GT(index_recall(tree, data, queries, 4), 0.6);
}

TEST(KMeansTree, RejectsBadOptions) {
  const auto data = clustered(20, 16);
  KMeansTreeOptions bad;
  bad.branching = 1;
  EXPECT_THROW(HierarchicalKMeansTree(data, bad), std::invalid_argument);
}

// --- LSH ----------------------------------------------------------------------

TEST(Lsh, BucketsPartitionPerTable) {
  const auto data = clustered();
  LshOptions opt;
  opt.tables = 4;
  opt.hash_bits = 6;
  const LshIndex lsh(data, opt);
  EXPECT_GT(lsh.bucket_count(), 4u);
  EXPECT_LE(lsh.max_bucket_size(), data.size());
}

TEST(Lsh, SelfQueryFindsSelf) {
  const auto data = clustered(200, 32);
  LshOptions opt;
  opt.hash_bits = 5;
  const LshIndex lsh(data, opt);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto ids = lsh.candidates(data.row(i));
    EXPECT_NE(std::find(ids.begin(), ids.end(), i), ids.end()) << i;
  }
}

TEST(Lsh, MultiProbeWidensTheSearch) {
  const auto data = clustered();
  LshOptions opt;
  opt.tables = 2;
  opt.hash_bits = 8;
  const LshIndex plain(data, opt);
  opt.multi_probe = true;
  const LshIndex mp(data, opt);
  EXPECT_EQ(plain.name(), "lsh");
  EXPECT_EQ(mp.name(), "mplsh");

  const auto queries = knn::perturbed_queries(data, 16, 0.05, 9);
  TraversalStats plain_stats, mp_stats;
  std::size_t plain_total = 0, mp_total = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    plain_total += plain.candidates(queries.row(q), plain_stats).size();
    mp_total += mp.candidates(queries.row(q), mp_stats).size();
  }
  EXPECT_GT(mp_stats.buckets_probed, plain_stats.buckets_probed);
  EXPECT_GE(mp_total, plain_total);
  EXPECT_GE(index_recall(mp, data, queries, 4),
            index_recall(plain, data, queries, 4) - 1e-12);
}

TEST(Lsh, RejectsBadOptions) {
  const auto data = clustered(20, 16);
  LshOptions bad;
  bad.hash_bits = 0;
  EXPECT_THROW(LshIndex(data, bad), std::invalid_argument);
  bad.hash_bits = 32;  // > dims (16)
  EXPECT_THROW(LshIndex(data, bad), std::invalid_argument);
}

// --- approximate_knn shared path ----------------------------------------------

TEST(ApproximateKnn, ResultsAreSortedAndTruthful) {
  const auto data = clustered();
  KdTreeOptions opt;
  opt.leaf_size = 128;
  const RandomizedKdForest forest(data, opt);
  const auto queries = knn::perturbed_queries(data, 8, 0.02, 10);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    TraversalStats stats;
    const auto result = approximate_knn(forest, data, queries.row(q), 5, &stats);
    EXPECT_LE(result.size(), 5u);
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].distance,
                util::hamming_distance(data.row(result[i].id), queries.row(q)));
      if (i > 0) {
        EXPECT_LE(result[i - 1].distance, result[i].distance);
      }
    }
    EXPECT_GT(stats.buckets_probed, 0u);
  }
}

TEST(IndexRecall, PerfectForExhaustiveBucket) {
  // leaf_size >= n makes the "index" a single bucket: recall must be 1.
  const auto data = clustered(100, 32);
  KdTreeOptions opt;
  opt.leaf_size = 1000;
  const RandomizedKdForest forest(data, opt);
  const auto queries = knn::perturbed_queries(data, 8, 0.05, 11);
  EXPECT_DOUBLE_EQ(index_recall(forest, data, queries, 3), 1.0);
}

}  // namespace
}  // namespace apss::index
