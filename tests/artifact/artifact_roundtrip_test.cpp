// Round-trip property suite for src/artifact: for every macro family and a
// spread of configuration shapes, load(save(program)) must reproduce the
// program exactly — same stored state, and bit-identical ReportEvent
// streams when replayed — and the engine-level compile cache must return
// the same search results and merged report streams as a cache-less build,
// at 1 and 4 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "anml/anml_io.hpp"
#include "apsim/batch_simulator.hpp"
#include "apss_test_support.hpp"
#include "artifact/artifact.hpp"
#include "core/batch_compile.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "core/opt/vector_packing.hpp"

namespace apss {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "apss_artifact_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A compiled program plus everything needed to replay queries through it.
struct Built {
  std::shared_ptr<const apsim::BatchProgram> program;
  knn::BinaryDataset data;
  core::StreamSpec spec;
};

Built build_hamming(std::size_t n, std::size_t dims, std::uint64_t seed,
                    core::HammingMacroOptions opt = {}) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("roundtrip-hamming");
  std::vector<core::MacroLayout> layouts;
  for (std::size_t i = 0; i < n; ++i) {
    layouts.push_back(core::append_hamming_macro(
        net, b.data.vector(i), static_cast<std::uint32_t>(i), opt));
  }
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_hamming_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

Built build_packed(std::size_t n, std::size_t dims, std::size_t group,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("roundtrip-packed");
  core::VectorPackingOptions opt;
  opt.group_size = group;
  opt.style = core::CollectorStyle::kTree;
  const auto layouts = core::build_packed_network(net, b.data, opt);
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_packed_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

Built build_multiplexed(std::size_t n, std::size_t dims, std::size_t slices,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("roundtrip-mux");
  const auto layouts =
      core::build_multiplexed_network(net, b.data, slices, {});
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_hamming_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

artifact::Artifact wrap(const Built& b, std::uint64_t key) {
  artifact::Artifact a;
  a.meta.key_hash = key;
  a.meta.network_digest = 0xfeedULL;
  a.meta.builder = "roundtrip-test";
  a.meta.network_name = "roundtrip";
  a.meta.dataset_count = b.data.size();
  a.program = b.program;
  return a;
}

/// encode -> decode -> identical stored state and metadata.
void expect_state_roundtrip(const Built& b, const std::string& what) {
  const artifact::Artifact original = wrap(b, 0x1234);
  const std::vector<std::uint8_t> bytes = artifact::encode(original);
  const artifact::LoadResult loaded = artifact::decode(bytes);
  ASSERT_TRUE(loaded) << what << ": " << loaded.error.detail;
  EXPECT_EQ(loaded.artifact->meta, original.meta) << what;
  EXPECT_EQ(loaded.artifact->program->state(), b.program->state()) << what;
  // Re-encoding the decoded artifact is byte-identical (canonical format).
  EXPECT_EQ(artifact::encode(*loaded.artifact), bytes) << what;
}

/// Replays a query stream through the original and the round-tripped
/// program; the ReportEvent streams must be bit-identical.
void expect_replay_identical(const Built& b,
                             std::span<const std::uint8_t> stream,
                             const std::string& what) {
  const artifact::LoadResult loaded =
      artifact::decode(artifact::encode(wrap(b, 1)));
  ASSERT_TRUE(loaded) << what << ": " << loaded.error.detail;
  apsim::BatchSimulator original(b.program);
  apsim::BatchSimulator reloaded(loaded.artifact->program);
  const auto expected = original.run(stream);
  EXPECT_FALSE(expected.empty()) << what << ": replay produced no reports";
  EXPECT_EQ(reloaded.run(stream), expected) << what;
}

TEST(ArtifactRoundTrip, StateSurvivesAllFamiliesAndShapes) {
  // Hamming: single word, multi-word (>64 lanes), deep collector tree, and
  // a dims=1 edge shape.
  expect_state_roundtrip(build_hamming(5, 33, 11), "hamming 5x33");
  expect_state_roundtrip(build_hamming(70, 17, 12), "hamming 70x17");
  core::HammingMacroOptions deep;
  deep.collector_fan_in = 4;
  deep.max_counter_fan_in = 2;
  expect_state_roundtrip(build_hamming(9, 100, 13, deep),
                         "hamming 9x100 deep tree");
  expect_state_roundtrip(build_hamming(3, 1, 14), "hamming 3x1");
  // Packed: full and ragged last group.
  expect_state_roundtrip(build_packed(12, 40, 4, 15), "packed 12x40 g4");
  expect_state_roundtrip(build_packed(11, 24, 4, 16), "packed 11x24 ragged");
  // Multiplexed: full 7 slices and partial.
  expect_state_roundtrip(build_multiplexed(6, 12, 7, 17), "mux 6x12 s7");
  expect_state_roundtrip(build_multiplexed(20, 9, 3, 18), "mux 20x9 s3");
}

TEST(ArtifactRoundTrip, ReplayIsBitIdenticalPerFamily) {
  {
    const Built b = build_hamming(66, 21, 21);
    util::Rng rng(91);
    const auto queries = test::random_dataset(rng, 5, 21);
    const core::SymbolStreamEncoder encoder(b.spec);
    std::vector<std::uint8_t> stream;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      encoder.append_query(queries.row(q), stream);
    }
    expect_replay_identical(b, stream, "hamming");
  }
  {
    const Built b = build_packed(10, 30, 4, 22);
    util::Rng rng(92);
    const auto queries = test::random_dataset(rng, 4, 30);
    const core::SymbolStreamEncoder encoder(b.spec);
    std::vector<std::uint8_t> stream;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      encoder.append_query(queries.row(q), stream);
    }
    expect_replay_identical(b, stream, "packed");
  }
  {
    const Built b = build_multiplexed(8, 16, 7, 23);
    util::Rng rng(93);
    const auto queries = test::random_dataset(rng, 14, 16);
    const core::MultiplexedStreamEncoder encoder(b.spec);
    std::size_t frames = 0;
    const auto stream = encoder.encode_batch(queries, frames);
    expect_replay_identical(b, stream, "multiplexed");
  }
}

/// Engine-level contract: compiling through the cache — cold (all misses)
/// and warm (all hits), serial and 4-threaded — returns the same neighbor
/// lists and the same merged ReportEvent stream as a cache-less engine.
TEST(ArtifactRoundTrip, EngineCacheIsInvisibleToResults) {
  util::Rng rng(31);
  const auto data = test::random_dataset(rng, 60, 24);
  const auto queries = test::random_dataset(rng, 6, 24);
  const std::string cache = fresh_dir("engine_roundtrip");

  core::EngineOptions base;
  base.backend = core::SimulationBackend::kBitParallel;
  base.max_vectors_per_config = 16;  // force 4 configurations
  base.collect_report_stream = true;
  base.threads = 1;

  core::ApKnnEngine reference(data, base);
  const auto expected = reference.search(queries, 3);
  const auto expected_stream = reference.last_report_stream();
  EXPECT_FALSE(expected_stream.empty());

  core::EngineOptions cached = base;
  cached.artifact_cache_dir = cache;
  core::ApKnnEngine cold(data, cached);
  EXPECT_EQ(cold.backend_stats().artifact.misses, cold.configurations());
  EXPECT_EQ(cold.backend_stats().artifact.hits, 0u);
  EXPECT_EQ(cold.search(queries, 3), expected);
  EXPECT_EQ(cold.last_report_stream(), expected_stream);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::EngineOptions warm = cached;
    warm.threads = threads;
    core::ApKnnEngine engine(data, warm);
    EXPECT_EQ(engine.backend_stats().artifact.hits, engine.configurations())
        << threads << " threads";
    EXPECT_EQ(engine.backend_stats().artifact.misses, 0u);
    EXPECT_EQ(engine.backend_stats().artifact.invalidations, 0u);
    EXPECT_EQ(engine.bit_parallel_configurations(), engine.configurations());
    EXPECT_EQ(engine.search(queries, 3), expected) << threads << " threads";
    EXPECT_EQ(engine.last_report_stream(), expected_stream)
        << threads << " threads";
    // The lazily rebuilt network matches what the compile path built.
    EXPECT_EQ(anml::network_digest(engine.network(1)),
              anml::network_digest(reference.network(1)));
  }
}

TEST(ArtifactRoundTrip, PackedEngineCacheRoundTrips) {
  util::Rng rng(32);
  const auto data = test::random_dataset(rng, 24, 20);
  const auto queries = test::random_dataset(rng, 4, 20);
  const std::string cache = fresh_dir("engine_packed");

  core::EngineOptions opt;
  opt.backend = core::SimulationBackend::kBitParallel;
  opt.packing_group_size = 4;
  opt.max_vectors_per_config = 12;
  opt.threads = 1;
  opt.artifact_cache_dir = cache;

  core::ApKnnEngine cold(data, opt);
  ASSERT_EQ(cold.backend_stats().packed, cold.configurations());
  EXPECT_EQ(cold.backend_stats().artifact.misses, cold.configurations());
  const auto expected = cold.search(queries, 2);

  core::ApKnnEngine warm(data, opt);
  EXPECT_EQ(warm.backend_stats().artifact.hits, warm.configurations());
  EXPECT_EQ(warm.backend_stats().packed, warm.configurations());
  EXPECT_EQ(warm.search(queries, 2), expected);
}

TEST(ArtifactRoundTrip, SaveArtifactFileRoundTripsThroughLoad) {
  util::Rng rng(33);
  const auto data = test::random_dataset(rng, 20, 16);
  const std::string dir = fresh_dir("save_file");
  core::EngineOptions opt;
  opt.backend = core::SimulationBackend::kBitParallel;
  opt.threads = 1;
  core::ApKnnEngine engine(data, opt);

  const std::string path = dir + "/cfg0.apss-art";
  std::string error;
  ASSERT_TRUE(engine.save_artifact(0, path, &error)) << error;
  const artifact::LoadResult loaded = artifact::load(path);
  ASSERT_TRUE(loaded) << loaded.error.detail;
  EXPECT_EQ(loaded.artifact->meta.key_hash, engine.artifact_key(0));
  EXPECT_EQ(loaded.artifact->meta.builder, "apss-knn-engine");
  EXPECT_EQ(loaded.artifact->meta.network_digest,
            anml::network_digest(engine.network(0)));
  EXPECT_EQ(loaded.artifact->meta.dataset_count, data.size());
  EXPECT_EQ(loaded.artifact->program->state(), engine.program(0)->state());
}

}  // namespace
}  // namespace apss
