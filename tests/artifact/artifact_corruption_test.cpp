// Corruption fuzz suite for src/artifact: deterministic single-byte flips
// at EVERY offset, truncations at EVERY length, and targeted malformations
// must each come back as a typed LoadError — never a crash, hang, or a
// silently accepted program. CI runs this binary under ASan+UBSan
// (APSS_SANITIZE=address,undefined), so any out-of-bounds read or UB in
// the decoder fails the build even when it happens not to change the
// returned error.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "apss_test_support.hpp"
#include "artifact/artifact.hpp"
#include "core/batch_compile.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace apss {
namespace {

using artifact::LoadErrorCode;

/// One small-but-real artifact (hamming family, 2 words of payload rows).
std::vector<std::uint8_t> make_artifact_bytes() {
  util::Rng rng(7);
  const auto data = test::random_dataset(rng, 5, 20);
  anml::AutomataNetwork net("fuzz");
  std::vector<core::MacroLayout> layouts;
  for (std::size_t i = 0; i < data.size(); ++i) {
    layouts.push_back(core::append_hamming_macro(
        net, data.vector(i), static_cast<std::uint32_t>(i), {}));
  }
  std::string reason;
  artifact::Artifact a;
  a.program = core::compile_hamming_batch(net, layouts, {}, &reason);
  EXPECT_NE(a.program, nullptr) << reason;
  a.meta.key_hash = 0xabcdef;
  a.meta.builder = "fuzz-test";
  a.meta.network_name = "fuzz";
  a.meta.dataset_count = data.size();
  return artifact::encode(a);
}

/// Recomputes the stored content hash after a deliberate payload edit, so
/// the edit reaches the structural validators instead of stopping at the
/// hash check.
void patch_hash(std::vector<std::uint8_t>& bytes) {
  util::Fnv1a64 hasher;
  hasher.update(std::span<const std::uint8_t>(bytes).subspan(24));
  const std::uint64_t h = hasher.digest();
  for (int i = 0; i < 8; ++i) {
    bytes[16 + i] = static_cast<std::uint8_t>(h >> (8 * i));
  }
}

TEST(ArtifactCorruption, EverySingleByteFlipIsRejectedTyped) {
  const std::vector<std::uint8_t> good = make_artifact_bytes();
  ASSERT_TRUE(artifact::decode(good));
  util::Rng rng(1234);
  for (std::size_t offset = 0; offset < good.size(); ++offset) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    const artifact::LoadResult r = artifact::decode(bad);
    ASSERT_FALSE(r) << "flip at offset " << offset << " was accepted";
    // The error is typed and region-appropriate.
    if (offset < 8) {
      EXPECT_EQ(r.error.code, LoadErrorCode::kBadMagic) << offset;
    } else if (offset < 12) {
      EXPECT_EQ(r.error.code, LoadErrorCode::kVersionMismatch) << offset;
    } else if (offset < 16) {
      EXPECT_EQ(r.error.code, LoadErrorCode::kMalformed) << offset;
    } else {
      // Hash field or payload: either way the stored and computed content
      // hashes no longer agree.
      EXPECT_EQ(r.error.code, LoadErrorCode::kHashMismatch) << offset;
    }
    EXPECT_FALSE(r.error.detail.empty()) << offset;
  }
}

TEST(ArtifactCorruption, EveryTruncationIsRejectedTyped) {
  const std::vector<std::uint8_t> good = make_artifact_bytes();
  for (std::size_t len = 0; len < good.size(); ++len) {
    const artifact::LoadResult r = artifact::decode(
        std::span<const std::uint8_t>(good.data(), len));
    ASSERT_FALSE(r) << "truncation to " << len << " bytes was accepted";
    if (len < 24) {
      EXPECT_EQ(r.error.code, LoadErrorCode::kTruncated) << len;
    } else {
      EXPECT_EQ(r.error.code, LoadErrorCode::kHashMismatch) << len;
    }
  }
}

TEST(ArtifactCorruption, TrailingBytesAreMalformedEvenWithValidHash) {
  std::vector<std::uint8_t> bytes = make_artifact_bytes();
  bytes.push_back(0);
  patch_hash(bytes);  // hash is honest about the extra byte...
  const artifact::LoadResult r = artifact::decode(bytes);
  ASSERT_FALSE(r);  // ...but the payload must consume the input EXACTLY.
  EXPECT_EQ(r.error.code, LoadErrorCode::kMalformed);
}

TEST(ArtifactCorruption, OversizedStringLengthIsMalformed) {
  std::vector<std::uint8_t> bytes = make_artifact_bytes();
  // The builder length field sits right after key_hash + network_digest.
  const std::size_t builder_len_at = 24 + 8 + 8;
  bytes[builder_len_at + 3] = 0xff;  // length >= 2^24 > kMaxBuilderLength
  patch_hash(bytes);
  const artifact::LoadResult r = artifact::decode(bytes);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error.code, LoadErrorCode::kMalformed);
}

TEST(ArtifactCorruption, HostileShapeCannotDriveHugeAllocation) {
  // Craft a payload announcing 2^26 lanes x 2^20 dims with a hash that
  // checks out: the decoder must bail on the byte budget (kTruncated), not
  // allocate terabytes or overflow the size arithmetic.
  const std::vector<std::uint8_t> good = make_artifact_bytes();
  std::vector<std::uint8_t> bytes = good;
  std::size_t at = 24 + 8 + 8;                       // builder length field
  const auto u32_at = [&](std::size_t pos) {
    return static_cast<std::uint32_t>(bytes[pos]) |
           static_cast<std::uint32_t>(bytes[pos + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[pos + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[pos + 3]) << 24;
  };
  at += 4 + u32_at(at);                              // skip builder
  at += 4 + u32_at(at);                              // skip network name
  at += 8 * 4;                                       // meta u64 fields
  at += 1;                                           // family tag
  for (int i = 0; i < 8; ++i) {                      // lanes := 2^26
    bytes[at + i] = i == 3 ? 0x04 : 0x00;
  }
  for (int i = 0; i < 8; ++i) {                      // dims := 2^20
    bytes[at + 8 + i] = i == 2 ? 0x10 : 0x00;
  }
  patch_hash(bytes);
  const artifact::LoadResult r = artifact::decode(bytes);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error.code, LoadErrorCode::kTruncated);
}

TEST(ArtifactCorruption, FromStateRejectsInvariantViolations) {
  util::Rng rng(9);
  const auto data = test::random_dataset(rng, 6, 18);
  anml::AutomataNetwork net("inv");
  std::vector<core::MacroLayout> layouts;
  for (std::size_t i = 0; i < data.size(); ++i) {
    layouts.push_back(core::append_hamming_macro(
        net, data.vector(i), static_cast<std::uint32_t>(i), {}));
  }
  std::string reason;
  const auto program = core::compile_hamming_batch(net, layouts, {}, &reason);
  ASSERT_NE(program, nullptr) << reason;
  const apsim::BatchProgramState good = program->state();
  ASSERT_NE(apsim::BatchProgram::from_state(good), nullptr);

  const auto rejects = [](apsim::BatchProgramState s, const char* what) {
    std::string error;
    EXPECT_EQ(apsim::BatchProgram::from_state(s, &error), nullptr) << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  {
    apsim::BatchProgramState s = good;
    s.dim_rows.pop_back();
    rejects(s, "short dim_rows");
  }
  {
    apsim::BatchProgramState s = good;
    s.dim_rows[0] |= s.dim_rows[s.class_count == 1 ? 0 : 1];
    if (s.class_count > 1 && (good.dim_rows[0] | good.dim_rows[1]) != good.dim_rows[0]) {
      rejects(s, "overlapping partition rows");
    }
  }
  {
    apsim::BatchProgramState s = good;
    s.sof = s.eof;
    rejects(s, "sof == eof");
  }
  {
    apsim::BatchProgramState s = good;
    s.lanes = 0;
    rejects(s, "zero lanes");
  }
  {
    apsim::BatchProgramState s = good;
    s.report_code.pop_back();
    rejects(s, "short report_code");
  }
  {
    apsim::BatchProgramState s = good;
    s.sym_classes[0] = 0xffff;  // bits beyond class_count
    rejects(s, "classifier bits outside classes");
  }
  {
    apsim::BatchProgramState s = good;
    // A lane bit beyond the live-lane tail in some dimension row.
    s.dim_rows[0] = ~std::uint64_t{0};
    rejects(s, "bits beyond live lanes");
  }
}

TEST(ArtifactCorruption, LoadReportsNotFoundAndIoErrorDistinctly) {
  const std::string dir = ::testing::TempDir() + "apss_artifact_io";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const artifact::LoadResult missing = artifact::load(dir + "/nope.apss-art");
  ASSERT_FALSE(missing);
  EXPECT_EQ(missing.error.code, LoadErrorCode::kNotFound);

  // A directory exists but is not readable as a file.
  const artifact::LoadResult directory = artifact::load(dir);
  ASSERT_FALSE(directory);
  EXPECT_NE(directory.error.code, LoadErrorCode::kNotFound);
}

TEST(ArtifactCorruption, EmptyAndForeignFilesAreTyped) {
  EXPECT_EQ(artifact::decode({}).error.code, LoadErrorCode::kTruncated);
  const std::vector<std::uint8_t> xml = {'<', '?', 'x', 'm', 'l', ' ', 'v',
                                         '1', '.', '0', '?', '>'};
  EXPECT_EQ(artifact::decode(xml).error.code, LoadErrorCode::kBadMagic);
}

}  // namespace
}  // namespace apss
