// Cross-width artifact contract: compiled artifacts are lane-width
// AGNOSTIC. An artifact saved by a producer running at one lane width must
// load and replay bit-identically under every other width (the serialized
// state is canonical 64-bit words; the padded wide-lane layout is rebuilt
// on load — the "re-pack path"). The engine compile cache must hit across
// widths (the artifact key excludes the width), and corrupt input through
// the re-pack path must keep yielding typed errors or valid programs —
// never a width-dependent difference, crash, or silently wrong result.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "apsim/lane_word.hpp"
#include "apss_test_support.hpp"
#include "artifact/artifact.hpp"
#include "core/batch_compile.hpp"
#include "core/design.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "util/rng.hpp"

namespace apss {
namespace {

constexpr apsim::LaneWidth kWidths[] = {
    apsim::LaneWidth::k64, apsim::LaneWidth::k256, apsim::LaneWidth::k512};

class ForcePortable {
 public:
  ForcePortable() { setenv("APSS_DISABLE_SIMD", "1", 1); }
  ~ForcePortable() { unsetenv("APSS_DISABLE_SIMD"); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "apss_lane_art_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct Built {
  std::shared_ptr<const apsim::BatchProgram> program;
  knn::BinaryDataset data;
  core::StreamSpec spec;
};

Built build_hamming(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("lane-width-hamming");
  std::vector<core::MacroLayout> layouts;
  for (std::size_t i = 0; i < n; ++i) {
    layouts.push_back(core::append_hamming_macro(
        net, b.data.vector(i), static_cast<std::uint32_t>(i), {}));
  }
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_hamming_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

Built build_packed(std::size_t n, std::size_t dims, std::size_t group,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("lane-width-packed");
  core::VectorPackingOptions opt;
  opt.group_size = group;
  opt.style = core::CollectorStyle::kTree;
  const auto layouts = core::build_packed_network(net, b.data, opt);
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_packed_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

Built build_multiplexed(std::size_t n, std::size_t dims, std::size_t slices,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  Built b;
  b.data = test::random_dataset(rng, n, dims);
  anml::AutomataNetwork net("lane-width-mux");
  const auto layouts = core::build_multiplexed_network(net, b.data, slices, {});
  b.spec = core::StreamSpec{dims, layouts.front().collector_levels};
  std::string reason;
  b.program = core::compile_hamming_batch(net, layouts, {}, &reason);
  EXPECT_NE(b.program, nullptr) << reason;
  return b;
}

artifact::Artifact wrap(const Built& b) {
  artifact::Artifact a;
  a.meta.key_hash = 0xabcd;
  a.meta.network_digest = 0xfeed;
  a.meta.builder = "lane-width-test";
  a.meta.network_name = "lane-width";
  a.meta.dataset_count = b.data.size();
  a.program = b.program;
  return a;
}

std::vector<std::uint8_t> encoded_stream(const Built& b, std::size_t queries,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  const core::SymbolStreamEncoder enc(b.spec);
  return enc.encode_batch(test::random_dataset(rng, queries, b.spec.dims));
}

/// Saves the artifact, loads it back, and replays `stream` on the LOADED
/// program at every width (plus forced-portable): every run must equal the
/// ORIGINAL program's width-64 run, and the loaded state must equal the
/// original state exactly.
void expect_cross_width_artifact(const Built& b,
                                 std::span<const std::uint8_t> stream,
                                 const std::string& what) {
  const artifact::LoadResult loaded =
      artifact::decode(artifact::encode(wrap(b)));
  ASSERT_TRUE(loaded) << what << ": " << loaded.error.detail;
  ASSERT_EQ(loaded.artifact->program->state(), b.program->state()) << what;

  apsim::BatchSimulator original(b.program, apsim::LaneWidth::k64);
  const auto expected = original.run(stream);
  EXPECT_FALSE(expected.empty()) << what << ": replay produced no reports";
  for (const apsim::LaneWidth w : kWidths) {
    apsim::BatchSimulator replay(loaded.artifact->program, w);
    EXPECT_EQ(replay.run(stream), expected)
        << what << " loaded width=" << to_string(w);
  }
  ForcePortable portable;
  for (const apsim::LaneWidth w : kWidths) {
    apsim::BatchSimulator replay(loaded.artifact->program, w);
    EXPECT_EQ(replay.run(stream), expected)
        << what << " loaded portable width=" << to_string(w);
  }
}

TEST(ArtifactLaneWidth, LoadedProgramsRunIdenticallyAtEveryWidth) {
  {
    // 70 lanes: ragged 64-bit tail exercises the valid-mask re-pack.
    const Built b = build_hamming(70, 18, 1);
    expect_cross_width_artifact(b, encoded_stream(b, 4, 10), "hamming 70x18");
  }
  {
    // 257 lanes: crosses the 256-bit block boundary after re-pack.
    const Built b = build_hamming(257, 9, 2);
    expect_cross_width_artifact(b, encoded_stream(b, 2, 11), "hamming 257x9");
  }
  {
    const Built b = build_packed(11, 24, 4, 3);
    expect_cross_width_artifact(b, encoded_stream(b, 3, 12), "packed 11x24");
  }
  {
    const Built b = build_multiplexed(10, 12, 7, 4);
    util::Rng rng(13);
    const core::MultiplexedStreamEncoder enc(b.spec);
    std::size_t frames = 0;
    const auto stream =
        enc.encode_batch(test::random_dataset(rng, 9, 12), frames);
    expect_cross_width_artifact(b, stream, "multiplexed 10x12");
  }
}

TEST(ArtifactLaneWidth, StateIsCanonicalAtExactWordMultiples) {
  // lanes % 64 == 0: the serialized rows must stay exactly lanes/64 words
  // (no padding leaks into the format) and the state must round-trip.
  for (const std::size_t n : {64u, 256u, 512u}) {
    const Built b = build_hamming(n, 6, 40 + n);
    const apsim::BatchProgramState s = b.program->state();
    EXPECT_EQ(s.dim_rows.size(), s.dims * s.class_count * (n / 64)) << n;
    std::string error;
    const auto rebuilt = apsim::BatchProgram::from_state(s, &error);
    ASSERT_NE(rebuilt, nullptr) << error;
    EXPECT_EQ(rebuilt->state(), s) << n;
  }
}

/// The engine compile cache must HIT across widths: the artifact key hashes
/// compile inputs, never the execution width, so a cache populated by a
/// 64-bit engine serves a 512-bit engine (and vice versa) with identical
/// results, streams and hit/miss counters.
TEST(ArtifactLaneWidth, EngineCacheHitsAcrossWidths) {
  util::Rng rng(77);
  const auto data = test::random_dataset(rng, 60, 20);
  const auto queries = test::random_dataset(rng, 5, 20);
  const std::string cache = fresh_dir("cross_width_cache");

  core::EngineOptions base;
  base.backend = core::SimulationBackend::kBitParallel;
  base.max_vectors_per_config = 16;  // force 4 configurations
  base.collect_report_stream = true;
  base.threads = 1;
  base.artifact_cache_dir = cache;

  core::EngineOptions cold = base;
  cold.lane_width = apsim::LaneWidth::k64;
  core::ApKnnEngine producer(data, cold);
  EXPECT_EQ(producer.backend_stats().artifact.misses,
            producer.configurations());
  EXPECT_EQ(producer.backend_stats().artifact.hits, 0u);
  EXPECT_EQ(producer.backend_stats().lane_width_bits, 64u);
  const auto expected = producer.search(queries, 3);
  const auto expected_stream = producer.last_report_stream();

  for (const apsim::LaneWidth w :
       {apsim::LaneWidth::k256, apsim::LaneWidth::k512}) {
    core::EngineOptions warm = base;
    warm.lane_width = w;
    core::ApKnnEngine consumer(data, warm);
    EXPECT_EQ(consumer.backend_stats().artifact.hits,
              consumer.configurations())
        << to_string(w);
    EXPECT_EQ(consumer.backend_stats().artifact.misses, 0u) << to_string(w);
    EXPECT_EQ(consumer.backend_stats().lane_width_bits,
              static_cast<std::size_t>(w));
    EXPECT_EQ(consumer.search(queries, 3), expected) << to_string(w);
    EXPECT_EQ(consumer.last_report_stream(), expected_stream) << to_string(w);
  }
}

/// Corruption fuzz through the re-pack path: random byte flips over the
/// whole artifact (seeded, replayable). Every mutation must either be
/// REJECTED with a typed error or decode to a program that (a) round-trips
/// its state and (b) replays bit-identically at 64 and 512 bits — the
/// padded rebuild must never turn damage into width-dependent behavior.
TEST(ArtifactLaneWidth, CorruptionFuzzIsWidthIndependent) {
  const Built b = build_hamming(66, 10, 5);
  const std::vector<std::uint8_t> bytes = artifact::encode(wrap(b));
  const auto stream = encoded_stream(b, 2, 14);
  util::Rng rng(0xC0FFEE);
  int accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    const artifact::LoadResult result = artifact::decode(mutated);
    if (!result) {
      EXPECT_FALSE(result.error.detail.empty()) << "trial " << trial;
      continue;
    }
    ++accepted;
    const auto& program = result.artifact->program;
    std::string error;
    const auto rebuilt = apsim::BatchProgram::from_state(program->state(),
                                                         &error);
    ASSERT_NE(rebuilt, nullptr) << "trial " << trial << ": " << error;
    apsim::BatchSimulator narrow(program, apsim::LaneWidth::k64);
    apsim::BatchSimulator wide(program, apsim::LaneWidth::k512);
    EXPECT_EQ(wide.run(stream), narrow.run(stream)) << "trial " << trial;
  }
  // The hash check makes surviving mutations rare; the property above must
  // hold for however many get through.
  SUCCEED() << accepted << " mutations decoded";
}

TEST(ArtifactLaneWidth, TypedLoadErrorsAreWidthIndependent) {
  // The same damaged input must produce the same typed error whether SIMD
  // is available or force-disabled — decode never consults the lane width.
  const Built b = build_hamming(5, 8, 6);
  std::vector<std::uint8_t> bytes = artifact::encode(wrap(b));
  bytes.resize(bytes.size() / 2);  // truncate
  const artifact::LoadResult with_simd = artifact::decode(bytes);
  ASSERT_FALSE(with_simd);
  ForcePortable portable;
  const artifact::LoadResult without_simd = artifact::decode(bytes);
  ASSERT_FALSE(without_simd);
  EXPECT_EQ(with_simd.error.code, without_simd.error.code);
  EXPECT_EQ(with_simd.error.detail, without_simd.error.detail);
}

}  // namespace
}  // namespace apss
