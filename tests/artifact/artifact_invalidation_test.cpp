// Invalidation suite for the compile cache: a cached artifact must stop
// being served — and the engine must recompile, overwrite, and report an
// invalidation in EngineStats::backend.artifact — whenever the artifact
// format version, the dataset slice, or the compiler options change.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apss_test_support.hpp"
#include "artifact/artifact.hpp"
#include "core/artifact_cache.hpp"
#include "core/engine.hpp"
#include "core/opt/stream_multiplexing.hpp"

namespace apss {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "apss_artifact_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::EngineOptions bit_options(const std::string& cache_dir) {
  core::EngineOptions opt;
  opt.backend = core::SimulationBackend::kBitParallel;
  opt.threads = 1;
  opt.artifact_cache_dir = cache_dir;
  return opt;
}

const core::ArtifactCacheStats& cache_stats(const core::ApKnnEngine& e) {
  return e.backend_stats().artifact;
}

TEST(ArtifactInvalidation, MissThenHitIsVisibleInStats) {
  util::Rng rng(41);
  const auto data = test::random_dataset(rng, 18, 16);
  const std::string dir = fresh_dir("miss_hit");

  core::ApKnnEngine first(data, bit_options(dir));
  EXPECT_EQ(cache_stats(first).misses, 1u);
  EXPECT_EQ(cache_stats(first).hits, 0u);
  EXPECT_EQ(cache_stats(first).invalidations, 0u);
  EXPECT_TRUE(std::filesystem::exists(first.artifact_cache_file(0)));

  core::ApKnnEngine second(data, bit_options(dir));
  EXPECT_EQ(cache_stats(second).hits, 1u);
  EXPECT_EQ(cache_stats(second).misses, 0u);
  EXPECT_EQ(cache_stats(second).invalidations, 0u);

  // The outcome also rides every EngineStats the engine produces.
  auto queries = test::random_dataset(rng, 2, 16);
  core::ApKnnEngine third(data, bit_options(dir));
  third.search(queries, 2);
  EXPECT_EQ(third.last_stats().backend.artifact.hits, 1u);
}

TEST(ArtifactInvalidation, DatasetMutationInvalidates) {
  util::Rng rng(42);
  auto data = test::random_dataset(rng, 18, 16);
  const std::string dir = fresh_dir("dataset_mut");

  core::ApKnnEngine first(data, bit_options(dir));
  EXPECT_EQ(cache_stats(first).misses, 1u);

  data.set(7, 3, !data.get(7, 3));  // one flipped bit anywhere in the slice
  core::ApKnnEngine second(data, bit_options(dir));
  EXPECT_EQ(cache_stats(second).invalidations, 1u);
  EXPECT_EQ(cache_stats(second).hits, 0u);
  EXPECT_EQ(cache_stats(second).misses, 0u);
  // The recompiled program answers for the NEW dataset...
  auto queries = test::random_dataset(rng, 3, 16);
  test::expect_valid_knn_results(data, queries, 2,
                                 second.search(queries, 2), "post-mutation");
  // ...and overwrote the slot: the mutated dataset now hits.
  core::ApKnnEngine third(data, bit_options(dir));
  EXPECT_EQ(cache_stats(third).hits, 1u);
}

TEST(ArtifactInvalidation, CompilerOptionMutationInvalidates) {
  util::Rng rng(43);
  const auto data = test::random_dataset(rng, 18, 48);
  const std::string dir = fresh_dir("option_mut");

  core::ApKnnEngine first(data, bit_options(dir));
  EXPECT_EQ(cache_stats(first).misses, 1u);

  core::EngineOptions changed = bit_options(dir);
  changed.macro.collector_fan_in = 4;  // different reduction tree
  core::ApKnnEngine second(data, changed);
  EXPECT_EQ(cache_stats(second).invalidations, 1u);
  EXPECT_EQ(cache_stats(second).hits, 0u);

  // Packing on/off is part of the key too.
  core::EngineOptions packed = bit_options(dir);
  packed.packing_group_size = 4;
  core::ApKnnEngine third(data, packed);
  EXPECT_EQ(cache_stats(third).invalidations, 1u);
  EXPECT_EQ(cache_stats(third).hits, 0u);
}

TEST(ArtifactInvalidation, FormatVersionBumpInvalidates) {
  util::Rng rng(44);
  const auto data = test::random_dataset(rng, 12, 16);
  const std::string dir = fresh_dir("version_bump");

  core::ApKnnEngine first(data, bit_options(dir));
  const std::string slot = first.artifact_cache_file(0);
  ASSERT_TRUE(std::filesystem::exists(slot));

  // Patch the format-version field (offset 8, outside content-hash
  // coverage): simulates an artifact written by a future format.
  {
    std::fstream f(slot, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const char bumped = static_cast<char>(artifact::kFormatVersion + 1);
    f.write(&bumped, 1);
  }
  const artifact::LoadResult direct = artifact::load(slot);
  ASSERT_FALSE(direct);
  EXPECT_EQ(direct.error.code, artifact::LoadErrorCode::kVersionMismatch);

  core::ApKnnEngine second(data, bit_options(dir));
  EXPECT_EQ(cache_stats(second).invalidations, 1u);
  EXPECT_EQ(cache_stats(second).hits, 0u);
  // The engine rewrote the slot at the current version: hits again.
  core::ApKnnEngine third(data, bit_options(dir));
  EXPECT_EQ(cache_stats(third).hits, 1u);
}

TEST(ArtifactInvalidation, CorruptSlotFileInvalidates) {
  util::Rng rng(45);
  const auto data = test::random_dataset(rng, 12, 16);
  const std::string dir = fresh_dir("corrupt_slot");

  core::ApKnnEngine first(data, bit_options(dir));
  const std::string slot = first.artifact_cache_file(0);
  {
    std::fstream f(slot, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  core::ApKnnEngine second(data, bit_options(dir));
  EXPECT_EQ(cache_stats(second).invalidations, 1u);
  core::ApKnnEngine third(data, bit_options(dir));
  EXPECT_EQ(cache_stats(third).hits, 1u);
}

TEST(ArtifactInvalidation, TryLoadRejectsForeignKey) {
  util::Rng rng(46);
  const auto data = test::random_dataset(rng, 12, 16);
  const std::string dir = fresh_dir("foreign_key");
  core::ApKnnEngine engine(data, bit_options(dir));
  const std::string slot = engine.artifact_cache_file(0);

  const core::CachedProgram wrong_key = core::try_load_program(
      slot, engine.artifact_key(0) ^ 1, data.size(), data.dims());
  EXPECT_EQ(wrong_key.outcome, core::ArtifactOutcome::kInvalidated);
  EXPECT_EQ(wrong_key.program, nullptr);
  EXPECT_FALSE(wrong_key.detail.empty());

  const core::CachedProgram right = core::try_load_program(
      slot, engine.artifact_key(0), data.size(), data.dims());
  EXPECT_EQ(right.outcome, core::ArtifactOutcome::kHit);
  ASSERT_NE(right.program, nullptr);
  EXPECT_EQ(right.program->state(), engine.program(0)->state());

  const core::CachedProgram missing = core::try_load_program(
      dir + "/absent.apss-art", 0, data.size(), data.dims());
  EXPECT_EQ(missing.outcome, core::ArtifactOutcome::kMiss);
}

TEST(ArtifactInvalidation, MultiplexedCacheFlow) {
  util::Rng rng(47);
  auto data = test::random_dataset(rng, 8, 12);
  const auto queries = test::random_dataset(rng, 10, 12);
  const std::string dir = fresh_dir("mux_flow");

  const core::MultiplexedKnn cold(data, 7, {},
                                  core::SimulationBackend::kBitParallel, dir);
  EXPECT_EQ(cold.artifact_outcome(), core::ArtifactOutcome::kMiss);
  ASSERT_TRUE(cold.bit_parallel());
  const auto expected = cold.search(queries, 2);

  const core::MultiplexedKnn warm(data, 7, {},
                                  core::SimulationBackend::kBitParallel, dir);
  EXPECT_EQ(warm.artifact_outcome(), core::ArtifactOutcome::kHit);
  ASSERT_TRUE(warm.bit_parallel());
  EXPECT_EQ(warm.search(queries, 2), expected);

  // Slice count is part of the key: same data, different slices must not
  // serve the cached 7-slice program (slot collision => invalidation).
  const core::MultiplexedKnn other(data, 3, {},
                                   core::SimulationBackend::kBitParallel, dir);
  EXPECT_EQ(other.artifact_outcome(), core::ArtifactOutcome::kInvalidated);
  ASSERT_TRUE(other.bit_parallel());
  test::expect_valid_knn_results(data, queries, 2, other.search(queries, 2),
                                 "3-slice");

  // Dataset mutation invalidates as well (slot now holds the 3-slice key).
  data.set(0, 0, !data.get(0, 0));
  const core::MultiplexedKnn mutated(data, 3, {},
                                     core::SimulationBackend::kBitParallel,
                                     dir);
  EXPECT_EQ(mutated.artifact_outcome(), core::ArtifactOutcome::kInvalidated);
  EXPECT_FALSE(mutated.artifact_detail().empty());

  // Without a cache directory the whole machinery stays off.
  const core::MultiplexedKnn off(data, 3, {},
                                 core::SimulationBackend::kBitParallel);
  EXPECT_EQ(off.artifact_outcome(), core::ArtifactOutcome::kDisabled);
}

}  // namespace
}  // namespace apss
