#pragma once
// ANML (Automata Network Markup Language) subset writer / parser.
//
// The AP toolchain consumes XML automata descriptions; this module provides
// a faithful subset so APSS designs can be exported for inspection (and for
// interoperability with other automata tools such as VASim) and re-imported.
//
// Supported elements:
//   <automata-network name="...">
//     <state-transition-element id="..." symbol-set="..."
//         start="none|all-input|start-of-data">
//       <report-on-match reportcode="..."/>
//       <activate-on-match element="target-id" [port="cnt|rst|thr"]/>
//     </state-transition-element>
//     <counter id="..." target="<threshold>" mode="pulse|latch"> ... </counter>
//     <boolean id="..." gate="and|or|not|nand|nor|xor|xnor"> ... </boolean>
//   </automata-network>

#include <cstdint>
#include <iosfwd>
#include <string>

#include "anml/network.hpp"

namespace apss::anml {

/// Serializes `network` as ANML XML.
std::string to_anml(const AutomataNetwork& network);
void write_anml(std::ostream& os, const AutomataNetwork& network);

/// Order-sensitive 64-bit digest of the network's complete structure —
/// name, every element (kind, symbol class, start kind, counter
/// threshold/mode, boolean op, reporting flag/code) and every edge with
/// its port — WITHOUT materializing the XML. Equal digests mean (up to
/// hash collision) byte-identical to_anml output and identical execution
/// semantics; the compile cache (src/artifact) stores it as the artifact's
/// provenance tie to the serialized ANML design it was compiled from.
std::uint64_t network_digest(const AutomataNetwork& network);

/// Parses ANML XML produced by to_anml (plus whitespace/comment tolerance).
/// Throws std::runtime_error with a line-oriented message on malformed input.
AutomataNetwork from_anml(const std::string& xml);

}  // namespace apss::anml
