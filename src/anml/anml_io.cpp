#include "anml/anml_io.hpp"

#include <cctype>
#include <map>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "util/fnv.hpp"

namespace apss::anml {

namespace {

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string xml_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    const auto semi = s.find(';', i);
    if (semi == std::string::npos) {
      throw std::runtime_error("ANML: unterminated XML entity");
    }
    const std::string entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else throw std::runtime_error("ANML: unknown XML entity &" + entity + ";");
    i = semi;
  }
  return out;
}

const char* start_kind_name(StartKind k) {
  switch (k) {
    case StartKind::kNone: return "none";
    case StartKind::kAllInput: return "all-input";
    case StartKind::kStartOfData: return "start-of-data";
  }
  return "none";
}

const char* mode_name(CounterMode m) {
  return m == CounterMode::kPulse ? "pulse" : "latch";
}

const char* gate_name(BooleanOp op) {
  switch (op) {
    case BooleanOp::kAnd: return "and";
    case BooleanOp::kOr: return "or";
    case BooleanOp::kNot: return "not";
    case BooleanOp::kNand: return "nand";
    case BooleanOp::kNor: return "nor";
    case BooleanOp::kXor: return "xor";
    case BooleanOp::kXnor: return "xnor";
  }
  return "or";
}

const char* port_name(CounterPort p) {
  switch (p) {
    case CounterPort::kCountEnable: return "cnt";
    case CounterPort::kReset: return "rst";
    case CounterPort::kThreshold: return "thr";
  }
  return "cnt";
}

// ---------------------------------------------------------------------------
// A tiny forgiving XML tokenizer: enough for the ANML subset we emit.
// ---------------------------------------------------------------------------

struct Tag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;      // </name>
  bool self_closing = false; // <name ... />
};

class XmlScanner {
 public:
  explicit XmlScanner(const std::string& text) : text_(text) {}

  /// Returns false at end of input.
  bool next(Tag& tag) {
    // Find next '<', skipping text content.
    while (pos_ < text_.size() && text_[pos_] != '<') {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    // Comments and processing instructions.
    if (text_.compare(pos_, 4, "<!--") == 0) {
      const auto end = text_.find("-->", pos_);
      if (end == std::string::npos) {
        throw std::runtime_error("ANML: unterminated comment");
      }
      pos_ = end + 3;
      return next(tag);
    }
    if (text_.compare(pos_, 2, "<?") == 0) {
      const auto end = text_.find("?>", pos_);
      if (end == std::string::npos) {
        throw std::runtime_error("ANML: unterminated processing instruction");
      }
      pos_ = end + 2;
      return next(tag);
    }

    const auto end = text_.find('>', pos_);
    if (end == std::string::npos) {
      throw std::runtime_error("ANML: unterminated tag");
    }
    std::string body = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;

    tag = Tag{};
    if (!body.empty() && body.front() == '/') {
      tag.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      tag.self_closing = true;
      body.pop_back();
    }

    std::size_t i = 0;
    const auto skip_ws = [&] {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    };
    skip_ws();
    const std::size_t name_begin = i;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    tag.name = body.substr(name_begin, i - name_begin);
    if (tag.name.empty()) {
      throw std::runtime_error("ANML: empty tag name");
    }

    // Attributes: key="value"
    for (;;) {
      skip_ws();
      if (i >= body.size()) {
        break;
      }
      const std::size_t key_begin = i;
      while (i < body.size() && body[i] != '=' &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      const std::string key = body.substr(key_begin, i - key_begin);
      skip_ws();
      if (i >= body.size() || body[i] != '=') {
        throw std::runtime_error("ANML: attribute '" + key + "' missing '='");
      }
      ++i;
      skip_ws();
      if (i >= body.size() || body[i] != '"') {
        throw std::runtime_error("ANML: attribute '" + key + "' missing quote");
      }
      ++i;
      const std::size_t val_begin = i;
      while (i < body.size() && body[i] != '"') ++i;
      if (i >= body.size()) {
        throw std::runtime_error("ANML: unterminated attribute value");
      }
      tag.attrs[key] = xml_unescape(body.substr(val_begin, i - val_begin));
      ++i;
    }
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string require_attr(const Tag& tag, const std::string& key) {
  const auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    throw std::runtime_error("ANML: <" + tag.name + "> missing attribute '" +
                             key + "'");
  }
  return it->second;
}

std::string attr_or(const Tag& tag, const std::string& key,
                    const std::string& fallback) {
  const auto it = tag.attrs.find(key);
  return it == tag.attrs.end() ? fallback : it->second;
}

}  // namespace

void write_anml(std::ostream& os, const AutomataNetwork& network) {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<automata-network name=\"" << xml_escape(network.name()) << "\">\n";

  // Group out-edges and report settings under their source element.
  const auto& elements = network.elements();
  std::vector<std::vector<Edge>> out(elements.size());
  for (const Edge& e : network.edges()) {
    out[e.from].push_back(e);
  }

  const auto write_children = [&os](const std::vector<Edge>& edges,
                                    const Element& e) {
    if (e.reporting) {
      os << "    <report-on-match reportcode=\"" << e.report_code << "\"/>\n";
    }
    for (const Edge& edge : edges) {
      os << "    <activate-on-match element=\"" << edge.to << "\"";
      if (edge.port != CounterPort::kCountEnable) {
        os << " port=\"" << port_name(edge.port) << "\"";
      }
      os << "/>\n";
    }
  };

  for (std::size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    switch (e.kind) {
      case ElementKind::kSte:
        os << "  <state-transition-element id=\"" << i << "\" symbol-set=\""
           << xml_escape(e.symbols.to_pattern()) << "\" start=\""
           << start_kind_name(e.start) << "\"";
        if (!e.name.empty()) {
          os << " name=\"" << xml_escape(e.name) << "\"";
        }
        os << ">\n";
        write_children(out[i], e);
        os << "  </state-transition-element>\n";
        break;
      case ElementKind::kCounter:
        os << "  <counter id=\"" << i << "\" target=\"" << e.threshold
           << "\" mode=\"" << mode_name(e.mode) << "\"";
        if (!e.name.empty()) {
          os << " name=\"" << xml_escape(e.name) << "\"";
        }
        os << ">\n";
        write_children(out[i], e);
        os << "  </counter>\n";
        break;
      case ElementKind::kBoolean:
        os << "  <boolean id=\"" << i << "\" gate=\"" << gate_name(e.op)
           << "\"";
        if (!e.name.empty()) {
          os << " name=\"" << xml_escape(e.name) << "\"";
        }
        os << ">\n";
        write_children(out[i], e);
        os << "  </boolean>\n";
        break;
    }
  }
  os << "</automata-network>\n";
}

std::string to_anml(const AutomataNetwork& network) {
  std::ostringstream oss;
  write_anml(oss, network);
  return oss.str();
}

AutomataNetwork from_anml(const std::string& xml) {
  XmlScanner scanner(xml);
  Tag tag;

  if (!scanner.next(tag) || tag.name != "automata-network") {
    throw std::runtime_error("ANML: expected <automata-network> root");
  }
  AutomataNetwork network(attr_or(tag, "name", ""));

  // The writer emits elements with contiguous ids in order, but accept any
  // ids and remap at the end.
  struct PendingEdge {
    std::string from_id;
    std::string to_id;
    CounterPort port;
  };
  struct PendingReport {
    std::string owner_id;
    std::uint32_t code;
  };
  std::map<std::string, ElementId> id_map;
  std::vector<PendingEdge> pending_edges;
  std::vector<PendingReport> pending_reports;
  std::string current_id;  // element currently open, "" at top level

  const auto parse_u32 = [](const std::string& s, const char* what) {
    try {
      const unsigned long v = std::stoul(s);
      return static_cast<std::uint32_t>(v);
    } catch (const std::exception&) {
      throw std::runtime_error(std::string("ANML: bad number for ") + what +
                               ": '" + s + "'");
    }
  };

  while (scanner.next(tag)) {
    if (tag.closing) {
      if (tag.name == "automata-network") {
        break;
      }
      current_id.clear();
      continue;
    }

    if (tag.name == "state-transition-element") {
      const std::string id = require_attr(tag, "id");
      const std::string start_str = attr_or(tag, "start", "none");
      StartKind start = StartKind::kNone;
      if (start_str == "all-input") start = StartKind::kAllInput;
      else if (start_str == "start-of-data") start = StartKind::kStartOfData;
      else if (start_str != "none") {
        throw std::runtime_error("ANML: unknown start kind '" + start_str + "'");
      }
      const ElementId eid =
          network.add_ste(SymbolSet::parse(require_attr(tag, "symbol-set")),
                          start, attr_or(tag, "name", ""));
      id_map[id] = eid;
      if (!tag.self_closing) {
        current_id = id;
      }
    } else if (tag.name == "counter") {
      const std::string id = require_attr(tag, "id");
      const std::string mode_str = attr_or(tag, "mode", "pulse");
      CounterMode mode = CounterMode::kPulse;
      if (mode_str == "latch") mode = CounterMode::kLatch;
      else if (mode_str != "pulse") {
        throw std::runtime_error("ANML: unknown counter mode '" + mode_str + "'");
      }
      const ElementId eid =
          network.add_counter(parse_u32(require_attr(tag, "target"), "target"),
                              mode, attr_or(tag, "name", ""));
      id_map[id] = eid;
      if (!tag.self_closing) {
        current_id = id;
      }
    } else if (tag.name == "boolean") {
      const std::string id = require_attr(tag, "id");
      const std::string gate = require_attr(tag, "gate");
      BooleanOp op;
      if (gate == "and") op = BooleanOp::kAnd;
      else if (gate == "or") op = BooleanOp::kOr;
      else if (gate == "not") op = BooleanOp::kNot;
      else if (gate == "nand") op = BooleanOp::kNand;
      else if (gate == "nor") op = BooleanOp::kNor;
      else if (gate == "xor") op = BooleanOp::kXor;
      else if (gate == "xnor") op = BooleanOp::kXnor;
      else throw std::runtime_error("ANML: unknown gate '" + gate + "'");
      const ElementId eid = network.add_boolean(op, attr_or(tag, "name", ""));
      id_map[id] = eid;
      if (!tag.self_closing) {
        current_id = id;
      }
    } else if (tag.name == "activate-on-match") {
      if (current_id.empty()) {
        throw std::runtime_error("ANML: <activate-on-match> outside element");
      }
      const std::string port_str = attr_or(tag, "port", "cnt");
      CounterPort port;
      if (port_str == "cnt") port = CounterPort::kCountEnable;
      else if (port_str == "rst") port = CounterPort::kReset;
      else if (port_str == "thr") port = CounterPort::kThreshold;
      else throw std::runtime_error("ANML: unknown port '" + port_str + "'");
      pending_edges.push_back(
          {current_id, require_attr(tag, "element"), port});
    } else if (tag.name == "report-on-match") {
      if (current_id.empty()) {
        throw std::runtime_error("ANML: <report-on-match> outside element");
      }
      pending_reports.push_back(
          {current_id, parse_u32(require_attr(tag, "reportcode"), "reportcode")});
    } else {
      throw std::runtime_error("ANML: unexpected tag <" + tag.name + ">");
    }
  }

  for (const auto& report : pending_reports) {
    network.set_reporting(id_map.at(report.owner_id), report.code);
  }
  for (const auto& edge : pending_edges) {
    const auto from = id_map.find(edge.from_id);
    const auto to = id_map.find(edge.to_id);
    if (from == id_map.end() || to == id_map.end()) {
      throw std::runtime_error("ANML: edge references unknown element id");
    }
    network.connect(from->second, to->second, edge.port);
  }
  return network;
}

std::uint64_t network_digest(const AutomataNetwork& network) {
  util::Fnv1a64 h;
  h.update_string("apss-anml-digest/v1");
  h.update_string(network.name());
  h.update_u64(network.size());
  for (const Element& e : network.elements()) {
    h.update(static_cast<std::uint8_t>(e.kind));
    h.update_string(e.name);
    for (const std::uint64_t word : e.symbols.words()) {
      h.update_u64(word);
    }
    h.update(static_cast<std::uint8_t>(e.start));
    h.update_u32(e.threshold);
    h.update(static_cast<std::uint8_t>(e.mode));
    h.update(static_cast<std::uint8_t>(e.op));
    h.update(e.reporting ? 1 : 0);
    h.update_u32(e.report_code);
  }
  h.update_u64(network.edges().size());
  for (const Edge& edge : network.edges()) {
    h.update_u32(edge.from);
    h.update_u32(edge.to);
    h.update(static_cast<std::uint8_t>(edge.port));
  }
  return h.digest();
}

}  // namespace apss::anml
