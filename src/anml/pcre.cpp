#include "anml/pcre.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "anml/symbol_set.hpp"

namespace apss::anml {

namespace {

// --- AST --------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

enum class NodeKind { kSymbol, kConcat, kAlternate, kStar, kPlus, kOptional };

struct Node {
  NodeKind kind;
  SymbolSet symbols;       // kSymbol
  std::int32_t position = -1;  // kSymbol: Glushkov position index
  NodePtr left;            // kConcat/kAlternate: lhs; quantifiers: child
  NodePtr right;           // kConcat/kAlternate: rhs
};

NodePtr make_symbol(SymbolSet s) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kSymbol;
  n->symbols = s;
  return n;
}

NodePtr make_binary(NodeKind kind, NodePtr l, NodePtr r) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

NodePtr make_unary(NodeKind kind, NodePtr child) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  n->left = std::move(child);
  return n;
}

// --- Parser (recursive descent) ----------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& pattern) : text_(pattern) {}

  NodePtr parse() {
    NodePtr root = alternation();
    if (pos_ != text_.size()) {
      fail("unexpected character");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("pcre: " + what + " at offset " +
                                std::to_string(pos_) + " in '" + text_ + "'");
  }
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  NodePtr alternation() {
    NodePtr node = concatenation();
    while (!eof() && peek() == '|') {
      ++pos_;
      node = make_binary(NodeKind::kAlternate, std::move(node),
                         concatenation());
    }
    return node;
  }

  NodePtr concatenation() {
    NodePtr node = repeat();
    while (!eof() && peek() != '|' && peek() != ')') {
      node = make_binary(NodeKind::kConcat, std::move(node), repeat());
    }
    return node;
  }

  NodePtr repeat() {
    NodePtr node = atom();
    while (!eof()) {
      const char c = peek();
      if (c == '*') {
        node = make_unary(NodeKind::kStar, std::move(node));
      } else if (c == '+') {
        node = make_unary(NodeKind::kPlus, std::move(node));
      } else if (c == '?') {
        node = make_unary(NodeKind::kOptional, std::move(node));
      } else {
        break;
      }
      ++pos_;
    }
    return node;
  }

  NodePtr atom() {
    if (eof()) {
      fail("expected an atom");
    }
    const char c = peek();
    if (c == '(') {
      ++pos_;
      NodePtr inner = alternation();
      if (eof() || peek() != ')') {
        fail("unterminated group");
      }
      ++pos_;
      return inner;
    }
    if (c == '[') {
      const std::size_t start = pos_;
      std::size_t depth_end = text_.find(']', start + 1);
      // allow an escaped ']' inside the class
      while (depth_end != std::string::npos && text_[depth_end - 1] == '\\') {
        depth_end = text_.find(']', depth_end + 1);
      }
      if (depth_end == std::string::npos) {
        fail("unterminated class");
      }
      const std::string cls = text_.substr(start, depth_end - start + 1);
      pos_ = depth_end + 1;
      return make_symbol(SymbolSet::parse(cls));
    }
    if (c == '.') {
      ++pos_;
      return make_symbol(SymbolSet::all());
    }
    if (c == '\\') {
      if (pos_ + 1 >= text_.size()) {
        fail("dangling backslash");
      }
      const char kind = text_[pos_ + 1];
      if (kind == 'x') {
        if (pos_ + 3 >= text_.size()) {
          fail("truncated \\xNN escape");
        }
        const std::string esc = text_.substr(pos_, 4);
        pos_ += 4;
        return make_symbol(SymbolSet::parse(esc));
      }
      pos_ += 2;
      return make_symbol(SymbolSet::single(static_cast<std::uint8_t>(kind)));
    }
    if (c == '*' || c == '+' || c == '?' || c == '|' || c == ')') {
      fail("misplaced metacharacter");
    }
    ++pos_;
    return make_symbol(SymbolSet::single(static_cast<std::uint8_t>(c)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Glushkov sets ------------------------------------------------------------

struct Glushkov {
  std::vector<SymbolSet> position_symbols;
  std::vector<std::vector<std::int32_t>> follow;

  struct Sets {
    bool nullable = false;
    std::vector<std::int32_t> first;
    std::vector<std::int32_t> last;
  };

  /// Assigns positions to symbol leaves and computes first/last/follow.
  Sets analyze(Node& node) {
    switch (node.kind) {
      case NodeKind::kSymbol: {
        node.position = static_cast<std::int32_t>(position_symbols.size());
        position_symbols.push_back(node.symbols);
        follow.emplace_back();
        return {false, {node.position}, {node.position}};
      }
      case NodeKind::kConcat: {
        Sets l = analyze(*node.left);
        Sets r = analyze(*node.right);
        for (const std::int32_t p : l.last) {
          for (const std::int32_t q : r.first) {
            follow[p].push_back(q);
          }
        }
        Sets out;
        out.nullable = l.nullable && r.nullable;
        out.first = l.first;
        if (l.nullable) {
          out.first.insert(out.first.end(), r.first.begin(), r.first.end());
        }
        out.last = r.last;
        if (r.nullable) {
          out.last.insert(out.last.end(), l.last.begin(), l.last.end());
        }
        return out;
      }
      case NodeKind::kAlternate: {
        Sets l = analyze(*node.left);
        Sets r = analyze(*node.right);
        Sets out;
        out.nullable = l.nullable || r.nullable;
        out.first = l.first;
        out.first.insert(out.first.end(), r.first.begin(), r.first.end());
        out.last = l.last;
        out.last.insert(out.last.end(), r.last.begin(), r.last.end());
        return out;
      }
      case NodeKind::kStar:
      case NodeKind::kPlus:
      case NodeKind::kOptional: {
        Sets inner = analyze(*node.left);
        if (node.kind != NodeKind::kOptional) {
          // Loop back: last -> first.
          for (const std::int32_t p : inner.last) {
            for (const std::int32_t q : inner.first) {
              follow[p].push_back(q);
            }
          }
        }
        Sets out = inner;
        out.nullable =
            node.kind == NodeKind::kPlus ? inner.nullable : true;
        return out;
      }
    }
    throw std::logic_error("pcre: unreachable node kind");
  }
};

}  // namespace

PcreCompileResult compile_pcre(AutomataNetwork& network,
                               const std::string& pattern,
                               std::uint32_t report_code) {
  if (pattern.empty()) {
    throw std::invalid_argument("pcre: empty pattern");
  }
  std::string body = pattern;
  bool anchored = false;
  if (body.front() == '^') {
    anchored = true;
    body.erase(body.begin());
    if (body.empty()) {
      throw std::invalid_argument("pcre: anchor without expression");
    }
  }

  Parser parser(body);
  NodePtr root = parser.parse();
  Glushkov g;
  const Glushkov::Sets sets = g.analyze(*root);
  if (sets.nullable) {
    throw std::invalid_argument(
        "pcre: expression accepts the empty string, which automata "
        "hardware cannot report");
  }

  // Emit one STE per position.
  std::vector<std::uint8_t> is_first(g.position_symbols.size(), 0);
  for (const std::int32_t p : sets.first) {
    is_first[p] = 1;
  }
  std::vector<std::uint8_t> is_last(g.position_symbols.size(), 0);
  for (const std::int32_t p : sets.last) {
    is_last[p] = 1;
  }

  PcreCompileResult result;
  result.position_count = g.position_symbols.size();
  std::vector<ElementId> ids(g.position_symbols.size());
  for (std::size_t p = 0; p < g.position_symbols.size(); ++p) {
    const StartKind start =
        is_first[p] ? (anchored ? StartKind::kStartOfData
                                : StartKind::kAllInput)
                    : StartKind::kNone;
    ids[p] = network.add_ste(g.position_symbols[p], start,
                             "pcre" + std::to_string(report_code) + "_p" +
                                 std::to_string(p));
    if (is_first[p]) {
      result.start_states.push_back(ids[p]);
    }
    if (is_last[p]) {
      network.set_reporting(ids[p], report_code);
      result.reporting_states.push_back(ids[p]);
    }
  }
  for (std::size_t p = 0; p < g.follow.size(); ++p) {
    // Deduplicate follow targets (kStar can insert repeats).
    std::vector<std::int32_t> targets = g.follow[p];
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (const std::int32_t q : targets) {
      network.connect(ids[p], ids[q]);
    }
  }
  return result;
}

}  // namespace apss::anml
