#include "anml/symbol_set.hpp"

#include <bit>
#include <stdexcept>

namespace apss::anml {

namespace {

/// Parses one symbol token inside a class or as a standalone pattern.
/// Supports printable characters and \xNN escapes. Advances `i`.
std::uint8_t parse_symbol_token(const std::string& pattern, std::size_t& i) {
  if (pattern[i] == '\\') {
    if (i + 1 >= pattern.size()) {
      throw std::invalid_argument("SymbolSet: dangling backslash");
    }
    const char kind = pattern[i + 1];
    if (kind == 'x') {
      if (i + 3 >= pattern.size()) {
        throw std::invalid_argument("SymbolSet: truncated \\xNN escape");
      }
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        throw std::invalid_argument("SymbolSet: bad hex digit");
      };
      const int value = hex(pattern[i + 2]) * 16 + hex(pattern[i + 3]);
      i += 4;
      return static_cast<std::uint8_t>(value);
    }
    // Escaped literal (e.g. \\, \], \[, \-, \*).
    i += 2;
    return static_cast<std::uint8_t>(kind);
  }
  return static_cast<std::uint8_t>(pattern[i++]);
}

SymbolSet parse_bit_pattern(const std::string& pattern) {
  // "0b" followed by exactly 8 of {0,1,*}, most significant bit first.
  const std::string body = pattern.substr(2);
  if (body.size() != 8) {
    throw std::invalid_argument(
        "SymbolSet: bit pattern must have exactly 8 positions");
  }
  std::uint8_t value = 0;
  std::uint8_t mask = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = body[i];
    const int bit = 7 - static_cast<int>(i);
    if (c == '0' || c == '1') {
      mask = static_cast<std::uint8_t>(mask | (1u << bit));
      if (c == '1') {
        value = static_cast<std::uint8_t>(value | (1u << bit));
      }
    } else if (c != '*') {
      throw std::invalid_argument("SymbolSet: bit pattern chars must be 0/1/*");
    }
  }
  return SymbolSet::ternary(value, mask);
}

}  // namespace

SymbolSet SymbolSet::all() noexcept {
  SymbolSet s;
  s.words_.fill(~std::uint64_t{0});
  return s;
}

SymbolSet SymbolSet::single(std::uint8_t symbol) noexcept {
  SymbolSet s;
  s.insert(symbol);
  return s;
}

SymbolSet SymbolSet::all_except(std::uint8_t symbol) noexcept {
  SymbolSet s = all();
  s.erase(symbol);
  return s;
}

SymbolSet SymbolSet::ternary(std::uint8_t value, std::uint8_t mask) noexcept {
  SymbolSet s;
  for (int sym = 0; sym < 256; ++sym) {
    if ((static_cast<std::uint8_t>(sym) & mask) ==
        (value & mask)) {
      s.insert(static_cast<std::uint8_t>(sym));
    }
  }
  return s;
}

SymbolSet SymbolSet::parse(const std::string& pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("SymbolSet: empty pattern");
  }
  if (pattern == "*") {
    return all();
  }
  if (pattern.size() > 2 && pattern[0] == '0' && pattern[1] == 'b') {
    return parse_bit_pattern(pattern);
  }
  if (pattern.front() == '[') {
    if (pattern.back() != ']' || pattern.size() < 3) {
      throw std::invalid_argument("SymbolSet: unterminated class");
    }
    std::size_t i = 1;
    bool negate = false;
    if (pattern[i] == '^') {
      negate = true;
      ++i;
    }
    SymbolSet s;
    const std::size_t end = pattern.size() - 1;
    while (i < end) {
      const std::uint8_t lo = parse_symbol_token(pattern, i);
      if (i + 1 < end && pattern[i] == '-') {
        ++i;  // consume '-'
        const std::uint8_t hi = parse_symbol_token(pattern, i);
        if (hi < lo) {
          throw std::invalid_argument("SymbolSet: inverted range");
        }
        for (int sym = lo; sym <= hi; ++sym) {
          s.insert(static_cast<std::uint8_t>(sym));
        }
      } else {
        s.insert(lo);
      }
    }
    return negate ? ~s : s;
  }
  // Standalone single symbol (possibly escaped).
  std::size_t i = 0;
  const std::uint8_t sym = parse_symbol_token(pattern, i);
  if (i != pattern.size()) {
    throw std::invalid_argument(
        "SymbolSet: multi-symbol pattern needs [...] class syntax");
  }
  return single(sym);
}

int SymbolSet::count() const noexcept {
  int total = 0;
  for (const std::uint64_t w : words_) {
    total += std::popcount(w);
  }
  return total;
}

bool SymbolSet::empty() const noexcept {
  return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
}

bool SymbolSet::is_all() const noexcept {
  return (words_[0] & words_[1] & words_[2] & words_[3]) == ~std::uint64_t{0};
}

SymbolSet SymbolSet::operator|(const SymbolSet& o) const noexcept {
  SymbolSet s;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    s.words_[i] = words_[i] | o.words_[i];
  }
  return s;
}

SymbolSet SymbolSet::operator&(const SymbolSet& o) const noexcept {
  SymbolSet s;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    s.words_[i] = words_[i] & o.words_[i];
  }
  return s;
}

SymbolSet SymbolSet::operator~() const noexcept {
  SymbolSet s;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    s.words_[i] = ~words_[i];
  }
  return s;
}

std::string SymbolSet::to_pattern() const {
  if (is_all()) {
    return "*";
  }
  const int n = count();
  if (n == 0) {
    return "[]";
  }
  const auto hex_escape = [](int sym) {
    static const char kDigits[] = "0123456789abcdef";
    std::string out = "\\x";
    out += kDigits[(sym >> 4) & 0xf];
    out += kDigits[sym & 0xf];
    return out;
  };
  if (n == 1) {
    for (int sym = 0; sym < 256; ++sym) {
      if (test(static_cast<std::uint8_t>(sym))) {
        return hex_escape(sym);
      }
    }
  }
  // Render as a class with ranges.
  std::string out = "[";
  int sym = 0;
  while (sym < 256) {
    if (!test(static_cast<std::uint8_t>(sym))) {
      ++sym;
      continue;
    }
    int run_end = sym;
    while (run_end + 1 < 256 && test(static_cast<std::uint8_t>(run_end + 1))) {
      ++run_end;
    }
    out += hex_escape(sym);
    if (run_end > sym + 1) {
      out += '-';
      out += hex_escape(run_end);
    } else if (run_end == sym + 1) {
      out += hex_escape(run_end);
    }
    sym = run_end + 1;
  }
  out += ']';
  return out;
}

int SymbolSet::required_bits(const SymbolSet& alphabet) const noexcept {
  // Find the smallest subset of symbol bit positions that separates the
  // accepted from the rejected symbols of the alphabet. Exhaustive over all
  // 256 bit-position masks: for mask m, the function is realizable iff no
  // two alphabet symbols that agree on m disagree on membership.
  const auto realizable = [&](std::uint8_t mask) {
    // bucket: -1 unknown, 0 rejected, 1 accepted, per masked value.
    std::array<signed char, 256> bucket;
    bucket.fill(-1);
    for (int sym = 0; sym < 256; ++sym) {
      const auto s = static_cast<std::uint8_t>(sym);
      if (!alphabet.test(s)) {
        continue;
      }
      const std::uint8_t key = static_cast<std::uint8_t>(s & mask);
      const signed char member = test(s) ? 1 : 0;
      if (bucket[key] == -1) {
        bucket[key] = member;
      } else if (bucket[key] != member) {
        return false;
      }
    }
    return true;
  };

  int best = 8;
  for (int mask = 0; mask < 256; ++mask) {
    const int bits = std::popcount(static_cast<unsigned>(mask));
    if (bits >= best) {
      continue;
    }
    if (realizable(static_cast<std::uint8_t>(mask))) {
      best = bits;
    }
  }
  return best;
}

}  // namespace apss::anml
