#pragma once
// AutomataNetwork: a graph of STEs / counters / booleans plus connections.
//
// This is the in-memory equivalent of an ANML file: the kNN macro builders
// (src/core) produce networks, the simulator (src/apsim) executes them, and
// the placement engine maps them onto blocks/half-cores.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "anml/element.hpp"

namespace apss::anml {

/// Aggregate statistics used by resource accounting and benches.
struct NetworkStats {
  std::size_t ste_count = 0;
  std::size_t counter_count = 0;
  std::size_t boolean_count = 0;
  std::size_t reporting_count = 0;
  std::size_t start_count = 0;
  std::size_t edge_count = 0;
  std::size_t max_fan_in = 0;
  std::size_t max_fan_out = 0;
};

class AutomataNetwork {
 public:
  AutomataNetwork() = default;
  explicit AutomataNetwork(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Construction -------------------------------------------------------

  /// Adds an STE matching `symbols`. Returns its id.
  ElementId add_ste(SymbolSet symbols, StartKind start = StartKind::kNone,
                    std::string name = {});

  /// Adds a reporting STE; `report_code` identifies it in report events.
  ElementId add_reporting_ste(SymbolSet symbols, std::uint32_t report_code,
                              std::string name = {});

  ElementId add_counter(std::uint32_t threshold,
                        CounterMode mode = CounterMode::kPulse,
                        std::string name = {});

  ElementId add_boolean(BooleanOp op, std::string name = {});

  /// Connects `from`'s output to `to`'s input `port`.
  void connect(ElementId from, ElementId to,
               CounterPort port = CounterPort::kCountEnable);

  /// Marks an existing element as reporting.
  void set_reporting(ElementId id, std::uint32_t report_code);

  /// Appends all elements/edges of `other`; returns the id offset that was
  /// added to `other`'s element ids.
  ElementId merge(const AutomataNetwork& other);

  // --- Inspection ---------------------------------------------------------

  std::size_t size() const noexcept { return elements_.size(); }
  const Element& element(ElementId id) const { return elements_.at(id); }
  Element& element(ElementId id) { return elements_.at(id); }
  const std::vector<Element>& elements() const noexcept { return elements_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Out-neighbors (with ports) of `id`.
  std::vector<Edge> out_edges(ElementId id) const;
  /// In-neighbors (with ports) of `id`.
  std::vector<Edge> in_edges(ElementId id) const;

  std::size_t fan_in(ElementId id) const;
  std::size_t fan_out(ElementId id) const;

  NetworkStats stats() const;

  /// Weakly-connected component label per element; returns the number of
  /// components. Placement treats each component as one indivisible NFA.
  std::size_t components(std::vector<std::uint32_t>& labels) const;

  /// Validates structural rules. Returns human-readable problems (empty =
  /// valid): nonempty STE classes, counter thresholds >= 1, port legality,
  /// boolean fan-in arity, no combinational cycles through booleans, and
  /// (unless dynamic thresholds are allowed) no kThreshold edges.
  std::vector<std::string> validate(bool allow_dynamic_threshold = false) const;

 private:
  std::string name_;
  std::vector<Element> elements_;
  std::vector<Edge> edges_;
};

}  // namespace apss::anml
