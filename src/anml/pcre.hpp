#pragma once
// PCRE -> NFA compilation (Sec. II-B: "Applications can either be compiled
// to NFAs by supplying a Perl Compatible Regular Expression...").
//
// The supported subset is the homogeneous-automata-friendly core:
//   literals, \xNN and escaped metacharacter escapes, '.', character
//   classes [...] / [^...], grouping (...), alternation '|', and the
//   quantifiers * + ?. A leading '^' anchors the expression to the start
//   of data; unanchored expressions match at every offset (all-input
//   start states), which is the AP's native behaviour.
//
// Compilation uses the Glushkov construction: one STE per symbol position
// (exactly the AP's one-symbol-per-state execution model), edges from the
// follow relation, start states from the first set, and reporting states
// from the last set. The expression must not accept the empty string
// (reporting "a match of nothing" is not expressible on the fabric).

#include <cstdint>
#include <string>
#include <vector>

#include "anml/network.hpp"

namespace apss::anml {

struct PcreCompileResult {
  std::vector<ElementId> start_states;
  std::vector<ElementId> reporting_states;
  std::size_t position_count = 0;  ///< STEs emitted (Glushkov positions)
};

/// Appends the NFA for `pattern` to `network`; matches report with
/// `report_code` at the cycle of their LAST symbol. Throws
/// std::invalid_argument on syntax errors or empty-string-accepting
/// patterns.
PcreCompileResult compile_pcre(AutomataNetwork& network,
                               const std::string& pattern,
                               std::uint32_t report_code);

}  // namespace apss::anml
