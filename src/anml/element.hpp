#pragma once
// Element model of the AP fabric (Dlugosch et al., IEEE TPDS'14):
// state transition elements (STEs), threshold counters, and boolean gates.

#include <cstdint>
#include <string>

#include "anml/symbol_set.hpp"

namespace apss::anml {

/// Dense element handle within one AutomataNetwork.
using ElementId = std::uint32_t;
inline constexpr ElementId kInvalidElement = ~ElementId{0};

enum class ElementKind : std::uint8_t { kSte, kCounter, kBoolean };

/// Start behaviour of an STE (non-start STEs need an active predecessor).
enum class StartKind : std::uint8_t {
  kNone,         ///< enabled only by predecessors
  kAllInput,     ///< enabled on every cycle (PCRE "unanchored" start)
  kStartOfData,  ///< enabled only on the first cycle of the stream
};

/// Counter output behaviour when the threshold is reached.
enum class CounterMode : std::uint8_t {
  kPulse,  ///< one-cycle pulse on the crossing (the paper's sort counters)
  kLatch,  ///< asserted from the crossing until reset
};

/// Counter input ports (distinct terminals on the hardware element).
enum class CounterPort : std::uint8_t {
  kCountEnable,  ///< increment-by-one when any connected signal is active
  kReset,        ///< zero the internal count
  kThreshold,    ///< ARCH EXTENSION (Sec. VII-B): dynamic threshold source
};

/// Two-input-equivalent boolean gates available in each AP block.
enum class BooleanOp : std::uint8_t { kAnd, kOr, kNot, kNand, kNor, kXor, kXnor };

/// One fabric element. Which fields apply depends on `kind`:
///   kSte:     symbols, start, reporting/report_code
///   kCounter: threshold, mode, reporting/report_code
///   kBoolean: op, reporting/report_code
struct Element {
  ElementKind kind = ElementKind::kSte;
  std::string name;  ///< optional; used in ANML export and traces

  // --- STE fields ---
  SymbolSet symbols;
  StartKind start = StartKind::kNone;

  // --- Counter fields ---
  std::uint32_t threshold = 1;
  CounterMode mode = CounterMode::kPulse;

  // --- Boolean fields ---
  BooleanOp op = BooleanOp::kOr;

  // --- Reporting ---
  bool reporting = false;
  /// Application-defined code carried in report events (the paper uses this
  /// to map a reporting state back to its dataset vector).
  std::uint32_t report_code = 0;
};

/// A directed connection. For counters, `port` selects the input terminal;
/// for STEs/booleans it must be kCountEnable (the default data input).
struct Edge {
  ElementId from = kInvalidElement;
  ElementId to = kInvalidElement;
  CounterPort port = CounterPort::kCountEnable;

  bool operator==(const Edge&) const = default;
};

}  // namespace apss::anml
