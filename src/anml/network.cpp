#include "anml/network.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace apss::anml {

ElementId AutomataNetwork::add_ste(SymbolSet symbols, StartKind start,
                                   std::string name) {
  Element e;
  e.kind = ElementKind::kSte;
  e.symbols = symbols;
  e.start = start;
  e.name = std::move(name);
  elements_.push_back(std::move(e));
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId AutomataNetwork::add_reporting_ste(SymbolSet symbols,
                                             std::uint32_t report_code,
                                             std::string name) {
  const ElementId id = add_ste(symbols, StartKind::kNone, std::move(name));
  set_reporting(id, report_code);
  return id;
}

ElementId AutomataNetwork::add_counter(std::uint32_t threshold,
                                       CounterMode mode, std::string name) {
  Element e;
  e.kind = ElementKind::kCounter;
  e.threshold = threshold;
  e.mode = mode;
  e.name = std::move(name);
  elements_.push_back(std::move(e));
  return static_cast<ElementId>(elements_.size() - 1);
}

ElementId AutomataNetwork::add_boolean(BooleanOp op, std::string name) {
  Element e;
  e.kind = ElementKind::kBoolean;
  e.op = op;
  e.name = std::move(name);
  elements_.push_back(std::move(e));
  return static_cast<ElementId>(elements_.size() - 1);
}

void AutomataNetwork::connect(ElementId from, ElementId to, CounterPort port) {
  if (from >= elements_.size() || to >= elements_.size()) {
    throw std::out_of_range("AutomataNetwork::connect: bad element id");
  }
  edges_.push_back({from, to, port});
}

void AutomataNetwork::set_reporting(ElementId id, std::uint32_t report_code) {
  Element& e = elements_.at(id);
  e.reporting = true;
  e.report_code = report_code;
}

ElementId AutomataNetwork::merge(const AutomataNetwork& other) {
  const auto offset = static_cast<ElementId>(elements_.size());
  elements_.insert(elements_.end(), other.elements_.begin(),
                   other.elements_.end());
  edges_.reserve(edges_.size() + other.edges_.size());
  for (const Edge& e : other.edges_) {
    edges_.push_back({e.from + offset, e.to + offset, e.port});
  }
  return offset;
}

std::vector<Edge> AutomataNetwork::out_edges(ElementId id) const {
  std::vector<Edge> result;
  for (const Edge& e : edges_) {
    if (e.from == id) {
      result.push_back(e);
    }
  }
  return result;
}

std::vector<Edge> AutomataNetwork::in_edges(ElementId id) const {
  std::vector<Edge> result;
  for (const Edge& e : edges_) {
    if (e.to == id) {
      result.push_back(e);
    }
  }
  return result;
}

std::size_t AutomataNetwork::fan_in(ElementId id) const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [id](const Edge& e) { return e.to == id; }));
}

std::size_t AutomataNetwork::fan_out(ElementId id) const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [id](const Edge& e) { return e.from == id; }));
}

NetworkStats AutomataNetwork::stats() const {
  NetworkStats s;
  s.edge_count = edges_.size();
  for (const Element& e : elements_) {
    switch (e.kind) {
      case ElementKind::kSte:
        ++s.ste_count;
        break;
      case ElementKind::kCounter:
        ++s.counter_count;
        break;
      case ElementKind::kBoolean:
        ++s.boolean_count;
        break;
    }
    if (e.reporting) {
      ++s.reporting_count;
    }
    if (e.kind == ElementKind::kSte && e.start != StartKind::kNone) {
      ++s.start_count;
    }
  }
  std::vector<std::size_t> fin(elements_.size(), 0), fout(elements_.size(), 0);
  for (const Edge& e : edges_) {
    ++fout[e.from];
    ++fin[e.to];
  }
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    s.max_fan_in = std::max(s.max_fan_in, fin[i]);
    s.max_fan_out = std::max(s.max_fan_out, fout[i]);
  }
  return s;
}

std::size_t AutomataNetwork::components(
    std::vector<std::uint32_t>& labels) const {
  // Union-find over undirected connectivity.
  std::vector<std::uint32_t> parent(elements_.size());
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges_) {
    const std::uint32_t a = find(e.from);
    const std::uint32_t b = find(e.to);
    if (a != b) {
      parent[a] = b;
    }
  }
  labels.assign(elements_.size(), 0);
  std::vector<std::uint32_t> remap(elements_.size(), kInvalidElement);
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < elements_.size(); ++i) {
    const std::uint32_t root = find(i);
    if (remap[root] == kInvalidElement) {
      remap[root] = next++;
    }
    labels[i] = remap[root];
  }
  return next;
}

std::vector<std::string> AutomataNetwork::validate(
    bool allow_dynamic_threshold) const {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string msg) {
    problems.push_back(std::move(msg));
  };

  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const Element& e = elements_[i];
    const std::string tag = "element " + std::to_string(i) +
                            (e.name.empty() ? "" : " (" + e.name + ")");
    switch (e.kind) {
      case ElementKind::kSte:
        if (e.symbols.empty()) {
          complain(tag + ": STE has empty symbol class");
        }
        break;
      case ElementKind::kCounter:
        if (e.threshold == 0) {
          complain(tag + ": counter threshold must be >= 1");
        }
        if (e.start != StartKind::kNone) {
          complain(tag + ": counters cannot be start elements");
        }
        break;
      case ElementKind::kBoolean: {
        const std::size_t inputs = fan_in(static_cast<ElementId>(i));
        if (inputs == 0) {
          complain(tag + ": boolean gate has no inputs");
        }
        if (e.op == BooleanOp::kNot && inputs != 1) {
          complain(tag + ": NOT gate must have exactly one input");
        }
        if (e.start != StartKind::kNone) {
          complain(tag + ": booleans cannot be start elements");
        }
        break;
      }
    }
  }

  for (const Edge& e : edges_) {
    if (e.from >= elements_.size() || e.to >= elements_.size()) {
      complain("edge references out-of-range element");
      continue;
    }
    const Element& dst = elements_[e.to];
    if (dst.kind != ElementKind::kCounter &&
        e.port != CounterPort::kCountEnable) {
      complain("edge to non-counter element uses a counter port");
    }
    if (e.port == CounterPort::kThreshold) {
      if (!allow_dynamic_threshold) {
        complain(
            "kThreshold edge present but dynamic thresholds are an "
            "architectural extension (enable allow_dynamic_threshold)");
      } else if (elements_[e.from].kind != ElementKind::kCounter) {
        complain("dynamic threshold source must be a counter");
      }
    }
  }

  // Combinational cycles through booleans are unrealizable: boolean outputs
  // are computed within a cycle, so a boolean may not (transitively) feed
  // itself without passing through a clocked element (STE or counter).
  {
    const std::size_t n = elements_.size();
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<std::uint8_t> state(n, 0);
    std::vector<std::vector<ElementId>> bool_adj(n);
    for (const Edge& e : edges_) {
      if (elements_[e.from].kind == ElementKind::kBoolean &&
          elements_[e.to].kind == ElementKind::kBoolean) {
        bool_adj[e.from].push_back(e.to);
      }
    }
    bool cycle = false;
    const std::function<void(ElementId)> dfs = [&](ElementId u) {
      state[u] = 1;
      for (const ElementId v : bool_adj[u]) {
        if (state[v] == 1) {
          cycle = true;
        } else if (state[v] == 0) {
          dfs(v);
        }
        if (cycle) {
          return;
        }
      }
      state[u] = 2;
    };
    for (std::uint32_t i = 0; i < n && !cycle; ++i) {
      if (elements_[i].kind == ElementKind::kBoolean && state[i] == 0) {
        dfs(static_cast<ElementId>(i));
      }
    }
    if (cycle) {
      complain("combinational cycle through boolean elements");
    }
  }

  return problems;
}

}  // namespace apss::anml
