#pragma once
// Symbol classes for state transition elements (STEs).
//
// Every STE in an automata network matches a *set* of 8-bit symbols. The AP
// programming model expresses these as PCRE character classes; this module
// stores them as a 256-bit set and offers the class syntaxes the paper's
// designs need:
//   "*"            match-all (the paper's filler/bridge/report states)
//   "a", "\\x41"   single symbols
//   "[abc]", "[a-z]", "[^x]"  character classes with ranges and negation
//   "0b**1*01*1"   ternary bit patterns, as used by symbol-stream
//                  multiplexing (Sec. VI-B) to match one bit slice

#include <array>
#include <cstdint>
#include <string>

namespace apss::anml {

class SymbolSet {
 public:
  /// Empty set (matches nothing).
  constexpr SymbolSet() noexcept : words_{} {}

  /// Set containing every symbol (PCRE "*").
  static SymbolSet all() noexcept;

  /// Set containing exactly `symbol`.
  static SymbolSet single(std::uint8_t symbol) noexcept;

  /// Set containing every symbol EXCEPT `symbol` (e.g. the paper's ^EOF).
  static SymbolSet all_except(std::uint8_t symbol) noexcept;

  /// Symbols matching (sym & mask) == (value & mask): a ternary match.
  /// E.g. mask=0x01, value=0x01 is the paper's 0b*******1.
  static SymbolSet ternary(std::uint8_t value, std::uint8_t mask) noexcept;

  /// Parses the pattern syntaxes documented above. Throws
  /// std::invalid_argument on malformed input.
  static SymbolSet parse(const std::string& pattern);

  bool test(std::uint8_t symbol) const noexcept {
    return (words_[symbol >> 6] >> (symbol & 63)) & 1u;
  }
  void insert(std::uint8_t symbol) noexcept {
    words_[symbol >> 6] |= std::uint64_t{1} << (symbol & 63);
  }
  void erase(std::uint8_t symbol) noexcept {
    words_[symbol >> 6] &= ~(std::uint64_t{1} << (symbol & 63));
  }

  /// Number of symbols in the set.
  int count() const noexcept;
  bool empty() const noexcept;
  bool is_all() const noexcept;

  SymbolSet operator|(const SymbolSet& o) const noexcept;
  SymbolSet operator&(const SymbolSet& o) const noexcept;
  SymbolSet operator~() const noexcept;
  bool operator==(const SymbolSet& o) const noexcept { return words_ == o.words_; }

  /// Canonical pattern string: "*" for all, "\xNN" singles, "[...]" classes.
  std::string to_pattern() const;

  /// Minimal number of symbol bits a lookup table must inspect to compute
  /// this set's membership function exactly, considering only symbols in
  /// `alphabet` (symbols outside the alphabet are don't-cares). This is the
  /// cost model behind the STE-decomposition extension (Sec. VII-C): a set
  /// needing w bits fits in a 2^w-input sub-STE. Returns 0..8.
  int required_bits(const SymbolSet& alphabet) const noexcept;

  const std::array<std::uint64_t, 4>& words() const noexcept { return words_; }

 private:
  std::array<std::uint64_t, 4> words_;
};

}  // namespace apss::anml
