#include "quant/itq.hpp"

#include <cmath>
#include <stdexcept>

namespace apss::quant {

ItqQuantizer ItqQuantizer::fit(const Matrix& training,
                               const ItqOptions& options) {
  if (training.rows() < 2) {
    throw std::invalid_argument("ItqQuantizer::fit: need >= 2 samples");
  }
  if (options.bits == 0 || options.bits > training.cols()) {
    throw std::invalid_argument(
        "ItqQuantizer::fit: bits must be in [1, feature_dims]");
  }

  ItqQuantizer q;
  q.mean_ = training.column_means();
  Matrix centered = training;
  centered.center_columns(q.mean_);

  // PCA: top `bits` eigenvectors of the covariance.
  const EigenResult eig = symmetric_eigen(centered.covariance());
  q.projection_ = Matrix(training.cols(), options.bits);
  for (std::size_t i = 0; i < training.cols(); ++i) {
    for (std::size_t j = 0; j < options.bits; ++j) {
      q.projection_.at(i, j) = eig.vectors.at(i, j);
    }
  }

  // Rotation refinement: R_{t+1} from the SVD of V^T B (Procrustes).
  const Matrix v = centered * q.projection_;  // n x bits
  util::Rng rng(options.seed);
  q.rotation_ = Matrix::random_rotation(options.bits, rng);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const Matrix vr = v * q.rotation_;
    Matrix b(vr.rows(), vr.cols());
    for (std::size_t i = 0; i < vr.rows(); ++i) {
      for (std::size_t j = 0; j < vr.cols(); ++j) {
        b.at(i, j) = vr.at(i, j) >= 0.0 ? 1.0 : -1.0;
      }
    }
    const SvdResult svd = svd_square(v.transpose() * b);
    // R = U V_svd^T minimizes ||B - V R||_F for fixed B.
    q.rotation_ = svd.u * svd.v.transpose();
  }
  return q;
}

util::BitVector ItqQuantizer::encode(std::span<const double> features) const {
  if (features.size() != feature_dims()) {
    throw std::invalid_argument("ItqQuantizer::encode: dims mismatch");
  }
  const std::size_t nbits = bits();
  // code = sign((x - mean) * projection * rotation).
  std::vector<double> projected(nbits, 0.0);
  for (std::size_t i = 0; i < features.size(); ++i) {
    const double centered = features[i] - mean_[i];
    if (centered == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < nbits; ++j) {
      projected[j] += centered * projection_.at(i, j);
    }
  }
  util::BitVector code(nbits);
  for (std::size_t j = 0; j < nbits; ++j) {
    double rotated = 0.0;
    for (std::size_t i = 0; i < nbits; ++i) {
      rotated += projected[i] * rotation_.at(i, j);
    }
    code.set(j, rotated >= 0.0);
  }
  return code;
}

knn::BinaryDataset ItqQuantizer::encode_all(const Matrix& data) const {
  knn::BinaryDataset out(data.rows(), bits());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    out.set_vector(r, encode(data.row(r)));
  }
  return out;
}

double ItqQuantizer::quantization_loss(const Matrix& data) const {
  Matrix centered = data;
  centered.center_columns(mean_);
  const Matrix vr = centered * projection_ * rotation_;
  double loss = 0.0;
  for (std::size_t i = 0; i < vr.rows(); ++i) {
    for (std::size_t j = 0; j < vr.cols(); ++j) {
      const double b = vr.at(i, j) >= 0.0 ? 1.0 : -1.0;
      const double diff = b - vr.at(i, j);
      loss += diff * diff;
    }
  }
  return loss / static_cast<double>(data.rows());
}

Matrix gaussian_cluster_features(std::size_t samples, std::size_t feature_dims,
                                 std::size_t clusters, double center_scale,
                                 double spread, std::uint64_t seed,
                                 std::vector<std::uint32_t>* labels) {
  if (clusters == 0) {
    throw std::invalid_argument("gaussian_cluster_features: clusters == 0");
  }
  util::Rng rng(seed);
  Matrix centers(clusters, feature_dims);
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t d = 0; d < feature_dims; ++d) {
      centers.at(c, d) = center_scale * rng.gaussian();
    }
  }
  if (labels != nullptr) {
    labels->assign(samples, 0);
  }
  Matrix data(samples, feature_dims);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t c = rng.below(clusters);
    if (labels != nullptr) {
      (*labels)[i] = static_cast<std::uint32_t>(c);
    }
    for (std::size_t d = 0; d < feature_dims; ++d) {
      data.at(i, d) = centers.at(c, d) + spread * rng.gaussian();
    }
  }
  return data;
}

}  // namespace apss::quant
