#pragma once
// Small dense linear algebra for the ITQ quantization pipeline (Sec. II-A):
// row-major matrices, covariance/PCA via cyclic Jacobi, Gram-Schmidt QR for
// random rotations, and a symmetric-eigen-based SVD for the ITQ rotation
// update. Sizes here are feature dimensionalities (<= a few hundred), so
// O(n^3) dense routines are the right tool.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace apss::quant {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);
  /// i.i.d. standard normal entries.
  static Matrix gaussian(std::size_t rows, std::size_t cols, util::Rng& rng);
  /// Random orthonormal matrix (QR of a Gaussian matrix).
  static Matrix random_rotation(std::size_t n, util::Rng& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;

  /// Mean of each column (length cols()).
  std::vector<double> column_means() const;
  /// Subtracts the given per-column means in place.
  void center_columns(std::span<const double> means);

  /// Sample covariance (cols x cols); input should be centered.
  Matrix covariance() const;

  /// max |a_ij - b_ij|.
  double max_abs_diff(const Matrix& other) const;
  /// Frobenius norm.
  double frobenius() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and the matching eigenvectors as
/// COLUMNS of `vectors`.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};
EigenResult symmetric_eigen(const Matrix& m, int max_sweeps = 64,
                            double tolerance = 1e-12);

/// Thin QR via modified Gram-Schmidt; returns Q (same shape as input,
/// orthonormal columns). Throws on rank deficiency.
Matrix gram_schmidt_q(const Matrix& m);

/// SVD m = U diag(s) V^T for square m, via symmetric eigen of m^T m.
/// Singular values descending. Columns of U/V are the singular vectors;
/// ill-conditioned directions are completed orthonormally.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};
SvdResult svd_square(const Matrix& m);

}  // namespace apss::quant
