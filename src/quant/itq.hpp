#pragma once
// Iterative Quantization (ITQ), Gong & Lazebnik CVPR'11 — the offline
// binarization step the paper assumes (Sec. II-A): real-valued feature
// vectors are PCA-projected to `bits` dimensions, then a rotation R is
// refined to minimize the quantization loss ||B - V R||_F, and codes are
// sign bits. APSS implements it fully so the end-to-end pipeline
// (features -> binary codes -> AP search) runs without external tools.

#include <cstddef>
#include <cstdint>

#include "knn/dataset.hpp"
#include "quant/matrix.hpp"
#include "util/bitvector.hpp"

namespace apss::quant {

struct ItqOptions {
  std::size_t bits = 64;       ///< output code length (= kNN dimensionality)
  std::size_t iterations = 50; ///< rotation refinement steps
  std::uint64_t seed = 1;
};

class ItqQuantizer {
 public:
  /// Learns mean, PCA projection, and rotation from training rows
  /// (rows = samples, cols = feature dims). Requires rows >= 2 and
  /// bits <= cols.
  static ItqQuantizer fit(const Matrix& training, const ItqOptions& options);

  /// Encodes one feature vector (length = feature dims).
  util::BitVector encode(std::span<const double> features) const;

  /// Encodes every row of `data` into a BinaryDataset.
  knn::BinaryDataset encode_all(const Matrix& data) const;

  std::size_t bits() const noexcept { return rotation_.cols(); }
  std::size_t feature_dims() const noexcept { return projection_.rows(); }
  const Matrix& rotation() const noexcept { return rotation_; }
  const Matrix& projection() const noexcept { return projection_; }

  /// Mean quantization loss ||sign(VR) - VR||_F^2 / n on the given data,
  /// the objective ITQ minimizes (for tests and diagnostics).
  double quantization_loss(const Matrix& data) const;

 private:
  ItqQuantizer() = default;

  std::vector<double> mean_;
  Matrix projection_;  ///< feature_dims x bits (top PCA directions)
  Matrix rotation_;    ///< bits x bits orthonormal
};

/// Gaussian-mixture feature generator: `clusters` centers in feature_dims
/// dimensions with the given spread; used by examples and recall tests.
/// When `labels` is non-null it receives each sample's cluster id.
Matrix gaussian_cluster_features(std::size_t samples, std::size_t feature_dims,
                                 std::size_t clusters, double center_scale,
                                 double spread, std::uint64_t seed,
                                 std::vector<std::uint32_t>* labels = nullptr);

}  // namespace apss::quant
