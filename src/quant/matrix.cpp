#include "quant/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace apss::quant {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::gaussian(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.gaussian();
    }
  }
  return m;
}

Matrix Matrix::random_rotation(std::size_t n, util::Rng& rng) {
  return gram_schmidt_q(gaussian(n, n, rng));
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix multiply: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) {
        continue;
      }
      const auto src = other.row(k);
      const auto dst = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        dst[j] += a * src[j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix subtract: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

std::vector<double> Matrix::column_means() const {
  std::vector<double> means(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      means[c] += src[c];
    }
  }
  for (double& m : means) {
    m /= static_cast<double>(std::max<std::size_t>(1, rows_));
  }
  return means;
}

void Matrix::center_columns(std::span<const double> means) {
  if (means.size() != cols_) {
    throw std::invalid_argument("center_columns: means size mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto dst = row(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      dst[c] -= means[c];
    }
  }
}

Matrix Matrix::covariance() const {
  if (rows_ < 2) {
    throw std::invalid_argument("covariance: need at least 2 rows");
  }
  Matrix cov(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto x = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) {
        continue;
      }
      const auto dst = cov.row(i);
      for (std::size_t j = 0; j < cols_; ++j) {
        dst[j] += xi * x[j];
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(rows_ - 1);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      cov.at(i, j) *= scale;
    }
  }
  return cov;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Matrix::frobenius() const {
  double total = 0.0;
  for (const double x : data_) {
    total += x * x;
  }
  return std::sqrt(total);
}

EigenResult symmetric_eigen(const Matrix& m, int max_sweeps,
                            double tolerance) {
  if (m.rows() != m.cols()) {
    throw std::invalid_argument("symmetric_eigen: matrix must be square");
  }
  const std::size_t n = m.rows();
  Matrix a = m;
  Matrix v = Matrix::identity(n);

  const auto off_diag_norm = [&a, n] {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        total += a.at(i, j) * a.at(i, j);
      }
    }
    return std::sqrt(total);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= tolerance * std::max(1.0, a.frobenius())) {
      break;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-300) {
          continue;
        }
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/cols p and q of A and to V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&a](std::size_t x, std::size_t y) {
    return a.at(x, x) > a.at(y, y);
  });
  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = a.at(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors.at(i, j) = v.at(i, order[j]);
    }
  }
  return result;
}

Matrix gram_schmidt_q(const Matrix& m) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  if (cols > rows) {
    throw std::invalid_argument("gram_schmidt_q: more columns than rows");
  }
  Matrix q = m;
  for (std::size_t j = 0; j < cols; ++j) {
    // Orthogonalize column j against previous columns (twice, for
    // numerical robustness).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < rows; ++i) {
          dot += q.at(i, j) * q.at(i, prev);
        }
        for (std::size_t i = 0; i < rows; ++i) {
          q.at(i, j) -= dot * q.at(i, prev);
        }
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      norm += q.at(i, j) * q.at(i, j);
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      throw std::invalid_argument("gram_schmidt_q: rank-deficient input");
    }
    for (std::size_t i = 0; i < rows; ++i) {
      q.at(i, j) /= norm;
    }
  }
  return q;
}

SvdResult svd_square(const Matrix& m) {
  if (m.rows() != m.cols()) {
    throw std::invalid_argument("svd_square: matrix must be square");
  }
  const std::size_t n = m.rows();
  // m = U S V^T  =>  m^T m = V S^2 V^T.
  const EigenResult eig = symmetric_eigen(m.transpose() * m);
  SvdResult result;
  result.v = eig.vectors;
  result.singular_values.resize(n);
  result.u = Matrix(n, n);

  const double scale = std::max(1.0, m.frobenius());
  std::vector<std::size_t> null_columns;
  for (std::size_t j = 0; j < n; ++j) {
    const double sigma = std::sqrt(std::max(0.0, eig.values[j]));
    result.singular_values[j] = sigma;
    // The Jacobi eigensolver leaves O(1e-7) residuals in null directions;
    // treat anything below 1e-6 x scale as numerically zero.
    if (sigma > 1e-6 * scale) {
      // u_j = m v_j / sigma.
      for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          sum += m.at(i, k) * result.v.at(k, j);
        }
        result.u.at(i, j) = sum / sigma;
      }
    } else {
      null_columns.push_back(j);
    }
  }
  // Complete null directions: orthogonalize standard basis vectors against
  // every column already in place (unfilled columns are zero and contribute
  // nothing) and keep candidates with real residual mass.
  std::size_t basis_cursor = 0;
  for (const std::size_t j : null_columns) {
    for (; basis_cursor < n; ++basis_cursor) {
      std::vector<double> candidate(n, 0.0);
      candidate[basis_cursor] = 1.0;
      for (std::size_t prev = 0; prev < n; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          dot += candidate[i] * result.u.at(i, prev);
        }
        for (std::size_t i = 0; i < n; ++i) {
          candidate[i] -= dot * result.u.at(i, prev);
        }
      }
      double norm = 0.0;
      for (const double x : candidate) {
        norm += x * x;
      }
      norm = std::sqrt(norm);
      if (norm > 1e-6) {
        for (std::size_t i = 0; i < n; ++i) {
          result.u.at(i, j) = candidate[i] / norm;
        }
        ++basis_cursor;
        break;
      }
    }
  }
  return result;
}

}  // namespace apss::quant
