#include "artifact/artifact.hpp"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "util/fnv.hpp"

namespace apss::artifact {
namespace {

// ---------------------------------------------------------------------------
// Little-endian byte stream primitives. The writer grows a vector; the
// reader never touches a byte it has not bounds-checked first, so decode is
// well-defined on arbitrary input.

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : data_(bytes) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool truncated() const noexcept { return truncated_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t read_u8() { return take(1) ? data_[pos_ - 1] : 0; }
  std::uint16_t read_u16() { return static_cast<std::uint16_t>(read_le(2)); }
  std::uint32_t read_u32() { return static_cast<std::uint32_t>(read_le(4)); }
  std::uint64_t read_u64() { return read_le(8); }

  /// Reads `size` raw bytes into a string (caller validates the length cap
  /// BEFORE calling, so a hostile length cannot drive a huge allocation).
  std::string read_string_bytes(std::size_t size) {
    if (!take(size)) {
      return {};
    }
    return std::string(reinterpret_cast<const char*>(&data_[pos_ - size]), size);
  }

  /// Reads `count` u64 values. Checks the byte budget before allocating.
  std::vector<std::uint64_t> read_u64_array(std::uint64_t count) {
    if (count > remaining() / 8) {
      truncated_ = true;
      return {};
    }
    std::vector<std::uint64_t> out(static_cast<std::size_t>(count));
    for (std::uint64_t& v : out) {
      v = read_u64();
    }
    return out;
  }
  std::vector<std::uint32_t> read_u32_array(std::uint64_t count) {
    if (count > remaining() / 4) {
      truncated_ = true;
      return {};
    }
    std::vector<std::uint32_t> out(static_cast<std::size_t>(count));
    for (std::uint32_t& v : out) {
      v = read_u32();
    }
    return out;
  }

 private:
  bool take(std::size_t n) noexcept {
    if (truncated_ || n > remaining()) {
      truncated_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::uint64_t read_le(std::size_t n) {
    if (!take(n)) {
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ - n + i]) << (8 * i);
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

LoadResult fail(LoadErrorCode code, std::string detail) {
  LoadResult r;
  r.error.code = code;
  r.error.detail = std::move(detail);
  return r;
}

/// Byte offset where content-hash coverage starts: everything after the
/// magic, version, reserved word and the hash field itself.
constexpr std::size_t kHashedFrom = 24;

}  // namespace

const char* to_string(LoadErrorCode code) noexcept {
  switch (code) {
    case LoadErrorCode::kNotFound:
      return "not-found";
    case LoadErrorCode::kIoError:
      return "io-error";
    case LoadErrorCode::kTruncated:
      return "truncated";
    case LoadErrorCode::kBadMagic:
      return "bad-magic";
    case LoadErrorCode::kVersionMismatch:
      return "version-mismatch";
    case LoadErrorCode::kHashMismatch:
      return "hash-mismatch";
    case LoadErrorCode::kMalformed:
      return "malformed";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Artifact& artifact) {
  if (artifact.program == nullptr) {
    throw std::invalid_argument("artifact::encode: artifact holds no program");
  }
  if (artifact.meta.builder.size() > kMaxBuilderLength ||
      artifact.meta.network_name.size() > kMaxNetworkNameLength) {
    throw std::invalid_argument("artifact::encode: meta string exceeds format cap");
  }
  const apsim::BatchProgramState state = artifact.program->state();

  ByteWriter payload;
  const ArtifactMeta& m = artifact.meta;
  payload.put_u64(m.key_hash);
  payload.put_u64(m.network_digest);
  payload.put_string(m.builder);
  payload.put_string(m.network_name);
  payload.put_u64(m.network_elements);
  payload.put_u64(m.network_edges);
  payload.put_u64(m.dataset_begin);
  payload.put_u64(m.dataset_count);

  payload.put_u8(static_cast<std::uint8_t>(state.family));
  payload.put_u64(state.lanes);
  payload.put_u64(state.dims);
  payload.put_u64(state.levels);
  payload.put_u64(state.class_count);
  payload.put_u8(state.sof);
  payload.put_u8(state.eof);
  for (const std::uint16_t classes : state.sym_classes) {
    payload.put_u16(classes);
  }
  for (const std::uint64_t row : state.dim_rows) {
    payload.put_u64(row);
  }
  for (const anml::ElementId elem : state.report_elem) {
    payload.put_u32(elem);
  }
  for (const std::uint32_t code : state.report_code) {
    payload.put_u32(code);
  }
  const std::vector<std::uint8_t> body = payload.take();

  util::Fnv1a64 hasher;
  hasher.update(std::span<const std::uint8_t>(body));

  ByteWriter file;
  for (const std::uint8_t b : kMagic) {
    file.put_u8(b);
  }
  file.put_u32(kFormatVersion);
  file.put_u32(0);  // reserved
  file.put_u64(hasher.digest());
  std::vector<std::uint8_t> bytes = file.take();
  bytes.insert(bytes.end(), body.begin(), body.end());
  return bytes;
}

LoadResult decode(std::span<const std::uint8_t> bytes) {
  // Header: validated field by field, OUTSIDE content-hash coverage, so a
  // foreign file says bad-magic and a future format says version-mismatch
  // instead of both collapsing into hash-mismatch.
  if (bytes.size() < sizeof(kMagic)) {
    return fail(LoadErrorCode::kTruncated,
                "input shorter than the 8-byte magic (" +
                    std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(LoadErrorCode::kBadMagic, "magic bytes are not \"APSS-ART\"");
  }
  if (bytes.size() < kHashedFrom) {
    return fail(LoadErrorCode::kTruncated,
                "input ends inside the header (" + std::to_string(bytes.size()) +
                    " of " + std::to_string(kHashedFrom) + " header bytes)");
  }
  ByteReader header(bytes.subspan(sizeof(kMagic), kHashedFrom - sizeof(kMagic)));
  const std::uint32_t version = header.read_u32();
  const std::uint32_t reserved = header.read_u32();
  const std::uint64_t stored_hash = header.read_u64();
  if (version != kFormatVersion) {
    return fail(LoadErrorCode::kVersionMismatch,
                "artifact format version " + std::to_string(version) +
                    ", this build reads version " + std::to_string(kFormatVersion));
  }
  if (reserved != 0) {
    return fail(LoadErrorCode::kMalformed, "reserved header word is not zero");
  }
  util::Fnv1a64 hasher;
  hasher.update(bytes.subspan(kHashedFrom));
  if (hasher.digest() != stored_hash) {
    return fail(LoadErrorCode::kHashMismatch,
                "content hash mismatch: payload bytes do not match the stored "
                "FNV-1a digest (corrupt or truncated artifact)");
  }

  // Payload. The content hash already matched, so from here every failure is
  // a malformed *valid-looking* file (or a 1-in-2^64 hash collision); the
  // reader still bounds-checks everything rather than trusting the hash.
  ByteReader r(bytes.subspan(kHashedFrom));
  ArtifactMeta meta;
  meta.key_hash = r.read_u64();
  meta.network_digest = r.read_u64();
  const std::uint32_t builder_len = r.read_u32();
  if (!r.truncated() && builder_len > kMaxBuilderLength) {
    return fail(LoadErrorCode::kMalformed,
                "builder string length " + std::to_string(builder_len) +
                    " exceeds cap " + std::to_string(kMaxBuilderLength));
  }
  meta.builder = r.read_string_bytes(builder_len);
  const std::uint32_t name_len = r.read_u32();
  if (!r.truncated() && name_len > kMaxNetworkNameLength) {
    return fail(LoadErrorCode::kMalformed,
                "network name length " + std::to_string(name_len) +
                    " exceeds cap " + std::to_string(kMaxNetworkNameLength));
  }
  meta.network_name = r.read_string_bytes(name_len);
  meta.network_elements = r.read_u64();
  meta.network_edges = r.read_u64();
  meta.dataset_begin = r.read_u64();
  meta.dataset_count = r.read_u64();

  apsim::BatchProgramState state;
  const std::uint8_t family_raw = r.read_u8();
  if (!r.truncated() &&
      family_raw > static_cast<std::uint8_t>(apsim::MacroFamily::kMultiplexed)) {
    return fail(LoadErrorCode::kMalformed,
                "unknown macro family tag " + std::to_string(family_raw));
  }
  state.family = static_cast<apsim::MacroFamily>(family_raw);
  state.lanes = r.read_u64();
  state.dims = r.read_u64();
  state.levels = r.read_u64();
  state.class_count = r.read_u64();
  state.sof = r.read_u8();
  state.eof = r.read_u8();
  for (std::uint16_t& classes : state.sym_classes) {
    classes = r.read_u16();
  }
  // Shape caps before the size product: with lanes <= 2^26, dims <= 2^20 and
  // class_count <= 16 the row count fits comfortably in 64 bits, so the
  // multiplication below cannot overflow (from_state re-checks these).
  if (!r.truncated() &&
      (state.lanes == 0 || state.lanes > (1ULL << 26) || state.dims == 0 ||
       state.dims > (1ULL << 20) || state.class_count == 0 ||
       state.class_count > 16)) {
    return fail(LoadErrorCode::kMalformed,
                "program shape out of range: lanes=" + std::to_string(state.lanes) +
                    " dims=" + std::to_string(state.dims) +
                    " classes=" + std::to_string(state.class_count));
  }
  if (!r.truncated()) {
    const std::uint64_t words = (state.lanes + 63) / 64;
    state.dim_rows = r.read_u64_array(state.dims * state.class_count * words);
    state.report_elem = r.read_u32_array(state.lanes);
    state.report_code = r.read_u32_array(state.lanes);
  }

  if (r.truncated()) {
    return fail(LoadErrorCode::kTruncated,
                "payload ends before a field it promises");
  }
  if (!r.at_end()) {
    return fail(LoadErrorCode::kMalformed,
                std::to_string(r.remaining()) + " trailing bytes after the payload");
  }

  std::string program_error;
  std::shared_ptr<const apsim::BatchProgram> program =
      apsim::BatchProgram::from_state(state, &program_error);
  if (program == nullptr) {
    return fail(LoadErrorCode::kMalformed, "program rejected: " + program_error);
  }

  auto artifact = std::make_shared<Artifact>();
  artifact->meta = std::move(meta);
  artifact->program = std::move(program);
  LoadResult result;
  result.artifact = std::move(artifact);
  return result;
}

bool save(const std::string& path, const Artifact& artifact, std::string* error) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = encode(artifact);
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) {
      *error = e.what();
    }
    return false;
  }

  // Unique-per-process temp name so concurrent savers of the same slot do
  // not interleave; the final rename is atomic on POSIX.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp_path =
      path + ".tmp." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot open " + tmp_path + " for writing";
      }
      return false;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) {
        *error = "short write to " + tmp_path;
      }
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp_path + " to " + path + ": " + ec.message();
    }
    std::error_code cleanup;
    std::filesystem::remove(tmp_path, cleanup);
    return false;
  }
  return true;
}

LoadResult load(const std::string& path) {
  // Stat first: a directory (or other non-regular file) would report a
  // nonsense stream size below.
  std::error_code ec;
  const std::filesystem::file_status st = std::filesystem::status(path, ec);
  if (ec || !std::filesystem::exists(st)) {
    return fail(LoadErrorCode::kNotFound, "no artifact at " + path);
  }
  if (!std::filesystem::is_regular_file(st)) {
    return fail(LoadErrorCode::kIoError, path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fail(LoadErrorCode::kIoError, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return fail(LoadErrorCode::kIoError, "cannot determine size of " + path);
  }
  in.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  }
  if (!in) {
    return fail(LoadErrorCode::kIoError, "short read from " + path);
  }
  return decode(bytes);
}

}  // namespace apss::artifact
