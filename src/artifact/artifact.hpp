#pragma once
// Versioned on-disk artifacts for compiled automata programs — the
// ahead-of-time compile cache (ROADMAP item 3, after Eudoxus: a compiler
// producing a compact executable automata format consumed by a thin
// runtime).
//
// An artifact stores one compiled apsim::BatchProgram (any of the three
// macro families: hamming, packed, multiplexed) together with enough
// provenance to validate it on load: the producing pipeline, a digest of
// the source ANML network (anml::network_digest), the dataset slice it
// encodes, and the builder's compile-input key hash. The byte-level format
// is specified in docs/ARTIFACTS.md; the contract that matters here:
//
//  * save(path, ...) is atomic (temp file + rename): readers never observe
//    a half-written artifact.
//  * load(path)/decode(bytes) performs strict bounds-checked decoding.
//    Truncated, corrupt, version-mismatched or hash-mismatched input
//    yields a TYPED LoadError — never undefined behavior, a crash, or a
//    silently wrong program. The corruption fuzz suite
//    (tests/artifact/artifact_corruption_test.cpp) flips/truncates every
//    byte offset under ASan+UBSan to hold this line.
//  * A decoded program additionally passes BatchProgram::from_state, which
//    revalidates every structural invariant the compiler establishes, so a
//    loaded program is exactly as trustworthy as a freshly compiled one.
//
// Consumers: core::ApKnnEngine / core::MultiplexedKnn compile-on-miss and
// load-on-hit through EngineOptions::artifact_cache_dir (see
// core/artifact_cache.hpp), and `apss_cli knn --save-artifact/
// --load-artifact` moves single configurations by hand.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"

namespace apss::artifact {

/// First 8 bytes of every artifact file.
inline constexpr std::uint8_t kMagic[8] = {'A', 'P', 'S', 'S', '-', 'A', 'R', 'T'};

/// Bumped on any byte-level layout change; loaders accept exactly one
/// version (docs/ARTIFACTS.md keeps the history).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Longest builder / network-name strings an artifact may carry.
inline constexpr std::size_t kMaxBuilderLength = 256;
inline constexpr std::size_t kMaxNetworkNameLength = 4096;

/// Why a load failed. Every rejection path maps to exactly one code; the
/// detail string narrows it down for humans.
enum class LoadErrorCode : std::uint8_t {
  kNotFound,         ///< no file at the given path (a cache MISS, not damage)
  kIoError,          ///< the file exists but could not be read
  kTruncated,        ///< input ends before a field it promises
  kBadMagic,         ///< not an artifact file
  kVersionMismatch,  ///< artifact written by a different format version
  kHashMismatch,     ///< stored content hash != recomputed (corruption)
  kMalformed,        ///< structure violates the format or program invariants
};

const char* to_string(LoadErrorCode code) noexcept;

struct LoadError {
  LoadErrorCode code = LoadErrorCode::kIoError;
  std::string detail;
};

/// Provenance and identity of one compiled configuration.
struct ArtifactMeta {
  /// The builder's compile-input hash (dataset slice + layout + compiler
  /// options, see core/artifact_cache.hpp). Cache consumers recompute the
  /// expected key from their inputs and reject on mismatch — the
  /// invalidation rule.
  std::uint64_t key_hash = 0;
  /// anml::network_digest of the source design at save time: ties the
  /// program to the serialized ANML network it was compiled from.
  std::uint64_t network_digest = 0;
  std::string builder;       ///< producing pipeline, e.g. "apss-knn-engine"
  std::string network_name;  ///< AutomataNetwork::name of the source design
  std::uint64_t network_elements = 0;
  std::uint64_t network_edges = 0;
  std::uint64_t dataset_begin = 0;  ///< first global vector id encoded
  std::uint64_t dataset_count = 0;  ///< vectors in this configuration

  bool operator==(const ArtifactMeta&) const = default;
};

/// One loadable unit: metadata + the compiled program.
struct Artifact {
  ArtifactMeta meta;
  std::shared_ptr<const apsim::BatchProgram> program;
};

/// Outcome of load()/decode(): `artifact` on success, a typed `error`
/// otherwise (never both, never neither).
struct LoadResult {
  std::shared_ptr<const Artifact> artifact;
  LoadError error;

  explicit operator bool() const noexcept { return artifact != nullptr; }
};

/// Serializes to the docs/ARTIFACTS.md byte format. The artifact must hold
/// a program; throws std::invalid_argument on a null program or oversized
/// meta strings (producer bugs, not data errors).
std::vector<std::uint8_t> encode(const Artifact& artifact);

/// Strict decode of encode()'s output. See LoadErrorCode for the
/// rejection taxonomy; kNotFound is never produced here.
LoadResult decode(std::span<const std::uint8_t> bytes);

/// encode() + atomic write (temp file in the target directory + rename).
/// Returns false and fills *error on I/O failure.
bool save(const std::string& path, const Artifact& artifact,
          std::string* error = nullptr);

/// Reads `path` and decode()s it. A missing file reports kNotFound.
LoadResult load(const std::string& path);

}  // namespace apss::artifact
