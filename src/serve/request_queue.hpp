#pragma once
// Bounded admission queue of the serving core (docs/ROBUSTNESS.md
// "Serving").
//
// The queue is the overload valve: push() REFUSES work the moment the
// depth cap is reached instead of growing, so a traffic spike turns into
// typed kOverloaded rejections at admission rather than unbounded memory
// and tail latency. Closing the queue (drain) refuses all further pushes
// but lets consumers empty what was admitted — nothing admitted is ever
// dropped by the queue itself.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace apss::serve {

class RequestQueue {
 public:
  /// `max_depth` = most requests waiting at once (>= 1).
  explicit RequestQueue(std::size_t max_depth);

  enum class PushResult {
    kAdmitted,
    kFull,    ///< depth cap reached — shed with kOverloaded
    kClosed,  ///< draining — reject with kShuttingDown
  };

  PushResult push(RequestPtr request);

  /// Blocks until a request is available and pops it; returns null once
  /// the queue is closed AND empty (the consumer's exit signal).
  RequestPtr pop_blocking();

  /// Pops one request if available before `until`; null on timeout or on
  /// closed-and-empty. Never waits once the queue is closed — a draining
  /// server flushes partial batches immediately instead of sitting out the
  /// batch window.
  RequestPtr pop_until(std::chrono::steady_clock::time_point until);

  /// Removes and returns every queued request whose deadline has expired
  /// (the watchdog's queue-reaping pass — expired work must not wait for a
  /// batch slot just to be discarded).
  std::vector<RequestPtr> take_expired();

  /// Refuses further pushes and wakes all waiting consumers.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t high_water() const;

 private:
  const std::size_t max_depth_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<RequestPtr> queue_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace apss::serve
