#include "serve/request_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace apss::serve {

RequestQueue::RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {
  if (max_depth == 0) {
    throw std::invalid_argument("RequestQueue: max_depth must be >= 1");
  }
}

RequestQueue::PushResult RequestQueue::push(RequestPtr request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return PushResult::kClosed;
    }
    if (queue_.size() >= max_depth_) {
      return PushResult::kFull;
    }
    queue_.push_back(std::move(request));
    high_water_ = std::max(high_water_, queue_.size());
  }
  cv_.notify_one();
  return PushResult::kAdmitted;
}

RequestPtr RequestQueue::pop_blocking() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) {
    return nullptr;
  }
  RequestPtr out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

RequestPtr RequestQueue::pop_until(
    std::chrono::steady_clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_until(lock, until,
                      [&] { return !queue_.empty() || closed_; })) {
    return nullptr;  // batch window elapsed
  }
  if (queue_.empty()) {
    return nullptr;  // closed and drained
  }
  RequestPtr out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::vector<RequestPtr> RequestQueue::take_expired() {
  std::vector<RequestPtr> expired;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->deadline.expired()) {
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t RequestQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

}  // namespace apss::serve
