#pragma once
// Serving-core health counters (docs/ROBUSTNESS.md "Serving").
//
// Every terminal ResponseCode maps to exactly one counter, so the leak
// invariant is checkable from a snapshot alone:
//
//   submitted == resolved_total()        (once every future is resolved)
//   admitted  == ok + deadline_exceeded_inflight + cancelled
//               + internal_errors_inflight
//
// apss_serve asserts the first identity on drain ("zero response leaks")
// and the soak smoke in CI runs that assertion under injected faults.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace apss::serve {

/// Point-in-time health snapshot of a KnnServer.
struct ServerStats {
  // --- Admission --------------------------------------------------------
  std::uint64_t submitted = 0;          ///< submit() calls, accepted or not
  std::uint64_t admitted = 0;           ///< passed admission into the queue
  std::uint64_t rejected_overload = 0;  ///< typed kOverloaded sheds
  std::uint64_t rejected_shutdown = 0;  ///< kShuttingDown rejections
  std::uint64_t rejected_invalid = 0;   ///< kInvalidArgument rejections
  /// Deadline already expired at submit: resolved kDeadlineExceeded by the
  /// admission fast path, before any simulator work was enqueued. A subset
  /// of deadline_exceeded.
  std::uint64_t expired_at_admission = 0;

  // --- Resolution -------------------------------------------------------
  std::uint64_t ok = 0;                 ///< kOk responses
  std::uint64_t deadline_exceeded = 0;  ///< kDeadlineExceeded (all paths)
  std::uint64_t cancelled = 0;          ///< kCancelled responses
  std::uint64_t internal_errors = 0;    ///< kInternal responses

  // --- Batching ---------------------------------------------------------
  std::uint64_t batches = 0;            ///< executed query-frame batches
  std::uint64_t batched_requests = 0;   ///< live requests across batches
  /// Batches whose engine run degraded at least one configuration to the
  /// cycle-accurate reference (answers exact, just slower).
  std::uint64_t degraded_batches = 0;
  /// Wedged batches the watchdog failed (their requests went kInternal).
  std::uint64_t watchdog_fired = 0;
  /// batch_occupancy[i] = number of executed batches with i+1 live
  /// requests; the vector is sized to ServerOptions::max_batch.
  std::vector<std::uint64_t> batch_occupancy;

  // --- Instantaneous ----------------------------------------------------
  std::size_t queue_depth = 0;       ///< waiting requests at snapshot time
  std::size_t queue_high_water = 0;  ///< max depth ever observed
  std::size_t inflight = 0;          ///< admitted, not yet resolved

  /// Requests that have reached a terminal state.
  std::uint64_t resolved_total() const noexcept {
    return ok + rejected_overload + rejected_shutdown + rejected_invalid +
           deadline_exceeded + cancelled + internal_errors;
  }
  /// True when every submitted request is resolved and nothing is in
  /// flight — the drain postcondition.
  bool accounted() const noexcept {
    return submitted == resolved_total() && inflight == 0;
  }
  /// Mean live requests per executed batch (0 when no batch ran).
  double mean_batch_occupancy() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
};

/// Human-readable multi-line summary (printed by `apss_serve
/// --status-every` and on drain).
std::ostream& operator<<(std::ostream& os, const ServerStats& stats);

/// Thread-safe accumulator behind KnnServer::stats(). One mutex for
/// everything: admission and resolution each take it once per request,
/// which is noise next to a simulated query frame.
class StatsCollector {
 public:
  explicit StatsCollector(std::size_t max_batch);

  void count_submitted();
  void count_admitted();
  /// Counts one terminal response. `expired_at_admission` marks the
  /// admission fast-path flavor of kDeadlineExceeded.
  void count_resolved(ResponseCode code, bool expired_at_admission);
  void count_batch(std::size_t live_requests, bool degraded);
  void count_watchdog_fired();

  /// Snapshot with the caller-supplied instantaneous gauges folded in.
  ServerStats snapshot(std::size_t queue_depth, std::size_t queue_high_water,
                       std::size_t inflight) const;

 private:
  mutable std::mutex mutex_;
  ServerStats stats_;
};

}  // namespace apss::serve
