#pragma once
// serve::KnnServer — the embeddable, transport-agnostic always-on kNN
// serving core (ROADMAP item 2; docs/ROBUSTNESS.md "Serving").
//
// The headline property is staying up and PREDICTABLE under overload:
//
//   submit() ──admission──▶ bounded queue ──batcher──▶ worker batches
//      │                        │                          │
//      ├─ kShuttingDown         ├─ watchdog reaps           ├─ resident
//      ├─ kInvalidArgument      │  expired requests         │  ApKnnEngine
//      ├─ kDeadlineExceeded     │                           │  per worker
//      │  (fast path)           ▼                           ▼
//      └─ kOverloaded (shed) kDeadlineExceeded       kOk / typed failure
//
// - Admission control: max_queue_depth + max_inflight bound all buffered
//   work; excess load is shed with typed kOverloaded responses instead of
//   growing a queue without bound.
// - Dynamic batching: admitted queries coalesce into shared query frames
//   (flush on max_batch or batch_window_ms, whichever first) executed on
//   worker-resident ApKnnEngines warmed from the artifact cache at
//   construction.
// - Per-request deadlines propagate into the engines' RunControl
//   checkpoints (batch budget = latest member deadline); requests whose
//   own deadline expires — at admission, queued, or mid-batch — resolve
//   kDeadlineExceeded while batch-mates still get bit-identical results.
// - Graceful drain: stop admitting, finish (or deadline-out) in-flight
//   work, resolve every request exactly once, join all threads.
// - Watchdog: detects a wedged worker batch by heartbeat age, fails its
//   requests with kInternal and fires the batch's cancellation token so
//   the worker unwinds at its next checkpoint instead of hanging drain.
//
// Every engine run uses OnError::kRetry, so shard faults degrade to the
// cycle-accurate reference (exact, bit-identical answers) before a batch
// is failed; a batch only resolves kOk when EVERY configuration survived,
// never with a silently partial candidate set.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "knn/dataset.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"

namespace apss::serve {

struct ServerOptions {
  /// Worker-engine configuration (backend, lane width, threads, artifact
  /// cache, packing ...). The server overrides the robustness fields:
  /// on_error is forced to kRetry (degrade, never silently lose answers),
  /// deadline_ms/cancel are replaced by the per-request machinery, and
  /// collect_report_stream is disabled. threads applies PER WORKER ENGINE
  /// (1 = serial worker; scale out via `workers`).
  core::EngineOptions engine;
  /// Neighbors returned per query (clamped to the dataset size).
  std::size_t k = 10;
  /// Most requests waiting in the admission queue before submit() sheds
  /// with kOverloaded.
  std::size_t max_queue_depth = 256;
  /// Most admitted-but-unresolved requests (queued + executing) before
  /// submit() sheds with kOverloaded.
  std::size_t max_inflight = 1024;
  /// Most queries coalesced into one query-frame batch.
  std::size_t max_batch = 32;
  /// How long a forming batch waits for more queries after its first
  /// (<= 0: no wait — batches are whatever is instantaneously queued).
  double batch_window_ms = 1.0;
  /// Batch-executor threads, each with its own resident ApKnnEngine
  /// (constructed sequentially at startup; with engine.artifact_cache_dir
  /// set, the first build warms the cache and the rest load from it).
  std::size_t workers = 1;
  /// Watchdog: a batch executing longer than this is declared wedged —
  /// its requests fail kInternal and its cancellation token fires. 0
  /// disables wedge detection (deadline reaping still runs).
  double watchdog_timeout_ms = 5000;
  /// Watchdog poll period (also bounds deadline-reaping latency).
  double watchdog_poll_ms = 1.0;
  /// Construct stopped; call start() to launch workers + watchdog. Lets
  /// tests stage deterministic queue states before anything executes.
  bool defer_start = false;
};

class KnnServer {
 public:
  /// Compiles `dataset` into `workers` resident engines and (unless
  /// defer_start) launches the worker and watchdog threads.
  KnnServer(knn::BinaryDataset dataset, ServerOptions options = {});

  /// Drains: equivalent to drain().
  ~KnnServer();

  KnnServer(const KnnServer&) = delete;
  KnnServer& operator=(const KnnServer&) = delete;

  /// Launches workers + watchdog (no-op when already started).
  void start();

  /// Submits one query. Always returns a future that WILL resolve with
  /// exactly one Response — typed rejections (kOverloaded,
  /// kShuttingDown, kDeadlineExceeded at admission, kInvalidArgument)
  /// resolve immediately. `deadline_ms` <= 0 means unlimited budget.
  std::future<Response> submit(util::BitVector query, double deadline_ms = 0);

  /// submit() with a caller-built deadline (tests use this to stage
  /// already-expired budgets deterministically).
  std::future<Response> submit(util::BitVector query, util::Deadline deadline);

  /// Blocking convenience wrapper: submit + wait.
  Response search(util::BitVector query, double deadline_ms = 0);

  /// Graceful drain: admit nothing new, flush the queue through the
  /// batchers, resolve every in-flight request exactly once (finished,
  /// deadline-exceeded, or watchdog-failed), then join every thread.
  /// Idempotent; safe to call from any thread except a worker.
  void drain();

  /// True once drain() has begun (submissions resolve kShuttingDown).
  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Point-in-time health snapshot.
  ServerStats stats() const;

  std::size_t workers() const noexcept { return workers_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t k() const noexcept { return options_.k; }

 private:
  struct BatchTicket;
  struct Worker;

  void worker_loop(Worker& worker);
  void run_batch(Worker& worker, std::vector<RequestPtr> batch);
  void watchdog_loop();
  /// Resolves `request` exactly once (see request.hpp); returns true when
  /// this call won the resolution. Counting and the in-flight decrement
  /// happen only on the winning call.
  bool resolve(const RequestPtr& request, ResponseCode code,
               std::vector<knn::Neighbor> neighbors = {},
               bool expired_at_admission = false);

  ServerOptions options_;
  std::size_t dims_ = 0;
  RequestQueue queue_;
  StatsCollector stats_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread watchdog_;

  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> next_batch_seq_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> watchdog_stop_{false};

  /// Guards the drain wait (inflight_ -> 0) and serializes drain() itself.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool joined_ = false;
};

}  // namespace apss::serve
