#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>

namespace apss::serve {

Batcher::Batcher(RequestQueue& queue, std::size_t max_batch, double window_ms)
    : queue_(queue), max_batch_(max_batch), window_ms_(window_ms) {
  if (max_batch == 0) {
    throw std::invalid_argument("Batcher: max_batch must be >= 1");
  }
}

std::vector<RequestPtr> Batcher::next_batch() {
  std::vector<RequestPtr> batch;
  RequestPtr first = queue_.pop_blocking();
  if (first == nullptr) {
    return batch;  // closed and drained
  }
  batch.reserve(max_batch_);
  batch.push_back(std::move(first));
  // The window opens when the first request is taken, not when it was
  // submitted: a request that waited queued behind earlier batches must
  // not have its batch cut short for it.
  const auto flush_at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              window_ms_ > 0 ? window_ms_ : 0));
  while (batch.size() < max_batch_) {
    RequestPtr next = queue_.pop_until(flush_at);
    if (next == nullptr) {
      break;  // window elapsed, or queue closed and drained
    }
    batch.push_back(std::move(next));
  }
  return batch;
}

}  // namespace apss::serve
