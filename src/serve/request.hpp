#pragma once
// Request/response types of the kNN serving core (docs/ROBUSTNESS.md
// "Serving").
//
// A request travels: submit() -> admission -> bounded queue -> batcher ->
// worker batch -> resolution. Resolution is EXACTLY-ONCE and can come from
// three places — the worker that ran the batch, the watchdog (per-request
// deadline reaping, wedged-batch failure), or admission itself (typed
// rejection before any work is enqueued) — so the terminal transition is a
// single atomic exchange on RequestState::resolved; whoever wins it sets
// the promise, every later attempt is a no-op.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "knn/exact.hpp"
#include "util/bitvector.hpp"
#include "util/cancellation.hpp"

namespace apss::serve {

/// Terminal outcome of one request. Every submit() resolves with exactly
/// one of these; nothing is silently dropped.
enum class ResponseCode : std::uint8_t {
  kOk = 0,            ///< neighbors hold the exact top-k
  /// Shed at admission: the bounded queue or the in-flight cap was full.
  /// The typed alternative to unbounded queue growth — callers retry with
  /// backoff or route elsewhere.
  kOverloaded,
  kShuttingDown,      ///< rejected: the server is draining or stopped
  /// The request's deadline expired — at admission (fast path, before any
  /// simulator work), while queued, or while its batch was running.
  kDeadlineExceeded,
  kCancelled,         ///< the server hard-stopped while the request was in flight
  /// An injected fault, an engine failure that survived degradation, or a
  /// wedged batch the watchdog failed.
  kInternal,
  kInvalidArgument,   ///< malformed query (dimensionality mismatch, empty)
};

const char* to_string(ResponseCode code) noexcept;

struct Response {
  ResponseCode code = ResponseCode::kInternal;
  /// Ascending-(distance, id) exact neighbors; empty unless kOk.
  std::vector<knn::Neighbor> neighbors;
  /// Admission -> batch-execution start (equals total_ms for requests that
  /// never reached a batch).
  double queue_ms = 0;
  /// Admission -> resolution.
  double total_ms = 0;
  /// Sequence number of the batch that served (or failed) this request;
  /// 0 when the request never joined a batch.
  std::uint64_t batch_seq = 0;
  /// Number of live requests coalesced into that batch.
  std::size_t batch_size = 0;

  bool ok() const noexcept { return code == ResponseCode::kOk; }
};

/// One in-flight request. Owned by a shared_ptr because the queue, the
/// executing worker, and the watchdog may all hold it concurrently.
struct RequestState {
  std::uint64_t id = 0;
  util::BitVector query;
  util::Deadline deadline;  ///< unset = unlimited budget
  std::chrono::steady_clock::time_point submitted_at{};
  /// Set when the request's batch starts executing (steady clock; epoch
  /// value means "never batched").
  std::chrono::steady_clock::time_point batch_started_at{};
  std::uint64_t batch_seq = 0;
  std::size_t batch_size = 0;
  /// True once the request passed admission (counts toward in-flight).
  bool admitted = false;
  /// Exactly-once resolution guard; see file comment.
  std::atomic<bool> resolved{false};
  std::promise<Response> promise;
};

using RequestPtr = std::shared_ptr<RequestState>;

}  // namespace apss::serve
