#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/fault_injection.hpp"

namespace apss::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

/// Everything the watchdog needs to judge (and fail) one executing batch.
/// Shared between the owning worker and the watchdog: the worker publishes
/// it before touching the engine and retires it after resolution, so the
/// watchdog always sees either nothing or a fully formed ticket.
struct KnnServer::BatchTicket {
  Clock::time_point started;
  std::uint64_t seq = 0;
  util::CancellationToken cancel;
  /// Set by whichever side declares the batch wedged first.
  std::atomic<bool> wedged{false};
  std::vector<RequestPtr> requests;
};

struct KnnServer::Worker {
  std::size_t index = 0;
  std::unique_ptr<core::ApKnnEngine> engine;
  std::unique_ptr<Batcher> batcher;
  std::thread thread;
  /// Current batch, shared with the watchdog (null while idle).
  std::mutex ticket_mutex;
  std::shared_ptr<BatchTicket> ticket;
};

KnnServer::KnnServer(knn::BinaryDataset dataset, ServerOptions options)
    : options_(std::move(options)),
      dims_(dataset.dims()),
      queue_(options_.max_queue_depth),
      stats_(options_.max_batch) {
  if (dataset.empty()) {
    throw std::invalid_argument("KnnServer: dataset must be non-empty");
  }
  if (options_.k == 0) {
    throw std::invalid_argument("KnnServer: k must be >= 1");
  }
  if (options_.max_batch == 0 || options_.max_inflight == 0 ||
      options_.workers == 0) {
    throw std::invalid_argument(
        "KnnServer: max_batch, max_inflight and workers must be >= 1");
  }
  // The serving core owns the robustness knobs: per-request deadlines and
  // the watchdog replace the engine-level budget/token, and kRetry makes a
  // faulted shard degrade to the cycle-accurate reference (exact answers)
  // before the batch is failed.
  core::EngineOptions engine_options = options_.engine;
  engine_options.deadline_ms = 0;
  engine_options.cancel = nullptr;
  engine_options.on_error = core::OnError::kRetry;
  engine_options.collect_report_stream = false;
  // Workers are constructed sequentially, so with artifact_cache_dir set
  // the first engine warms the cache and the rest load from it.
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->engine =
        std::make_unique<core::ApKnnEngine>(dataset, engine_options);
    worker->batcher = std::make_unique<Batcher>(queue_, options_.max_batch,
                                                options_.batch_window_ms);
    workers_.push_back(std::move(worker));
  }
  if (!options_.defer_start) {
    start();
  }
}

KnnServer::~KnnServer() { drain(); }

void KnnServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return;
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

std::future<Response> KnnServer::submit(util::BitVector query,
                                        double deadline_ms) {
  return submit(std::move(query), deadline_ms > 0
                                      ? util::Deadline::after_ms(deadline_ms)
                                      : util::Deadline{});
}

std::future<Response> KnnServer::submit(util::BitVector query,
                                        util::Deadline deadline) {
  auto request = std::make_shared<RequestState>();
  request->id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  request->submitted_at = Clock::now();
  request->deadline = deadline;
  request->query = std::move(query);
  std::future<Response> future = request->promise.get_future();
  stats_.count_submitted();

  if (request->query.size() != dims_) {
    resolve(request, ResponseCode::kInvalidArgument);
    return future;
  }
  if (draining_.load(std::memory_order_acquire)) {
    resolve(request, ResponseCode::kShuttingDown);
    return future;
  }
  try {
    util::FaultInjector::check(util::kFaultServeAdmit,
                               static_cast<std::int64_t>(request->id));
  } catch (const util::InjectedFault&) {
    resolve(request, ResponseCode::kInternal);
    return future;
  }
  // Fast path for a budget that is already gone at submit time: resolve
  // kDeadlineExceeded here, BEFORE any simulator work is enqueued, instead
  // of burning a queue slot and a batch lane on a dead request.
  if (request->deadline.expired()) {
    resolve(request, ResponseCode::kDeadlineExceeded, {},
            /*expired_at_admission=*/true);
    return future;
  }
  if (inflight_.load(std::memory_order_acquire) >= options_.max_inflight) {
    resolve(request, ResponseCode::kOverloaded);
    return future;
  }
  // Count the request in flight before it becomes poppable — a worker may
  // pop and resolve (decrement) it the instant push() returns.
  request->admitted = true;
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  switch (queue_.push(request)) {
    case RequestQueue::PushResult::kAdmitted:
      stats_.count_admitted();
      break;
    case RequestQueue::PushResult::kFull:
      resolve(request, ResponseCode::kOverloaded);
      break;
    case RequestQueue::PushResult::kClosed:
      resolve(request, ResponseCode::kShuttingDown);
      break;
  }
  return future;
}

Response KnnServer::search(util::BitVector query, double deadline_ms) {
  return submit(std::move(query), deadline_ms).get();
}

ServerStats KnnServer::stats() const {
  return stats_.snapshot(queue_.depth(), queue_.high_water(),
                         inflight_.load(std::memory_order_acquire));
}

bool KnnServer::resolve(const RequestPtr& request, ResponseCode code,
                        std::vector<knn::Neighbor> neighbors,
                        bool expired_at_admission) {
  if (request->resolved.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  const auto now = Clock::now();
  Response response;
  response.code = code;
  response.neighbors = std::move(neighbors);
  response.total_ms = ms_between(request->submitted_at, now);
  response.queue_ms =
      request->batch_started_at == Clock::time_point{}
          ? response.total_ms
          : ms_between(request->submitted_at, request->batch_started_at);
  response.batch_seq = request->batch_seq;
  response.batch_size = request->batch_size;
  stats_.count_resolved(code, expired_at_admission);
  if (request->admitted) {
    // Publish the decrement under the drain mutex so a drain() waiter
    // cannot check the predicate between our decrement and notify.
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
  }
  request->promise.set_value(std::move(response));
  return true;
}

void KnnServer::worker_loop(Worker& worker) {
  for (;;) {
    std::vector<RequestPtr> batch = worker.batcher->next_batch();
    if (batch.empty()) {
      return;  // queue closed and drained
    }
    run_batch(worker, std::move(batch));
  }
}

void KnnServer::run_batch(Worker& worker, std::vector<RequestPtr> batch) {
  // Sweep requests whose budget expired while queued; survivors form the
  // live frame. (The watchdog also reaps the queue, so this mostly catches
  // expiries between the reap and the pop.)
  std::vector<RequestPtr> live;
  live.reserve(batch.size());
  for (RequestPtr& request : batch) {
    if (request->deadline.expired()) {
      resolve(request, ResponseCode::kDeadlineExceeded);
    } else if (!request->resolved.load(std::memory_order_acquire)) {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) {
    return;
  }

  auto ticket = std::make_shared<BatchTicket>();
  ticket->started = Clock::now();
  ticket->seq = next_batch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  ticket->requests = live;
  for (const RequestPtr& request : live) {
    request->batch_started_at = ticket->started;
    request->batch_seq = ticket->seq;
    request->batch_size = live.size();
  }
  {
    std::lock_guard<std::mutex> lock(worker.ticket_mutex);
    worker.ticket = ticket;
  }
  // Whatever happens below, the ticket is retired before this frame
  // returns so the watchdog never judges a finished batch.
  struct TicketGuard {
    Worker& worker;
    ~TicketGuard() {
      std::lock_guard<std::mutex> lock(worker.ticket_mutex);
      worker.ticket = nullptr;
    }
  } ticket_guard{worker};

  // The frame's budget is the LATEST member deadline: the frame stays
  // useful until its last request's budget is gone. Earlier per-request
  // expiries are reaped by the watchdog while the frame runs.
  util::Deadline frame_deadline = live[0]->deadline;
  for (std::size_t i = 1; i < live.size(); ++i) {
    frame_deadline = util::Deadline::latest(frame_deadline, live[i]->deadline);
  }

  ResponseCode failure = ResponseCode::kInternal;
  std::vector<std::vector<knn::Neighbor>> results;
  bool complete = false;
  bool degraded = false;
  try {
    util::FaultInjector::check(util::kFaultServeBatch,
                               static_cast<std::int64_t>(ticket->seq));
    knn::BinaryDataset queries(live.size(), dims_);
    for (std::size_t i = 0; i < live.size(); ++i) {
      queries.set_vector(i, live[i]->query);
    }
    core::SearchControl control;
    control.deadline = &frame_deadline;
    control.cancel = &ticket->cancel;
    results = worker.engine->search(queries, options_.k, control);
    // kRetry never throws for shard failures — judge the statuses. A batch
    // is only kOk when EVERY configuration survived; anything less would
    // rank neighbors against a silently partial candidate set.
    const core::EngineStats& engine_stats = worker.engine->last_stats();
    const std::size_t survivors = engine_stats.surviving_configurations();
    if (survivors == worker.engine->configurations()) {
      complete = true;
      degraded =
          engine_stats.count_state(core::ShardState::kDegraded) > 0;
    } else if (engine_stats.count_state(core::ShardState::kTimedOut) > 0) {
      failure = ResponseCode::kDeadlineExceeded;
    } else {
      // kCancelled (watchdog fired) and kFailed both land here: the
      // watchdog already resolved the requests kInternal in the former
      // case, so our resolution attempts below are no-ops.
      failure = ResponseCode::kInternal;
    }
  } catch (const util::DeadlineExceeded&) {
    failure = ResponseCode::kDeadlineExceeded;
  } catch (const std::exception&) {
    failure = ResponseCode::kInternal;
  }

  stats_.count_batch(live.size(), degraded);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!complete) {
      resolve(live[i], failure);
    } else if (live[i]->deadline.expired()) {
      // The frame outlived this member's budget; its batch-mates still get
      // their bit-identical results below.
      resolve(live[i], ResponseCode::kDeadlineExceeded);
    } else {
      resolve(live[i], ResponseCode::kOk, std::move(results[i]));
    }
  }
}

void KnnServer::watchdog_loop() {
  const auto poll = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::max(options_.watchdog_poll_ms, 0.1)));
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    // Reap queued requests whose budget expired while waiting: they must
    // not occupy a batch lane just to be discarded.
    for (const RequestPtr& request : queue_.take_expired()) {
      resolve(request, ResponseCode::kDeadlineExceeded);
    }
    const auto now = Clock::now();
    for (auto& worker : workers_) {
      std::shared_ptr<BatchTicket> ticket;
      {
        std::lock_guard<std::mutex> lock(worker->ticket_mutex);
        ticket = worker->ticket;
      }
      if (ticket == nullptr) {
        continue;
      }
      // Per-request deadline propagation at watchdog granularity: a member
      // whose budget expires mid-frame resolves NOW, not when the frame
      // ends — a slow shard cannot hold the whole batch hostage.
      for (const RequestPtr& request : ticket->requests) {
        if (request->deadline.expired()) {
          resolve(request, ResponseCode::kDeadlineExceeded);
        }
      }
      if (options_.watchdog_timeout_ms > 0 &&
          ms_between(ticket->started, now) > options_.watchdog_timeout_ms &&
          !ticket->wedged.exchange(true, std::memory_order_acq_rel)) {
        // Wedged: fail the batch's remaining requests and fire its token
        // so the worker unwinds at the next cooperative checkpoint. The
        // server stays up — the worker takes a fresh ticket (and token)
        // for its next batch.
        stats_.count_watchdog_fired();
        for (const RequestPtr& request : ticket->requests) {
          resolve(request, ResponseCode::kInternal);
        }
        ticket->cancel.request_cancel();
      }
    }
  }
}

void KnnServer::drain() {
  draining_.store(true, std::memory_order_release);
  queue_.close();
  if (!started_.load(std::memory_order_acquire)) {
    // Never started: resolve whatever was staged in the queue ourselves —
    // there are no workers to flush it through.
    for (;;) {
      RequestPtr request = queue_.pop_until(Clock::now());
      if (request == nullptr) {
        break;
      }
      resolve(request, request->deadline.expired()
                           ? ResponseCode::kDeadlineExceeded
                           : ResponseCode::kShuttingDown);
    }
  }
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [&] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
    if (joined_) {
      return;
    }
    joined_ = true;
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

}  // namespace apss::serve
