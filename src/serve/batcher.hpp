#pragma once
// Dynamic batching policy of the serving core (docs/ROBUSTNESS.md
// "Serving").
//
// Concurrent queries are coalesced into shared query frames — the
// data-parallel argument of Sin'ya & Matsuzaki (PAPERS.md): one pass of a
// compiled configuration amortizes over every query riding the frame. The
// flush rule is the classic latency/throughput trade: a batch closes on
// whichever comes first of
//   - max_batch requests collected, or
//   - batch_window_ms elapsed since the FIRST request was taken
// so an idle server adds at most one window of latency to a lone request,
// while a saturated server runs full frames back to back. A closed
// (draining) queue flushes immediately — partial batches never wait out
// the window during shutdown.

#include <cstddef>
#include <vector>

#include "serve/request_queue.hpp"

namespace apss::serve {

class Batcher {
 public:
  /// `max_batch` >= 1; `window_ms` <= 0 disables the wait (every batch is
  /// whatever is instantaneously available, at least one request).
  Batcher(RequestQueue& queue, std::size_t max_batch, double window_ms);

  /// Blocks for the next batch (>= 1 request). Returns an empty vector
  /// once the queue is closed and drained — the worker's exit signal.
  std::vector<RequestPtr> next_batch();

  std::size_t max_batch() const noexcept { return max_batch_; }

 private:
  RequestQueue& queue_;
  const std::size_t max_batch_;
  const double window_ms_;
};

}  // namespace apss::serve
