#include "serve/stats.hpp"

#include <ostream>

namespace apss::serve {

const char* to_string(ResponseCode code) noexcept {
  switch (code) {
    case ResponseCode::kOk:
      return "ok";
    case ResponseCode::kOverloaded:
      return "overloaded";
    case ResponseCode::kShuttingDown:
      return "shutting-down";
    case ResponseCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ResponseCode::kCancelled:
      return "cancelled";
    case ResponseCode::kInternal:
      return "internal";
    case ResponseCode::kInvalidArgument:
      return "invalid-argument";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const ServerStats& stats) {
  os << "serve: submitted " << stats.submitted << ", admitted "
     << stats.admitted << ", ok " << stats.ok << "\n"
     << "serve: shed " << stats.rejected_overload << " overloaded, "
     << stats.rejected_shutdown << " shutting-down, "
     << stats.rejected_invalid << " invalid\n"
     << "serve: deadline-exceeded " << stats.deadline_exceeded << " ("
     << stats.expired_at_admission << " at admission), cancelled "
     << stats.cancelled << ", internal " << stats.internal_errors << "\n"
     << "serve: batches " << stats.batches << " (mean occupancy "
     << stats.mean_batch_occupancy() << ", degraded "
     << stats.degraded_batches << ", watchdog " << stats.watchdog_fired
     << ")\n"
     << "serve: queue depth " << stats.queue_depth << " (high water "
     << stats.queue_high_water << "), inflight " << stats.inflight;
  return os;
}

StatsCollector::StatsCollector(std::size_t max_batch) {
  stats_.batch_occupancy.assign(max_batch, 0);
}

void StatsCollector::count_submitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.submitted;
}

void StatsCollector::count_admitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.admitted;
}

void StatsCollector::count_resolved(ResponseCode code,
                                    bool expired_at_admission) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (code) {
    case ResponseCode::kOk:
      ++stats_.ok;
      break;
    case ResponseCode::kOverloaded:
      ++stats_.rejected_overload;
      break;
    case ResponseCode::kShuttingDown:
      ++stats_.rejected_shutdown;
      break;
    case ResponseCode::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      stats_.expired_at_admission += expired_at_admission;
      break;
    case ResponseCode::kCancelled:
      ++stats_.cancelled;
      break;
    case ResponseCode::kInternal:
      ++stats_.internal_errors;
      break;
    case ResponseCode::kInvalidArgument:
      ++stats_.rejected_invalid;
      break;
  }
}

void StatsCollector::count_batch(std::size_t live_requests, bool degraded) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.batches;
  stats_.batched_requests += live_requests;
  stats_.degraded_batches += degraded;
  if (live_requests > 0 && live_requests <= stats_.batch_occupancy.size()) {
    ++stats_.batch_occupancy[live_requests - 1];
  }
}

void StatsCollector::count_watchdog_fired() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.watchdog_fired;
}

ServerStats StatsCollector::snapshot(std::size_t queue_depth,
                                     std::size_t queue_high_water,
                                     std::size_t inflight) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = stats_;
  out.queue_depth = queue_depth;
  out.queue_high_water = queue_high_water;
  out.inflight = inflight;
  return out;
}

}  // namespace apss::serve
