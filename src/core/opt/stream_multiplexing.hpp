#pragma once
// Symbol-stream multiplexing (Sec. VI-B, Fig. 6): the 8-bit symbol stream
// carries one query bit per BIT SLICE, so up to 7 queries ride one stream
// (bit 7 is reserved to distinguish control symbols). Each dataset vector
// gets one macro per active slice whose matching states perform the ternary
// match 0b*......b on their slice — the TCAM-style encoding of the paper.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anml/network.hpp"
#include "core/engine.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "knn/exact.hpp"

namespace apss::core {

inline constexpr std::size_t kMaxSlices = 7;

/// Report-code packing for multiplexed designs: code = vector_id * 8 + slice.
struct MuxReportCode {
  static std::uint32_t encode(std::uint32_t vector_id, std::size_t slice) {
    return vector_id * 8 + static_cast<std::uint32_t>(slice);
  }
  static std::uint32_t vector_id(std::uint32_t code) { return code / 8; }
  static std::size_t slice(std::uint32_t code) { return code % 8; }
};

/// Builds macros for every dataset vector replicated across `slices` bit
/// slices (Fig. 6: "NFA STEs are replicated and encoded to discriminate
/// among different bit slices"). Returns one layout per (vector, slice),
/// vector-major.
std::vector<MacroLayout> build_multiplexed_network(
    anml::AutomataNetwork& network, const knn::BinaryDataset& data,
    std::size_t slices, const HammingMacroOptions& base_options = {});

/// Encodes up to 7 parallel queries (rows of `queries`, all with the macro
/// dimensionality) into ONE multiplexed frame per query group.
class MultiplexedStreamEncoder {
 public:
  explicit MultiplexedStreamEncoder(StreamSpec spec) : spec_(spec) {}

  /// One frame carrying rows [begin, begin+count) of `queries` in slices
  /// 0..count-1. count must be 1..7.
  std::vector<std::uint8_t> encode_group(const knn::BinaryDataset& queries,
                                         std::size_t begin,
                                         std::size_t count) const;

  /// Encodes a whole query set, 7 per frame; returns the stream and the
  /// number of frames.
  std::vector<std::uint8_t> encode_batch(const knn::BinaryDataset& queries,
                                         std::size_t& frames_out) const;

  const StreamSpec& spec() const noexcept { return spec_; }

 private:
  StreamSpec spec_;
};

/// Fault-tolerance knobs for MultiplexedKnn::search (docs/ROBUSTNESS.md) —
/// the multiplexed mirror of the EngineOptions deadline/on_error fields.
/// Isolation granularity is the query FRAME (up to 7 queries): a frame that
/// fails under OnError::kIsolate/kRetry is skipped and its queries return
/// empty neighbor lists while every surviving frame demuxes bit-identically.
struct MuxSearchOptions {
  /// Wall-clock budget for one search() in ms (0 = unlimited), polled at
  /// frame boundaries.
  double deadline_ms = 0;
  /// Optional external cancellation; must outlive the search.
  const util::CancellationToken* cancel = nullptr;
  OnError on_error = OnError::kFailFast;
  /// kRetry only: extra attempts per frame before the degrade/fail path.
  std::size_t max_retries = 2;
};

/// End-to-end multiplexed kNN on one board configuration: builds the
/// slice-replicated network, streams 7 queries per frame, and demuxes
/// reports back to per-query neighbor lists. Used by tests and the Fig. 6
/// bench to demonstrate the 7x query-throughput improvement.
///
/// Invariants: the dataset is non-empty, 1 <= slices <= kMaxSlices, and
/// every macro shares one StreamSpec (uniform collector depth).
class MultiplexedKnn {
 public:
  /// Builds the slice-replicated network. With backend == kBitParallel the
  /// network is additionally compiled for apsim::BatchSimulator (the
  /// multiplexed shape always compiles under stock device features); if
  /// compilation declines, search() falls back to the cycle-accurate
  /// simulator, exactly like core::ApKnnEngine. A non-empty
  /// `artifact_cache_dir` (kBitParallel only) loads the compiled program
  /// from its cache slot when a valid artifact is present — skipping the
  /// verification compile — and compiles + saves otherwise; the outcome is
  /// reported by artifact_outcome().
  /// `lane_width` picks the bit-parallel execution width (kAuto = widest
  /// the CPU + build support); any width yields bit-identical results.
  MultiplexedKnn(knn::BinaryDataset data, std::size_t slices = kMaxSlices,
                 HammingMacroOptions options = {},
                 SimulationBackend backend = SimulationBackend::kCycleAccurate,
                 std::string artifact_cache_dir = {},
                 apsim::LaneWidth lane_width = apsim::LaneWidth::kAuto);

  /// Exact kNN for all rows of `queries`, `slices` queries per frame.
  /// Returns ascending-distance neighbor lists of dataset vector ids.
  ///
  /// Frames are independent (every frame resets the automata), so with a
  /// `pool` they run as frame-range shards across the workers, each shard
  /// owning its own simulator scratch; shard buffers merge in frame order,
  /// so results are bit-identical at any thread count. When
  /// `merged_events` is non-null it receives the merged ReportEvent
  /// stream, rebased to the full query-stream timeline — the same
  /// differential contract as ApKnnEngine::last_report_stream().
  std::vector<std::vector<knn::Neighbor>> search(
      const knn::BinaryDataset& queries, std::size_t k,
      util::ThreadPool* pool = nullptr,
      std::vector<apsim::ReportEvent>* merged_events = nullptr) const;

  /// Fault-tolerant search: like the overload above plus a deadline,
  /// cooperative cancellation, and a per-FRAME failure policy. With
  /// `frame_status` non-null it receives one ShardStatus per query frame
  /// (all kOk on a healthy run; under kFailFast failures throw instead and
  /// the statuses of already-run frames stay kOk). A bit-parallel frame
  /// that fails is re-attempted on the cycle-accurate reference
  /// (kDegraded, bit-identical events) before it is declared kFailed.
  std::vector<std::vector<knn::Neighbor>> search(
      const knn::BinaryDataset& queries, std::size_t k, util::ThreadPool* pool,
      std::vector<apsim::ReportEvent>* merged_events,
      const MuxSearchOptions& options,
      std::vector<ShardStatus>* frame_status = nullptr) const;

  const anml::AutomataNetwork& network() const noexcept { return network_; }
  std::size_t slices() const noexcept { return slices_; }
  const StreamSpec& spec() const noexcept { return spec_; }
  /// True when search() runs on the bit-parallel batch backend.
  bool bit_parallel() const noexcept { return program_ != nullptr; }
  /// Why try_compile declined when a kBitParallel request fell back to the
  /// cycle-accurate simulator (empty otherwise) — fallbacks stay visible.
  const std::string& fallback_reason() const noexcept {
    return fallback_reason_;
  }

  /// What the compile cache did at construction (kDisabled without a cache
  /// directory; see core/artifact_cache.hpp).
  ArtifactOutcome artifact_outcome() const noexcept {
    return artifact_outcome_;
  }
  /// Why a cached artifact was rejected (empty unless kInvalidated).
  const std::string& artifact_detail() const noexcept {
    return artifact_detail_;
  }

  /// Compile-input key a cached artifact must match for this design.
  std::uint64_t artifact_key() const;

  /// Frames (and thus cycles) needed for `q` queries: ceil(q / slices) vs
  /// q for the base design — the throughput gain of Sec. VI-B.
  std::size_t frames_for(std::size_t q) const {
    return (q + slices_ - 1) / slices_;
  }

 private:
  knn::BinaryDataset data_;
  std::size_t slices_;
  StreamSpec spec_;
  anml::AutomataNetwork network_;
  /// Compiled bit-parallel program; null = use the cycle-accurate path.
  std::shared_ptr<const apsim::BatchProgram> program_;
  apsim::LaneWidth lane_width_ = apsim::LaneWidth::kAuto;
  std::string fallback_reason_;
  HammingMacroOptions macro_options_;
  ArtifactOutcome artifact_outcome_ = ArtifactOutcome::kDisabled;
  std::string artifact_detail_;
};

}  // namespace apss::core
