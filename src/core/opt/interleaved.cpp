#include "core/opt/interleaved.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "apsim/simulator.hpp"

namespace apss::core {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

InterleavedMacroLayout append_interleaved_macro(
    AutomataNetwork& network, const util::BitVector& vec,
    std::uint32_t report_code, const HammingMacroOptions& options) {
  const std::size_t dims = vec.size();
  if (dims < 2) {
    throw std::invalid_argument("interleaved macro: dims must be >= 2");
  }
  if (collector_levels_for(dims, options) != 1) {
    throw std::invalid_argument(
        "interleaved macro: requires a single collector level (raise "
        "collector_fan_in / max_counter_fan_in)");
  }

  InterleavedMacroLayout layout;
  for (std::size_t parity = 0; parity < 2; ++parity) {
    const std::string prefix = "il" + std::to_string(report_code) +
                               (parity == 0 ? "A." : "B.");
    const std::uint8_t sof = InterleavedAlphabet::sof(parity);

    const ElementId guard = network.add_ste(SymbolSet::single(sof),
                                            StartKind::kAllInput,
                                            prefix + "guard");
    const ElementId counter = network.add_counter(
        static_cast<std::uint32_t>(dims), anml::CounterMode::kPulse,
        prefix + "ihd");
    // The guard both launches the compute wave and re-arms the counter for
    // this half's next query (replacing the base design's EOF state).
    network.connect(guard, counter, CounterPort::kReset);

    ElementId prev = guard;
    std::vector<ElementId> matches;
    matches.reserve(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      const ElementId star =
          network.add_ste(SymbolSet::all(), StartKind::kNone,
                          prefix + "chain" + std::to_string(i));
      const auto mask = static_cast<std::uint8_t>(
          Alphabet::kControlFlag | (1u << options.bit_slice));
      const auto value = static_cast<std::uint8_t>(
          vec.get(i) ? (1u << options.bit_slice) : 0u);
      const ElementId m =
          network.add_ste(SymbolSet::ternary(value, mask), StartKind::kNone,
                          prefix + "match" + std::to_string(i));
      network.connect(prev, star);
      network.connect(prev, m);
      matches.push_back(m);
      prev = star;
    }

    const std::size_t groups = ceil_div(dims, options.collector_fan_in);
    for (std::size_t g = 0; g < groups; ++g) {
      const ElementId col = network.add_ste(
          SymbolSet::all(), StartKind::kNone,
          prefix + "col" + std::to_string(g));
      const std::size_t lo = g * options.collector_fan_in;
      const std::size_t hi = std::min(dims, lo + options.collector_fan_in);
      for (std::size_t i = lo; i < hi; ++i) {
        network.connect(matches[i], col);
      }
      network.connect(col, counter, CounterPort::kCountEnable);
    }

    // Bridge + sort: the sort state survives every symbol except this
    // half's own SOF, so the NEXT frame's data doubles as fill symbols.
    const ElementId bridge = network.add_ste(SymbolSet::all(),
                                             StartKind::kNone,
                                             prefix + "bridge");
    network.connect(prev, bridge);
    const ElementId sort_state = network.add_ste(
        SymbolSet::all_except(sof), StartKind::kNone, prefix + "sort");
    network.connect(bridge, sort_state);
    network.connect(sort_state, sort_state);
    network.connect(sort_state, counter, CounterPort::kCountEnable);

    const ElementId report = network.add_reporting_ste(
        SymbolSet::all(), report_code, prefix + "report");
    network.connect(counter, report);

    layout.guard[parity] = guard;
    layout.counter[parity] = counter;
    layout.report[parity] = report;
  }
  return layout;
}

std::vector<std::uint8_t> encode_interleaved_batch(
    const knn::BinaryDataset& queries) {
  if (queries.empty()) {
    throw std::invalid_argument("encode_interleaved_batch: no queries");
  }
  const std::size_t dims = queries.dims();
  const InterleavedSpec spec{dims};
  std::vector<std::uint8_t> out;
  out.reserve(spec.stream_length(queries.size()));
  for (std::size_t j = 0; j < queries.size(); ++j) {
    out.push_back(InterleavedAlphabet::sof(j));
    for (std::size_t i = 0; i < dims; ++i) {
      out.push_back(Alphabet::data_bit(queries.get(j, i)));
    }
  }
  // Flush frame: the next parity marker plus fills to drive the final
  // query's sort, and two settle cycles for its report to land.
  out.push_back(InterleavedAlphabet::sof(queries.size()));
  for (std::size_t i = 0; i < dims + 2; ++i) {
    out.push_back(Alphabet::kFill);
  }
  return out;
}

std::vector<std::vector<knn::Neighbor>> interleaved_knn_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k) {
  if (data.empty() || queries.dims() != data.dims() || k == 0) {
    throw std::invalid_argument("interleaved_knn_search: bad arguments");
  }
  AutomataNetwork net("interleaved");
  for (std::size_t v = 0; v < data.size(); ++v) {
    append_interleaved_macro(net, data.vector(v),
                             static_cast<std::uint32_t>(v));
  }
  apsim::Simulator sim(net);
  const InterleavedSpec spec{data.dims()};
  const auto events = sim.run(encode_interleaved_batch(queries));

  std::vector<std::vector<knn::Neighbor>> results(queries.size());
  const std::size_t want = std::min(k, data.size());
  for (const apsim::ReportEvent& e : events) {
    const auto [query, distance] = spec.decode(e.cycle);
    if (query >= queries.size()) {
      throw std::logic_error("interleaved_knn_search: stray report");
    }
    auto& list = results[query];
    if (list.size() < want ||
        distance <= list.back().distance) {
      list.push_back({e.report_code, static_cast<std::uint32_t>(distance)});
    }
  }
  for (auto& list : results) {
    std::stable_sort(list.begin(), list.end());
    if (list.size() > want) {
      list.resize(want);
    }
  }
  return results;
}

}  // namespace apss::core
