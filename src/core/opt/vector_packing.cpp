#include "core/opt/vector_packing.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

namespace apss::core {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

SymbolSet value_symbols(bool bit, std::size_t slice) {
  const auto mask =
      static_cast<std::uint8_t>(Alphabet::kControlFlag | (1u << slice));
  const auto value = static_cast<std::uint8_t>(bit ? (1u << slice) : 0u);
  return SymbolSet::ternary(value, mask);
}

}  // namespace

PackedGroupLayout append_packed_group(AutomataNetwork& network,
                                      const knn::BinaryDataset& data,
                                      std::size_t begin, std::size_t count,
                                      const VectorPackingOptions& options) {
  if (count == 0 || begin + count > data.size()) {
    throw std::invalid_argument("append_packed_group: bad range");
  }
  const std::size_t dims = data.dims();
  if (dims == 0) {
    throw std::invalid_argument("append_packed_group: dims must be >= 1");
  }
  const std::string prefix = "g" + std::to_string(begin) + ".";

  PackedGroupLayout layout;
  layout.collector_levels =
      options.style == CollectorStyle::kFlat
          ? 1
          : collector_levels_for(dims, options.macro);

  // --- Shared guard + backbone chain ---------------------------------------
  layout.guard = network.add_ste(SymbolSet::single(Alphabet::kSof),
                                 StartKind::kAllInput, prefix + "guard");
  ElementId prev = layout.guard;
  layout.chain.reserve(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const ElementId star = network.add_ste(
        SymbolSet::all(), StartKind::kNone, prefix + "chain" + std::to_string(i));
    network.connect(prev, star);
    layout.chain.push_back(star);
    prev = star;
  }

  // --- The vector ladder: distinct value states per dimension ---------------
  // per_dim_value[i][b] = state matching bit value b at dim i (or invalid).
  std::vector<std::array<ElementId, 2>> per_dim_value(
      dims, {anml::kInvalidElement, anml::kInvalidElement});
  layout.value_states.resize(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const ElementId driver = i == 0 ? layout.guard : layout.chain[i - 1];
    for (int b = 0; b < 2; ++b) {
      bool needed = false;
      for (std::size_t v = 0; v < count && !needed; ++v) {
        needed = data.get(begin + v, i) == static_cast<bool>(b);
      }
      if (!needed) {
        continue;
      }
      const ElementId state = network.add_ste(
          value_symbols(b != 0, options.macro.bit_slice), StartKind::kNone,
          prefix + "val" + std::to_string(i) + "_" + std::to_string(b));
      network.connect(driver, state);
      per_dim_value[i][b] = state;
      layout.value_states[i].push_back(state);
    }
  }

  // --- Shared sorting machinery ---------------------------------------------
  ElementId tail = layout.chain.back();
  for (std::size_t i = 0; i < layout.collector_levels; ++i) {
    const ElementId b = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                        prefix + "bridge" + std::to_string(i));
    network.connect(tail, b);
    layout.bridge.push_back(b);
    tail = b;
  }
  layout.sort_state = network.add_ste(SymbolSet::all_except(Alphabet::kEof),
                                      StartKind::kNone, prefix + "sort");
  network.connect(tail, layout.sort_state);
  network.connect(layout.sort_state, layout.sort_state);
  layout.eof_state = network.add_ste(SymbolSet::single(Alphabet::kEof),
                                     StartKind::kNone, prefix + "eof");
  network.connect(layout.sort_state, layout.eof_state);

  // --- Per-vector collectors, counter, report -------------------------------
  for (std::size_t v = 0; v < count; ++v) {
    const std::uint32_t code = static_cast<std::uint32_t>(begin + v);
    const std::string vp = prefix + "v" + std::to_string(v) + ".";
    const ElementId counter = network.add_counter(
        static_cast<std::uint32_t>(dims), anml::CounterMode::kPulse,
        vp + "ihd");

    // Leaves along this vector's bit pattern.
    std::vector<ElementId> level(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      level[i] = per_dim_value[i][data.get(begin + v, i) ? 1 : 0];
    }

    std::vector<ElementId> group_collectors;
    if (options.style == CollectorStyle::kFlat) {
      const ElementId collector = network.add_ste(
          SymbolSet::all(), StartKind::kNone, vp + "col");
      for (const ElementId leaf : level) {
        network.connect(leaf, collector);
      }
      group_collectors.push_back(collector);
      network.connect(collector, counter, CounterPort::kCountEnable);
    } else {
      std::size_t level_index = 0;
      do {
        const std::size_t groups =
            ceil_div(level.size(), options.macro.collector_fan_in);
        std::vector<ElementId> next;
        next.reserve(groups);
        for (std::size_t g = 0; g < groups; ++g) {
          const ElementId node = network.add_ste(
              SymbolSet::all(), StartKind::kNone,
              vp + "col" + std::to_string(level_index) + "_" +
                  std::to_string(g));
          const std::size_t lo = g * options.macro.collector_fan_in;
          const std::size_t hi =
              std::min(level.size(), lo + options.macro.collector_fan_in);
          for (std::size_t i = lo; i < hi; ++i) {
            network.connect(level[i], node);
          }
          group_collectors.push_back(node);
          next.push_back(node);
        }
        level = std::move(next);
        ++level_index;
      } while (level.size() + 1 > options.macro.max_counter_fan_in);
      if (level_index != layout.collector_levels) {
        throw std::logic_error("append_packed_group: depth mismatch");
      }
      for (const ElementId root : level) {
        network.connect(root, counter, CounterPort::kCountEnable);
      }
    }

    network.connect(layout.sort_state, counter, CounterPort::kCountEnable);
    network.connect(layout.eof_state, counter, CounterPort::kReset);
    const ElementId report =
        network.add_reporting_ste(SymbolSet::all(), code, vp + "report");
    network.connect(counter, report);

    layout.counters.push_back(counter);
    layout.reports.push_back(report);
    layout.collectors.push_back(std::move(group_collectors));
  }
  return layout;
}

std::vector<PackedGroupLayout> build_packed_network(
    AutomataNetwork& network, const knn::BinaryDataset& data,
    const VectorPackingOptions& options) {
  if (options.group_size == 0) {
    throw std::invalid_argument("build_packed_network: group_size must be >= 1");
  }
  std::vector<PackedGroupLayout> layouts;
  for (std::size_t begin = 0; begin < data.size();
       begin += options.group_size) {
    const std::size_t count = std::min(options.group_size, data.size() - begin);
    layouts.push_back(append_packed_group(network, data, begin, count, options));
  }
  return layouts;
}

PackingSavings packing_savings(const knn::BinaryDataset& data,
                               const VectorPackingOptions& options) {
  PackingSavings s;
  {
    AutomataNetwork unpacked("unpacked");
    for (std::size_t i = 0; i < data.size(); ++i) {
      append_hamming_macro(unpacked, data.vector(i),
                           static_cast<std::uint32_t>(i), options.macro);
    }
    s.unpacked_stes = unpacked.stats().ste_count;
  }
  {
    AutomataNetwork packed("packed");
    build_packed_network(packed, data, options);
    s.packed_stes = packed.stats().ste_count;
  }
  return s;
}

}  // namespace apss::core
