#pragma once
// Statistical activation reduction (Sec. VI-C, Fig. 7): partition the
// vector macros into groups of p; a per-group Local Neighbor Counter (LNC)
// counts reporting-state activations and, at its threshold k', resets every
// inverted-Hamming-distance counter in the group — suppressing the
// remaining (less similar) activations. The host then merges the ~k' local
// results per group, cutting report bandwidth by ~p/k' at a small,
// statistically controlled risk of missing true top-k members.
//
// Two artifacts live here:
//  1. the automata construction (for semantic tests and the Fig. 7 bench);
//  2. the Monte Carlo accuracy model that regenerates Table VI.

#include <cstdint>
#include <span>
#include <vector>

#include "anml/network.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "util/thread_pool.hpp"

namespace apss::core {

/// Element ids of one reduction group: the p member macros plus the LNC
/// (pulse counter, threshold k') that resets the members' distance
/// counters once k' local reports have fired.
struct ReductionGroupLayout {
  std::vector<MacroLayout> macros;
  anml::ElementId local_neighbor_counter = anml::kInvalidElement;
};

/// Appends `count` macros (vectors begin..begin+count-1 of `data`) plus the
/// group's LNC with threshold `k_prime`. Report codes are global ids.
ReductionGroupLayout append_reduction_group(
    anml::AutomataNetwork& network, const knn::BinaryDataset& data,
    std::size_t begin, std::size_t count, std::uint32_t k_prime,
    const HammingMacroOptions& options = {});

// ---------------------------------------------------------------------------
// Table VI accuracy model
// ---------------------------------------------------------------------------

struct ReductionModelParams {
  std::size_t n = 1024;        ///< dataset vectors
  std::size_t dims = 64;       ///< workload dimensionality
  std::size_t group_size = 16; ///< p
  std::size_t k = 2;           ///< global neighbors wanted
  std::size_t k_prime = 1;     ///< local results kept per group
  std::size_t queries_per_run = 4096;  ///< a "run" batches this many queries
  std::size_t runs = 100;
  std::uint64_t seed = 1;
};

struct ReductionModelResult {
  /// Fraction of RUNS in which at least one query's global top-k could not
  /// be reconstructed from the local k' survivors (the paper's Table VI
  /// "percentage of incorrect results out of 100 randomized runs").
  double incorrect_run_fraction = 0.0;
  /// Fraction of individual queries that failed, across all runs.
  double incorrect_query_fraction = 0.0;
  /// Mean report events per query AFTER reduction (bandwidth proxy):
  /// ~k' x (n/p) instead of n.
  double mean_reports_per_query = 0.0;
};

/// Monte Carlo evaluation: per query, keep the k' smallest distances per
/// group, pool them, and compare the pooled top-k DISTANCE MULTISET against
/// the exact one (tie-aware: any id permutation within equal distances is
/// correct, matching what the temporal sort can guarantee).
ReductionModelResult evaluate_reduction_model(const ReductionModelParams& p,
                                              util::ThreadPool* pool = nullptr);

/// Sweeps several k' values over the SAME sampled datasets/queries, sharing
/// the distance computations (the Table VI bench evaluates k' = 1..4 per
/// workload; recomputing 100 x 4096 x n distances per k' would quadruple
/// the cost). p.k_prime is ignored; results align with `k_primes`.
std::vector<ReductionModelResult> evaluate_reduction_sweep(
    const ReductionModelParams& p, std::span<const std::size_t> k_primes,
    util::ThreadPool* pool = nullptr);

}  // namespace apss::core
