#include "core/opt/stream_multiplexing.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <system_error>

#include "anml/anml_io.hpp"
#include "apsim/batch_simulator.hpp"
#include "apsim/simulator.hpp"
#include "core/batch_compile.hpp"
#include "core/temporal_decode.hpp"
#include "util/fault_injection.hpp"
#include "util/fnv.hpp"

namespace apss::core {
namespace {

/// Cache builder tag (see kEngineBuilder in engine.cpp: the tag salts the
/// key so engine and multiplexed artifacts never satisfy each other).
constexpr std::string_view kMuxBuilder = "apss-mux-knn";

}  // namespace

std::vector<MacroLayout> build_multiplexed_network(
    anml::AutomataNetwork& network, const knn::BinaryDataset& data,
    std::size_t slices, const HammingMacroOptions& base_options) {
  if (slices == 0 || slices > kMaxSlices) {
    throw std::invalid_argument("build_multiplexed_network: slices must be 1..7");
  }
  std::vector<MacroLayout> layouts;
  layouts.reserve(data.size() * slices);
  for (std::size_t v = 0; v < data.size(); ++v) {
    for (std::size_t s = 0; s < slices; ++s) {
      HammingMacroOptions opt = base_options;
      opt.bit_slice = s;
      layouts.push_back(append_hamming_macro(
          network, data.vector(v),
          MuxReportCode::encode(static_cast<std::uint32_t>(v), s), opt));
    }
  }
  return layouts;
}

std::vector<std::uint8_t> MultiplexedStreamEncoder::encode_group(
    const knn::BinaryDataset& queries, std::size_t begin,
    std::size_t count) const {
  if (count == 0 || count > kMaxSlices) {
    throw std::invalid_argument("encode_group: count must be 1..7");
  }
  if (begin + count > queries.size()) {
    throw std::invalid_argument("encode_group: range out of bounds");
  }
  if (queries.dims() != spec_.dims) {
    throw std::invalid_argument("encode_group: query dims mismatch");
  }
  std::vector<std::uint8_t> out;
  out.reserve(spec_.cycles_per_query());
  out.push_back(Alphabet::kSof);
  for (std::size_t i = 0; i < spec_.dims; ++i) {
    std::uint8_t payload = 0;
    for (std::size_t s = 0; s < count; ++s) {
      if (queries.get(begin + s, i)) {
        payload |= static_cast<std::uint8_t>(1u << s);
      }
    }
    out.push_back(Alphabet::data(payload));
  }
  for (std::size_t i = 0; i < spec_.fill_symbols(); ++i) {
    out.push_back(Alphabet::kFill);
  }
  out.push_back(Alphabet::kEof);
  return out;
}

std::vector<std::uint8_t> MultiplexedStreamEncoder::encode_batch(
    const knn::BinaryDataset& queries, std::size_t& frames_out) const {
  std::vector<std::uint8_t> out;
  frames_out = 0;
  for (std::size_t begin = 0; begin < queries.size(); begin += kMaxSlices) {
    const std::size_t count = std::min(kMaxSlices, queries.size() - begin);
    const auto frame = encode_group(queries, begin, count);
    out.insert(out.end(), frame.begin(), frame.end());
    ++frames_out;
  }
  return out;
}

MultiplexedKnn::MultiplexedKnn(knn::BinaryDataset data, std::size_t slices,
                               HammingMacroOptions options,
                               SimulationBackend backend,
                               std::string artifact_cache_dir,
                               apsim::LaneWidth lane_width)
    : data_(std::move(data)),
      slices_(slices),
      network_("multiplexed"),
      lane_width_(lane_width),
      macro_options_(options) {
  if (data_.empty()) {
    throw std::invalid_argument("MultiplexedKnn: empty dataset");
  }
  spec_ = StreamSpec{data_.dims(),
                     collector_levels_for(data_.dims(), options)};
  const auto layouts =
      build_multiplexed_network(network_, data_, slices_, options);
  if (backend != SimulationBackend::kBitParallel) {
    return;
  }
  // Compile cache: the network itself is always built (it backs network()
  // and the cycle-accurate fallback); a hit skips the try_compile
  // verification pass over the slice-replicated design.
  const bool cache_enabled = !artifact_cache_dir.empty();
  std::string cache_file;
  if (cache_enabled) {
    std::error_code ec;
    std::filesystem::create_directories(artifact_cache_dir, ec);
    if (ec) {
      throw std::invalid_argument(
          "MultiplexedKnn: cannot create artifact cache directory " +
          artifact_cache_dir + ": " + ec.message());
    }
    cache_file = artifact_cache_path(artifact_cache_dir, kMuxBuilder, 0);
    CachedProgram cached = try_load_program(
        cache_file, artifact_key(), data_.size() * slices_, data_.dims());
    artifact_outcome_ = cached.outcome;
    artifact_detail_ = std::move(cached.detail);
    if (cached.outcome == ArtifactOutcome::kHit) {
      program_ = std::move(cached.program);
      return;
    }
  }
  program_ = compile_hamming_batch(network_, layouts, {}, &fallback_reason_);
  if (cache_enabled && program_ != nullptr) {
    artifact::ArtifactMeta meta;
    meta.key_hash = artifact_key();
    meta.network_digest = anml::network_digest(network_);
    meta.builder = std::string(kMuxBuilder);
    meta.network_name = network_.name();
    meta.network_elements = network_.size();
    meta.network_edges = network_.edges().size();
    meta.dataset_begin = 0;
    meta.dataset_count = data_.size();
    store_program(cache_file, meta, program_);
  }
}

std::uint64_t MultiplexedKnn::artifact_key() const {
  util::Fnv1a64 hasher;
  hasher.update_string(kMuxBuilder);
  hasher.update_u32(artifact::kFormatVersion);
  hasher.update_u64(slices_);
  hash_dataset_slice(hasher, data_, 0, data_.size());
  hash_macro_options(hasher, macro_options_);
  hash_sim_options(hasher, apsim::SimOptions{});
  return hasher.digest();
}

std::vector<std::vector<knn::Neighbor>> MultiplexedKnn::search(
    const knn::BinaryDataset& queries, std::size_t k, util::ThreadPool* pool,
    std::vector<apsim::ReportEvent>* merged_events) const {
  return search(queries, k, pool, merged_events, MuxSearchOptions{});
}

std::vector<std::vector<knn::Neighbor>> MultiplexedKnn::search(
    const knn::BinaryDataset& queries, std::size_t k, util::ThreadPool* pool,
    std::vector<apsim::ReportEvent>* merged_events,
    const MuxSearchOptions& options,
    std::vector<ShardStatus>* frame_status) const {
  if (queries.dims() != data_.dims()) {
    throw std::invalid_argument("MultiplexedKnn::search: dims mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("MultiplexedKnn::search: k must be >= 1");
  }
  const MultiplexedStreamEncoder encoder(spec_);
  const std::size_t frames = frames_for(queries.size());

  // Fault-tolerance plumbing mirrors ApKnnEngine::search with the FRAME as
  // the isolation unit (docs/ROBUSTNESS.md): the deadline/token are polled
  // at frame boundaries, the "mux.frame" fault site fires at each frame
  // attempt keyed by frame index (deterministic at any thread count), and
  // per-frame statuses are recorded lock-free into a pre-sized vector.
  util::Deadline deadline;
  if (options.deadline_ms > 0) {
    deadline = util::Deadline::after_ms(options.deadline_ms);
  }
  std::vector<ShardStatus> statuses(frames);

  // Frames reset the automata, so they simulate independently: per-frame
  // ReportEvent buffers, filled serially or by frame-range shards on the
  // pool. One simulator per shard on whichever backend compiled
  // (constructing the unused reference would pay a full validation pass
  // over the 7x-replicated network); run() per frame matches a fresh
  // simulator per frame.
  std::vector<std::vector<apsim::ReportEvent>> frame_events(frames);
  const auto run_frames = [&](std::size_t lo, std::size_t hi) {
    std::unique_ptr<apsim::Simulator> reference;
    std::unique_ptr<apsim::BatchSimulator> batch;
    const auto run_attempt = [&](std::size_t f, const util::RunControl& ctl,
                                 bool force_reference) {
      ctl.checkpoint();
      util::FaultInjector::check(util::kFaultMuxFrame, ctl.fault_key);
      const bool use_batch = program_ != nullptr && !force_reference;
      if (use_batch && batch == nullptr) {
        batch = std::make_unique<apsim::BatchSimulator>(program_, lane_width_);
      } else if (!use_batch && reference == nullptr) {
        reference = std::make_unique<apsim::Simulator>(network_);
      }
      const std::size_t begin = f * slices_;
      const std::size_t count = std::min(slices_, queries.size() - begin);
      const auto frame = encoder.encode_group(queries, begin, count);
      frame_events[f] =
          use_batch ? batch->run(frame, ctl) : reference->run(frame, ctl);
    };
    for (std::size_t f = lo; f < hi; ++f) {
      util::RunControl ctl;
      ctl.deadline = &deadline;
      ctl.cancel = options.cancel;
      ctl.checkpoint_period = spec_.cycles_per_query();
      ctl.fault_key = static_cast<std::int64_t>(f);
      if (options.on_error == OnError::kFailFast) {
        // Pre-fault-tolerance path, byte for byte: nothing caught, the
        // first failure unwinds through the pool's first-exception rethrow.
        run_attempt(f, ctl, /*force_reference=*/false);
        continue;
      }
      ShardStatus& out = statuses[f];
      std::size_t retries_left =
          options.on_error == OnError::kRetry ? options.max_retries : 0;
      bool degraded = false;
      for (;;) {
        try {
          run_attempt(f, ctl, /*force_reference=*/degraded);
          if (degraded) {
            out.state = ShardState::kDegraded;
          } else {
            out.state = ShardState::kOk;
            out.error.clear();  // recovered by a plain retry
          }
          break;
        } catch (const util::DeadlineExceeded& e) {
          out.state = ShardState::kTimedOut;
          if (out.error.empty()) {
            out.error = e.what();
          }
          break;
        } catch (const util::OperationCancelled& e) {
          out.state = ShardState::kCancelled;
          if (out.error.empty()) {
            out.error = e.what();
          }
          break;
        } catch (const std::exception& e) {
          if (out.error.empty()) {
            out.error = e.what();
          }
          // A failed attempt may leave a simulator mid-stream; rebuild.
          batch.reset();
          reference.reset();
          if (retries_left > 0) {
            --retries_left;
            ++out.retries;
            continue;
          }
          if (!degraded && program_ != nullptr) {
            degraded = true;
            ++out.retries;
            continue;
          }
          out.state = ShardState::kFailed;
          break;
        }
      }
    }
  };
  if (pool != nullptr && frames > 1) {
    // Few large shards: the per-shard simulator amortizes over many frames.
    const std::size_t runners = pool->size() + 1;
    const std::size_t grain =
        std::max<std::size_t>(1, (frames + 2 * runners - 1) / (2 * runners));
    pool->parallel_for_chunks(0, frames, run_frames, grain);
  } else {
    run_frames(0, frames);
  }

  // Merge in frame order on this thread — bit-identical demux and event
  // stream at any thread count. Frames that did not survive are skipped
  // wholesale: their queries return empty lists, every surviving frame
  // demuxes exactly as it would in an uninjected run.
  if (merged_events != nullptr) {
    merged_events->clear();
  }
  std::vector<std::vector<knn::Neighbor>> results(queries.size());
  for (std::size_t f = 0; f < frames; ++f) {
    if (statuses[f].state != ShardState::kOk &&
        statuses[f].state != ShardState::kDegraded) {
      continue;
    }
    const std::size_t begin = f * slices_;
    const std::size_t count = std::min(slices_, queries.size() - begin);
    // Demux: slice s belongs to query begin+s.
    for (const apsim::ReportEvent& event : frame_events[f]) {
      const std::size_t slice = MuxReportCode::slice(event.report_code);
      if (slice >= count) {
        continue;  // macros of unused slices observe stale bit 0 values
      }
      const std::size_t distance = spec_.distance_from_offset(event.cycle);
      auto& list = results[begin + slice];
      if (list.size() < k) {
        list.push_back({MuxReportCode::vector_id(event.report_code),
                        static_cast<std::uint32_t>(distance)});
      }
    }
    if (merged_events != nullptr) {
      apsim::rebase_events(frame_events[f], f * spec_.cycles_per_query());
      merged_events->insert(merged_events->end(), frame_events[f].begin(),
                            frame_events[f].end());
    }
  }
  const std::size_t want = std::min(k, data_.size());
  for (auto& list : results) {
    std::stable_sort(list.begin(), list.end());
    if (list.size() > want) {
      list.resize(want);
    }
  }
  if (frame_status != nullptr) {
    *frame_status = std::move(statuses);
  }
  return results;
}

}  // namespace apss::core
