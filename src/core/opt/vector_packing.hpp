#pragma once
// Vector packing (Sec. VI-A, Fig. 5): overlay several Hamming macros onto a
// shared "vector ladder" so common structure is paid for once.
//
// Construction. The group shares the guard state, the "*" backbone chain,
// the bridge, the sort state and the EOF state. Per dimension, one VALUE
// state exists per distinct bit value among the group's vectors (1 or 2
// states instead of group_size). Each packed vector keeps its own collector
// stage, inverted-Hamming-distance counter, and reporting state, wired to
// the value states along its own bit pattern.
//
// Routability. The paper found packing "places but only partially routes"
// for high-dimensional vectors. With kFlat collectors (one collector STE
// per vector watching all d value states) the collector fan-in is d, which
// exceeds the routing matrix limit for d >= 64 — exactly the paper's
// failure. kTree collectors restore routability at the cost of extra
// states, modelling what a mature toolchain could do (Sec. VI-A outlook).

#include <cstdint>
#include <vector>

#include "anml/network.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"

namespace apss::core {

enum class CollectorStyle {
  kFlat,  ///< one collector per vector, fan-in = d (paper-faithful naive)
  kTree,  ///< per-vector reduction tree, fan-in bounded (routable)
};

struct VectorPackingOptions {
  /// Vectors overlaid per shared ladder (the paper evaluates g = 4 and 8).
  std::size_t group_size = 4;
  /// Per-vector collector construction; see CollectorStyle.
  CollectorStyle style = CollectorStyle::kFlat;
  HammingMacroOptions macro;  ///< fan-in limits for kTree, bit slice, etc.
};

/// Element ids of one packed group, for introspection, the bit-parallel
/// compiler (core::packed_batch_slots), and tests. Invariants: the shared
/// spans have one entry per dimension (chain, value_states) or per level
/// (bridge); counters/reports/collectors have one entry per packed vector,
/// in counter creation order; every per-vector collector tree has depth
/// exactly `collector_levels` and collects each dimension exactly once.
struct PackedGroupLayout {
  anml::ElementId guard = anml::kInvalidElement;  ///< shared SOF guard
  std::vector<anml::ElementId> chain;  ///< shared "*" ladder, one per dim
  /// value_states[i] = ids of the distinct-value states at dimension i
  /// (index 0 = bit value 0 if present, then bit value 1).
  std::vector<std::vector<anml::ElementId>> value_states;
  std::vector<anml::ElementId> bridge;  ///< shared delay chain, L states
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  /// Per packed vector:
  std::vector<anml::ElementId> counters;
  std::vector<anml::ElementId> reports;
  std::vector<std::vector<anml::ElementId>> collectors;
  std::size_t collector_levels = 1;  ///< tree depth L (1 for kFlat)

  /// Frame geometry for queries against this group's dimensionality.
  StreamSpec stream_spec(std::size_t dims) const noexcept {
    return {dims, collector_levels};
  }
};

/// Packs `count` vectors of `data` starting at `begin` into one NFA;
/// report codes are the global ids begin..begin+count-1.
PackedGroupLayout append_packed_group(anml::AutomataNetwork& network,
                                      const knn::BinaryDataset& data,
                                      std::size_t begin, std::size_t count,
                                      const VectorPackingOptions& options = {});

/// Builds a whole dataset as packed groups (last group may be smaller).
/// All groups share one network; returns per-group layouts.
std::vector<PackedGroupLayout> build_packed_network(
    anml::AutomataNetwork& network, const knn::BinaryDataset& data,
    const VectorPackingOptions& options = {});

/// The paper's analytical resource model: STE cost of g unpacked macros vs
/// the packed group, computed from REAL constructed networks (1 NFA state
/// ~= 1 STE resource, Sec. VII-D).
struct PackingSavings {
  std::size_t unpacked_stes = 0;
  std::size_t packed_stes = 0;
  double ratio() const {
    return packed_stes == 0
               ? 0.0
               : static_cast<double>(unpacked_stes) /
                     static_cast<double>(packed_stes);
  }
};

PackingSavings packing_savings(const knn::BinaryDataset& data,
                               const VectorPackingOptions& options = {});

}  // namespace apss::core
