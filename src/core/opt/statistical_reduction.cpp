#include "core/opt/statistical_reduction.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "knn/exact.hpp"
#include "util/rng.hpp"

namespace apss::core {

using anml::CounterPort;

ReductionGroupLayout append_reduction_group(
    anml::AutomataNetwork& network, const knn::BinaryDataset& data,
    std::size_t begin, std::size_t count, std::uint32_t k_prime,
    const HammingMacroOptions& options) {
  if (count == 0 || begin + count > data.size()) {
    throw std::invalid_argument("append_reduction_group: bad range");
  }
  if (k_prime == 0) {
    throw std::invalid_argument("append_reduction_group: k' must be >= 1");
  }
  ReductionGroupLayout layout;
  layout.macros.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    layout.macros.push_back(
        append_hamming_macro(network, data.vector(begin + v),
                             static_cast<std::uint32_t>(begin + v), options));
  }
  // Fig. 7: the LNC counts report activations; at k' it resets every
  // distance counter in the group, suppressing later (more distant)
  // reports. Reset propagation costs a few cycles, so a handful of extra
  // reports may escape — the host-side merge tolerates the surplus.
  layout.local_neighbor_counter = network.add_counter(
      k_prime, anml::CounterMode::kPulse,
      "lnc" + std::to_string(begin));
  for (const MacroLayout& m : layout.macros) {
    network.connect(m.report, layout.local_neighbor_counter,
                    CounterPort::kCountEnable);
    network.connect(layout.local_neighbor_counter, m.counter,
                    CounterPort::kReset);
  }
  // Re-arm the LNC at end of frame (all macros' EOF states fire together;
  // one suffices).
  network.connect(layout.macros.front().eof_state,
                  layout.local_neighbor_counter, CounterPort::kReset);
  return layout;
}

std::vector<ReductionModelResult> evaluate_reduction_sweep(
    const ReductionModelParams& p, std::span<const std::size_t> k_primes,
    util::ThreadPool* pool) {
  if (p.group_size == 0 || p.k == 0 || p.n == 0 || k_primes.empty()) {
    throw std::invalid_argument("evaluate_reduction_sweep: bad parameters");
  }
  const std::size_t groups = (p.n + p.group_size - 1) / p.group_size;
  for (const std::size_t kp : k_primes) {
    if (kp == 0 || groups * kp < p.k) {
      throw std::invalid_argument(
          "evaluate_reduction_sweep: k' x (n/p) must cover k (Sec. VI-C)");
    }
  }
  const std::size_t variants = k_primes.size();

  // Per-variant atomics, accumulated across runs.
  std::vector<std::atomic<std::size_t>> failed_runs(variants);
  std::vector<std::atomic<std::size_t>> failed_queries(variants);
  std::vector<std::atomic<std::uint64_t>> total_reports(variants);

  const auto run_one = [&](std::size_t run) {
    util::Rng rng(p.seed + run * 0x9e3779b97f4a7c15ULL);
    const auto data = knn::BinaryDataset::uniform(p.n, p.dims, rng.next());
    const auto queries =
        knn::BinaryDataset::uniform(p.queries_per_run, p.dims, rng.next());

    std::vector<bool> run_failed(variants, false);
    std::vector<std::size_t> local_failed(variants, 0);
    std::vector<std::uint64_t> local_reports(variants, 0);
    std::vector<std::uint32_t> pooled;
    std::vector<std::uint32_t> group_sorted;

    for (std::size_t q = 0; q < p.queries_per_run; ++q) {
      const auto dist = knn::all_distances(data, queries.row(q));

      // Exact top-k distances (shared across the sweep).
      std::vector<std::uint32_t> exact(dist);
      std::nth_element(exact.begin(), exact.begin() + (p.k - 1), exact.end());
      exact.resize(p.k);
      std::sort(exact.begin(), exact.end());

      // Per-group distance arrays sorted ONCE; every k' variant just takes
      // a different prefix.
      std::vector<std::vector<std::uint32_t>> per_group(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t lo = g * p.group_size;
        const std::size_t hi = std::min(p.n, lo + p.group_size);
        group_sorted.assign(dist.begin() + lo, dist.begin() + hi);
        std::sort(group_sorted.begin(), group_sorted.end());
        per_group[g] = group_sorted;
      }

      for (std::size_t v = 0; v < variants; ++v) {
        const std::size_t kp = k_primes[v];
        pooled.clear();
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t keep = std::min(kp, per_group[g].size());
          pooled.insert(pooled.end(), per_group[g].begin(),
                        per_group[g].begin() + keep);
        }
        local_reports[v] += pooled.size();
        std::nth_element(pooled.begin(), pooled.begin() + (p.k - 1),
                         pooled.end());
        pooled.resize(p.k);
        std::sort(pooled.begin(), pooled.end());
        if (pooled != exact) {
          run_failed[v] = true;
          ++local_failed[v];
        }
      }
    }
    for (std::size_t v = 0; v < variants; ++v) {
      if (run_failed[v]) {
        ++failed_runs[v];
      }
      failed_queries[v] += local_failed[v];
      total_reports[v] += local_reports[v];
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(0, p.runs, run_one, /*grain=*/1);
  } else {
    for (std::size_t run = 0; run < p.runs; ++run) {
      run_one(run);
    }
  }

  std::vector<ReductionModelResult> results(variants);
  const double total_queries =
      static_cast<double>(p.runs) * static_cast<double>(p.queries_per_run);
  for (std::size_t v = 0; v < variants; ++v) {
    results[v].incorrect_run_fraction =
        static_cast<double>(failed_runs[v].load()) /
        static_cast<double>(p.runs);
    results[v].incorrect_query_fraction =
        static_cast<double>(failed_queries[v].load()) / total_queries;
    results[v].mean_reports_per_query =
        static_cast<double>(total_reports[v].load()) / total_queries;
  }
  return results;
}

ReductionModelResult evaluate_reduction_model(const ReductionModelParams& p,
                                              util::ThreadPool* pool) {
  const std::size_t k_primes[1] = {p.k_prime};
  return evaluate_reduction_sweep(p, k_primes, pool)[0];
}

}  // namespace apss::core
