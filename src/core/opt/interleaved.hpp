#pragma once
// Interleaved query frames: a realizable design that closes the gap
// between the paper's TABLE arithmetic (d cycles per query) and its TEXT
// (2d-cycle frames).
//
// Idea: the sort phase of query i only needs d "not-SOF" cycles — which is
// exactly what query i+1's data phase provides. Duplicate the macro into
// two parity halves (A and B) with their own counters; frames alternate
// SOF_A / SOF_B markers, and half X's sort state matches everything
// except SOF_X, so it keeps incrementing straight through the next frame's
// data while the OTHER half computes. Each half's counter is reset by its
// own guard at the start of its next frame.
//
// Steady-state throughput: d+1 cycles/query (vs 2d+L+3 for the base
// frame) at 2x the STE footprint — the cycle x area product is unchanged,
// but latency-bound workloads get the paper's Table III/IV rates with an
// explicit, constructible mechanism. A trailing flush frame of FILL
// symbols drives the final query's sort.
//
// Timing (frame j starts at cycle S_j = j(d+1)+1; query j rides frame j):
//   report cycle R = S_{j+1} + distance + 2, so
//   j + 1 = (R-3) div (d+1)  and  distance = (R-3) mod (d+1).

#include <cstdint>
#include <vector>

#include "anml/network.hpp"
#include "core/design.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "knn/exact.hpp"

namespace apss::core {

/// Control symbols added by the interleaved design: per-parity SOF markers
/// (frames alternate kSofA / kSofB so each half knows which frames are
/// "its" data phases). Disjoint from core::Alphabet's control codes.
struct InterleavedAlphabet {
  static constexpr std::uint8_t kSofA = 0x84;
  static constexpr std::uint8_t kSofB = 0x85;
  static constexpr std::uint8_t sof(std::size_t parity) {
    return parity % 2 == 0 ? kSofA : kSofB;
  }
};

/// Frame geometry for the interleaved encoding.
struct InterleavedSpec {
  std::size_t dims = 0;

  std::size_t cycles_per_query() const noexcept { return dims + 1; }
  /// Stream length for q queries: q frames + flush frame + 2 settle fills.
  std::size_t stream_length(std::size_t queries) const noexcept {
    return (queries + 1) * (dims + 1) + 2;
  }
  /// Decodes a report cycle into (query index, Hamming distance).
  std::pair<std::size_t, std::size_t> decode(std::uint64_t cycle) const {
    if (cycle < 3) {
      throw std::out_of_range("InterleavedSpec: report before first window");
    }
    const std::uint64_t shifted = cycle - 3;
    const std::size_t frame = shifted / (dims + 1);
    if (frame == 0) {
      throw std::out_of_range("InterleavedSpec: report before first window");
    }
    return {frame - 1, shifted % (dims + 1)};
  }
  /// Throughput gain over the base frame (~2x for large d).
  double speedup_vs_base() const noexcept {
    return static_cast<double>(StreamSpec{dims, 1}.cycles_per_query()) /
           static_cast<double>(cycles_per_query());
  }
};

/// Element ids of one two-parity interleaved macro (for tests and traces).
struct InterleavedMacroLayout {
  /// Per parity half: guard / counter / report element ids.
  anml::ElementId guard[2] = {anml::kInvalidElement, anml::kInvalidElement};
  anml::ElementId counter[2] = {anml::kInvalidElement, anml::kInvalidElement};
  anml::ElementId report[2] = {anml::kInvalidElement, anml::kInvalidElement};
};

/// Appends the two-parity macro for `vec` (both halves report with
/// `report_code`; the decode is time-unambiguous). Requires dims >= 2.
InterleavedMacroLayout append_interleaved_macro(
    anml::AutomataNetwork& network, const util::BitVector& vec,
    std::uint32_t report_code,
    const HammingMacroOptions& options = {});

/// Encodes a query batch as alternating SOF_A/SOF_B frames + flush.
std::vector<std::uint8_t> encode_interleaved_batch(
    const knn::BinaryDataset& queries);

/// Single-configuration kNN through the interleaved design (used by tests
/// and the ablation bench; runs on stock hardware — no extensions needed).
std::vector<std::vector<knn::Neighbor>> interleaved_knn_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k);

}  // namespace apss::core
