#pragma once
// Symbol-stream encoding for queries (Fig. 2c) and report decoding for the
// temporally encoded sort (Fig. 4).

#include <cstdint>
#include <span>
#include <vector>

#include "core/design.hpp"
#include "knn/dataset.hpp"
#include "util/bitvector.hpp"

namespace apss::core {

/// Encodes query vectors into the SOF / data / FILL / EOF symbol frames the
/// macros expect. Queries are concatenated back-to-back, exactly as a host
/// processor drives the device.
class SymbolStreamEncoder {
 public:
  explicit SymbolStreamEncoder(StreamSpec spec) : spec_(spec) {}

  const StreamSpec& spec() const noexcept { return spec_; }

  /// One query frame (cycles_per_query() symbols).
  std::vector<std::uint8_t> encode_query(const util::BitVector& query) const;

  /// All rows of `queries`, concatenated.
  std::vector<std::uint8_t> encode_batch(const knn::BinaryDataset& queries) const;

  /// Appends one query frame to `out`.
  void append_query(std::span<const std::uint64_t> query_words,
                    std::vector<std::uint8_t>& out) const;

 private:
  StreamSpec spec_;
};

}  // namespace apss::core
