#include "core/temporal_decode.hpp"

#include <algorithm>
#include <stdexcept>

namespace apss::core {

std::pair<std::size_t, knn::Neighbor> TemporalSortDecoder::decode_event(
    const apsim::ReportEvent& event) const {
  if (event.cycle == 0) {
    throw std::out_of_range("TemporalSortDecoder: zero cycle");
  }
  const std::size_t cpq = spec_.cycles_per_query();
  const std::size_t query = (event.cycle - 1) / cpq;
  if (query >= query_count_) {
    throw std::out_of_range("TemporalSortDecoder: event beyond last query");
  }
  const std::size_t offset = event.cycle - query * cpq;
  const std::size_t distance = spec_.distance_from_offset(offset);
  return {query,
          {event.report_code, static_cast<std::uint32_t>(distance)}};
}

std::vector<std::vector<knn::Neighbor>> TemporalSortDecoder::decode(
    std::span<const apsim::ReportEvent> events, std::size_t k) const {
  std::vector<std::vector<knn::Neighbor>> results(query_count_);
  for (const apsim::ReportEvent& event : events) {
    auto [query, neighbor] = decode_event(event);
    auto& list = results[query];
    if (k == 0 || list.size() < k) {
      list.push_back(neighbor);
    }
  }
  // Events with equal distance share a cycle and arrive in arbitrary id
  // order; normalize within each distance group for deterministic output.
  for (auto& list : results) {
    std::stable_sort(list.begin(), list.end());
  }
  return results;
}

}  // namespace apss::core
