#include "core/stream.hpp"

#include <stdexcept>

namespace apss::core {

void SymbolStreamEncoder::append_query(std::span<const std::uint64_t> query_words,
                                       std::vector<std::uint8_t>& out) const {
  const std::size_t d = spec_.dims;
  out.reserve(out.size() + spec_.cycles_per_query());
  out.push_back(Alphabet::kSof);
  for (std::size_t i = 0; i < d; ++i) {
    const bool bit = (query_words[i >> 6] >> (i & 63)) & 1u;
    out.push_back(Alphabet::data_bit(bit));
  }
  for (std::size_t i = 0; i < spec_.fill_symbols(); ++i) {
    out.push_back(Alphabet::kFill);
  }
  out.push_back(Alphabet::kEof);
}

std::vector<std::uint8_t> SymbolStreamEncoder::encode_query(
    const util::BitVector& query) const {
  if (query.size() != spec_.dims) {
    throw std::invalid_argument("SymbolStreamEncoder: query dims mismatch");
  }
  std::vector<std::uint8_t> out;
  append_query(query.words(), out);
  return out;
}

std::vector<std::uint8_t> SymbolStreamEncoder::encode_batch(
    const knn::BinaryDataset& queries) const {
  if (queries.dims() != spec_.dims) {
    throw std::invalid_argument("SymbolStreamEncoder: query dims mismatch");
  }
  std::vector<std::uint8_t> out;
  out.reserve(queries.size() * spec_.cycles_per_query());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    append_query(queries.row(q), out);
  }
  return out;
}

}  // namespace apss::core
