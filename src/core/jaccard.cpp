#include "core/jaccard.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "apsim/simulator.hpp"
#include "core/stream.hpp"

namespace apss::core {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;

JaccardMacroLayout append_jaccard_macro(AutomataNetwork& network,
                                        const util::BitVector& vec,
                                        std::uint32_t report_code,
                                        const HammingMacroOptions& options) {
  const std::size_t dims = vec.size();
  const std::size_t m = vec.popcount();
  if (dims == 0 || m == 0) {
    throw std::invalid_argument("jaccard macro: need a nonempty set");
  }
  const std::string prefix = "j" + std::to_string(report_code) + ".";

  JaccardMacroLayout layout;
  layout.set_bits = m;

  const ElementId guard = network.add_ste(SymbolSet::single(Alphabet::kSof),
                                          StartKind::kAllInput,
                                          prefix + "guard");
  layout.counter = network.add_counter(static_cast<std::uint32_t>(m),
                                       anml::CounterMode::kPulse,
                                       prefix + "isect");

  // Backbone chain; matching states ONLY at the encoded set's 1-bits, and
  // only for input bit 1 (intersection semantics).
  ElementId prev = guard;
  std::vector<ElementId> matches;
  const SymbolSet one = SymbolSet::ternary(
      static_cast<std::uint8_t>(1u << options.bit_slice),
      static_cast<std::uint8_t>(Alphabet::kControlFlag |
                                (1u << options.bit_slice)));
  for (std::size_t i = 0; i < dims; ++i) {
    const ElementId star = network.add_ste(
        SymbolSet::all(), StartKind::kNone, prefix + "chain" + std::to_string(i));
    network.connect(prev, star);
    if (vec.get(i)) {
      const ElementId match = network.add_ste(
          one, StartKind::kNone, prefix + "match" + std::to_string(i));
      network.connect(prev, match);
      matches.push_back(match);
    }
    prev = star;
  }
  for (std::size_t g = 0; g < matches.size(); g += options.collector_fan_in) {
    const ElementId col = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                          prefix + "col" + std::to_string(g));
    const std::size_t hi =
        std::min(matches.size(), g + options.collector_fan_in);
    for (std::size_t i = g; i < hi; ++i) {
      network.connect(matches[i], col);
    }
    network.connect(col, layout.counter, CounterPort::kCountEnable);
  }

  // Sorting macro, identical to the Hamming design (L = 1).
  const ElementId bridge = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                           prefix + "bridge");
  network.connect(prev, bridge);
  const ElementId sort_state = network.add_ste(
      SymbolSet::all_except(Alphabet::kEof), StartKind::kNone, prefix + "sort");
  network.connect(bridge, sort_state);
  network.connect(sort_state, sort_state);
  network.connect(sort_state, layout.counter, CounterPort::kCountEnable);
  const ElementId eof = network.add_ste(SymbolSet::single(Alphabet::kEof),
                                        StartKind::kNone, prefix + "eof");
  network.connect(sort_state, eof);
  network.connect(eof, layout.counter, CounterPort::kReset);
  layout.report = network.add_reporting_ste(SymbolSet::all(), report_code,
                                            prefix + "report");
  network.connect(layout.counter, layout.report);
  return layout;
}

double exact_jaccard(std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b) {
  std::size_t inter = 0, uni = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    inter += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
    uni += static_cast<std::size_t>(std::popcount(a[w] | b[w]));
  }
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<std::vector<JaccardResult>> jaccard_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k) {
  if (data.empty() || queries.dims() != data.dims() || k == 0) {
    throw std::invalid_argument("jaccard_search: bad arguments");
  }
  const std::size_t dims = data.dims();

  AutomataNetwork net("jaccard");
  std::vector<std::size_t> set_bits(data.size());
  for (std::size_t v = 0; v < data.size(); ++v) {
    set_bits[v] = append_jaccard_macro(net, data.vector(v),
                                       static_cast<std::uint32_t>(v))
                      .set_bits;
  }
  apsim::Simulator sim(net);
  const StreamSpec spec{dims, 1};
  const SymbolStreamEncoder encoder(spec);

  std::vector<std::vector<JaccardResult>> results(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto events = sim.run(encoder.encode_query(queries.vector(q)));
    const std::size_t query_bits = queries.vector(q).popcount();
    auto& list = results[q];
    for (const apsim::ReportEvent& e : events) {
      const std::size_t m = set_bits[e.report_code];
      const std::size_t base = dims + 4;  // first offset for i < m (L = 1)
      // Offsets before `base` mean the counter crossed during the compute
      // phase: a FULL intersection (i = m).
      const std::size_t i =
          e.cycle < base ? m : m - std::min(m, e.cycle - base);
      const double jac =
          query_bits + m == i
              ? 1.0
              : static_cast<double>(i) /
                    static_cast<double>(query_bits + m - i);
      list.push_back({e.report_code, static_cast<std::uint32_t>(i), jac});
    }
    // The temporal order sorts by intersection COUNT; exact Jaccard also
    // divides by the union size, so the host rescores and re-sorts.
    std::stable_sort(list.begin(), list.end(),
                     [](const JaccardResult& a, const JaccardResult& b) {
                       return a.jaccard != b.jaccard ? a.jaccard > b.jaccard
                                                     : a.id < b.id;
                     });
    if (list.size() > k) {
      list.resize(k);
    }
  }
  return results;
}

}  // namespace apss::core
