#pragma once
// End-to-end AP kNN engine (Sec. III): partitions a dataset into
// board-configuration-sized chunks, builds one Hamming+sorting macro per
// vector, streams queries through a cycle-accurate simulation of every
// configuration, and merges per-configuration partial results on the host —
// exactly the partial-reconfiguration workflow of Sec. III-C.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "anml/network.hpp"
#include "apsim/device.hpp"
#include "apsim/lane_word.hpp"
#include "apsim/placement.hpp"
#include "apsim/simulator.hpp"
#include "core/artifact_cache.hpp"
#include "core/hamming_macro.hpp"
#include "core/opt/vector_packing.hpp"
#include "core/stream.hpp"
#include "knn/dataset.hpp"
#include "knn/exact.hpp"
#include "util/cancellation.hpp"
#include "util/thread_pool.hpp"

namespace apss::apsim {
class BatchProgram;  // compiled bit-parallel form (apsim/batch_simulator.hpp)
}  // namespace apss::apsim

namespace apss::core {

/// Which simulator executes the compiled configurations in search().
enum class SimulationBackend {
  /// The frontier-based reference simulator (apsim::Simulator): supports
  /// every element kind and device feature; the semantic ground truth.
  kCycleAccurate,
  /// The packed 64-lanes-per-word fast path (apsim::BatchSimulator).
  /// Bit-identical report streams on homogeneous Hamming configurations —
  /// plain, vector-packed, and stream-multiplexed macro shapes alike; any
  /// configuration it cannot prove supported (counters capped above 1
  /// increment/cycle, boolean gates, dynamic thresholds, foreign elements)
  /// falls back to the cycle-accurate simulator, per configuration, with
  /// the decline reason recorded in EngineStats::backend.
  kBitParallel,
};

/// What search() does when a shard (configuration x query-frame range)
/// fails, times out, or is cancelled (docs/ROBUSTNESS.md).
enum class OnError : std::uint8_t {
  /// The first failure aborts the whole search: the exception unwinds to
  /// the caller through the pool's first-exception rethrow. The default —
  /// and byte-for-byte the pre-fault-tolerance behavior.
  kFailFast,
  /// Failed/timed-out/cancelled configurations are skipped; surviving
  /// configurations return normally with bit-identical results and report
  /// streams. Failures are reported per configuration in
  /// EngineStats::shard_status, never raised.
  kIsolate,
  /// Like kIsolate, but each failing shard is first retried up to
  /// EngineOptions::max_retries times (deadline expiry and cancellation
  /// are never retried — the budget is already gone).
  kRetry,
};

const char* to_string(OnError policy) noexcept;

/// Terminal state of one configuration after search() (worst state over
/// the configuration's shards).
enum class ShardState : std::uint8_t {
  kOk,        ///< every shard simulated on its primary backend
  /// The bit-parallel backend failed mid-search and the configuration was
  /// re-simulated on the cycle-accurate reference: results are still exact
  /// and bit-identical, just slower — degradation, not loss.
  kDegraded,
  kTimedOut,   ///< abandoned at a checkpoint after the deadline expired
  kCancelled,  ///< abandoned after CancellationToken::request_cancel()
  kFailed,     ///< a typed error survived every retry and fallback
};

const char* to_string(ShardState state) noexcept;

/// Per-configuration outcome of the last search(), surfaced through
/// EngineStats::shard_status and printed by apss_cli. Under kIsolate /
/// kRetry a non-ok state never aborts the search; under kFailFast the
/// first failure throws instead and statuses stay kOk.
struct ShardStatus {
  ShardState state = ShardState::kOk;
  /// First typed failure message observed for this configuration (empty
  /// when kOk; retained for kDegraded so the original fault stays visible).
  std::string error;
  /// Extra attempts spent on this configuration's shards (retries plus the
  /// degrade-to-cycle-accurate attempt).
  std::uint32_t retries = 0;

  bool operator==(const ShardStatus&) const = default;
};

/// Per-configuration compile outcome of the bit-parallel backend: which
/// simulator runs each configuration, by macro family, and why anything
/// fell back — so cycle-accurate fallbacks are visible (ISSUE 5), not
/// silent. Filled at engine construction; reported via EngineStats and
/// printed by `apss_cli knn --backend=bit`.
struct BackendCompileStats {
  std::size_t configurations = 0;  ///< total configurations built
  std::size_t bit_parallel = 0;    ///< compiled for apsim::BatchSimulator
  std::size_t fallback = 0;        ///< declined -> cycle-accurate path
  std::size_t hamming = 0;         ///< fast-path configs per macro family
  std::size_t packed = 0;
  std::size_t multiplexed = 0;
  /// Distinct try_compile decline reasons -> configuration counts (empty
  /// when nothing fell back or the backend is kCycleAccurate).
  std::vector<std::pair<std::string, std::size_t>> fallback_reasons;
  /// Compile-cache hit/miss/invalidation counters (all zero unless
  /// EngineOptions::artifact_cache_dir is set; see core/artifact_cache.hpp).
  ArtifactCacheStats artifact;
  /// Resolved execution lane width in bits (64/256/512) and its backing
  /// ISA ("scalar" | "portable" | "avx2" | "avx512") — what
  /// EngineOptions::lane_width resolved to on this CPU/build. Zero/empty
  /// when the backend is kCycleAccurate. Purely informational: programs and
  /// artifacts are width-agnostic, so this never keys the compile cache.
  std::size_t lane_width_bits = 0;
  std::string lane_isa;

  bool operator==(const BackendCompileStats&) const = default;
};

struct EngineOptions {
  apsim::DeviceConfig device = apsim::DeviceConfig::gen1();
  /// Board geometry backing ONE configuration (the paper measures a
  /// single-rank board; its capacity rule is 1024 x 128-dim vectors).
  apsim::DeviceGeometry board = apsim::DeviceGeometry::one_rank();
  HammingMacroOptions macro;
  apsim::PlacementOptions placement;
  /// Overrides the placement-derived capacity when nonzero (tests use this
  /// to force multi-configuration runs on small datasets).
  std::size_t max_vectors_per_config = 0;
  /// Worker pool for parallel compile + simulation. When null, the engine
  /// derives one from `threads` below.
  util::ThreadPool* pool = nullptr;
  /// Concurrency when `pool` is null: 0 (default) shares the process-wide
  /// pool (hardware concurrency), 1 runs fully serial, N >= 2 gives the
  /// engine a private pool so that N threads total (N-1 workers plus the
  /// submitting thread) run its shards. Surfaced as `apss_cli --threads=N`.
  /// Any setting yields bit-identical results: shards are merged in
  /// configuration/frame order, never completion order.
  std::size_t threads = 0;
  /// Upper bound on query frames per simulation shard; the engine refines
  /// the shard size downward so every thread gets several shards.
  std::size_t queries_per_chunk = 64;
  /// Retain the merged ReportEvent stream of the last search() — shard
  /// buffers rebased to each configuration's full query-stream timeline and
  /// concatenated in configuration/frame order (last_report_stream()).
  /// Off by default: the raw stream can dwarf the decoded results.
  bool collect_report_stream = false;
  /// Simulation backend (default: the cycle-accurate reference).
  SimulationBackend backend = SimulationBackend::kCycleAccurate;
  /// Execution lane width for the kBitParallel backend: how many lanes each
  /// simulator word-operation advances. kAuto (default) resolves to the
  /// widest SIMD-backed width the CPU + build support (64-bit scalar when
  /// none); explicit widths always run — on a portable fallback when the
  /// SIMD variant is unavailable. Every width produces bit-identical
  /// results and report streams (the width-sweep differential contract);
  /// compiled programs and artifacts are width-agnostic. Surfaced as
  /// `apss_cli knn --lane-width=...`; APSS_DISABLE_SIMD=1 in the
  /// environment forces the portable fallback regardless of this setting.
  apsim::LaneWidth lane_width = apsim::LaneWidth::kAuto;
  /// When > 0, each configuration is built with the Sec. VI-A
  /// vector-packing transform — this many vectors overlay one shared
  /// ladder per group — instead of one macro per vector. Board capacity,
  /// streams, report codes and decoding are unchanged; the packed network
  /// just spends fewer STEs per vector.
  std::size_t packing_group_size = 0;
  /// Collector style for packed configurations. kTree (default) stays
  /// routable at high dimensionality; kFlat reproduces the paper's naive
  /// construction (fan-in = dims, "places but only partially routes").
  CollectorStyle packing_style = CollectorStyle::kTree;
  /// Ahead-of-time compile cache directory (created if absent). With the
  /// kBitParallel backend, each configuration first tries to LOAD its
  /// compiled program from a slot file here (skipping network construction
  /// and verification entirely); on a miss or invalidation it compiles
  /// fresh and saves the artifact. Outcomes are counted in
  /// EngineStats::backend.artifact. Empty (default) disables the cache; the
  /// kCycleAccurate backend ignores it (nothing is compiled).
  std::string artifact_cache_dir;
  /// Wall-clock budget for one search() in milliseconds (0 = unlimited).
  /// The deadline starts when search() is entered and is polled
  /// cooperatively at query-frame boundaries, so an expired deadline
  /// terminates within one frame of extra simulation. Expiry surfaces as
  /// util::DeadlineExceeded (kFailFast) or ShardState::kTimedOut
  /// (kIsolate/kRetry).
  double deadline_ms = 0;
  /// Optional external cancellation, polled at the same checkpoints.
  /// Surfaces as util::OperationCancelled / ShardState::kCancelled. The
  /// token must outlive every search() that uses it.
  const util::CancellationToken* cancel = nullptr;
  /// Failure policy for search() shards (docs/ROBUSTNESS.md).
  OnError on_error = OnError::kFailFast;
  /// kRetry only: extra attempts per shard before the degrade/fail path.
  std::size_t max_retries = 2;
};

/// Cycle/report accounting for the device-time model (Sec. V).
struct EngineStats {
  std::size_t configurations = 0;
  std::size_t vectors_per_config = 0;  ///< capacity (last config may be smaller)
  std::size_t cycles_per_query = 0;    ///< per configuration pass
  std::size_t queries = 0;
  std::size_t simulated_cycles = 0;  ///< total across configurations
  std::size_t report_events = 0;
  /// Which backend compiled each configuration (and why any fell back).
  BackendCompileStats backend;
  /// Per-configuration fault-isolation outcome of the last search() (empty
  /// for project()). All-kOk in every healthy run; with an expired deadline
  /// or OnError::kIsolate/kRetry this is where failures are reported —
  /// simulated_cycles and report_events then count the SURVIVING
  /// configurations only.
  std::vector<ShardStatus> shard_status;

  bool operator==(const EngineStats&) const = default;

  /// Configurations whose results are in the returned neighbor lists
  /// (kOk + kDegraded).
  std::size_t surviving_configurations() const noexcept {
    std::size_t n = 0;
    for (const ShardStatus& s : shard_status) {
      n += s.state == ShardState::kOk || s.state == ShardState::kDegraded;
    }
    return shard_status.empty() ? configurations : n;
  }
  std::size_t count_state(ShardState state) const noexcept {
    std::size_t n = 0;
    for (const ShardStatus& s : shard_status) {
      n += s.state == state;
    }
    return n;
  }

  /// Backend-independent accounting equality: the two backends must do the
  /// SAME device work (cycles, reports, splits) even though `backend`
  /// legitimately differs between them.
  bool same_work(const EngineStats& o) const {
    return configurations == o.configurations &&
           vectors_per_config == o.vectors_per_config &&
           cycles_per_query == o.cycles_per_query && queries == o.queries &&
           simulated_cycles == o.simulated_cycles &&
           report_events == o.report_events;
  }

  /// Device busy time: every configuration streams every query.
  double compute_seconds(const apsim::DeviceTiming& t) const {
    return static_cast<double>(simulated_cycles) * t.cycle_seconds();
  }
  /// Reconfiguration time: one reconfig per configuration when the dataset
  /// needs more than one (matches the paper's large-dataset accounting).
  double reconfig_seconds(const apsim::DeviceTiming& t) const {
    return configurations > 1
               ? static_cast<double>(configurations) * t.reconfig_seconds
               : 0.0;
  }
  double total_seconds(const apsim::DeviceTiming& t) const {
    return compute_seconds(t) + reconfig_seconds(t);
  }
};

/// Per-call overrides for one search(): an external deadline replacing the
/// options-derived EngineOptions::deadline_ms budget, and an external
/// cancellation token checked instead of EngineOptions::cancel. Both
/// pointers must outlive the call; null fields fall back to the options.
/// This is what lets a long-lived resident engine (the serving layer's
/// workers) propagate PER-REQUEST budgets into the RunControl checkpoints
/// without rebuilding the engine per request.
struct SearchControl {
  const util::Deadline* deadline = nullptr;
  const util::CancellationToken* cancel = nullptr;
};

class ApKnnEngine {
 public:
  /// Compiles `dataset` into board configurations. The dataset is copied.
  ApKnnEngine(knn::BinaryDataset dataset, EngineOptions options = {});

  /// Exact kNN via simulated AP execution. Returns ascending-distance
  /// neighbor lists (global ids); fills `last_stats()`.
  std::vector<std::vector<knn::Neighbor>> search(
      const knn::BinaryDataset& queries, std::size_t k);

  /// search() with per-call deadline/cancellation overrides (see
  /// SearchControl). search(queries, k) is exactly this with an empty
  /// control.
  std::vector<std::vector<knn::Neighbor>> search(
      const knn::BinaryDataset& queries, std::size_t k,
      const SearchControl& control);

  const EngineStats& last_stats() const noexcept { return stats_; }

  /// Merged ReportEvent stream of the last search() when
  /// EngineOptions::collect_report_stream is set (empty otherwise). The
  /// stream is bit-identical at any thread count — the differential
  /// contract the thread-sweep tests assert.
  const std::vector<apsim::ReportEvent>& last_report_stream() const noexcept {
    return report_stream_;
  }

  /// Threads search()/compile run on: pool workers + the submitting thread.
  std::size_t simulation_threads() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size() + 1;
  }

  std::size_t configurations() const noexcept { return partitions_.size(); }
  std::size_t capacity_per_config() const noexcept { return capacity_; }
  const StreamSpec& stream_spec() const noexcept { return spec_; }

  /// Number of configurations the bit-parallel backend compiled (0 when the
  /// backend is kCycleAccurate or every configuration fell back).
  std::size_t bit_parallel_configurations() const noexcept;

  /// Per-configuration backend/fallback-reason counters collected while
  /// compiling (also embedded in every EngineStats this engine produces).
  const BackendCompileStats& backend_stats() const noexcept {
    return compile_stats_;
  }

  /// The compiled automata network of configuration `i` (for inspection,
  /// ANML export, and resource benches). Configurations satisfied from the
  /// artifact cache skip network construction; the network is rebuilt
  /// lazily — and deterministically — on first access. Not safe to call
  /// concurrently with itself or placement() for the same `i`.
  const anml::AutomataNetwork& network(std::size_t i) const;

  /// Placement report of configuration `i` on the configured board.
  apsim::PlacementResult placement(std::size_t i) const;

  /// Compiled bit-parallel program of configuration `i` (null when that
  /// configuration runs cycle-accurate).
  std::shared_ptr<const apsim::BatchProgram> program(std::size_t i) const {
    return partitions_.at(i).program;
  }

  /// Compile-input key of configuration `i`: the hash an artifact must
  /// carry for the cache to accept it (docs/ARTIFACTS.md "Key hash").
  std::uint64_t artifact_key(std::size_t i) const;

  /// Slot file the cache uses for configuration `i`; empty when
  /// EngineOptions::artifact_cache_dir is unset.
  std::string artifact_cache_file(std::size_t i) const;

  /// Writes configuration `i`'s compiled program (plus provenance metadata)
  /// to `path` as an artifact. Fails — with a message in *error — when the
  /// configuration has no bit-parallel program.
  bool save_artifact(std::size_t i, const std::string& path,
                     std::string* error = nullptr) const;

  /// Analytic cycle/report model WITHOUT simulating (used to project large
  /// workloads); mirrors the accounting search() performs.
  EngineStats project(std::size_t query_count) const;

  /// Sustained report bandwidth model of Sec. VI-C: 32*(n+d) bits per query
  /// every cycles_per_query; returns Gbit/s.
  double report_bandwidth_gbps() const;

 private:
  struct Partition {
    std::size_t begin = 0;  ///< first global vector id
    std::size_t count = 0;
    /// Null after an artifact-cache hit until network()/placement() rebuild
    /// it lazily (mutable: rebuilding does not change observable state —
    /// construction is deterministic, so the rebuilt network is the one the
    /// compile path would have produced).
    mutable std::unique_ptr<anml::AutomataNetwork> network;
    /// Compiled bit-parallel program; null = use the cycle-accurate path.
    std::shared_ptr<const apsim::BatchProgram> program;
  };

  /// Builds `p`'s configuration network (and the per-macro layouts when the
  /// out-params are non-null) from the dataset slice [p.begin, p.begin +
  /// p.count) — shared by the construction path and the lazy rebuild.
  void build_network(const Partition& p,
                     std::vector<MacroLayout>* hamming_layouts,
                     std::vector<PackedGroupLayout>* packed_layouts) const;
  void ensure_network(const Partition& p) const;
  artifact::ArtifactMeta artifact_meta(const Partition& p) const;

  knn::BinaryDataset dataset_;
  EngineOptions options_;
  StreamSpec spec_;
  std::size_t capacity_ = 0;
  std::vector<Partition> partitions_;
  BackendCompileStats compile_stats_;
  EngineStats stats_;
  /// Resolved worker pool (options_.pool, the global pool, or owned_pool_;
  /// nullptr = serial) — see EngineOptions::threads.
  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  std::vector<apsim::ReportEvent> report_stream_;
};

}  // namespace apss::core
