#pragma once
// Compile-cache glue between the engines and src/artifact: outcome/counter
// types surfaced through EngineStats::backend, the slot-file naming scheme,
// the compile-input key hash helpers, and the shared load/store flow.
//
// Cache protocol (docs/ARTIFACTS.md "Cache directories"):
//
//  * One SLOT FILE per configuration, named by builder + configuration
//    index — NOT content-addressed. A dataset or option change therefore
//    lands on the same file, fails the key check, and is reported as an
//    INVALIDATION (recompile + overwrite) rather than silently growing the
//    directory while the stale artifact lingers.
//  * The compile-input KEY covers everything the compiled program depends
//    on: a builder tag, the artifact format version, the dataset slice
//    (layout and raw row bytes), and the compiler options. Equal keys =>
//    the cached program is the program a fresh compile would produce.
//  * try_load_program accepts an artifact only if it decodes cleanly
//    (src/artifact's typed-error gauntlet), the key matches, and the
//    program's lane/dimension shape matches the expectation — belt and
//    suspenders on top of the key.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "artifact/artifact.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "util/fnv.hpp"

namespace apss::apsim {
struct SimOptions;  // apsim/simulator.hpp
}  // namespace apss::apsim

namespace apss::core {

/// What the cache did for one configuration.
enum class ArtifactOutcome : std::uint8_t {
  kDisabled,     ///< no cache directory configured for this configuration
  kHit,          ///< valid artifact loaded — compile (and network build) skipped
  kMiss,         ///< no artifact on disk — compiled fresh, artifact saved
  kInvalidated,  ///< artifact present but stale or damaged — recompiled, overwritten
};

const char* to_string(ArtifactOutcome outcome) noexcept;

/// Aggregated cache counters, embedded in BackendCompileStats and printed
/// by `apss_cli knn --artifact-cache=DIR`.
struct ArtifactCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t invalidations = 0;
  /// Transient-I/O retry attempts (load and save; bounded exponential
  /// backoff, docs/ROBUSTNESS.md "Cache retry protocol").
  std::size_t io_retries = 0;
  /// Corrupt slot files renamed to "<slot>.quarantined" — kept for
  /// post-mortems, never deleted — before the recompile overwrote the slot.
  std::size_t quarantined = 0;
  /// Leaked "*.apss-art.tmp.*" files (a crash between write and rename)
  /// swept when the cache directory was opened.
  std::size_t stale_tmp_swept = 0;

  bool operator==(const ArtifactCacheStats&) const = default;

  bool any() const noexcept {
    return hits + misses + invalidations + io_retries + quarantined +
               stale_tmp_swept >
           0;
  }

  void record(ArtifactOutcome outcome) noexcept {
    switch (outcome) {
      case ArtifactOutcome::kDisabled:
        break;
      case ArtifactOutcome::kHit:
        ++hits;
        break;
      case ArtifactOutcome::kMiss:
        ++misses;
        break;
      case ArtifactOutcome::kInvalidated:
        ++invalidations;
        break;
    }
  }

  void merge(const ArtifactCacheStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    invalidations += o.invalidations;
    io_retries += o.io_retries;
    quarantined += o.quarantined;
    stale_tmp_swept += o.stale_tmp_swept;
  }
};

/// Slot file for configuration `slot` of `builder` inside `dir`
/// (e.g. "<dir>/apss-knn-engine.config0003.apss-art").
std::string artifact_cache_path(const std::string& dir,
                                std::string_view builder, std::size_t slot);

// --- Compile-input key ingredients -----------------------------------------
// Every helper feeds one streaming hasher; the builders in engine.cpp /
// stream_multiplexing.cpp compose them in a pinned order (ARTIFACTS.md).

/// Layout (count, dims, word stride) and raw row bytes of the slice
/// [begin, begin + count) of `data`.
void hash_dataset_slice(util::Fnv1a64& hasher, const knn::BinaryDataset& data,
                        std::size_t begin, std::size_t count);

void hash_macro_options(util::Fnv1a64& hasher,
                        const HammingMacroOptions& options);

void hash_sim_options(util::Fnv1a64& hasher, const apsim::SimOptions& options);

/// Load-path result: `program` is non-null exactly when outcome == kHit.
struct CachedProgram {
  std::shared_ptr<const apsim::BatchProgram> program;
  ArtifactOutcome outcome = ArtifactOutcome::kDisabled;
  /// Why the artifact was invalidated (typed load error or key/shape
  /// mismatch); empty on hit/miss.
  std::string detail;
  /// Transient-I/O retry attempts spent on this load.
  std::size_t io_retries = 0;
  /// True when a corrupt slot file was renamed aside (never deleted).
  bool quarantined = false;
};

/// Loads the artifact at `path` and validates it against the expected
/// compile-input key and program shape. kNotFound => kMiss; any other load
/// error, a key mismatch, or a shape mismatch => kInvalidated.
///
/// Robustness (docs/ROBUSTNESS.md): transient I/O errors — including the
/// "artifact.read" fault site — are retried with bounded exponential
/// backoff before the load degrades to kInvalidated (compile fresh); a
/// slot file rejected as CORRUPT (truncated / bad magic / hash mismatch /
/// malformed) is QUARANTINED by renaming it to "<path>.quarantined" so the
/// bytes survive for a post-mortem while the recompile overwrites the slot.
CachedProgram try_load_program(const std::string& path,
                               std::uint64_t expected_key,
                               std::uint64_t expected_lanes,
                               std::uint64_t expected_dims);

/// Saves `program` + `meta` to `path` (atomic, see artifact::save), with
/// the same bounded-backoff retry on failure (and the "artifact.write"
/// fault site). `io_retries`, when non-null, receives the attempts spent.
bool store_program(const std::string& path, const artifact::ArtifactMeta& meta,
                   std::shared_ptr<const apsim::BatchProgram> program,
                   std::string* error = nullptr,
                   std::size_t* io_retries = nullptr);

/// Removes "*.apss-art.tmp.*" files from `dir` — temp files leaked when a
/// save crashed between write and rename — and returns how many were
/// swept. Called when an engine opens a cache directory; counted in
/// ArtifactCacheStats::stale_tmp_swept. Quarantined files are NOT swept.
std::size_t sweep_stale_artifact_tmp(const std::string& dir);

}  // namespace apss::core
