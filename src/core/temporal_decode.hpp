#pragma once
// Host-side decoding of report events into sorted nearest-neighbor lists.
//
// The AP conveys each reporting-state activation as (stream offset, state
// id). Because the sorting macro makes more-similar vectors report earlier,
// decoding is a single pass: the offset within the query frame maps
// directly to the Hamming distance (StreamSpec::distance_from_offset), and
// events arrive already sorted by distance within each query.

#include <cstdint>
#include <span>
#include <vector>

#include "apsim/simulator.hpp"
#include "core/design.hpp"
#include "knn/exact.hpp"

namespace apss::core {

class TemporalSortDecoder {
 public:
  TemporalSortDecoder(StreamSpec spec, std::size_t query_count)
      : spec_(spec), query_count_(query_count) {}

  /// Decodes a batch run's events (cycles are 1-based over the whole
  /// concatenated stream; report codes are dataset vector ids). Returns one
  /// ascending-distance neighbor list per query, truncated to `k` if k > 0.
  /// Throws std::out_of_range if an event falls outside any sort window —
  /// that would mean the automata design is broken.
  std::vector<std::vector<knn::Neighbor>> decode(
      std::span<const apsim::ReportEvent> events, std::size_t k = 0) const;

  /// Decodes one event's (query index, neighbor).
  std::pair<std::size_t, knn::Neighbor> decode_event(
      const apsim::ReportEvent& event) const;

 private:
  StreamSpec spec_;
  std::size_t query_count_;
};

}  // namespace apss::core
