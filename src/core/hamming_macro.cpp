#include "core/hamming_macro.hpp"

#include <stdexcept>
#include <string>

namespace apss::core {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Symbol class of a matching state: data symbol (bit 7 clear) whose
/// `slice` bit equals `bit`. This is the ternary match of Sec. VI-B.
SymbolSet match_symbols(bool bit, std::size_t slice) {
  const auto mask = static_cast<std::uint8_t>(Alphabet::kControlFlag |
                                              (1u << slice));
  const auto value = static_cast<std::uint8_t>(bit ? (1u << slice) : 0u);
  return SymbolSet::ternary(value, mask);
}

void check_options(std::size_t dims, const HammingMacroOptions& options) {
  if (dims == 0) {
    throw std::invalid_argument("hamming macro: dims must be >= 1");
  }
  if (options.collector_fan_in < 2) {
    throw std::invalid_argument("hamming macro: collector_fan_in must be >= 2");
  }
  if (options.max_counter_fan_in < 2) {
    throw std::invalid_argument(
        "hamming macro: max_counter_fan_in must be >= 2");
  }
  if (options.bit_slice > 6) {
    throw std::invalid_argument("hamming macro: bit_slice must be 0..6");
  }
}

}  // namespace

std::size_t collector_levels_for(std::size_t dims,
                                 const HammingMacroOptions& options) {
  check_options(dims, options);
  std::size_t nodes = ceil_div(dims, options.collector_fan_in);
  std::size_t levels = 1;
  // +1: the sort state shares the counter's enable port with the roots.
  while (nodes + 1 > options.max_counter_fan_in) {
    nodes = ceil_div(nodes, options.collector_fan_in);
    ++levels;
  }
  return levels;
}

MacroLayout append_hamming_macro(AutomataNetwork& network,
                                 const util::BitVector& vec,
                                 std::uint32_t report_code,
                                 const HammingMacroOptions& options) {
  const std::size_t dims = vec.size();
  check_options(dims, options);

  MacroLayout layout;
  const std::string prefix = "v" + std::to_string(report_code) + ".";

  // --- Guard state: all-input start matching SOF (Fig. 2a) -----------------
  layout.guard = network.add_ste(SymbolSet::single(Alphabet::kSof),
                                 StartKind::kAllInput, prefix + "guard");

  // --- Compute states: "*" backbone + per-dimension matching states --------
  layout.chain.reserve(dims);
  layout.match.reserve(dims);
  ElementId prev = layout.guard;
  for (std::size_t i = 0; i < dims; ++i) {
    const ElementId star = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                           prefix + "chain" + std::to_string(i));
    const ElementId m =
        network.add_ste(match_symbols(vec.get(i), options.bit_slice),
                        StartKind::kNone, prefix + "match" + std::to_string(i));
    network.connect(prev, star);
    network.connect(prev, m);
    layout.chain.push_back(star);
    layout.match.push_back(m);
    prev = star;
  }

  // --- Inverted Hamming distance counter (threshold d, pulse mode) ---------
  layout.counter =
      network.add_counter(static_cast<std::uint32_t>(dims),
                          anml::CounterMode::kPulse, prefix + "ihd");

  // --- Collector reduction tree ("*" states, Sec. III-A) -------------------
  // Matching states always pass through at least one collector level
  // (Fig. 2a shows match states feeding collectors, not the counter); more
  // levels are added until the roots + the sort state fit the counter's
  // enable-port fan-in.
  std::vector<ElementId> level = layout.match;
  std::size_t level_index = 0;
  do {
    const std::size_t groups = ceil_div(level.size(), options.collector_fan_in);
    std::vector<ElementId> next;
    next.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      const ElementId node = network.add_ste(
          SymbolSet::all(), StartKind::kNone,
          prefix + "col" + std::to_string(level_index) + "_" + std::to_string(g));
      const std::size_t begin = g * options.collector_fan_in;
      const std::size_t end =
          std::min(level.size(), begin + options.collector_fan_in);
      for (std::size_t i = begin; i < end; ++i) {
        network.connect(level[i], node);
      }
      layout.collectors.push_back(node);
      next.push_back(node);
    }
    level = std::move(next);
    ++level_index;
  } while (level.size() + 1 > options.max_counter_fan_in);
  layout.collector_levels = level_index;
  for (const ElementId root : level) {
    network.connect(root, layout.counter, CounterPort::kCountEnable);
  }

  // --- Sorting macro (Fig. 2b) ----------------------------------------------
  // Bridge delay chain: aligns the sort state's first increment to land
  // strictly after the last collector increment (L cycles of tree latency).
  ElementId tail = layout.chain.back();
  for (std::size_t i = 0; i < layout.collector_levels; ++i) {
    const ElementId b = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                        prefix + "bridge" + std::to_string(i));
    network.connect(tail, b);
    layout.bridge.push_back(b);
    tail = b;
  }

  layout.sort_state = network.add_ste(SymbolSet::all_except(Alphabet::kEof),
                                      StartKind::kNone, prefix + "sort");
  network.connect(tail, layout.sort_state);
  network.connect(layout.sort_state, layout.sort_state);  // self-loop
  network.connect(layout.sort_state, layout.counter, CounterPort::kCountEnable);

  layout.eof_state = network.add_ste(SymbolSet::single(Alphabet::kEof),
                                     StartKind::kNone, prefix + "eof");
  network.connect(layout.sort_state, layout.eof_state);
  network.connect(layout.eof_state, layout.counter, CounterPort::kReset);

  layout.report = network.add_reporting_ste(SymbolSet::all(), report_code,
                                            prefix + "report");
  network.connect(layout.counter, layout.report);

  return layout;
}

}  // namespace apss::core
