#include "core/ext/comparison_macro.hpp"

namespace apss::core {

using anml::CounterPort;
using anml::StartKind;
using anml::SymbolSet;

ComparisonLayout append_comparison_macro(anml::AutomataNetwork& network,
                                         const SymbolSet& a_symbols,
                                         const SymbolSet& b_symbols,
                                         const SymbolSet& reset_symbols,
                                         std::uint32_t report_code) {
  ComparisonLayout layout;
  layout.a_input =
      network.add_ste(a_symbols, StartKind::kAllInput, "cmp.a_in");
  layout.b_input =
      network.add_ste(b_symbols, StartKind::kAllInput, "cmp.b_in");
  layout.reset_input =
      network.add_ste(reset_symbols, StartKind::kAllInput, "cmp.rst");

  // B needs no static firing threshold of its own; it only publishes its
  // internal count. Use an unreachably large target.
  layout.counter_b = network.add_counter(~std::uint32_t{0},
                                         anml::CounterMode::kPulse, "cmp.B");
  layout.counter_a =
      network.add_counter(1, anml::CounterMode::kPulse, "cmp.A");

  network.connect(layout.a_input, layout.counter_a, CounterPort::kCountEnable);
  network.connect(layout.b_input, layout.counter_b, CounterPort::kCountEnable);
  network.connect(layout.reset_input, layout.counter_a, CounterPort::kReset);
  network.connect(layout.reset_input, layout.counter_b, CounterPort::kReset);
  // The Fig. 8 wire: B's internal count drives A's threshold port.
  network.connect(layout.counter_b, layout.counter_a, CounterPort::kThreshold);

  layout.output = network.add_reporting_ste(SymbolSet::all(), report_code,
                                            "cmp.out");
  network.connect(layout.counter_a, layout.output);
  return layout;
}

}  // namespace apss::core
