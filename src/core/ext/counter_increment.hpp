#pragma once
// Counter-increment extension (Sec. VII-A): with counters that accept up to
// 8 increments per cycle, one data symbol can carry SEVEN dimensions of the
// SAME query (bits 0..6), shrinking the Hamming phase from d to ceil(d/7)
// cycles. The sort phase is unchanged, so the query frame drops from
// 2d+L+3 to ceil(d/7)+d+L+3 cycles — the paper's 1.75x latency gain.
//
// Note this encoding is mutually exclusive with symbol-stream multiplexing
// (Sec. VI-B), which spends the same payload bits on parallel queries.

#include <cstdint>
#include <vector>

#include "anml/network.hpp"
#include "core/design.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "knn/exact.hpp"
#include "util/bitvector.hpp"

namespace apss::core {

inline constexpr std::size_t kDimsPerSymbol = 7;

/// Frame geometry for the dense-dimension encoding.
struct CiStreamSpec {
  std::size_t dims = 0;

  std::size_t data_symbols() const noexcept {
    return (dims + kDimsPerSymbol - 1) / kDimsPerSymbol;
  }
  std::size_t fill_symbols() const noexcept { return dims + 2; }
  std::size_t cycles_per_query() const noexcept {
    return data_symbols() + dims + 4;
  }
  std::size_t report_offset(std::size_t inverted_distance) const noexcept {
    return cycles_per_query() - inverted_distance;
  }
  std::size_t distance_from_offset(std::size_t offset) const {
    const std::size_t base = data_symbols() + 4;
    if (offset < base || offset > cycles_per_query()) {
      throw std::out_of_range("CiStreamSpec: offset outside sort window");
    }
    return offset - base;
  }
  /// Latency gain over the base design (paper: 1.75x for large d).
  double speedup_vs_base() const noexcept {
    return static_cast<double>(StreamSpec{dims, 1}.cycles_per_query()) /
           static_cast<double>(cycles_per_query());
  }
};

struct CiMacroLayout {
  anml::ElementId guard = anml::kInvalidElement;
  std::vector<anml::ElementId> chain;  ///< one per data symbol
  std::vector<anml::ElementId> match;  ///< one per dimension
  std::vector<anml::ElementId> slice_collectors;  ///< up to 7
  anml::ElementId bridge = anml::kInvalidElement;
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  anml::ElementId counter = anml::kInvalidElement;
  anml::ElementId report = anml::kInvalidElement;
};

/// Appends the dense-encoding macro for `vec`. Per-slice collectors keep
/// simultaneous per-cycle matches distinguishable, so the counter must run
/// with max_counter_increment >= 7 (DeviceConfig::opt_ext()).
CiMacroLayout append_ci_macro(anml::AutomataNetwork& network,
                              const util::BitVector& vec,
                              std::uint32_t report_code);

/// Encodes one query into the dense frame (7 dims per symbol).
std::vector<std::uint8_t> encode_ci_query(const util::BitVector& query);

/// Single-configuration kNN via the extension; requires a device with the
/// multi-increment feature. Used by tests and the extension bench.
std::vector<std::vector<knn::Neighbor>> ci_knn_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k);

}  // namespace apss::core
