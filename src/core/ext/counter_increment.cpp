#include "core/ext/counter_increment.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "apsim/simulator.hpp"

namespace apss::core {

using anml::AutomataNetwork;
using anml::CounterPort;
using anml::ElementId;
using anml::StartKind;
using anml::SymbolSet;

CiMacroLayout append_ci_macro(AutomataNetwork& network,
                              const util::BitVector& vec,
                              std::uint32_t report_code) {
  const std::size_t dims = vec.size();
  if (dims == 0) {
    throw std::invalid_argument("ci macro: dims must be >= 1");
  }
  const CiStreamSpec spec{dims};
  const std::size_t symbols = spec.data_symbols();
  const std::string prefix = "ci" + std::to_string(report_code) + ".";

  CiMacroLayout layout;
  layout.guard = network.add_ste(SymbolSet::single(Alphabet::kSof),
                                 StartKind::kAllInput, prefix + "guard");

  // Backbone: one "*" state per data SYMBOL (not per dimension).
  ElementId prev = layout.guard;
  for (std::size_t j = 0; j < symbols; ++j) {
    const ElementId star = network.add_ste(
        SymbolSet::all(), StartKind::kNone, prefix + "chain" + std::to_string(j));
    network.connect(prev, star);
    layout.chain.push_back(star);
    prev = star;
  }

  layout.counter =
      network.add_counter(static_cast<std::uint32_t>(dims),
                          anml::CounterMode::kPulse, prefix + "ihd");

  // Per-slice collectors: matches of slice s (across all symbol groups)
  // funnel through collector s. Within one cycle at most one group is
  // active, so each collector carries at most one activation per cycle;
  // the (up to 7) collectors fire SIMULTANEOUSLY and the multi-increment
  // counter adds them all — this is what stock hardware cannot do.
  const std::size_t slices = std::min(kDimsPerSymbol, dims);
  for (std::size_t s = 0; s < slices; ++s) {
    const ElementId col = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                          prefix + "col" + std::to_string(s));
    layout.slice_collectors.push_back(col);
    network.connect(col, layout.counter, CounterPort::kCountEnable);
  }

  // Matching states: dim i rides symbol group i/7, payload bit i%7.
  for (std::size_t i = 0; i < dims; ++i) {
    const std::size_t group = i / kDimsPerSymbol;
    const std::size_t slice = i % kDimsPerSymbol;
    const auto mask =
        static_cast<std::uint8_t>(Alphabet::kControlFlag | (1u << slice));
    const auto value =
        static_cast<std::uint8_t>(vec.get(i) ? (1u << slice) : 0u);
    const ElementId m = network.add_ste(
        SymbolSet::ternary(value, mask), StartKind::kNone,
        prefix + "match" + std::to_string(i));
    network.connect(group == 0 ? layout.guard : layout.chain[group - 1], m);
    network.connect(m, layout.slice_collectors[slice]);
    layout.match.push_back(m);
  }

  // Sorting macro: identical to the base design, but anchored to the
  // shorter ceil(d/7)-symbol Hamming phase.
  layout.bridge = network.add_ste(SymbolSet::all(), StartKind::kNone,
                                  prefix + "bridge");
  network.connect(layout.chain.back(), layout.bridge);
  layout.sort_state = network.add_ste(SymbolSet::all_except(Alphabet::kEof),
                                      StartKind::kNone, prefix + "sort");
  network.connect(layout.bridge, layout.sort_state);
  network.connect(layout.sort_state, layout.sort_state);
  network.connect(layout.sort_state, layout.counter, CounterPort::kCountEnable);
  layout.eof_state = network.add_ste(SymbolSet::single(Alphabet::kEof),
                                     StartKind::kNone, prefix + "eof");
  network.connect(layout.sort_state, layout.eof_state);
  network.connect(layout.eof_state, layout.counter, CounterPort::kReset);
  layout.report = network.add_reporting_ste(SymbolSet::all(), report_code,
                                            prefix + "report");
  network.connect(layout.counter, layout.report);
  return layout;
}

std::vector<std::uint8_t> encode_ci_query(const util::BitVector& query) {
  const CiStreamSpec spec{query.size()};
  std::vector<std::uint8_t> out;
  out.reserve(spec.cycles_per_query());
  out.push_back(Alphabet::kSof);
  for (std::size_t j = 0; j < spec.data_symbols(); ++j) {
    std::uint8_t payload = 0;
    for (std::size_t s = 0; s < kDimsPerSymbol; ++s) {
      const std::size_t dim = j * kDimsPerSymbol + s;
      if (dim < query.size() && query.get(dim)) {
        payload |= static_cast<std::uint8_t>(1u << s);
      }
    }
    out.push_back(Alphabet::data(payload));
  }
  for (std::size_t i = 0; i < spec.fill_symbols(); ++i) {
    out.push_back(Alphabet::kFill);
  }
  out.push_back(Alphabet::kEof);
  return out;
}

std::vector<std::vector<knn::Neighbor>> ci_knn_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k) {
  if (data.empty() || queries.dims() != data.dims() || k == 0) {
    throw std::invalid_argument("ci_knn_search: bad arguments");
  }
  AutomataNetwork net("ci-ext");
  for (std::size_t v = 0; v < data.size(); ++v) {
    append_ci_macro(net, data.vector(v), static_cast<std::uint32_t>(v));
  }
  apsim::SimOptions options =
      apsim::SimOptions::from(apsim::DeviceConfig::opt_ext().features);
  apsim::Simulator sim(net, options);
  const CiStreamSpec spec{data.dims()};

  std::vector<std::vector<knn::Neighbor>> results(queries.size());
  const std::size_t want = std::min(k, data.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto events = sim.run(encode_ci_query(queries.vector(q)));
    auto& list = results[q];
    for (const apsim::ReportEvent& e : events) {
      if (list.size() >= want && spec.distance_from_offset(e.cycle) >
                                     list.back().distance) {
        break;  // events arrive distance-sorted
      }
      list.push_back({e.report_code, static_cast<std::uint32_t>(
                                         spec.distance_from_offset(e.cycle))});
    }
    std::stable_sort(list.begin(), list.end());
    if (list.size() > want) {
      list.resize(want);
    }
  }
  return results;
}

}  // namespace apss::core
