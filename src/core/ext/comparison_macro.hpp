#pragma once
// Dynamic-threshold comparison macro (Sec. VII-B, Fig. 8): two counters
// where B's internal count drives A's threshold port builds the
// "if (A > B) ..." construct that static thresholds cannot express.
//
// Semantics (see apsim/simulator.hpp): A's effective threshold each cycle
// is B's count at the end of the previous cycle plus one, so A's output
// pulses on each rising edge of the condition count(A) > count(B).

#include <cstdint>

#include "anml/network.hpp"

namespace apss::core {

struct ComparisonLayout {
  anml::ElementId a_input = anml::kInvalidElement;  ///< STE incrementing A
  anml::ElementId b_input = anml::kInvalidElement;  ///< STE incrementing B
  anml::ElementId reset_input = anml::kInvalidElement;  ///< resets both
  anml::ElementId counter_a = anml::kInvalidElement;
  anml::ElementId counter_b = anml::kInvalidElement;
  anml::ElementId output = anml::kInvalidElement;  ///< fires when A > B
};

/// Appends a comparison macro. `a_symbols` / `b_symbols` define which input
/// symbols count toward A and B; `reset_symbols` zeroes both counters.
/// The output STE reports with `report_code` two cycles after the first
/// input symbol that makes count(A) exceed count(B).
ComparisonLayout append_comparison_macro(anml::AutomataNetwork& network,
                                         const anml::SymbolSet& a_symbols,
                                         const anml::SymbolSet& b_symbols,
                                         const anml::SymbolSet& reset_symbols,
                                         std::uint32_t report_code);

}  // namespace apss::core
