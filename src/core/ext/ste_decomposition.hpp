#pragma once
// STE decomposition model (Sec. VII-C, Fig. 9, Table VII): an 8-input STE
// (a 256-entry lookup table) can be split into x sub-STEs of 8-log2(x)
// inputs. A state whose symbol class only inspects w bits of the symbol
// fits in a sub-STE of w inputs, so designs dominated by narrow states pack
// nearly x-fold denser.
//
// The analysis computes, for every STE in a network, the minimal number of
// symbol bits a lookup table must observe (SymbolSet::required_bits) and
// derives the 8-input-STE-equivalent cost under each decomposition factor.
// Two alphabet assumptions are supported:
//  * full 8-bit space (the paper's setting: fillers are arbitrary ^EOF
//    symbols, so control states need exact 8-bit matches);
//  * the restricted kNN alphabet {0x00, 0x01, SOF, EOF, FILL}, where an
//    alphabet-aware synthesizer can shrink every state to <= 3 bits.

#include <array>
#include <cstddef>

#include "anml/network.hpp"
#include "core/design.hpp"

namespace apss::anml {
class AutomataNetwork;
}

namespace apss::core {

/// Alphabet of the base kNN design (data bits ride slice 0).
anml::SymbolSet knn_alphabet();

struct DecompositionAnalysis {
  std::size_t total_stes = 0;
  /// width_histogram[w] = number of STEs needing exactly w symbol bits.
  std::array<std::size_t, 9> width_histogram = {};

  /// 8-input-STE-equivalents consumed under decomposition factor x
  /// (x in {1,2,4,8,16,32}): states with width <= 8-log2(x) cost 1/x.
  double ste_cost(std::size_t factor) const;
  /// Resource savings vs stock hardware (Table VII rows).
  double savings(std::size_t factor) const {
    const double cost = ste_cost(factor);
    return cost == 0.0 ? 0.0 : static_cast<double>(total_stes) / cost;
  }
};

/// Analyzes every STE of `network` against `alphabet`.
DecompositionAnalysis analyze_ste_decomposition(
    const anml::AutomataNetwork& network, const anml::SymbolSet& alphabet);

}  // namespace apss::core
