#include "core/ext/ste_decomposition.hpp"

#include <bit>
#include <stdexcept>

namespace apss::core {

anml::SymbolSet knn_alphabet() {
  anml::SymbolSet a;
  a.insert(Alphabet::data_bit(false));
  a.insert(Alphabet::data_bit(true));
  a.insert(Alphabet::kSof);
  a.insert(Alphabet::kEof);
  a.insert(Alphabet::kFill);
  return a;
}

double DecompositionAnalysis::ste_cost(std::size_t factor) const {
  if (factor == 0 || factor > 256 ||
      std::popcount(static_cast<unsigned>(factor)) != 1) {
    throw std::invalid_argument("ste_cost: factor must be a power of two");
  }
  const std::size_t log2x =
      static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(factor)));
  const std::size_t sub_width = 8 - log2x;
  double cost = 0.0;
  for (std::size_t w = 0; w <= 8; ++w) {
    if (w <= sub_width) {
      cost += static_cast<double>(width_histogram[w]) /
              static_cast<double>(factor);
    } else {
      // Too wide to decompose: occupies a full 8-input STE.
      cost += static_cast<double>(width_histogram[w]);
    }
  }
  return cost;
}

DecompositionAnalysis analyze_ste_decomposition(
    const anml::AutomataNetwork& network, const anml::SymbolSet& alphabet) {
  DecompositionAnalysis analysis;
  for (std::size_t i = 0; i < network.size(); ++i) {
    const anml::Element& e =
        network.element(static_cast<anml::ElementId>(i));
    if (e.kind != anml::ElementKind::kSte) {
      continue;
    }
    ++analysis.total_stes;
    const int w = e.symbols.required_bits(alphabet);
    ++analysis.width_histogram[static_cast<std::size_t>(w)];
  }
  return analysis;
}

}  // namespace apss::core
