#pragma once
// Jaccard similarity search — the other metric the paper notes is
// "well-documented and can be efficiently implemented" on the AP
// (Sec. II-C, citing Micron's cookbook). Sets are binary vectors; a
// Jaccard macro counts INTERSECTION bits (positions where both the
// encoded set and the query are 1) and reuses the temporal sort so
// higher-overlap sets report earlier.
//
// Counter threshold = m = |A| (the encoded set's cardinality). For
// intersection i < m the report lands at offset d+4+(m-i); a FULL
// intersection (i = m) crosses during the compute phase and reports
// earlier than d+4, which the decoder maps to i = m unambiguously.
// Exact Jaccard = i / (|A| + |B| - i) is finished on the host, which
// knows |B| = popcount(query) — the AP performs the heavy candidate
// ranking, the host the final O(k) rescoring.

#include <cstdint>
#include <vector>

#include "anml/network.hpp"
#include "core/design.hpp"
#include "core/hamming_macro.hpp"
#include "knn/dataset.hpp"
#include "util/bitvector.hpp"

namespace apss::core {

struct JaccardMacroLayout {
  anml::ElementId counter = anml::kInvalidElement;
  anml::ElementId report = anml::kInvalidElement;
  std::size_t set_bits = 0;  ///< m = |A|
};

/// Appends the Jaccard macro for `vec` (requires at least one set bit).
JaccardMacroLayout append_jaccard_macro(anml::AutomataNetwork& network,
                                        const util::BitVector& vec,
                                        std::uint32_t report_code,
                                        const HammingMacroOptions& options = {});

struct JaccardResult {
  std::uint32_t id = 0;
  std::uint32_t intersection = 0;
  double jaccard = 0.0;

  friend bool operator==(const JaccardResult&, const JaccardResult&) = default;
};

/// Top-k Jaccard search over `data` via simulated AP execution. Results
/// are sorted by descending Jaccard (ties by id). Vectors and queries
/// must each have at least one set bit.
std::vector<std::vector<JaccardResult>> jaccard_search(
    const knn::BinaryDataset& data, const knn::BinaryDataset& queries,
    std::size_t k);

/// Host-side exact Jaccard for validation.
double exact_jaccard(std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b);

}  // namespace apss::core
