#pragma once
// Shared constants of the kNN automata design: the symbol alphabet and the
// stream/report timing algebra (Sec. III, Figs. 2-4).
//
// Alphabet. One 8-bit symbol is consumed per cycle. Bit 7 distinguishes
// control symbols (SOF / EOF / FILL) from data symbols; data symbols carry
// query bits in bits 0..6. The base design uses only bit 0 (one query bit
// per symbol); symbol-stream multiplexing (Sec. VI-B) uses bits 0..6 for
// seven parallel queries; the counter-increment extension (Sec. VII-A) uses
// bits 0..6 for seven dimensions of one query.
//
// Timing. With collector-tree depth L (1 for d <= collector_fan_in^2):
//   cycle 1            SOF
//   cycles 2 .. d+1    query bits q_0 .. q_{d-1}
//   cycles d+2 .. 2d+L+2   FILL   (d+L+1 fillers drive the temporal sort)
//   cycle 2d+L+3       EOF    (resets the distance counter)
// A macro whose encoded vector matches the query in h dimensions (inverted
// Hamming distance h) reports at offset 2d+L+3-h within its query frame, so
// Hamming distance = report_offset - (d+L+3).

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace apss::core {

struct Alphabet {
  static constexpr std::uint8_t kControlFlag = 0x80;
  static constexpr std::uint8_t kSof = 0x81;   ///< start-of-file guard symbol
  static constexpr std::uint8_t kEof = 0x82;   ///< end-of-file reset symbol
  static constexpr std::uint8_t kFill = 0x83;  ///< sort-phase filler

  /// Data symbol carrying up to 7 payload bits (bit 7 clear).
  static constexpr std::uint8_t data(std::uint8_t payload7) noexcept {
    return payload7 & 0x7f;
  }
  /// Data symbol with a single query bit in slice 0 (the base design).
  static constexpr std::uint8_t data_bit(bool bit) noexcept {
    return bit ? 0x01 : 0x00;
  }
  static constexpr bool is_control(std::uint8_t symbol) noexcept {
    return (symbol & kControlFlag) != 0;
  }
};

/// Stream geometry for one query against macros of dimensionality `dims`
/// built with collector-tree depth `collector_levels`.
struct StreamSpec {
  std::size_t dims = 0;
  std::size_t collector_levels = 1;

  std::size_t fill_symbols() const noexcept {
    return dims + collector_levels + 1;
  }
  /// Symbols (= cycles) per query frame: SOF + d + fills + EOF.
  std::size_t cycles_per_query() const noexcept {
    return 2 * dims + collector_levels + 3;
  }
  /// Report offset within the frame for inverted Hamming distance h.
  std::size_t report_offset(std::size_t inverted_distance) const noexcept {
    return cycles_per_query() - inverted_distance;
  }
  /// Inverse mapping: Hamming distance from a report offset. Throws if the
  /// offset is outside the legal window [d+L+3, 2d+L+3].
  std::size_t distance_from_offset(std::size_t offset) const {
    const std::size_t base = dims + collector_levels + 3;
    if (offset < base || offset > cycles_per_query()) {
      throw std::out_of_range("StreamSpec: report offset outside sort window");
    }
    return offset - base;
  }
};

}  // namespace apss::core
