#pragma once
// Hamming + sorting macro builder (Figs. 2a / 2b of the paper).
//
// One macro per dataset vector. The Hamming half counts matching dimensions
// into an "inverted Hamming distance" counter; the sorting half uniformly
// increments that counter during the fill phase so the report time encodes
// the vector's Hamming distance (temporally encoded sort, Sec. III-B).

#include <cstdint>
#include <vector>

#include "anml/network.hpp"
#include "core/design.hpp"
#include "util/bitvector.hpp"

namespace apss::core {

struct HammingMacroOptions {
  /// Maximum children per collector-tree node (the paper's reduction tree
  /// "to limit the maximum state fan in and improve routability").
  std::size_t collector_fan_in = 16;
  /// Maximum collector roots feeding the counter's enable port directly.
  std::size_t max_counter_fan_in = 32;
  /// Which bit slice of the data symbols the matching states observe
  /// (slice 0 for the base design; 0..6 under stream multiplexing).
  std::size_t bit_slice = 0;
};

/// Element ids of one placed macro, for introspection, traces, and tests.
struct MacroLayout {
  anml::ElementId guard = anml::kInvalidElement;
  std::vector<anml::ElementId> chain;       ///< the "*" backbone, one per dim
  std::vector<anml::ElementId> match;       ///< matching state per dim
  std::vector<anml::ElementId> collectors;  ///< all collector-tree nodes
  std::vector<anml::ElementId> bridge;      ///< delay chain before the sort state
  anml::ElementId sort_state = anml::kInvalidElement;
  anml::ElementId eof_state = anml::kInvalidElement;
  anml::ElementId counter = anml::kInvalidElement;
  anml::ElementId report = anml::kInvalidElement;
  std::size_t collector_levels = 1;  ///< tree depth L (timing parameter)

  StreamSpec stream_spec(std::size_t dims) const noexcept {
    return {dims, collector_levels};
  }
};

/// Appends the macro encoding `vec` to `network`; report events carry
/// `report_code` (the dataset vector id). Returns the element layout.
MacroLayout append_hamming_macro(anml::AutomataNetwork& network,
                                 const util::BitVector& vec,
                                 std::uint32_t report_code,
                                 const HammingMacroOptions& options = {});

/// Collector-tree depth the builder will use for `dims` under `options`
/// (needed by the stream encoder before any macro is built).
std::size_t collector_levels_for(std::size_t dims,
                                 const HammingMacroOptions& options = {});

}  // namespace apss::core
