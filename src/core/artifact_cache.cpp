#include "core/artifact_cache.hpp"

#include <utility>

#include "apsim/simulator.hpp"

namespace apss::core {

const char* to_string(ArtifactOutcome outcome) noexcept {
  switch (outcome) {
    case ArtifactOutcome::kDisabled:
      return "disabled";
    case ArtifactOutcome::kHit:
      return "hit";
    case ArtifactOutcome::kMiss:
      return "miss";
    case ArtifactOutcome::kInvalidated:
      return "invalidated";
  }
  return "unknown";
}

std::string artifact_cache_path(const std::string& dir,
                                std::string_view builder, std::size_t slot) {
  std::string index = std::to_string(slot);
  if (index.size() < 4) {
    index.insert(0, 4 - index.size(), '0');
  }
  std::string path = dir;
  if (!path.empty() && path.back() != '/') {
    path += '/';
  }
  path.append(builder);
  path += ".config";
  path += index;
  path += ".apss-art";
  return path;
}

void hash_dataset_slice(util::Fnv1a64& hasher, const knn::BinaryDataset& data,
                        std::size_t begin, std::size_t count) {
  hasher.update_u64(count);
  hasher.update_u64(data.dims());
  hasher.update_u64(data.word_stride());
  for (std::size_t i = begin; i < begin + count; ++i) {
    for (const std::uint64_t word : data.row(i)) {
      hasher.update_u64(word);
    }
  }
}

void hash_macro_options(util::Fnv1a64& hasher,
                        const HammingMacroOptions& options) {
  hasher.update_u64(options.collector_fan_in);
  hasher.update_u64(options.max_counter_fan_in);
  hasher.update_u64(options.bit_slice);
}

void hash_sim_options(util::Fnv1a64& hasher, const apsim::SimOptions& options) {
  hasher.update_u32(options.max_counter_increment);
  hasher.update(static_cast<std::uint8_t>(options.allow_dynamic_threshold));
}

CachedProgram try_load_program(const std::string& path,
                               std::uint64_t expected_key,
                               std::uint64_t expected_lanes,
                               std::uint64_t expected_dims) {
  CachedProgram out;
  artifact::LoadResult loaded = artifact::load(path);
  if (!loaded) {
    if (loaded.error.code == artifact::LoadErrorCode::kNotFound) {
      out.outcome = ArtifactOutcome::kMiss;
    } else {
      out.outcome = ArtifactOutcome::kInvalidated;
      out.detail = std::string(artifact::to_string(loaded.error.code)) + ": " +
                   loaded.error.detail;
    }
    return out;
  }
  const artifact::Artifact& art = *loaded.artifact;
  if (art.meta.key_hash != expected_key) {
    out.outcome = ArtifactOutcome::kInvalidated;
    out.detail = "compile-input key mismatch (stale artifact)";
    return out;
  }
  if (art.program->macro_count() != expected_lanes ||
      art.program->dims() != expected_dims) {
    out.outcome = ArtifactOutcome::kInvalidated;
    out.detail = "program shape mismatch despite matching key";
    return out;
  }
  out.outcome = ArtifactOutcome::kHit;
  out.program = art.program;
  return out;
}

bool store_program(const std::string& path, const artifact::ArtifactMeta& meta,
                   std::shared_ptr<const apsim::BatchProgram> program,
                   std::string* error) {
  artifact::Artifact art;
  art.meta = meta;
  art.program = std::move(program);
  return artifact::save(path, art, error);
}

}  // namespace apss::core
