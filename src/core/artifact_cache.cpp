#include "core/artifact_cache.hpp"

#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "apsim/simulator.hpp"
#include "util/fault_injection.hpp"

namespace apss::core {
namespace {

/// Bounded exponential backoff for transient cache I/O: 1 + kIoRetries
/// attempts, sleeping 1, 2, 4... ms between them. The cache is an
/// optimization — after the budget it degrades to compile-every-time, it
/// never fails the engine.
constexpr std::size_t kIoRetries = 3;

void backoff_sleep(std::size_t attempt) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1u << attempt));
}

/// Damage (vs. staleness): these codes mean the BYTES are bad, so the file
/// is worth keeping for a post-mortem. kVersionMismatch and key mismatches
/// are honest staleness — the artifact is fine, just not for us — and are
/// plainly overwritten instead.
bool is_corruption(artifact::LoadErrorCode code) noexcept {
  switch (code) {
    case artifact::LoadErrorCode::kTruncated:
    case artifact::LoadErrorCode::kBadMagic:
    case artifact::LoadErrorCode::kHashMismatch:
    case artifact::LoadErrorCode::kMalformed:
      return true;
    default:
      return false;
  }
}

/// Renames a damaged slot file aside (overwriting any earlier quarantine
/// of the same slot — latest damage wins). Rename, not delete: the
/// operator can inspect what corrupted. Best-effort; returns success.
bool quarantine_slot(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  return !ec;
}

}  // namespace

const char* to_string(ArtifactOutcome outcome) noexcept {
  switch (outcome) {
    case ArtifactOutcome::kDisabled:
      return "disabled";
    case ArtifactOutcome::kHit:
      return "hit";
    case ArtifactOutcome::kMiss:
      return "miss";
    case ArtifactOutcome::kInvalidated:
      return "invalidated";
  }
  return "unknown";
}

std::string artifact_cache_path(const std::string& dir,
                                std::string_view builder, std::size_t slot) {
  std::string index = std::to_string(slot);
  if (index.size() < 4) {
    index.insert(0, 4 - index.size(), '0');
  }
  std::string path = dir;
  if (!path.empty() && path.back() != '/') {
    path += '/';
  }
  path.append(builder);
  path += ".config";
  path += index;
  path += ".apss-art";
  return path;
}

void hash_dataset_slice(util::Fnv1a64& hasher, const knn::BinaryDataset& data,
                        std::size_t begin, std::size_t count) {
  hasher.update_u64(count);
  hasher.update_u64(data.dims());
  hasher.update_u64(data.word_stride());
  for (std::size_t i = begin; i < begin + count; ++i) {
    for (const std::uint64_t word : data.row(i)) {
      hasher.update_u64(word);
    }
  }
}

void hash_macro_options(util::Fnv1a64& hasher,
                        const HammingMacroOptions& options) {
  hasher.update_u64(options.collector_fan_in);
  hasher.update_u64(options.max_counter_fan_in);
  hasher.update_u64(options.bit_slice);
}

void hash_sim_options(util::Fnv1a64& hasher, const apsim::SimOptions& options) {
  hasher.update_u32(options.max_counter_increment);
  hasher.update(static_cast<std::uint8_t>(options.allow_dynamic_threshold));
}

CachedProgram try_load_program(const std::string& path,
                               std::uint64_t expected_key,
                               std::uint64_t expected_lanes,
                               std::uint64_t expected_dims) {
  CachedProgram out;
  artifact::LoadResult loaded;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      util::FaultInjector::check(util::kFaultArtifactRead);
      loaded = artifact::load(path);
    } catch (const util::InjectedFault& fault) {
      // The injector models a transient I/O failure; route it through the
      // same typed-error path a real EIO would take.
      loaded = artifact::LoadResult{};
      loaded.error = {artifact::LoadErrorCode::kIoError, fault.what()};
    }
    if (loaded || loaded.error.code != artifact::LoadErrorCode::kIoError ||
        attempt >= kIoRetries) {
      break;
    }
    ++out.io_retries;
    backoff_sleep(attempt);
  }
  if (!loaded) {
    if (loaded.error.code == artifact::LoadErrorCode::kNotFound) {
      out.outcome = ArtifactOutcome::kMiss;
    } else {
      out.outcome = ArtifactOutcome::kInvalidated;
      out.detail = std::string(artifact::to_string(loaded.error.code)) + ": " +
                   loaded.error.detail;
      if (is_corruption(loaded.error.code)) {
        out.quarantined = quarantine_slot(path);
      }
    }
    return out;
  }
  const artifact::Artifact& art = *loaded.artifact;
  if (art.meta.key_hash != expected_key) {
    out.outcome = ArtifactOutcome::kInvalidated;
    out.detail = "compile-input key mismatch (stale artifact)";
    return out;
  }
  if (art.program->macro_count() != expected_lanes ||
      art.program->dims() != expected_dims) {
    out.outcome = ArtifactOutcome::kInvalidated;
    out.detail = "program shape mismatch despite matching key";
    return out;
  }
  out.outcome = ArtifactOutcome::kHit;
  out.program = art.program;
  return out;
}

bool store_program(const std::string& path, const artifact::ArtifactMeta& meta,
                   std::shared_ptr<const apsim::BatchProgram> program,
                   std::string* error, std::size_t* io_retries) {
  artifact::Artifact art;
  art.meta = meta;
  art.program = std::move(program);
  for (std::size_t attempt = 0;; ++attempt) {
    bool ok = false;
    try {
      util::FaultInjector::check(util::kFaultArtifactWrite);
      ok = artifact::save(path, art, error);
    } catch (const util::InjectedFault& fault) {
      if (error != nullptr) {
        *error = fault.what();
      }
    }
    if (ok || attempt >= kIoRetries) {
      return ok;
    }
    if (io_retries != nullptr) {
      ++*io_retries;
    }
    backoff_sleep(attempt);
  }
}

std::size_t sweep_stale_artifact_tmp(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;
  }
  std::size_t swept = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // Only the save path's own temp pattern ("<slot>.apss-art.tmp.<n>"):
    // anything else in the directory — including quarantined slots — is
    // not ours to touch.
    if (name.find(".apss-art.tmp.") == std::string::npos) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) && !remove_ec) {
      ++swept;
    }
  }
  return swept;
}

}  // namespace apss::core
