#pragma once
// Bridge from the Hamming macro builder to the bit-parallel backend: views
// a core::MacroLayout as the layering-neutral apsim::HammingMacroSlots that
// apsim::BatchProgram::try_compile consumes. Lives apart from
// hamming_macro.hpp so macro construction does not drag in the simulator
// headers.

#include "apsim/batch_simulator.hpp"
#include "core/hamming_macro.hpp"

namespace apss::core {

/// Layout view consumed by apsim::BatchProgram::try_compile. The spans
/// alias `layout`, which must outlive the returned value.
inline apsim::HammingMacroSlots batch_slots(const MacroLayout& layout) {
  return {layout.guard,      layout.chain,     layout.match,
          layout.collectors, layout.bridge,    layout.sort_state,
          layout.eof_state,  layout.counter,   layout.report,
          layout.collector_levels};
}

}  // namespace apss::core
