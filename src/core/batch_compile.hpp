#pragma once
// Bridge from the core macro builders to the bit-parallel backend: views
// a core::MacroLayout (plain or multiplexed Hamming macro) or a
// core::PackedGroupLayout (vector-packed group) as the layering-neutral
// slot structs that apsim::BatchProgram::try_compile consumes. Lives apart
// from the builder headers so macro construction does not drag in the
// simulator headers.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apsim/batch_simulator.hpp"
#include "core/hamming_macro.hpp"
#include "core/opt/vector_packing.hpp"

namespace apss::core {

/// Layout view consumed by apsim::BatchProgram::try_compile. The spans
/// alias `layout`, which must outlive the returned value.
inline apsim::HammingMacroSlots batch_slots(const MacroLayout& layout) {
  return {layout.guard,      layout.chain,     layout.match,
          layout.collectors, layout.bridge,    layout.sort_state,
          layout.eof_state,  layout.counter,   layout.report,
          layout.collector_levels};
}

/// Packed-group view consumed by the packed try_compile overload. The
/// spans alias `layout`, which must outlive the returned value.
inline apsim::PackedGroupSlots packed_batch_slots(
    const PackedGroupLayout& layout) {
  return {layout.guard,      layout.chain,   layout.value_states,
          layout.bridge,     layout.sort_state, layout.eof_state,
          layout.counters,   layout.reports, layout.collectors,
          layout.collector_levels};
}

/// try_compile over builder layouts for the plain/multiplexed shape: builds
/// the slot views and hands them to the plain overload. Pure function of
/// its arguments — safe to run concurrently over independent partitions
/// (the engine compiles configuration shards on the thread pool).
inline std::shared_ptr<const apsim::BatchProgram> compile_hamming_batch(
    const anml::AutomataNetwork& network, std::span<const MacroLayout> layouts,
    apsim::SimOptions options, std::string* reason = nullptr) {
  std::vector<apsim::HammingMacroSlots> slots;
  slots.reserve(layouts.size());
  for (const MacroLayout& layout : layouts) {
    slots.push_back(batch_slots(layout));
  }
  return apsim::BatchProgram::try_compile(network, slots, options, reason);
}

/// Same bridge for the vector-packed shape.
inline std::shared_ptr<const apsim::BatchProgram> compile_packed_batch(
    const anml::AutomataNetwork& network,
    std::span<const PackedGroupLayout> layouts, apsim::SimOptions options,
    std::string* reason = nullptr) {
  std::vector<apsim::PackedGroupSlots> slots;
  slots.reserve(layouts.size());
  for (const PackedGroupLayout& layout : layouts) {
    slots.push_back(packed_batch_slots(layout));
  }
  return apsim::BatchProgram::try_compile(network, slots, options, reason);
}

}  // namespace apss::core
