#include "core/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/batch_compile.hpp"
#include "core/temporal_decode.hpp"

namespace apss::core {

ApKnnEngine::ApKnnEngine(knn::BinaryDataset dataset, EngineOptions options)
    : dataset_(std::move(dataset)), options_(options) {
  if (dataset_.empty()) {
    throw std::invalid_argument("ApKnnEngine: empty dataset");
  }
  const std::size_t dims = dataset_.dims();
  const bool packed = options_.packing_group_size > 0;
  VectorPackingOptions pack_opt;
  pack_opt.group_size = options_.packing_group_size;
  pack_opt.style = options_.packing_style;
  pack_opt.macro = options_.macro;
  spec_ = StreamSpec{dims, packed && pack_opt.style == CollectorStyle::kFlat
                               ? 1
                               : collector_levels_for(dims, options_.macro)};

  // Board capacity: how many vectors fit one configuration. Plain macros of
  // a given dimensionality are isomorphic, so any vector serves as the
  // prototype. Packed groups differ in how many value states their vectors
  // share, so the prototype is a WORST-CASE group (alternating all-zeros /
  // all-ones rows: two value states at every dimension once the group holds
  // two vectors) — capacity must never overcommit the board just because
  // the first group happened to share more than later ones.
  {
    anml::AutomataNetwork prototype("prototype");
    std::size_t vectors_per_copy = 1;
    if (packed) {
      vectors_per_copy = std::min(pack_opt.group_size, dataset_.size());
      knn::BinaryDataset worst(vectors_per_copy, dims);
      for (std::size_t v = 1; v < vectors_per_copy; v += 2) {
        for (std::size_t i = 0; i < dims; ++i) {
          worst.set(v, i, true);
        }
      }
      append_packed_group(prototype, worst, 0, vectors_per_copy, pack_opt);
    } else {
      append_hamming_macro(prototype, dataset_.vector(0), 0, options_.macro);
    }
    const apsim::MacroFootprint fp = apsim::footprint_of(prototype);
    capacity_ = apsim::max_copies(fp, options_.board, options_.placement) *
                vectors_per_copy;
    if (capacity_ == 0) {
      throw std::invalid_argument(
          "ApKnnEngine: one macro exceeds the board capacity");
    }
  }
  if (options_.max_vectors_per_config != 0) {
    capacity_ = std::min(capacity_, options_.max_vectors_per_config);
  }

  // Compile one automata network per board configuration. When the
  // bit-parallel backend is requested, each configuration is additionally
  // compiled into a packed BatchProgram; failures leave `program` null and
  // that configuration runs on the cycle-accurate simulator.
  const apsim::SimOptions sim_options =
      apsim::SimOptions::from(options_.device.features);
  std::string decline_reason;
  for (std::size_t begin = 0; begin < dataset_.size(); begin += capacity_) {
    const std::size_t count = std::min(capacity_, dataset_.size() - begin);
    Partition p;
    p.begin = begin;
    p.count = count;
    p.network = std::make_unique<anml::AutomataNetwork>(
        "config" + std::to_string(partitions_.size()));
    if (packed) {
      std::vector<PackedGroupLayout> layouts;
      for (std::size_t gb = begin; gb < begin + count;
           gb += pack_opt.group_size) {
        const std::size_t gcount =
            std::min(pack_opt.group_size, begin + count - gb);
        layouts.push_back(
            append_packed_group(*p.network, dataset_, gb, gcount, pack_opt));
        if (layouts.back().collector_levels != spec_.collector_levels) {
          throw std::logic_error("ApKnnEngine: inconsistent collector depth");
        }
      }
      if (options_.backend == SimulationBackend::kBitParallel) {
        std::vector<apsim::PackedGroupSlots> slots;
        slots.reserve(layouts.size());
        for (const PackedGroupLayout& layout : layouts) {
          slots.push_back(packed_batch_slots(layout));
        }
        p.program = apsim::BatchProgram::try_compile(*p.network, slots,
                                                     sim_options,
                                                     &decline_reason);
      }
    } else {
      std::vector<MacroLayout> layouts;
      layouts.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        layouts.push_back(append_hamming_macro(
            *p.network, dataset_.vector(begin + i),
            static_cast<std::uint32_t>(begin + i), options_.macro));
        if (layouts.back().collector_levels != spec_.collector_levels) {
          throw std::logic_error("ApKnnEngine: inconsistent collector depth");
        }
      }
      if (options_.backend == SimulationBackend::kBitParallel) {
        std::vector<apsim::HammingMacroSlots> slots;
        slots.reserve(count);
        for (const MacroLayout& layout : layouts) {
          slots.push_back(batch_slots(layout));
        }
        p.program = apsim::BatchProgram::try_compile(*p.network, slots,
                                                     sim_options,
                                                     &decline_reason);
      }
    }

    // Backend/fallback bookkeeping (EngineStats::backend): count the fast
    // path per macro family; aggregate decline reasons so no configuration
    // falls back to the cycle-accurate simulator silently.
    ++compile_stats_.configurations;
    if (p.program != nullptr) {
      ++compile_stats_.bit_parallel;
      switch (p.program->family()) {
        case apsim::MacroFamily::kHamming: ++compile_stats_.hamming; break;
        case apsim::MacroFamily::kPacked: ++compile_stats_.packed; break;
        case apsim::MacroFamily::kMultiplexed:
          ++compile_stats_.multiplexed;
          break;
      }
    } else if (options_.backend == SimulationBackend::kBitParallel) {
      ++compile_stats_.fallback;
      auto& reasons = compile_stats_.fallback_reasons;
      const auto it = std::find_if(
          reasons.begin(), reasons.end(),
          [&](const auto& entry) { return entry.first == decline_reason; });
      if (it != reasons.end()) {
        ++it->second;
      } else {
        reasons.emplace_back(decline_reason, 1);
      }
    }
    partitions_.push_back(std::move(p));
  }
}

std::size_t ApKnnEngine::bit_parallel_configurations() const noexcept {
  std::size_t n = 0;
  for (const Partition& p : partitions_) {
    n += p.program != nullptr;
  }
  return n;
}

apsim::PlacementResult ApKnnEngine::placement(std::size_t i) const {
  return apsim::place(*partitions_.at(i).network, options_.board,
                      options_.placement);
}

EngineStats ApKnnEngine::project(std::size_t query_count) const {
  EngineStats s;
  s.configurations = partitions_.size();
  s.vectors_per_config = capacity_;
  s.cycles_per_query = spec_.cycles_per_query();
  s.queries = query_count;
  s.simulated_cycles = query_count * s.cycles_per_query * s.configurations;
  s.backend = compile_stats_;
  return s;
}

double ApKnnEngine::report_bandwidth_gbps() const {
  // Sec. VI-C: 32*(n + d) bits conveyed per query, one query every
  // cycles_per_query cycles (the paper uses 2d; we use our exact frame).
  const double bits = 32.0 * (static_cast<double>(capacity_) +
                              static_cast<double>(dataset_.dims()));
  const double seconds = static_cast<double>(spec_.cycles_per_query()) *
                         options_.device.timing.cycle_seconds();
  return bits / seconds / 1e9;
}

std::vector<std::vector<knn::Neighbor>> ApKnnEngine::search(
    const knn::BinaryDataset& queries, std::size_t k) {
  if (queries.dims() != dataset_.dims()) {
    throw std::invalid_argument("ApKnnEngine::search: query dims mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("ApKnnEngine::search: k must be >= 1");
  }
  const std::size_t q = queries.size();
  stats_ = project(q);

  // One task per (configuration, query chunk); each task owns a simulator
  // instance so tasks are embarrassingly parallel.
  const std::size_t chunk = std::max<std::size_t>(1, options_.queries_per_chunk);
  struct Task {
    std::size_t config = 0;
    std::size_t q_begin = 0;
    std::size_t q_count = 0;
    std::vector<std::vector<knn::Neighbor>> partial;
    std::size_t report_events = 0;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < partitions_.size(); ++c) {
    for (std::size_t q_begin = 0; q_begin < q; q_begin += chunk) {
      tasks.push_back({c, q_begin, std::min(chunk, q - q_begin), {}, 0});
    }
  }

  const SymbolStreamEncoder encoder(spec_);
  const auto run_task = [&](std::size_t t) {
    Task& task = tasks[t];
    const Partition& part = partitions_[task.config];
    std::vector<std::uint8_t> stream;
    stream.reserve(task.q_count * spec_.cycles_per_query());
    for (std::size_t i = 0; i < task.q_count; ++i) {
      encoder.append_query(queries.row(task.q_begin + i), stream);
    }
    std::vector<apsim::ReportEvent> events;
    if (part.program != nullptr) {
      apsim::BatchSimulator sim(part.program);
      events = sim.run(stream);
    } else {
      apsim::Simulator sim(*part.network,
                           apsim::SimOptions::from(options_.device.features));
      events = sim.run(stream);
    }
    task.report_events = events.size();
    const TemporalSortDecoder decoder(spec_, task.q_count);
    task.partial = decoder.decode(events, k);
  };

  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, tasks.size(), run_task, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      run_task(t);
    }
  }

  // Host-side merge across configurations (Sec. III-C: the host tracks
  // intermediary per-query results between reconfigurations).
  std::vector<std::vector<knn::Neighbor>> results(q);
  for (const Task& task : tasks) {
    stats_.report_events += task.report_events;
    for (std::size_t i = 0; i < task.q_count; ++i) {
      auto& dst = results[task.q_begin + i];
      dst.insert(dst.end(), task.partial[i].begin(), task.partial[i].end());
    }
  }
  const std::size_t want = std::min(k, dataset_.size());
  for (auto& list : results) {
    std::sort(list.begin(), list.end());
    if (list.size() > want) {
      list.resize(want);
    }
  }
  return results;
}

}  // namespace apss::core
