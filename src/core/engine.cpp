#include "core/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <system_error>

#include "anml/anml_io.hpp"
#include "core/batch_compile.hpp"
#include "core/temporal_decode.hpp"
#include "util/fault_injection.hpp"
#include "util/fnv.hpp"

namespace apss::core {
namespace {

/// Builder tag: names the cache slot files and salts the compile-input key,
/// so engine artifacts and multiplexed artifacts can never satisfy each
/// other even from a shared cache directory.
constexpr std::string_view kEngineBuilder = "apss-knn-engine";

/// Worst-wins ordering for reducing shard outcomes to one per-configuration
/// state: a hard failure outranks cancellation outranks timeout outranks
/// degradation outranks ok.
int severity(ShardState state) noexcept {
  switch (state) {
    case ShardState::kOk:
      return 0;
    case ShardState::kDegraded:
      return 1;
    case ShardState::kTimedOut:
      return 2;
    case ShardState::kCancelled:
      return 3;
    case ShardState::kFailed:
      return 4;
  }
  return 4;
}

}  // namespace

const char* to_string(OnError policy) noexcept {
  switch (policy) {
    case OnError::kFailFast:
      return "fail-fast";
    case OnError::kIsolate:
      return "isolate";
    case OnError::kRetry:
      return "retry";
  }
  return "unknown";
}

const char* to_string(ShardState state) noexcept {
  switch (state) {
    case ShardState::kOk:
      return "ok";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kTimedOut:
      return "timed-out";
    case ShardState::kCancelled:
      return "cancelled";
    case ShardState::kFailed:
      return "failed";
  }
  return "unknown";
}

ApKnnEngine::ApKnnEngine(knn::BinaryDataset dataset, EngineOptions options)
    : dataset_(std::move(dataset)), options_(options) {
  if (dataset_.empty()) {
    throw std::invalid_argument("ApKnnEngine: empty dataset");
  }
  // Resolve the worker pool once: an explicit pool wins; otherwise
  // `threads` picks serial (1), the shared process-wide pool (0), or a
  // private pool sized so that N threads total run this engine's shards
  // (N-1 workers — the submitting thread participates in every job).
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else if (options_.threads == 0) {
    pool_ = &util::ThreadPool::global();
  } else if (options_.threads > 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.threads - 1);
    pool_ = owned_pool_.get();
  }
  const std::size_t dims = dataset_.dims();
  const bool packed = options_.packing_group_size > 0;
  VectorPackingOptions pack_opt;
  pack_opt.group_size = options_.packing_group_size;
  pack_opt.style = options_.packing_style;
  pack_opt.macro = options_.macro;
  spec_ = StreamSpec{dims, packed && pack_opt.style == CollectorStyle::kFlat
                               ? 1
                               : collector_levels_for(dims, options_.macro)};

  // Board capacity: how many vectors fit one configuration. Plain macros of
  // a given dimensionality are isomorphic, so any vector serves as the
  // prototype. Packed groups differ in how many value states their vectors
  // share, so the prototype is a WORST-CASE group (alternating all-zeros /
  // all-ones rows: two value states at every dimension once the group holds
  // two vectors) — capacity must never overcommit the board just because
  // the first group happened to share more than later ones.
  {
    anml::AutomataNetwork prototype("prototype");
    std::size_t vectors_per_copy = 1;
    if (packed) {
      vectors_per_copy = std::min(pack_opt.group_size, dataset_.size());
      knn::BinaryDataset worst(vectors_per_copy, dims);
      for (std::size_t v = 1; v < vectors_per_copy; v += 2) {
        for (std::size_t i = 0; i < dims; ++i) {
          worst.set(v, i, true);
        }
      }
      append_packed_group(prototype, worst, 0, vectors_per_copy, pack_opt);
    } else {
      append_hamming_macro(prototype, dataset_.vector(0), 0, options_.macro);
    }
    const apsim::MacroFootprint fp = apsim::footprint_of(prototype);
    capacity_ = apsim::max_copies(fp, options_.board, options_.placement) *
                vectors_per_copy;
    if (capacity_ == 0) {
      throw std::invalid_argument(
          "ApKnnEngine: one macro exceeds the board capacity");
    }
  }
  if (options_.max_vectors_per_config != 0) {
    capacity_ = std::min(capacity_, options_.max_vectors_per_config);
  }

  // Compile one automata network per board configuration. When the
  // bit-parallel backend is requested, each configuration is additionally
  // compiled into a packed BatchProgram; failures leave `program` null and
  // that configuration runs on the cycle-accurate simulator. With an
  // artifact cache directory, each configuration first tries to LOAD its
  // program — a hit skips both the network construction and the
  // verification compile (network(i) rebuilds lazily if inspected).
  // Partitions are independent, so configuration shards compile on the
  // worker pool; each shard records its own decline reason and cache
  // outcome and the reduce below walks shards in configuration order, so
  // the aggregated stats are identical at any thread count (no shared
  // counter mutation).
  const bool cache_enabled =
      options_.backend == SimulationBackend::kBitParallel &&
      !options_.artifact_cache_dir.empty();
  if (cache_enabled) {
    std::error_code ec;
    std::filesystem::create_directories(options_.artifact_cache_dir, ec);
    if (ec) {
      throw std::invalid_argument(
          "ApKnnEngine: cannot create artifact cache directory " +
          options_.artifact_cache_dir + ": " + ec.message());
    }
    // A crash between a slot file's temp write and its rename leaks
    // "*.apss-art.tmp.*" files; sweep them now that the directory is ours.
    compile_stats_.artifact.stale_tmp_swept =
        sweep_stale_artifact_tmp(options_.artifact_cache_dir);
  }
  const apsim::SimOptions sim_options =
      apsim::SimOptions::from(options_.device.features);
  partitions_.resize((dataset_.size() + capacity_ - 1) / capacity_);
  std::vector<std::string> decline_reasons(partitions_.size());
  std::vector<ArtifactCacheStats> cache_stats(partitions_.size());
  const auto build_partition = [&](std::size_t c) {
    Partition& p = partitions_[c];
    p.begin = c * capacity_;
    p.count = std::min(capacity_, dataset_.size() - p.begin);
    if (cache_enabled) {
      CachedProgram cached =
          try_load_program(artifact_cache_file(c), artifact_key(c), p.count,
                           dataset_.dims());
      cache_stats[c].record(cached.outcome);
      cache_stats[c].io_retries += cached.io_retries;
      cache_stats[c].quarantined += cached.quarantined ? 1 : 0;
      if (cached.outcome == ArtifactOutcome::kHit) {
        p.program = std::move(cached.program);
        return;
      }
    }
    std::vector<MacroLayout> hamming_layouts;
    std::vector<PackedGroupLayout> packed_layouts;
    build_network(p, &hamming_layouts, &packed_layouts);
    if (options_.backend == SimulationBackend::kBitParallel) {
      p.program =
          packed ? compile_packed_batch(*p.network, packed_layouts,
                                        sim_options, &decline_reasons[c])
                 : compile_hamming_batch(*p.network, hamming_layouts,
                                         sim_options, &decline_reasons[c]);
      if (cache_enabled && p.program != nullptr) {
        // Best-effort: an unwritable cache degrades to compile-every-time,
        // it never fails construction.
        std::size_t store_retries = 0;
        store_program(artifact_cache_file(c), artifact_meta(p), p.program,
                      nullptr, &store_retries);
        cache_stats[c].io_retries += store_retries;
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, partitions_.size(), build_partition, /*grain=*/1);
  } else {
    for (std::size_t c = 0; c < partitions_.size(); ++c) {
      build_partition(c);
    }
  }

  // Backend/fallback bookkeeping (EngineStats::backend): count the fast
  // path per macro family; aggregate decline reasons so no configuration
  // falls back to the cycle-accurate simulator silently. Reasons appear in
  // first-occurrence configuration order.
  for (std::size_t c = 0; c < partitions_.size(); ++c) {
    const Partition& p = partitions_[c];
    ++compile_stats_.configurations;
    compile_stats_.artifact.merge(cache_stats[c]);
    if (p.program != nullptr) {
      ++compile_stats_.bit_parallel;
      switch (p.program->family()) {
        case apsim::MacroFamily::kHamming: ++compile_stats_.hamming; break;
        case apsim::MacroFamily::kPacked: ++compile_stats_.packed; break;
        case apsim::MacroFamily::kMultiplexed:
          ++compile_stats_.multiplexed;
          break;
      }
    } else if (options_.backend == SimulationBackend::kBitParallel) {
      ++compile_stats_.fallback;
      auto& reasons = compile_stats_.fallback_reasons;
      const auto it = std::find_if(
          reasons.begin(), reasons.end(),
          [&](const auto& entry) { return entry.first == decline_reasons[c]; });
      if (it != reasons.end()) {
        ++it->second;
      } else {
        reasons.emplace_back(decline_reasons[c], 1);
      }
    }
  }
  if (options_.backend == SimulationBackend::kBitParallel) {
    // Resolve the execution lane width once so the stats (and the CLI
    // printout) report what search() will actually run, even before any
    // simulator is constructed. Purely informational — programs and
    // artifacts are width-agnostic.
    const apsim::LaneKernels kernels =
        apsim::resolve_lane_kernels(options_.lane_width);
    compile_stats_.lane_width_bits = kernels.width_bits();
    compile_stats_.lane_isa = kernels.isa;
  }
}

void ApKnnEngine::build_network(
    const Partition& p, std::vector<MacroLayout>* hamming_layouts,
    std::vector<PackedGroupLayout>* packed_layouts) const {
  const std::size_t config = p.begin / capacity_;
  p.network =
      std::make_unique<anml::AutomataNetwork>("config" + std::to_string(config));
  if (options_.packing_group_size > 0) {
    VectorPackingOptions pack_opt;
    pack_opt.group_size = options_.packing_group_size;
    pack_opt.style = options_.packing_style;
    pack_opt.macro = options_.macro;
    for (std::size_t gb = p.begin; gb < p.begin + p.count;
         gb += pack_opt.group_size) {
      const std::size_t gcount =
          std::min(pack_opt.group_size, p.begin + p.count - gb);
      PackedGroupLayout layout =
          append_packed_group(*p.network, dataset_, gb, gcount, pack_opt);
      if (layout.collector_levels != spec_.collector_levels) {
        throw std::logic_error("ApKnnEngine: inconsistent collector depth");
      }
      if (packed_layouts != nullptr) {
        packed_layouts->push_back(std::move(layout));
      }
    }
  } else {
    for (std::size_t i = 0; i < p.count; ++i) {
      MacroLayout layout = append_hamming_macro(
          *p.network, dataset_.vector(p.begin + i),
          static_cast<std::uint32_t>(p.begin + i), options_.macro);
      if (layout.collector_levels != spec_.collector_levels) {
        throw std::logic_error("ApKnnEngine: inconsistent collector depth");
      }
      if (hamming_layouts != nullptr) {
        hamming_layouts->push_back(std::move(layout));
      }
    }
  }
}

void ApKnnEngine::ensure_network(const Partition& p) const {
  if (p.network == nullptr) {
    build_network(p, nullptr, nullptr);
  }
}

const anml::AutomataNetwork& ApKnnEngine::network(std::size_t i) const {
  const Partition& p = partitions_.at(i);
  ensure_network(p);
  return *p.network;
}

std::uint64_t ApKnnEngine::artifact_key(std::size_t i) const {
  const Partition& p = partitions_.at(i);
  util::Fnv1a64 hasher;
  hasher.update_string(kEngineBuilder);
  hasher.update_u32(artifact::kFormatVersion);
  hasher.update_u64(p.begin);
  hash_dataset_slice(hasher, dataset_, p.begin, p.count);
  hash_macro_options(hasher, options_.macro);
  hasher.update_u64(options_.packing_group_size);
  hasher.update(static_cast<std::uint8_t>(options_.packing_style));
  hash_sim_options(hasher, apsim::SimOptions::from(options_.device.features));
  return hasher.digest();
}

std::string ApKnnEngine::artifact_cache_file(std::size_t i) const {
  if (options_.artifact_cache_dir.empty()) {
    return {};
  }
  return artifact_cache_path(options_.artifact_cache_dir, kEngineBuilder, i);
}

artifact::ArtifactMeta ApKnnEngine::artifact_meta(const Partition& p) const {
  ensure_network(p);
  artifact::ArtifactMeta meta;
  meta.key_hash = artifact_key(p.begin / capacity_);
  meta.network_digest = anml::network_digest(*p.network);
  meta.builder = std::string(kEngineBuilder);
  meta.network_name = p.network->name();
  meta.network_elements = p.network->size();
  meta.network_edges = p.network->edges().size();
  meta.dataset_begin = p.begin;
  meta.dataset_count = p.count;
  return meta;
}

bool ApKnnEngine::save_artifact(std::size_t i, const std::string& path,
                                std::string* error) const {
  const Partition& p = partitions_.at(i);
  if (p.program == nullptr) {
    if (error != nullptr) {
      *error = "configuration " + std::to_string(i) +
               " has no compiled bit-parallel program (cycle-accurate "
               "backend, or the compile fell back)";
    }
    return false;
  }
  return store_program(path, artifact_meta(p), p.program, error);
}

std::size_t ApKnnEngine::bit_parallel_configurations() const noexcept {
  std::size_t n = 0;
  for (const Partition& p : partitions_) {
    n += p.program != nullptr;
  }
  return n;
}

apsim::PlacementResult ApKnnEngine::placement(std::size_t i) const {
  return apsim::place(network(i), options_.board, options_.placement);
}

EngineStats ApKnnEngine::project(std::size_t query_count) const {
  EngineStats s;
  s.configurations = partitions_.size();
  s.vectors_per_config = capacity_;
  s.cycles_per_query = spec_.cycles_per_query();
  s.queries = query_count;
  s.simulated_cycles = query_count * s.cycles_per_query * s.configurations;
  s.backend = compile_stats_;
  return s;
}

double ApKnnEngine::report_bandwidth_gbps() const {
  // Sec. VI-C: 32*(n + d) bits conveyed per query, one query every
  // cycles_per_query cycles (the paper uses 2d; we use our exact frame).
  const double bits = 32.0 * (static_cast<double>(capacity_) +
                              static_cast<double>(dataset_.dims()));
  const double seconds = static_cast<double>(spec_.cycles_per_query()) *
                         options_.device.timing.cycle_seconds();
  return bits / seconds / 1e9;
}

std::vector<std::vector<knn::Neighbor>> ApKnnEngine::search(
    const knn::BinaryDataset& queries, std::size_t k) {
  return search(queries, k, SearchControl{});
}

std::vector<std::vector<knn::Neighbor>> ApKnnEngine::search(
    const knn::BinaryDataset& queries, std::size_t k,
    const SearchControl& control) {
  if (queries.dims() != dataset_.dims()) {
    throw std::invalid_argument("ApKnnEngine::search: query dims mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("ApKnnEngine::search: k must be >= 1");
  }
  const std::size_t q = queries.size();
  stats_ = project(q);
  report_stream_.clear();

  // One shard per (configuration, query-frame range). queries_per_chunk
  // caps the shard size; with a pool the size is refined downward so every
  // thread gets several shards to balance. The shard list itself — and
  // therefore every shard's simulation — is a pure function of the inputs,
  // never of which worker ran it.
  std::size_t chunk = std::max<std::size_t>(1, options_.queries_per_chunk);
  if (pool_ != nullptr) {
    const std::size_t target_shards = 4 * (pool_->size() + 1);
    const std::size_t total_frames = q * partitions_.size();
    chunk = std::min(
        chunk,
        std::max<std::size_t>(
            1, (total_frames + target_shards - 1) / target_shards));
  }
  struct Shard {
    std::size_t config = 0;
    std::size_t q_begin = 0;
    std::size_t q_count = 0;
    /// Shard-local ReportEvent buffer, rebased to the configuration's full
    /// query-stream timeline after decoding.
    std::vector<apsim::ReportEvent> events;
    std::vector<std::vector<knn::Neighbor>> partial;
  };
  std::vector<Shard> shards;
  for (std::size_t c = 0; c < partitions_.size(); ++c) {
    for (std::size_t q_begin = 0; q_begin < q; q_begin += chunk) {
      shards.push_back({c, q_begin, std::min(chunk, q - q_begin), {}, {}});
    }
  }

  const SymbolStreamEncoder encoder(spec_);
  const apsim::SimOptions sim_options =
      apsim::SimOptions::from(options_.device.features);

  // Fault-tolerance plumbing (docs/ROBUSTNESS.md). The deadline starts
  // here — it budgets the whole search — and every shard polls it (plus the
  // cancellation token) at query-frame boundaries inside the simulators.
  // Per-shard outcomes are recorded into a pre-sized vector (no locking,
  // no ordering dependence) and reduced per configuration after the run.
  util::Deadline deadline;
  if (control.deadline != nullptr) {
    deadline = *control.deadline;
  } else if (options_.deadline_ms > 0) {
    deadline = util::Deadline::after_ms(options_.deadline_ms);
  }
  const util::CancellationToken* cancel =
      control.cancel != nullptr ? control.cancel : options_.cancel;
  struct ShardOutcome {
    ShardState state = ShardState::kOk;
    std::string error;
    std::uint32_t retries = 0;
  };
  std::vector<ShardOutcome> outcomes(shards.size());
  // Degrading a shard of an artifact-cache-hit configuration needs the
  // automata network, which was never built; the lazy rebuild mutates the
  // partition, so it is serialized (plain runs never take this lock).
  std::mutex degrade_mutex;

  // Each worker owns its simulator scratch state and reuses it across the
  // consecutive shards of its chunk while they stay on one configuration —
  // the cycle-accurate simulator's construction (a full validation pass)
  // then amortizes over the chunk. run() resets per shard, so reuse cannot
  // leak state between shards.
  const auto run_shards = [&](std::size_t lo, std::size_t hi) {
    constexpr std::size_t kNoConfig = static_cast<std::size_t>(-1);
    std::size_t sim_config = kNoConfig;
    bool sim_is_batch = false;
    std::unique_ptr<apsim::Simulator> reference;
    std::unique_ptr<apsim::BatchSimulator> batch;
    std::vector<std::uint8_t> stream;
    // One attempt at simulating `shard`: checkpoint (deadline/cancel), fire
    // the shard-entry fault site, simulate, decode, rebase. Throws on any
    // failure; `force_reference` is the degrade path (cycle-accurate rerun
    // of a bit-parallel configuration — bit-identical events, just slower).
    const auto run_attempt = [&](Shard& shard, const Partition& part,
                                 const util::RunControl& ctl,
                                 bool force_reference) {
      ctl.checkpoint();
      util::FaultInjector::check(util::kFaultEngineShard, ctl.fault_key);
      const bool use_batch = part.program != nullptr && !force_reference;
      if (shard.config != sim_config || use_batch != sim_is_batch) {
        reference.reset();
        batch.reset();
        if (use_batch) {
          batch = std::make_unique<apsim::BatchSimulator>(part.program,
                                                          options_.lane_width);
        } else if (part.program != nullptr) {
          // Degrade path: the network may be absent (cache hit skipped
          // construction) and other workers may degrade shards of the same
          // configuration concurrently.
          std::lock_guard<std::mutex> lock(degrade_mutex);
          ensure_network(part);
          reference = std::make_unique<apsim::Simulator>(*part.network,
                                                         sim_options);
        } else {
          reference = std::make_unique<apsim::Simulator>(*part.network,
                                                         sim_options);
        }
        sim_config = shard.config;
        sim_is_batch = use_batch;
      }
      stream.clear();
      stream.reserve(shard.q_count * spec_.cycles_per_query());
      for (std::size_t i = 0; i < shard.q_count; ++i) {
        encoder.append_query(queries.row(shard.q_begin + i), stream);
      }
      shard.events = batch != nullptr ? batch->run(stream, ctl)
                                      : reference->run(stream, ctl);
      const TemporalSortDecoder decoder(spec_, shard.q_count);
      shard.partial = decoder.decode(shard.events, k);
      apsim::rebase_events(shard.events,
                           shard.q_begin * spec_.cycles_per_query());
    };
    for (std::size_t t = lo; t < hi; ++t) {
      Shard& shard = shards[t];
      const Partition& part = partitions_[shard.config];
      util::RunControl ctl;
      ctl.deadline = &deadline;
      ctl.cancel = cancel;
      ctl.checkpoint_period = spec_.cycles_per_query();
      ctl.fault_key = static_cast<std::int64_t>(shard.config);
      if (options_.on_error == OnError::kFailFast) {
        // The pre-fault-tolerance path, byte for byte: nothing is caught
        // here, so the first failure unwinds through the pool's
        // first-exception rethrow to the caller.
        run_attempt(shard, part, ctl, /*force_reference=*/false);
        continue;
      }
      ShardOutcome& out = outcomes[t];
      std::size_t retries_left =
          options_.on_error == OnError::kRetry ? options_.max_retries : 0;
      bool degraded = false;
      for (;;) {
        try {
          run_attempt(shard, part, ctl, /*force_reference=*/degraded);
          if (degraded) {
            out.state = ShardState::kDegraded;
          } else {
            out.state = ShardState::kOk;
            out.error.clear();  // recovered by a plain retry
          }
          break;
        } catch (const util::DeadlineExceeded& e) {
          // The budget is gone; retrying could only blow past it further.
          out.state = ShardState::kTimedOut;
          if (out.error.empty()) {
            out.error = e.what();
          }
          break;
        } catch (const util::OperationCancelled& e) {
          out.state = ShardState::kCancelled;
          if (out.error.empty()) {
            out.error = e.what();
          }
          break;
        } catch (const std::exception& e) {
          if (out.error.empty()) {
            out.error = e.what();
          }
          // A failed attempt may leave the cached simulator mid-stream;
          // force reconstruction before any further attempt or shard.
          sim_config = kNoConfig;
          if (retries_left > 0) {
            --retries_left;
            ++out.retries;
            continue;
          }
          if (!degraded && part.program != nullptr) {
            degraded = true;
            ++out.retries;
            continue;
          }
          out.state = ShardState::kFailed;
          break;
        }
      }
    }
  };

  if (pool_ != nullptr) {
    pool_->parallel_for_chunks(0, shards.size(), run_shards, /*grain=*/1);
  } else {
    run_shards(0, shards.size());
  }

  // Reduce shard outcomes to one status per configuration (worst state
  // wins; first error in shard order is kept; retries accumulate). A
  // configuration SURVIVES when every shard is kOk or kDegraded —
  // anything else poisons it: partial per-query lists would silently rank
  // neighbors against an incomplete candidate set.
  stats_.shard_status.assign(partitions_.size(), ShardStatus{});
  for (std::size_t t = 0; t < shards.size(); ++t) {
    ShardStatus& status = stats_.shard_status[shards[t].config];
    const ShardOutcome& out = outcomes[t];
    if (severity(out.state) > severity(status.state)) {
      status.state = out.state;
    }
    if (status.error.empty() && !out.error.empty()) {
      status.error = out.error;
    }
    status.retries += out.retries;
  }
  const auto survives = [&](std::size_t c) {
    const ShardState s = stats_.shard_status[c].state;
    return s == ShardState::kOk || s == ShardState::kDegraded;
  };

  // Host-side merge across configurations (Sec. III-C: the host tracks
  // intermediary per-query results between reconfigurations). Shards are
  // walked in configuration/frame order on this thread, so stats
  // accumulation, the merged report stream, and the per-query lists are
  // bit-identical at any thread count. Non-surviving configurations are
  // skipped wholesale, so what remains equals a run without them.
  std::vector<std::vector<knn::Neighbor>> results(q);
  for (Shard& shard : shards) {
    if (!survives(shard.config)) {
      continue;
    }
    stats_.report_events += shard.events.size();
    if (options_.collect_report_stream) {
      report_stream_.insert(report_stream_.end(), shard.events.begin(),
                            shard.events.end());
    }
    for (std::size_t i = 0; i < shard.q_count; ++i) {
      auto& dst = results[shard.q_begin + i];
      dst.insert(dst.end(), shard.partial[i].begin(), shard.partial[i].end());
    }
  }
  const std::size_t surviving = stats_.surviving_configurations();
  if (surviving != partitions_.size()) {
    stats_.simulated_cycles = q * stats_.cycles_per_query * surviving;
  }
  const std::size_t want = std::min(k, dataset_.size());
  for (auto& list : results) {
    std::sort(list.begin(), list.end());
    if (list.size() > want) {
      list.resize(want);
    }
  }
  return results;
}

}  // namespace apss::core
