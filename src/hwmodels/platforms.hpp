#pragma once
// Platform catalog (Table I) with power/throughput constants calibrated
// from the paper's own numbers (Sec. V). Each constant's derivation is
// documented next to it; benches print paper-reported values alongside
// model outputs so the calibration is auditable.

#include <cstddef>
#include <string>
#include <vector>

namespace apss::hwmodels {

enum class PlatformType { kCpu, kGpu, kFpga, kAp };

struct Platform {
  std::string name;
  PlatformType type = PlatformType::kCpu;
  int cores = 0;  ///< 0 = not applicable (FPGA)
  int process_nm = 0;
  double clock_mhz = 0.0;

  /// Dynamic (load minus idle) power in watts, derived from the paper's
  /// queries/Joule and run-time tables: P = q / (time x qpj).
  double dynamic_power_w = 0.0;

  /// Effective scan throughput in bits of dataset payload per second,
  /// derived from the paper's small-dataset run times:
  /// rate = q x n x d / time. Zero for platforms modeled elsewhere.
  double scan_bits_per_second = 0.0;
};

/// The six platforms of Table I.
std::vector<Platform> platform_catalog();

/// Lookup by name; throws std::out_of_range when absent.
const Platform& platform(const std::string& name);

/// queries/Joule given a run time, query count, and dynamic power.
double queries_per_joule(std::size_t queries, double seconds, double watts);

// --- AP power (Sec. IV-B: measured on a one-rank board, scaled to 28 nm) ---
// Derived from Tables III/IV: P = 4096 / (time x qpj); consistent across
// the small and large datasets (WordEmbed 18.8 W; SIFT/TagSpace 23.3 W —
// WordEmbed is PCIe-bandwidth capped and lights up fewer resources).
double ap_dynamic_power_w(std::size_t dims);

/// Technology-scaling factor from the AP's 50 nm to the baselines' 28 nm
/// (Sec. VII-D: 3.19x density/performance, paid back as power overhead in
/// the energy-efficiency projection).
inline constexpr double kApTechScaling = 3.19;

}  // namespace apss::hwmodels
