#include "hwmodels/fpga_accelerator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bitvector.hpp"

namespace apss::hwmodels {

HardwarePriorityQueue::HardwarePriorityQueue(std::size_t k) : k_(k) {
  if (k == 0) {
    throw std::invalid_argument("HardwarePriorityQueue: k must be >= 1");
  }
  slots_.reserve(k);
}

void HardwarePriorityQueue::insert(knn::Neighbor candidate) {
  // Systolic sorted-array behaviour: the candidate shifts in at its rank;
  // the worst entry falls off the end.
  if (slots_.size() == k_ && !(candidate < slots_.back())) {
    return;
  }
  const auto pos = std::upper_bound(slots_.begin(), slots_.end(), candidate);
  slots_.insert(pos, candidate);
  if (slots_.size() > k_) {
    slots_.pop_back();
  }
}

FpgaAccelerator::FpgaAccelerator(knn::BinaryDataset data, FpgaOptions options)
    : data_(std::move(data)), options_(options) {
  if (data_.empty()) {
    throw std::invalid_argument("FpgaAccelerator: empty dataset");
  }
  if (options_.query_lanes == 0 || options_.word_bits == 0 ||
      options_.word_bits > 64) {
    throw std::invalid_argument("FpgaAccelerator: bad options");
  }
}

FpgaRunStats FpgaAccelerator::project(std::size_t queries, std::size_t n,
                                      std::size_t dims, std::size_t k) const {
  FpgaRunStats stats;
  stats.batches = (queries + options_.query_lanes - 1) / options_.query_lanes;
  const std::size_t words = (dims + options_.word_bits - 1) / options_.word_bits;
  stats.cycles = static_cast<std::uint64_t>(stats.batches) * n * words +
                 static_cast<std::uint64_t>(stats.batches) *
                     options_.query_lanes * k +
                 options_.pipeline_fill;
  return stats;
}

std::vector<std::vector<knn::Neighbor>> FpgaAccelerator::search(
    const knn::BinaryDataset& queries, std::size_t k,
    FpgaRunStats& stats) const {
  if (queries.dims() != data_.dims()) {
    throw std::invalid_argument("FpgaAccelerator::search: dims mismatch");
  }
  if (k == 0) {
    throw std::invalid_argument("FpgaAccelerator::search: k must be >= 1");
  }
  stats = project(queries.size(), data_.size(), data_.dims(), k);

  const std::size_t want = std::min(k, data_.size());
  std::vector<std::vector<knn::Neighbor>> results(queries.size());

  // Batch loop mirrors the hardware: lanes hold one query each in the
  // scratchpad; every dataset vector streams past all lanes.
  for (std::size_t batch_begin = 0; batch_begin < queries.size();
       batch_begin += options_.query_lanes) {
    const std::size_t lanes =
        std::min(options_.query_lanes, queries.size() - batch_begin);
    std::vector<HardwarePriorityQueue> pqs;
    pqs.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      pqs.emplace_back(want);
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
      const auto row = data_.row(i);
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto dist = static_cast<std::uint32_t>(
            util::hamming_distance(row, queries.row(batch_begin + l)));
        pqs[l].insert({static_cast<std::uint32_t>(i), dist});
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      results[batch_begin + l] = pqs[l].contents();
    }
  }
  return results;
}

}  // namespace apss::hwmodels
