#include "hwmodels/platforms.hpp"

#include <stdexcept>

namespace apss::hwmodels {

std::vector<Platform> platform_catalog() {
  // Calibration notes (all from the paper's Tables III/IV; q = 4096):
  //  * Xeon E5-2620 power: 4096/(0.02333 s x 3344 q/J) = 52.5 W; identical
  //    within rounding for SIFT and TagSpace.
  //    rate: 4096 x 1024 x 128 bits / 0.0375 s = 14.3 Gbit/s.
  //  * Cortex A15 power: 4096/(0.10363 x 4941) = 8.0 W.
  //    rate: 4096 x 1024 x 128 / 0.19144 = 2.80 Gbit/s.
  //  * Jetson TK1 power: 4096/(0.1258 x 27133) = 1.2 W.
  //  * Titan X power: 4096/(0.99 s x 83.84 q/J) = 49.4 W.
  //  * Kintex-7 power: 4096/(0.00189 x 579214) = 3.74 W.
  return {
      {"Xeon E5-2620", PlatformType::kCpu, 6, 32, 2000.0, 52.5, 14.3e9},
      {"Cortex A15", PlatformType::kCpu, 4, 28, 2300.0, 8.0, 2.80e9},
      {"Jetson TK1", PlatformType::kGpu, 192, 28, 852.0, 1.2, 0.0},
      {"Titan X", PlatformType::kGpu, 3072, 28, 1075.0, 49.4, 0.0},
      {"Kintex-7", PlatformType::kFpga, 0, 28, 185.0, 3.74, 0.0},
      {"Automata Processor", PlatformType::kAp, 64, 50, 133.0, 23.3, 0.0},
  };
}

const Platform& platform(const std::string& name) {
  static const std::vector<Platform> catalog = platform_catalog();
  for (const Platform& p : catalog) {
    if (p.name == name) {
      return p;
    }
  }
  throw std::out_of_range("platform: unknown platform '" + name + "'");
}

double queries_per_joule(std::size_t queries, double seconds, double watts) {
  if (seconds <= 0.0 || watts <= 0.0) {
    throw std::invalid_argument("queries_per_joule: nonpositive time/power");
  }
  return static_cast<double>(queries) / (seconds * watts);
}

double ap_dynamic_power_w(std::size_t dims) {
  // WordEmbed (d=64) is PCIe-capped and uses ~42% of the board -> 18.8 W;
  // SIFT/TagSpace fill the board -> 23.3 W (both backed out of the paper's
  // time x q/J products, consistent across Tables III and IV).
  return dims <= 64 ? 18.8 : 23.3;
}

}  // namespace apss::hwmodels
