#pragma once
// Cycle-level model of the paper's fixed-function FPGA kNN accelerator
// (Sec. IV-C): an AXI4-Stream design on a Kintex-7-325T with a query
// scratchpad, a 32-bit XOR/POPCOUNT distance unit per query lane, and a
// hardware priority queue per lane. Data vectors are streamed through the
// core once per batch of queries.
//
// The simulation is FUNCTIONAL (produces real top-k results, validated
// against the CPU baseline) and CYCLE-ACCOUNTED:
//   cycles = batches x n x words_per_vector  (streaming, one word/cycle)
//          + batches x lanes x k             (result drain per batch)
//          + pipeline fill
// with batches = ceil(q / lanes). The default 24 lanes reproduces the
// paper's Kintex-7 rows (e.g. SIFT small: 4096 x 1024 x 4 / 24 lanes at
// 185 MHz ~= 3.8 ms; paper: 3.78 ms).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "knn/dataset.hpp"
#include "knn/exact.hpp"

namespace apss::hwmodels {

struct FpgaOptions {
  std::size_t query_lanes = 24;   ///< parallel query pipelines
  double clock_hz = 185e6;        ///< Kintex-7 design clock (Table I)
  std::size_t word_bits = 32;     ///< XOR/POPCOUNT datapath width
  std::size_t pipeline_fill = 8;  ///< cycles to prime the stream pipeline
};

struct FpgaRunStats {
  std::uint64_t cycles = 0;
  std::size_t batches = 0;
  double seconds(const FpgaOptions& opt) const {
    return static_cast<double>(cycles) / opt.clock_hz;
  }
};

class FpgaAccelerator {
 public:
  explicit FpgaAccelerator(knn::BinaryDataset data, FpgaOptions options = {});

  /// Streams the dataset once per query batch; returns exact top-k per
  /// query and fills `stats`.
  std::vector<std::vector<knn::Neighbor>> search(
      const knn::BinaryDataset& queries, std::size_t k, FpgaRunStats& stats) const;

  /// Cycle model only (no functional run) for large projections.
  FpgaRunStats project(std::size_t queries, std::size_t n, std::size_t dims,
                       std::size_t k) const;
  FpgaRunStats project(std::size_t queries, std::size_t k) const {
    return project(queries, data_.size(), data_.dims(), k);
  }

  const FpgaOptions& options() const noexcept { return options_; }

 private:
  knn::BinaryDataset data_;
  FpgaOptions options_;
};

/// A hardware priority queue of bounded size k: a sorted systolic array
/// with O(1)-per-cycle insertion, matching what the accelerator
/// instantiates per lane. Exposed for direct unit testing.
class HardwarePriorityQueue {
 public:
  explicit HardwarePriorityQueue(std::size_t k);

  /// Inserts if the candidate beats the current worst (or queue not full).
  void insert(knn::Neighbor candidate);

  /// Sorted ascending contents.
  const std::vector<knn::Neighbor>& contents() const noexcept { return slots_; }
  std::size_t capacity() const noexcept { return k_; }

 private:
  std::size_t k_;
  std::vector<knn::Neighbor> slots_;  ///< kept sorted ascending
};

}  // namespace apss::hwmodels
