#pragma once
// Analytic GPU run-time model for the paper's off-the-shelf CUDA baseline
// (Garcia et al., adapted to XOR/POPCOUNT — Sec. IV-C).
//
// The paper observes "poor GPU performance likely due to poor blocking of
// the binarized data" (Sec. V-B): Titan X takes ~1.0 s and Jetson ~16 s on
// the LARGE dataset for all three workloads, i.e. run time is nearly
// independent of payload size. That is the signature of a LAUNCH-BOUND
// kernel (one dispatch per query with fine-grained accesses), so the model
// is: time = q x per_query_overhead + bytes_moved / effective_bandwidth.
// Calibration: Titan X 4096 x 240 us + 68.7 GB / 336 GB/s ~= 1.02 s
// (paper SIFT: 1.02 s); Jetson 4096 x 3.9 ms ~= 16.0 s (paper: 16.7 s).

#include <cstddef>
#include <string>

namespace apss::hwmodels {

struct GpuModel {
  std::string name;
  double per_query_overhead_s = 0.0;  ///< kernel launch + sync per query
  double effective_bandwidth_bytes_per_s = 0.0;

  /// Modeled wall clock for a q-query batch over n d-bit vectors.
  double seconds(std::size_t queries, std::size_t n, std::size_t dims) const {
    const double bytes = static_cast<double>(queries) > 0
                             ? static_cast<double>(n) *
                                   (static_cast<double>(dims) / 8.0)
                             : 0.0;
    // The dataset streams once per query batch; with per-query dispatch the
    // whole payload is re-read per kernel epoch. The bandwidth term uses
    // one full pass per query batch of 32 (the baseline's tile height).
    const double passes =
        (static_cast<double>(queries) + 31.0) / 32.0;
    return static_cast<double>(queries) * per_query_overhead_s +
           passes * bytes / effective_bandwidth_bytes_per_s;
  }

  static GpuModel titan_x() { return {"Titan X", 240e-6, 336e9}; }
  static GpuModel jetson_tk1() { return {"Jetson TK1", 3.9e-3, 14.7e9}; }
};

}  // namespace apss::hwmodels
