#include "index/kd_tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace apss::index {

RandomizedKdForest::RandomizedKdForest(const knn::BinaryDataset& data,
                                       const KdTreeOptions& options)
    : data_(data), options_(options) {
  if (data.empty()) {
    throw std::invalid_argument("RandomizedKdForest: empty dataset");
  }
  if (options_.trees == 0 || options_.leaf_size == 0) {
    throw std::invalid_argument("RandomizedKdForest: bad options");
  }
  util::Rng rng(options_.seed);
  std::vector<std::uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t t = 0; t < options_.trees; ++t) {
    roots_.push_back(build(all, rng, 0));
  }
}

std::unique_ptr<RandomizedKdForest::Node> RandomizedKdForest::build(
    std::vector<std::uint32_t> ids, util::Rng& rng, std::size_t depth) {
  auto node = std::make_unique<Node>();
  // Depth bound: the index size scales exponentially with depth
  // (Sec. II-A), and degenerate splits must terminate.
  if (ids.size() <= options_.leaf_size || depth >= 40) {
    node->bucket = std::move(ids);
    return node;
  }

  // Rank dimensions by variance of their bit over this subset; draw the
  // split from the top pool (the "randomized" in randomized kd-trees).
  const std::size_t dims = data_.dims();
  std::vector<std::size_t> ones(dims, 0);
  for (const std::uint32_t id : ids) {
    for (std::size_t d = 0; d < dims; ++d) {
      ones[d] += data_.get(id, d);
    }
  }
  std::vector<std::size_t> order(dims);
  std::iota(order.begin(), order.end(), 0u);
  // Bit variance is p(1-p): maximized at balanced splits, so rank by
  // |count - n/2| ascending.
  const double half = static_cast<double>(ids.size()) / 2.0;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = std::abs(static_cast<double>(ones[a]) - half);
    const double db = std::abs(static_cast<double>(ones[b]) - half);
    return da < db;
  });
  const std::size_t pool = std::min(options_.top_variance_pool, dims);
  const std::size_t split = order[rng.below(pool)];

  // Degenerate split (all bits equal): make a leaf.
  if (ones[split] == 0 || ones[split] == ids.size()) {
    node->bucket = std::move(ids);
    return node;
  }

  std::vector<std::uint32_t> zeros, onesv;
  for (const std::uint32_t id : ids) {
    (data_.get(id, split) ? onesv : zeros).push_back(id);
  }
  node->split_dim = static_cast<std::int32_t>(split);
  node->zero_child = build(std::move(zeros), rng, depth + 1);
  node->one_child = build(std::move(onesv), rng, depth + 1);
  return node;
}

std::vector<std::uint32_t> RandomizedKdForest::candidates(
    std::span<const std::uint64_t> query, TraversalStats& stats) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> result;
  for (const auto& root : roots_) {
    const Node* node = root.get();
    while (node->split_dim >= 0) {
      ++stats.nodes_visited;
      const std::size_t dim = static_cast<std::size_t>(node->split_dim);
      const bool bit = (query[dim >> 6] >> (dim & 63)) & 1u;
      node = bit ? node->one_child.get() : node->zero_child.get();
    }
    ++stats.buckets_probed;
    for (const std::uint32_t id : node->bucket) {
      if (seen.insert(id).second) {
        result.push_back(id);
      }
    }
  }
  return result;
}

void RandomizedKdForest::visit_buckets(
    const Node* node, std::size_t& count, std::size_t& largest) {
  if (node->split_dim < 0) {
    ++count;
    largest = std::max(largest, node->bucket.size());
    return;
  }
  visit_buckets(node->zero_child.get(), count, largest);
  visit_buckets(node->one_child.get(), count, largest);
}

std::size_t RandomizedKdForest::bucket_count() const {
  std::size_t count = 0;
  std::size_t largest = 0;
  for (const auto& root : roots_) {
    visit_buckets(root.get(), count, largest);
  }
  return count;
}

std::size_t RandomizedKdForest::max_bucket_size() const {
  std::size_t count = 0;
  std::size_t largest = 0;
  for (const auto& root : roots_) {
    visit_buckets(root.get(), count, largest);
  }
  return largest;
}

}  // namespace apss::index
