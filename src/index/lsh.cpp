#include "index/lsh.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace apss::index {

LshIndex::LshIndex(const knn::BinaryDataset& data, const LshOptions& options)
    : data_(data), options_(options) {
  if (data.empty()) {
    throw std::invalid_argument("LshIndex: empty dataset");
  }
  if (options_.tables == 0 || options_.hash_bits == 0 ||
      options_.hash_bits > 63 || options_.hash_bits > data.dims()) {
    throw std::invalid_argument("LshIndex: bad options");
  }
  util::Rng rng(options_.seed);
  tables_.resize(options_.tables);
  for (Table& table : tables_) {
    // Sample hash_bits distinct dimensions.
    std::vector<std::uint32_t> dims(data.dims());
    std::iota(dims.begin(), dims.end(), 0u);
    for (std::size_t i = 0; i < options_.hash_bits; ++i) {
      const std::size_t j = i + rng.below(dims.size() - i);
      std::swap(dims[i], dims[j]);
    }
    dims.resize(options_.hash_bits);
    table.sampled_dims = std::move(dims);
    for (std::size_t id = 0; id < data.size(); ++id) {
      table.buckets[key_for(table, data.row(id))].push_back(
          static_cast<std::uint32_t>(id));
    }
  }
}

std::uint64_t LshIndex::key_for(const Table& table,
                                std::span<const std::uint64_t> vec) const {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < table.sampled_dims.size(); ++i) {
    const std::uint32_t dim = table.sampled_dims[i];
    const std::uint64_t bit = (vec[dim >> 6] >> (dim & 63)) & 1u;
    key |= bit << i;
  }
  return key;
}

std::vector<std::uint32_t> LshIndex::candidates(
    std::span<const std::uint64_t> query, TraversalStats& stats) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> result;
  const auto probe = [&](const Table& table, std::uint64_t key) {
    ++stats.buckets_probed;
    const auto it = table.buckets.find(key);
    if (it == table.buckets.end()) {
      return;
    }
    for (const std::uint32_t id : it->second) {
      if (seen.insert(id).second) {
        result.push_back(id);
      }
    }
  };
  for (const Table& table : tables_) {
    ++stats.nodes_visited;  // one hash evaluation per table
    const std::uint64_t key = key_for(table, query);
    probe(table, key);
    if (options_.multi_probe) {
      for (std::size_t bit = 0; bit < options_.hash_bits; ++bit) {
        probe(table, key ^ (std::uint64_t{1} << bit));
      }
    }
  }
  return result;
}

std::size_t LshIndex::bucket_count() const {
  std::size_t count = 0;
  for (const Table& table : tables_) {
    count += table.buckets.size();
  }
  return count;
}

std::size_t LshIndex::max_bucket_size() const {
  std::size_t largest = 0;
  for (const Table& table : tables_) {
    for (const auto& [key, bucket] : table.buckets) {
      largest = std::max(largest, bucket.size());
    }
  }
  return largest;
}

}  // namespace apss::index
