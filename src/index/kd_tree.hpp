#pragma once
// Randomized kd-trees over binary codes (Sec. II-A): each tree splits on a
// dimension drawn from the highest-variance bits; leaves hold buckets of
// candidate ids. A query descends every tree to one leaf and unions the
// buckets — "each tree traversal checks one bucket of vectors" (Sec. IV-C).

#include <memory>

#include "index/index.hpp"
#include "util/rng.hpp"

namespace apss::index {

struct KdTreeOptions {
  std::size_t trees = 4;        ///< parallel randomized trees (paper: 4)
  std::size_t leaf_size = 512;  ///< bucket target = one AP configuration
  std::size_t top_variance_pool = 16;  ///< split dim drawn from this many
  std::uint64_t seed = 1;
};

class RandomizedKdForest final : public BucketIndex {
 public:
  RandomizedKdForest(const knn::BinaryDataset& data,
                     const KdTreeOptions& options = {});

  std::string name() const override { return "kd-tree"; }
  std::vector<std::uint32_t> candidates(std::span<const std::uint64_t> query,
                                        TraversalStats& stats) const override;
  using BucketIndex::candidates;
  std::size_t bucket_count() const override;
  std::size_t max_bucket_size() const override;

  std::size_t tree_count() const noexcept { return roots_.size(); }

 private:
  struct Node {
    // Interior: split_dim >= 0, children valid. Leaf: bucket filled.
    std::int32_t split_dim = -1;
    std::unique_ptr<Node> zero_child;
    std::unique_ptr<Node> one_child;
    std::vector<std::uint32_t> bucket;
  };

  std::unique_ptr<Node> build(std::vector<std::uint32_t> ids,
                              util::Rng& rng, std::size_t depth);
  static void visit_buckets(const Node* node, std::size_t& count,
                            std::size_t& largest);

  const knn::BinaryDataset& data_;
  KdTreeOptions options_;
  std::vector<std::unique_ptr<Node>> roots_;
};

}  // namespace apss::index
