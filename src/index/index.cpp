#include "index/index.hpp"

#include <algorithm>

#include "util/bitvector.hpp"

namespace apss::index {

std::vector<knn::Neighbor> approximate_knn(const BucketIndex& index,
                                           const knn::BinaryDataset& data,
                                           std::span<const std::uint64_t> query,
                                           std::size_t k,
                                           TraversalStats* stats) {
  TraversalStats local;
  const auto ids = index.candidates(query, local);
  if (stats != nullptr) {
    *stats += local;
  }
  std::vector<knn::Neighbor> result;
  result.reserve(ids.size());
  for (const std::uint32_t id : ids) {
    result.push_back({id, static_cast<std::uint32_t>(
                              util::hamming_distance(data.row(id), query))});
  }
  std::sort(result.begin(), result.end());
  if (result.size() > k) {
    result.resize(k);
  }
  return result;
}

double index_recall(const BucketIndex& index, const knn::BinaryDataset& data,
                    const knn::BinaryDataset& queries, std::size_t k) {
  if (queries.empty()) {
    return 1.0;
  }
  double total = 0.0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto approx = approximate_knn(index, data, queries.row(q), k);
    total += knn::recall_at_k(data, queries.row(q), k, approx);
  }
  return total / static_cast<double>(queries.size());
}

}  // namespace apss::index
