#pragma once
// Bit-sampling LSH for Hamming space (Sec. II-A; the canonical LSH family
// for Hamming distance). Each of L tables hashes on `hash_bits` randomly
// sampled bit positions; a query probes its own bucket in every table and
// optionally the multi-probe neighborhood (all keys at key-Hamming
// distance 1), which is the "MPLSH" configuration of Table V.

#include <unordered_map>

#include "index/index.hpp"
#include "util/rng.hpp"

namespace apss::index {

struct LshOptions {
  std::size_t tables = 4;      ///< paper: four hash tables
  std::size_t hash_bits = 10;  ///< key width; buckets ~ n / 2^hash_bits
  bool multi_probe = false;    ///< also probe all keys at distance 1
  std::uint64_t seed = 1;
};

class LshIndex final : public BucketIndex {
 public:
  LshIndex(const knn::BinaryDataset& data, const LshOptions& options = {});

  std::string name() const override {
    return options_.multi_probe ? "mplsh" : "lsh";
  }
  std::vector<std::uint32_t> candidates(std::span<const std::uint64_t> query,
                                        TraversalStats& stats) const override;
  using BucketIndex::candidates;
  std::size_t bucket_count() const override;
  std::size_t max_bucket_size() const override;

 private:
  struct Table {
    std::vector<std::uint32_t> sampled_dims;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  std::uint64_t key_for(const Table& table,
                        std::span<const std::uint64_t> vec) const;

  const knn::BinaryDataset& data_;
  LshOptions options_;
  std::vector<Table> tables_;
};

}  // namespace apss::index
