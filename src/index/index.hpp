#pragma once
// Spatial indexing structures for approximate kNN (Sec. II-A / III-D).
//
// The paper offloads index TRAVERSAL to the host processor and scans the
// selected leaf bucket either on the CPU (baseline) or by loading that
// bucket's board configuration onto the AP. All three index families
// therefore share one interface: map a query to candidate vector ids.
// Bucket sizes are naturally matched to one AP board configuration
// (512-1024 vectors, Sec. V-B).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "knn/dataset.hpp"
#include "knn/exact.hpp"

namespace apss::index {

/// Host-side traversal cost accounting, consumed by the Table V model.
struct TraversalStats {
  std::size_t nodes_visited = 0;
  std::size_t distance_computations = 0;
  std::size_t buckets_probed = 0;

  void operator+=(const TraversalStats& o) {
    nodes_visited += o.nodes_visited;
    distance_computations += o.distance_computations;
    buckets_probed += o.buckets_probed;
  }
};

class BucketIndex {
 public:
  virtual ~BucketIndex() = default;

  virtual std::string name() const = 0;

  /// Candidate ids for `query` (duplicates removed), plus traversal cost.
  virtual std::vector<std::uint32_t> candidates(
      std::span<const std::uint64_t> query, TraversalStats& stats) const = 0;

  std::vector<std::uint32_t> candidates(
      std::span<const std::uint64_t> query) const {
    TraversalStats stats;
    return candidates(query, stats);
  }

  virtual std::size_t bucket_count() const = 0;
  virtual std::size_t max_bucket_size() const = 0;
};

/// Approximate kNN: traverse the index, then linear-scan the candidates
/// (the paper's CPU path; the AP path scans the same bucket on-device).
std::vector<knn::Neighbor> approximate_knn(const BucketIndex& index,
                                           const knn::BinaryDataset& data,
                                           std::span<const std::uint64_t> query,
                                           std::size_t k,
                                           TraversalStats* stats = nullptr);

/// Mean recall@k of an index over a query set (vs exact linear scan).
double index_recall(const BucketIndex& index, const knn::BinaryDataset& data,
                    const knn::BinaryDataset& queries, std::size_t k);

}  // namespace apss::index
