#pragma once
// Hierarchical k-means index (Sec. II-A): the dataset is recursively
// partitioned into `branching` clusters (k-means in Hamming space with
// majority-vote centroids); unlike kd-trees, descending the tree costs one
// distance computation per child at every node. Leaves are buckets sized
// for one AP board configuration.

#include <memory>

#include "index/index.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace apss::index {

struct KMeansTreeOptions {
  std::size_t branching = 8;
  std::size_t leaf_size = 512;
  std::size_t lloyd_iterations = 5;
  std::uint64_t seed = 1;
};

class HierarchicalKMeansTree final : public BucketIndex {
 public:
  HierarchicalKMeansTree(const knn::BinaryDataset& data,
                         const KMeansTreeOptions& options = {});

  std::string name() const override { return "k-means"; }
  std::vector<std::uint32_t> candidates(std::span<const std::uint64_t> query,
                                        TraversalStats& stats) const override;
  using BucketIndex::candidates;
  std::size_t bucket_count() const override;
  std::size_t max_bucket_size() const override;

  std::size_t depth() const;

 private:
  struct Node {
    std::vector<util::BitVector> centers;        ///< empty at leaves
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::uint32_t> bucket;
  };

  std::unique_ptr<Node> build(std::vector<std::uint32_t> ids,
                              util::Rng& rng, std::size_t depth);
  static void visit(const Node* node, std::size_t& buckets,
                    std::size_t& largest, std::size_t depth,
                    std::size_t& max_depth);

  const knn::BinaryDataset& data_;
  KMeansTreeOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace apss::index
