#include "index/kmeans_tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace apss::index {

HierarchicalKMeansTree::HierarchicalKMeansTree(const knn::BinaryDataset& data,
                                               const KMeansTreeOptions& options)
    : data_(data), options_(options) {
  if (data.empty()) {
    throw std::invalid_argument("HierarchicalKMeansTree: empty dataset");
  }
  if (options_.branching < 2 || options_.leaf_size == 0) {
    throw std::invalid_argument("HierarchicalKMeansTree: bad options");
  }
  util::Rng rng(options_.seed);
  std::vector<std::uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0u);
  root_ = build(std::move(all), rng, 0);
}

std::unique_ptr<HierarchicalKMeansTree::Node> HierarchicalKMeansTree::build(
    std::vector<std::uint32_t> ids, util::Rng& rng, std::size_t depth) {
  auto node = std::make_unique<Node>();
  if (ids.size() <= options_.leaf_size || depth >= 24) {
    node->bucket = std::move(ids);
    return node;
  }

  const std::size_t k = std::min(options_.branching, ids.size());
  const std::size_t dims = data_.dims();

  // Seed centers with distinct random members, then run Lloyd iterations
  // with majority-vote (Hamming centroid) updates.
  std::vector<util::BitVector> centers;
  centers.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    centers.push_back(data_.vector(ids[rng.below(ids.size())]));
  }

  std::vector<std::uint32_t> assignment(ids.size(), 0);
  for (std::size_t iter = 0; iter < options_.lloyd_iterations; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      std::size_t best = 0;
      std::size_t best_dist = ~std::size_t{0};
      for (std::size_t c = 0; c < k; ++c) {
        const std::size_t dist =
            util::hamming_distance(data_.row(ids[i]), centers[c].words());
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      assignment[i] = static_cast<std::uint32_t>(best);
    }
    // Update: per-cluster majority vote on every bit.
    std::vector<std::vector<std::size_t>> ones(k,
                                               std::vector<std::size_t>(dims));
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ++sizes[assignment[i]];
      for (std::size_t d = 0; d < dims; ++d) {
        ones[assignment[i]][d] += data_.get(ids[i], d);
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) {
        centers[c] = data_.vector(ids[rng.below(ids.size())]);  // re-seed
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        centers[c].set(d, 2 * ones[c][d] >= sizes[c]);
      }
    }
  }

  // Final assignment into children.
  std::vector<std::vector<std::uint32_t>> parts(k);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::size_t best = 0;
    std::size_t best_dist = ~std::size_t{0};
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t dist =
          util::hamming_distance(data_.row(ids[i]), centers[c].words());
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    parts[best].push_back(ids[i]);
  }
  // Degenerate clustering (everything in one cluster): stop splitting.
  std::size_t nonempty = 0;
  for (const auto& p : parts) {
    nonempty += !p.empty();
  }
  if (nonempty < 2) {
    node->bucket = std::move(ids);
    return node;
  }

  for (std::size_t c = 0; c < k; ++c) {
    if (parts[c].empty()) {
      continue;
    }
    node->centers.push_back(centers[c]);
    node->children.push_back(build(std::move(parts[c]), rng, depth + 1));
  }
  return node;
}

std::vector<std::uint32_t> HierarchicalKMeansTree::candidates(
    std::span<const std::uint64_t> query, TraversalStats& stats) const {
  const Node* node = root_.get();
  while (!node->children.empty()) {
    ++stats.nodes_visited;
    std::size_t best = 0;
    std::size_t best_dist = ~std::size_t{0};
    for (std::size_t c = 0; c < node->centers.size(); ++c) {
      ++stats.distance_computations;
      const std::size_t dist =
          util::hamming_distance(query, node->centers[c].words());
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    node = node->children[best].get();
  }
  ++stats.buckets_probed;
  return node->bucket;
}

void HierarchicalKMeansTree::visit(const Node* node, std::size_t& buckets,
                                   std::size_t& largest, std::size_t depth,
                                   std::size_t& max_depth) {
  max_depth = std::max(max_depth, depth);
  if (node->children.empty()) {
    ++buckets;
    largest = std::max(largest, node->bucket.size());
    return;
  }
  for (const auto& child : node->children) {
    visit(child.get(), buckets, largest, depth + 1, max_depth);
  }
}

std::size_t HierarchicalKMeansTree::bucket_count() const {
  std::size_t buckets = 0, largest = 0, max_depth = 0;
  visit(root_.get(), buckets, largest, 0, max_depth);
  return buckets;
}

std::size_t HierarchicalKMeansTree::max_bucket_size() const {
  std::size_t buckets = 0, largest = 0, max_depth = 0;
  visit(root_.get(), buckets, largest, 0, max_depth);
  return largest;
}

std::size_t HierarchicalKMeansTree::depth() const {
  std::size_t buckets = 0, largest = 0, max_depth = 0;
  visit(root_.get(), buckets, largest, 0, max_depth);
  return max_depth;
}

}  // namespace apss::index
