#pragma once
// Console table rendering in the style of the paper's tables.
//
// Every bench prints a table whose rows mirror a table or figure from the
// paper; TablePrinter handles alignment, units, and an optional title/notes
// block so bench output is directly comparable to the publication.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace apss::util {

enum class Align { kLeft, kRight };

class TablePrinter {
 public:
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Defines the columns. Must be called before add_row.
  void set_header(std::vector<std::string> header,
                  std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator row.
  void add_separator();

  /// Free-form note lines printed under the table.
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  void print(std::ostream& os) const;

  /// Convenience: renders to a string.
  std::string to_string() const;

  static std::string fmt(double value, int precision = 2);
  /// Formats like "1.23e+05" for very large/small magnitudes, else fixed.
  static std::string fmt_auto(double value, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

}  // namespace apss::util
