#pragma once
// Descriptive statistics helpers for benches and Monte Carlo experiments.

#include <cstddef>
#include <span>
#include <vector>

namespace apss::util {

/// Streaming mean/variance (Welford). Numerically stable for long runs.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;

/// Percentile with linear interpolation; p in [0, 100]. Copies + sorts.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

}  // namespace apss::util
