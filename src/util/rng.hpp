#pragma once
// Deterministic, fast pseudo-random number generation.
//
// Benchmarks and property tests need reproducible randomness that is cheap
// enough to generate millions of vectors; xoshiro256** (Blackman & Vigna)
// gives that without dragging in <random>'s engine overhead. All APSS
// generators take explicit seeds so every experiment is replayable.

#include <cstdint>
#include <cmath>
#include <numbers>

namespace apss::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'0f00'dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace apss::util
