#pragma once
// A small fixed-size thread pool with a blocking parallel_for.
//
// APSS uses data-parallel loops in three places: the CPU kNN baseline
// (queries in parallel), the AP simulator (independent NFAs / board
// configurations in parallel), and Monte Carlo sweeps. A statically
// partitioned parallel_for with chunked self-scheduling covers all of them;
// no futures or task graphs are needed.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apss::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end). Blocks until all iterations finish.
  /// Iterations are claimed in chunks of `grain` via an atomic cursor, so
  /// irregular per-iteration cost still load-balances.
  ///
  /// If a body throws, the FIRST exception (in claim order) is captured,
  /// remaining unclaimed chunks are abandoned, and the exception is
  /// rethrown here — on the submitting thread — once every worker has
  /// drained out of the job. Chunks already running elsewhere still finish.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Runs fn(chunk_begin, chunk_end) over disjoint chunks covering
  /// [begin, end). Useful when per-chunk setup (e.g. a scratch buffer)
  /// should be amortized. Same exception contract as parallel_for.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  /// Process-wide pool (lazily constructed, hardware concurrency).
  static ThreadPool& global();

 private:
  struct Job {
    std::atomic<std::size_t> cursor{0};
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> remaining_workers{0};
    /// First exception thrown by a body (claim order); guarded by the
    /// pool mutex, rethrown on the submitting thread after the drain.
    std::atomic<bool> failed{false};
    std::exception_ptr exception;
  };

  void worker_loop();
  void run_job(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::mutex submit_mutex_;  // serializes concurrent parallel_for callers
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* current_job_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  bool shutting_down_ = false;
};

}  // namespace apss::util
