#include "util/thread_pool.hpp"

#include <algorithm>

namespace apss::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

namespace {
// Set while a pool worker (or a caller participating in a job) is running a
// job body; nested parallel_for calls then degrade to serial execution
// instead of deadlocking.
thread_local bool t_inside_pool_job = false;

// RAII so the flag survives a throwing job body: a plain assignment after
// the loop would leave it stuck true and silently serialize every later
// parallel_for on that thread.
struct InsideJobGuard {
  bool prev;
  InsideJobGuard() : prev(t_inside_pool_job) { t_inside_pool_job = true; }
  ~InsideJobGuard() { t_inside_pool_job = prev; }
  InsideJobGuard(const InsideJobGuard&) = delete;
  InsideJobGuard& operator=(const InsideJobGuard&) = delete;
};
}  // namespace

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return shutting_down_ || (current_job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutting_down_) {
        return;
      }
      job = current_job_;
      seen_epoch = job_epoch_;
    }
    run_job(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job->remaining_workers.fetch_sub(1) == 1) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::run_job(Job& job) {
  InsideJobGuard guard;
  const std::size_t grain = std::max<std::size_t>(1, job.grain);
  while (!job.failed.load(std::memory_order_acquire)) {
    const std::size_t start = job.cursor.fetch_add(grain);
    if (start >= job.end) {
      break;
    }
    const std::size_t stop = std::min(job.end, start + grain);
    try {
      (*job.body)(start, stop);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job.exception == nullptr) {
        job.exception = std::current_exception();
      }
      job.failed.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) {
    return;
  }
  // Small ranges and nested calls: skip the synchronization entirely.
  if (end - begin <= grain || workers_.empty() || t_inside_pool_job) {
    fn(begin, end);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  Job job;
  job.cursor.store(begin);
  job.end = end;
  job.grain = grain;
  job.body = &fn;
  job.remaining_workers.store(workers_.size());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
  }
  cv_.notify_all();

  // The calling thread participates too.
  run_job(job);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job.remaining_workers.load() == 0; });
  current_job_ = nullptr;
  if (job.exception != nullptr) {
    std::exception_ptr ex = job.exception;
    lock.unlock();
    std::rethrow_exception(ex);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      grain);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace apss::util
