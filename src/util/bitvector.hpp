#pragma once
// Packed binary vectors for Hamming-space similarity search.
//
// A BitVector stores d bits (one per feature dimension) packed into 64-bit
// words. This is the storage format consumed by every backend in APSS: the
// CPU XOR/POPCNT baseline, the FPGA model's scratchpad, and the automata
// builders that expand bits into NFA matching states.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace apss::util {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

/// A fixed-length packed bit vector (one bit per Hamming-space dimension).
class BitVector {
 public:
  BitVector() = default;

  /// Creates an all-zero vector of `bits` dimensions.
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_(words_for_bits(bits), 0) {}

  /// Builds from a 0/1 container (e.g. std::vector<int> or initializer list).
  static BitVector from_bits(std::span<const int> values);
  static BitVector from_bools(std::span<const bool> values);

  /// Parses a string of '0'/'1' characters, most-significant dimension first
  /// in reading order (index 0 = first character).
  static BitVector parse(const std::string& zeros_and_ones);

  std::size_t size() const noexcept { return bits_; }
  bool empty() const noexcept { return bits_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) noexcept { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::span<std::uint64_t> words() noexcept { return words_; }

  /// Renders as a '0'/'1' string (index 0 first).
  std::string to_string() const;

  bool operator==(const BitVector& other) const noexcept {
    return bits_ == other.bits_ && words_ == other.words_;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hamming distance between two equal-width word spans.
std::size_t hamming_distance(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) noexcept;

/// Hamming distance between two equal-length bit vectors.
std::size_t hamming_distance(const BitVector& a, const BitVector& b) noexcept;

}  // namespace apss::util
