#pragma once
// 64-bit FNV-1a streaming hash.
//
// Used where the repo needs a cheap, stable, dependency-free content hash
// with a pinned byte-level definition: the ANML network digest
// (anml::network_digest) and the on-disk artifact format's content/key
// hashes (src/artifact, docs/ARTIFACTS.md). NOT cryptographic — it detects
// corruption and configuration drift, not adversaries.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace apss::util {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr Fnv1a64& update(std::uint8_t byte) noexcept {
    hash_ = (hash_ ^ byte) * kPrime;
    return *this;
  }
  constexpr Fnv1a64& update(std::span<const std::uint8_t> bytes) noexcept {
    for (const std::uint8_t b : bytes) {
      update(b);
    }
    return *this;
  }
  /// Integers hash as little-endian fixed-width byte sequences, so digests
  /// are identical across hosts (the on-disk format is little-endian too).
  constexpr Fnv1a64& update_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      update(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return *this;
  }
  constexpr Fnv1a64& update_u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) {
      update(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return *this;
  }
  /// Length-prefixed, so consecutive strings cannot alias each other.
  constexpr Fnv1a64& update_string(std::string_view s) noexcept {
    update_u64(s.size());
    for (const char c : s) {
      update(static_cast<std::uint8_t>(c));
    }
    return *this;
  }

  constexpr std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace apss::util
