#include "util/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace apss::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(std::string_view site, Plan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(sites_.begin(), sites_.end(), [&](const Site& s) {
    return s.name == site;
  });
  if (it != sites_.end()) {
    it->plan = std::move(plan);
    it->hits = 0;
  } else {
    sites_.push_back({std::string(site), std::move(plan), 0});
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(sites_, [&](const Site& s) { return s.name == site; });
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Site& s : sites_) {
    if (s.name == site) {
      return s.hits;
    }
  }
  return 0;
}

void FaultInjector::check_slow(std::string_view site, std::int64_t key) {
  std::uint32_t stall_ms = 0;
  bool fail = false;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        std::find_if(sites_.begin(), sites_.end(),
                     [&](const Site& s) { return s.name == site; });
    if (it == sites_.end()) {
      return;
    }
    const Plan& plan = it->plan;
    if (plan.match_key != kAnyKey && key != plan.match_key) {
      return;
    }
    const std::uint64_t hit = ++it->hits;
    const bool in_window =
        plan.fail_on_hit == 0 ||
        (hit >= plan.fail_on_hit &&
         hit - plan.fail_on_hit < plan.fail_count);
    if (!in_window) {
      return;
    }
    stall_ms = plan.stall_ms;
    fail = plan.fail;
    if (fail) {
      message = "injected fault at " + std::string(site) + " (hit " +
                std::to_string(hit) + ")";
      if (!plan.message.empty()) {
        message += ": " + plan.message;
      }
    }
  }
  // Sleep and throw OUTSIDE the lock: a stalled site must not serialize
  // checks on other sites, and unwinding with a held mutex would deadlock
  // the next arm/disarm.
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  if (fail) {
    throw InjectedFault(message);
  }
}

}  // namespace apss::util
