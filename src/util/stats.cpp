#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apss::util {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const double x : xs) {
    total += x;
  }
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    ss += (x - m) * (x - m);
  }
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) {
    throw std::invalid_argument("percentile: empty input");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0,100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

}  // namespace apss::util
