#include "util/bitvector.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace apss::util {

BitVector BitVector::from_bits(std::span<const int> values) {
  BitVector v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0 && values[i] != 1) {
      throw std::invalid_argument("BitVector::from_bits: values must be 0/1");
    }
    v.set(i, values[i] != 0);
  }
  return v;
}

BitVector BitVector::from_bools(std::span<const bool> values) {
  BitVector v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    v.set(i, values[i]);
  }
  return v;
}

BitVector BitVector::parse(const std::string& zeros_and_ones) {
  BitVector v(zeros_and_ones.size());
  for (std::size_t i = 0; i < zeros_and_ones.size(); ++i) {
    const char c = zeros_and_ones[i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitVector::parse: expected only '0'/'1'");
    }
    v.set(i, c == '1');
  }
  return v;
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

std::string BitVector::to_string() const {
  std::string s(bits_, '0');
  for (std::size_t i = 0; i < bits_; ++i) {
    if (get(i)) {
      s[i] = '1';
    }
  }
  return s;
}

std::size_t hamming_distance(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) noexcept {
  assert(a.size() == b.size());
  std::size_t total = 0;
  std::size_t i = 0;
  // Four-way unroll: the scan kernel spends its time here, and the unrolled
  // form lets the compiler keep four popcounts in flight.
  for (; i + 4 <= a.size(); i += 4) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i])) +
             static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1])) +
             static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2])) +
             static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < a.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::size_t hamming_distance(const BitVector& a, const BitVector& b) noexcept {
  assert(a.size() == b.size());
  return hamming_distance(a.words(), b.words());
}

}  // namespace apss::util
