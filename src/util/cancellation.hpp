#pragma once
// Cooperative deadlines and cancellation for long-running searches.
//
// A serving fleet cannot run on fail-fast semantics: one slow or wedged
// shard must not hold a whole query hostage. The primitives here are
// deliberately cooperative — nothing is killed, no thread is interrupted.
// Work units (the engines' shards, the simulators' query frames) poll a
// RunControl at natural boundaries and unwind with a TYPED exception when
// the budget is gone, so every abandonment is visible, attributable, and
// containable by the caller's error policy (core::OnError).
//
// Granularity contract: checkpoints sit at query-frame boundaries (one
// frame = StreamSpec::cycles_per_query() symbols), so an expired deadline
// terminates a search within one frame of simulation work — never
// mid-frame, which would leave counters dirty and reports torn.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace apss::util {

/// Thrown by RunControl::checkpoint when the deadline has passed. Engines
/// translate it into ShardState::kTimedOut (kIsolate/kRetry) or let it
/// propagate to the caller (kFailFast).
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by RunControl::checkpoint when cancellation was requested.
class OperationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One-way cancellation flag, safe to set from any thread (and from signal
/// handlers: the store is a lock-free atomic). Workers observe it at their
/// next checkpoint; there is no un-cancel.
class CancellationToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A steady-clock budget. Default-constructed deadlines are UNSET (never
/// expire); after_ms(x) expires x milliseconds after the call. Steady clock
/// only: a wall-clock jump must not time out a healthy search.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after_ms(double ms) {
    Deadline d;
    d.set_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool set() const noexcept { return set_; }

  bool expired() const noexcept {
    return set_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left (negative once expired); +infinity when unset.
  double remaining_ms() const noexcept {
    if (!set_) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double, std::milli>(
               at_ - std::chrono::steady_clock::now())
        .count();
  }

  /// The deadline that expires LAST — an unset operand wins (it never
  /// expires at all). This is the batching combinator: a shared query frame
  /// serving several requests stays useful until its last request's budget
  /// is gone, so the frame's budget is the latest of its members'.
  static Deadline latest(const Deadline& a, const Deadline& b) noexcept {
    if (!a.set_ || !b.set_) {
      return Deadline{};
    }
    return a.at_ >= b.at_ ? a : b;
  }

  /// The deadline that expires FIRST — a set operand wins over an unset
  /// one. Use to cap a caller-supplied budget with a policy ceiling.
  static Deadline earliest(const Deadline& a, const Deadline& b) noexcept {
    if (!a.set_) {
      return b;
    }
    if (!b.set_) {
      return a;
    }
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  bool set_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// The checkpoint bundle a caller threads through simulation: an optional
/// deadline, an optional cancellation token, how often (in symbols) the
/// simulators should poll, and the fault-injection key identifying the
/// work unit (the configuration or frame index; see util/fault_injection.hpp).
struct RunControl {
  const Deadline* deadline = nullptr;
  const CancellationToken* cancel = nullptr;
  /// Symbols between in-run checkpoints — the engines pass one query frame
  /// (StreamSpec::cycles_per_query()); 0 checkpoints only between runs.
  std::uint64_t checkpoint_period = 0;
  /// FaultInjector key for the frame-step fault sites (-1 = any).
  std::int64_t fault_key = -1;

  /// True when checkpoints can have any effect — the simulators run their
  /// plain loop otherwise, so an idle RunControl costs one branch per run.
  bool engaged() const noexcept {
    return (deadline != nullptr && deadline->set()) || cancel != nullptr;
  }

  /// Throws OperationCancelled / DeadlineExceeded when the budget is gone.
  /// Cancellation is checked first: an explicit cancel is the stronger,
  /// cheaper signal and should win the attribution.
  void checkpoint() const {
    if (cancel != nullptr && cancel->cancelled()) {
      throw OperationCancelled("operation cancelled by token");
    }
    if (deadline != nullptr && deadline->expired()) {
      throw DeadlineExceeded("deadline exceeded");
    }
  }
};

}  // namespace apss::util
