#include "util/csv.hpp"

#include <stdexcept>

namespace apss::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row size != header size");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') {
      quoted += "\"\"";
    } else {
      quoted += c;
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace apss::util
