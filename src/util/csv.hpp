#pragma once
// Minimal CSV emission so bench results can be post-processed (plotting,
// regression tracking) without scraping the console tables.

#include <fstream>
#include <string>
#include <vector>

namespace apss::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  bool ok() const { return static_cast<bool>(out_); }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace apss::util
