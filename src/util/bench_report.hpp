#pragma once
// Machine-readable bench results (JSON lines).
//
// Every bench binary that adopts this writes one BENCH_<name>.json file,
// one JSON object per line:
//
//   {"bench":"fig8_comparison","case":"knn_bit_parallel",
//    "params":{"n":1024,"dims":128,"queries":32},
//    "cycles":8519680,"wall_seconds":0.041,"model_seconds":0.064}
//
// `params` describe the configuration; the three canonical metrics are
// simulated device cycles, measured host wall-clock seconds, and modeled
// device seconds (absent metrics are omitted). The file is truncated on
// open, so each run snapshots the current commit's numbers; committing the
// snapshot gives the repo a perf trajectory that CI uploads as an artifact
// and `git log -p BENCH_*.json` can diff across PRs.
//
// Output directory: $APSS_BENCH_DIR when set, else the working directory.

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace apss::util {

/// One result line under construction. All setters return *this for
/// chaining; params keep insertion order.
class BenchRecord {
 public:
  explicit BenchRecord(std::string case_name) : case_(std::move(case_name)) {}

  BenchRecord& param(std::string_view key, std::string_view value);
  BenchRecord& param(std::string_view key, double value);
  BenchRecord& param(std::string_view key, std::uint64_t value);
  BenchRecord& param(std::string_view key, std::int64_t value);
  BenchRecord& param(std::string_view key, int value) {
    return param(key, static_cast<std::int64_t>(value));
  }

  BenchRecord& cycles(std::uint64_t value);
  BenchRecord& wall_seconds(double value);
  BenchRecord& model_seconds(double value);

 private:
  friend class BenchReport;
  std::string case_;
  /// key -> pre-encoded JSON value.
  std::vector<std::pair<std::string, std::string>> params_;
  std::string cycles_, wall_seconds_, model_seconds_;  // encoded, "" = unset
};

/// Appends BenchRecords to BENCH_<bench_name>.json, flushing per record so
/// interrupted runs still leave the completed lines behind.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void write(const BenchRecord& record);

  const std::string& path() const noexcept { return path_; }
  bool ok() const noexcept { return out_.good(); }

  /// $APSS_BENCH_DIR/BENCH_<bench_name>.json (or CWD without the env var).
  static std::string default_path(std::string_view bench_name);

 private:
  std::string bench_;
  std::string path_;
  std::ofstream out_;
};

}  // namespace apss::util
