#include "util/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace apss::util {

namespace {

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no inf/nan
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

BenchRecord& BenchRecord::param(std::string_view key, std::string_view value) {
  params_.emplace_back(std::string(key), json_string(value));
  return *this;
}

BenchRecord& BenchRecord::param(std::string_view key, double value) {
  params_.emplace_back(std::string(key), json_number(value));
  return *this;
}

BenchRecord& BenchRecord::param(std::string_view key, std::uint64_t value) {
  params_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

BenchRecord& BenchRecord::param(std::string_view key, std::int64_t value) {
  params_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

BenchRecord& BenchRecord::cycles(std::uint64_t value) {
  cycles_ = std::to_string(value);
  return *this;
}

BenchRecord& BenchRecord::wall_seconds(double value) {
  wall_seconds_ = json_number(value);
  return *this;
}

BenchRecord& BenchRecord::model_seconds(double value) {
  model_seconds_ = json_number(value);
  return *this;
}

std::string BenchReport::default_path(std::string_view bench_name) {
  std::string path;
  if (const char* dir = std::getenv("APSS_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = dir;
    if (path.back() != '/') {
      path += '/';
    }
  }
  path += "BENCH_";
  path += bench_name;
  path += ".json";
  return path;
}

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)),
      path_(default_path(bench_)),
      out_(path_, std::ios::trunc) {
  if (!out_) {
    std::fprintf(stderr, "bench_report: cannot open %s — results will NOT "
                         "be recorded\n", path_.c_str());
  }
}

void BenchReport::write(const BenchRecord& record) {
  out_ << "{\"bench\":" << json_string(bench_)
       << ",\"case\":" << json_string(record.case_);
  out_ << ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : record.params_) {
    out_ << (first ? "" : ",") << json_string(key) << ':' << value;
    first = false;
  }
  out_ << '}';
  if (!record.cycles_.empty()) {
    out_ << ",\"cycles\":" << record.cycles_;
  }
  if (!record.wall_seconds_.empty()) {
    out_ << ",\"wall_seconds\":" << record.wall_seconds_;
  }
  if (!record.model_seconds_.empty()) {
    out_ << ",\"model_seconds\":" << record.model_seconds_;
  }
  out_ << "}\n" << std::flush;
}

}  // namespace apss::util
