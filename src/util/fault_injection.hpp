#pragma once
// Deterministic fault injection for the chaos tests (docs/ROBUSTNESS.md).
//
// Production code is instrumented with NAMED FAULT SITES — fixed points
// where a test can script a failure or a stall:
//
//   site                  where it fires
//   "artifact.read"       core::try_load_program, before each load attempt
//   "artifact.write"      core::store_program, before each save attempt
//   "engine.shard"        ApKnnEngine::search, at each shard attempt entry
//   "mux.frame"           MultiplexedKnn::search, at each frame attempt entry
//   "sim.frame"           apsim::Simulator, at each query-frame boundary
//   "batch.frame"         apsim::BatchSimulator, at each query-frame boundary
//   "serve.admit"         serve::KnnServer::submit, at each admission attempt
//   "serve.batch"         serve::KnnServer batch execution entry, per batch
//
// A test arms a site with a Plan ("fail hits 3..4 of configuration 1",
// "stall every hit 10 ms") and the next matching check() throws
// InjectedFault (or sleeps). Hits are counted per site over KEY-MATCHING
// checks only, so a plan keyed to one configuration is deterministic at
// any thread count — which shard fails never depends on scheduling.
//
// Cost when unarmed: one relaxed atomic load per check. The registry is
// process-global (like ThreadPool::global()); tests must disarm_all() on
// teardown and must not run armed in parallel with unrelated tests in the
// same process (gtest runs serially within a binary, so this is free).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace apss::util {

/// The failure check() throws on an armed site. Derives from runtime_error
/// so un-policy-aware code treats it like any shard failure; chaos tests
/// catch it precisely.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Canonical site names (kept here so tests and production agree).
inline constexpr std::string_view kFaultArtifactRead = "artifact.read";
inline constexpr std::string_view kFaultArtifactWrite = "artifact.write";
inline constexpr std::string_view kFaultEngineShard = "engine.shard";
inline constexpr std::string_view kFaultMuxFrame = "mux.frame";
inline constexpr std::string_view kFaultSimFrame = "sim.frame";
inline constexpr std::string_view kFaultBatchFrame = "batch.frame";
inline constexpr std::string_view kFaultServeAdmit = "serve.admit";
inline constexpr std::string_view kFaultServeBatch = "serve.batch";

class FaultInjector {
 public:
  static constexpr std::int64_t kAnyKey = -1;

  /// What an armed site does. The trigger window is the hit range
  /// [fail_on_hit, fail_on_hit + fail_count) counted over key-matching
  /// checks (1-based); fail_on_hit == 0 means EVERY matching hit is in the
  /// window (stall-only plans use this with fail = false).
  struct Plan {
    std::int64_t match_key = kAnyKey;  ///< only checks with this key hit
    std::uint64_t fail_on_hit = 1;     ///< first triggering hit (1-based)
    std::uint64_t fail_count = ~std::uint64_t{0};  ///< window length
    bool fail = true;          ///< throw InjectedFault inside the window
    std::uint32_t stall_ms = 0;  ///< sleep this long inside the window
    std::string message;         ///< appended to the exception text
  };

  static FaultInjector& instance();

  /// True when any site is armed (the fast-path gate).
  static bool armed() noexcept {
    return instance().armed_.load(std::memory_order_relaxed);
  }

  /// The instrumentation point. Near-zero cost when nothing is armed.
  static void check(std::string_view site, std::int64_t key = kAnyKey) {
    if (!armed()) {
      return;
    }
    instance().check_slow(site, key);
  }

  /// Arms (or re-arms, resetting the hit counter) one site.
  void arm(std::string_view site, Plan plan);

  /// Disarms one site (keeps others armed).
  void disarm(std::string_view site);

  /// Disarms everything and clears all counters — test teardown.
  void disarm_all();

  /// Key-matching hits an armed site has seen since it was armed
  /// (0 for unarmed sites).
  std::uint64_t hits(std::string_view site) const;

 private:
  FaultInjector() = default;
  void check_slow(std::string_view site, std::int64_t key);

  struct Site {
    std::string name;
    Plan plan;
    std::uint64_t hits = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::vector<Site> sites_;
};

}  // namespace apss::util
