#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace apss::util {

void TablePrinter::set_header(std::vector<std::string> header,
                              std::vector<Align> aligns) {
  header_ = std::move(header);
  if (aligns.empty()) {
    // Default: first column left (labels), the rest right (numbers).
    aligns_.assign(header_.size(), Align::kRight);
    if (!aligns_.empty()) {
      aligns_[0] = Align::kLeft;
    }
  } else {
    if (aligns.size() != header_.size()) {
      throw std::invalid_argument("TablePrinter: aligns size != header size");
    }
    aligns_ = std::move(aligns);
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row size != header size");
  }
  rows_.push_back({std::move(cells), false});
}

void TablePrinter::add_separator() { rows_.push_back({{}, true}); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << ' ';
      if (aligns_[c] == Align::kRight) {
        os << std::string(pad, ' ') << cells[c];
      } else {
        os << cells[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
  for (const auto& note : notes_) {
    os << "  note: " << note << '\n';
  }
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TablePrinter::fmt_auto(double value, int precision) {
  const double mag = std::fabs(value);
  std::ostringstream oss;
  if (mag != 0.0 && (mag >= 1e6 || mag < 1e-3)) {
    oss << std::scientific << std::setprecision(precision) << value;
  } else {
    oss << std::fixed << std::setprecision(precision) << value;
  }
  return oss.str();
}

}  // namespace apss::util
