#pragma once
// Exact CPU kNN baselines (the FLANN-style linear scan of Sec. IV-C).
//
// Two top-k strategies are provided because the paper contrasts sorting
// costs: a bounded max-heap (the classic priority-queue insertion the paper
// attributes to von-Neumann baselines) and a quickselect-based k-selection.
// Both return neighbors sorted by (distance, id).

#include <cstdint>
#include <span>
#include <vector>

#include "knn/dataset.hpp"
#include "util/thread_pool.hpp"

namespace apss::knn {

struct Neighbor {
  std::uint32_t id = 0;
  std::uint32_t distance = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
  /// Orders by (distance, id): deterministic under distance ties.
  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  }
};

enum class TopKStrategy {
  kBoundedHeap,  ///< O(n log k) priority-queue insertions
  kSelect,       ///< O(n) average quickselect then sort the k survivors
};

/// Exact k nearest neighbors of `query` by linear scan. k is clamped to n.
std::vector<Neighbor> knn_scan(const BinaryDataset& data,
                               std::span<const std::uint64_t> query,
                               std::size_t k,
                               TopKStrategy strategy = TopKStrategy::kBoundedHeap);

/// All pairwise distances (no top-k); used by benches that model the
/// distance phase separately from the sort phase.
std::vector<std::uint32_t> all_distances(const BinaryDataset& data,
                                         std::span<const std::uint64_t> query);

/// Batch kNN over a query set; parallelized over queries when `pool` given.
std::vector<std::vector<Neighbor>> batch_knn(
    const BinaryDataset& data, const BinaryDataset& queries, std::size_t k,
    util::ThreadPool* pool = nullptr,
    TopKStrategy strategy = TopKStrategy::kBoundedHeap);

/// Checks that `result` is a correct kNN answer for `query` under distance
/// ties: sizes/order/distances must match the exact multiset. Returns true
/// when valid. (The AP returns an arbitrary id order within a tie group, so
/// id-exact comparison would be wrong.)
bool is_valid_knn_result(const BinaryDataset& data,
                         std::span<const std::uint64_t> query, std::size_t k,
                         std::span<const Neighbor> result);

/// recall@k: |result ids ∩ true ids| / k, with the exact set computed by
/// linear scan. Used for the approximate-index experiments.
double recall_at_k(const BinaryDataset& data,
                   std::span<const std::uint64_t> query, std::size_t k,
                   std::span<const Neighbor> result);

}  // namespace apss::knn
