#pragma once
// Binary (Hamming-space) datasets.
//
// The paper's pipeline assumes feature vectors have been quantized offline
// (e.g. with ITQ, see src/quant) into d-bit binary codes; this module stores
// such codes row-major with a fixed word stride, and provides the synthetic
// generators used by the benches (uniform random, planted Hamming clusters).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace apss::knn {

class BinaryDataset {
 public:
  BinaryDataset() = default;

  /// n all-zero vectors of `dims` bits each.
  BinaryDataset(std::size_t n, std::size_t dims);

  static BinaryDataset from_vectors(std::span<const util::BitVector> vectors);

  std::size_t size() const noexcept { return n_; }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t word_stride() const noexcept { return stride_; }
  bool empty() const noexcept { return n_ == 0; }

  std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {words_.data() + i * stride_, stride_};
  }
  std::span<std::uint64_t> row(std::size_t i) noexcept {
    return {words_.data() + i * stride_, stride_};
  }

  bool get(std::size_t i, std::size_t dim) const noexcept {
    return (row(i)[dim >> 6] >> (dim & 63)) & 1u;
  }
  void set(std::size_t i, std::size_t dim, bool v) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (dim & 63);
    auto r = row(i);
    if (v) {
      r[dim >> 6] |= mask;
    } else {
      r[dim >> 6] &= ~mask;
    }
  }

  util::BitVector vector(std::size_t i) const;
  void set_vector(std::size_t i, const util::BitVector& v);

  /// Appends a vector (must have matching dimensionality).
  void push_back(const util::BitVector& v);

  /// Dataset restricted to `ids` (bucket extraction for indexes).
  BinaryDataset subset(std::span<const std::uint32_t> ids) const;

  /// Encoded payload size in bits (the paper's "128 Kb per configuration").
  std::size_t payload_bits() const noexcept { return n_ * dims_; }

  // --- Generators -----------------------------------------------------------

  /// i.i.d. uniform bits.
  static BinaryDataset uniform(std::size_t n, std::size_t dims,
                               std::uint64_t seed);

  /// `clusters` random centers; each vector is a center with every bit
  /// flipped independently with probability `flip_prob`. Queries drawn near
  /// the same centers make recall experiments meaningful.
  static BinaryDataset clustered(std::size_t n, std::size_t dims,
                                 std::size_t clusters, double flip_prob,
                                 std::uint64_t seed);

  /// Serialization: little-endian [n, dims] header + packed rows.
  void save(const std::string& path) const;
  static BinaryDataset load(const std::string& path);

 private:
  std::size_t n_ = 0;
  std::size_t dims_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Draws `count` queries by perturbing random dataset rows (flip_prob per
/// bit), so each query has at least one close neighbor.
BinaryDataset perturbed_queries(const BinaryDataset& data, std::size_t count,
                                double flip_prob, std::uint64_t seed);

}  // namespace apss::knn
