#include "knn/exact.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/bitvector.hpp"

namespace apss::knn {

namespace {

std::vector<Neighbor> topk_bounded_heap(const BinaryDataset& data,
                                        std::span<const std::uint64_t> query,
                                        std::size_t k) {
  std::vector<Neighbor> heap;  // max-heap on (distance, id)
  heap.reserve(k + 1);
  const auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a < b;  // max-heap: parent is the WORST of the kept set
  };
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto dist = static_cast<std::uint32_t>(
        util::hamming_distance(data.row(i), query));
    const Neighbor cand{static_cast<std::uint32_t>(i), dist};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (cand < heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

std::vector<Neighbor> topk_select(const BinaryDataset& data,
                                  std::span<const std::uint64_t> query,
                                  std::size_t k) {
  std::vector<Neighbor> all(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    all[i] = {static_cast<std::uint32_t>(i),
              static_cast<std::uint32_t>(
                  util::hamming_distance(data.row(i), query))};
  }
  if (k < all.size()) {
    std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                     all.end());
    all.resize(k);
  }
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

std::vector<Neighbor> knn_scan(const BinaryDataset& data,
                               std::span<const std::uint64_t> query,
                               std::size_t k, TopKStrategy strategy) {
  k = std::min(k, data.size());
  if (k == 0) {
    return {};
  }
  return strategy == TopKStrategy::kBoundedHeap
             ? topk_bounded_heap(data, query, k)
             : topk_select(data, query, k);
}

std::vector<std::uint32_t> all_distances(const BinaryDataset& data,
                                         std::span<const std::uint64_t> query) {
  std::vector<std::uint32_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] =
        static_cast<std::uint32_t>(util::hamming_distance(data.row(i), query));
  }
  return out;
}

std::vector<std::vector<Neighbor>> batch_knn(const BinaryDataset& data,
                                             const BinaryDataset& queries,
                                             std::size_t k,
                                             util::ThreadPool* pool,
                                             TopKStrategy strategy) {
  std::vector<std::vector<Neighbor>> results(queries.size());
  const auto run_one = [&](std::size_t q) {
    results[q] = knn_scan(data, queries.row(q), k, strategy);
  };
  if (pool != nullptr) {
    pool->parallel_for(0, queries.size(), run_one, /*grain=*/8);
  } else {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      run_one(q);
    }
  }
  return results;
}

bool is_valid_knn_result(const BinaryDataset& data,
                         std::span<const std::uint64_t> query, std::size_t k,
                         std::span<const Neighbor> result) {
  const std::size_t expected = std::min(k, data.size());
  if (result.size() != expected) {
    return false;
  }
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < result.size(); ++i) {
    const Neighbor& nb = result[i];
    if (nb.id >= data.size() || !seen.insert(nb.id).second) {
      return false;  // out of range or duplicate id
    }
    const auto true_dist = static_cast<std::uint32_t>(
        util::hamming_distance(data.row(nb.id), query));
    if (nb.distance != true_dist) {
      return false;
    }
    if (i > 0 && result[i - 1].distance > nb.distance) {
      return false;  // not sorted
    }
  }
  // Distance multiset must match the exact answer (tie-tolerant check).
  const auto truth = knn_scan(data, query, k);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].distance != result[i].distance) {
      return false;
    }
  }
  return true;
}

double recall_at_k(const BinaryDataset& data,
                   std::span<const std::uint64_t> query, std::size_t k,
                   std::span<const Neighbor> result) {
  const auto truth = knn_scan(data, query, k);
  if (truth.empty()) {
    return 1.0;
  }
  std::unordered_set<std::uint32_t> truth_ids;
  for (const Neighbor& nb : truth) {
    truth_ids.insert(nb.id);
  }
  std::size_t hits = 0;
  for (const Neighbor& nb : result) {
    hits += truth_ids.count(nb.id);
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace apss::knn
