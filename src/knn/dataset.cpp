#include "knn/dataset.hpp"

#include <fstream>
#include <stdexcept>

namespace apss::knn {

BinaryDataset::BinaryDataset(std::size_t n, std::size_t dims)
    : n_(n), dims_(dims), stride_(util::words_for_bits(dims)),
      words_(n * stride_, 0) {}

BinaryDataset BinaryDataset::from_vectors(
    std::span<const util::BitVector> vectors) {
  if (vectors.empty()) {
    return {};
  }
  BinaryDataset d(vectors.size(), vectors[0].size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    d.set_vector(i, vectors[i]);
  }
  return d;
}

util::BitVector BinaryDataset::vector(std::size_t i) const {
  util::BitVector v(dims_);
  const auto src = row(i);
  std::copy(src.begin(), src.end(), v.words().begin());
  return v;
}

void BinaryDataset::set_vector(std::size_t i, const util::BitVector& v) {
  if (v.size() != dims_) {
    throw std::invalid_argument("BinaryDataset::set_vector: dims mismatch");
  }
  const auto src = v.words();
  std::copy(src.begin(), src.end(), row(i).begin());
}

void BinaryDataset::push_back(const util::BitVector& v) {
  if (n_ == 0 && dims_ == 0) {
    dims_ = v.size();
    stride_ = util::words_for_bits(dims_);
  }
  if (v.size() != dims_) {
    throw std::invalid_argument("BinaryDataset::push_back: dims mismatch");
  }
  words_.resize(words_.size() + stride_, 0);
  ++n_;
  set_vector(n_ - 1, v);
}

BinaryDataset BinaryDataset::subset(std::span<const std::uint32_t> ids) const {
  BinaryDataset out(ids.size(), dims_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto src = row(ids[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

BinaryDataset BinaryDataset::uniform(std::size_t n, std::size_t dims,
                                     std::uint64_t seed) {
  BinaryDataset d(n, dims);
  util::Rng rng(seed);
  const std::size_t tail_bits = dims % 64;
  for (std::size_t i = 0; i < n; ++i) {
    auto r = d.row(i);
    for (auto& word : r) {
      word = rng.next();
    }
    if (tail_bits != 0) {
      r[r.size() - 1] &= (std::uint64_t{1} << tail_bits) - 1;
    }
  }
  return d;
}

BinaryDataset BinaryDataset::clustered(std::size_t n, std::size_t dims,
                                       std::size_t clusters, double flip_prob,
                                       std::uint64_t seed) {
  if (clusters == 0) {
    throw std::invalid_argument("BinaryDataset::clustered: clusters == 0");
  }
  util::Rng rng(seed);
  const BinaryDataset centers = uniform(clusters, dims, rng.next());
  BinaryDataset d(n, dims);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.below(clusters);
    const auto src = centers.row(c);
    auto dst = d.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    for (std::size_t dim = 0; dim < dims; ++dim) {
      if (rng.bernoulli(flip_prob)) {
        dst[dim >> 6] ^= std::uint64_t{1} << (dim & 63);
      }
    }
  }
  return d;
}

void BinaryDataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("BinaryDataset::save: cannot open " + path);
  }
  const std::uint64_t header[2] = {n_, dims_};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(words_.data()),
            static_cast<std::streamsize>(words_.size() * sizeof(std::uint64_t)));
  if (!out) {
    throw std::runtime_error("BinaryDataset::save: write failed for " + path);
  }
}

BinaryDataset BinaryDataset::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("BinaryDataset::load: cannot open " + path);
  }
  std::uint64_t header[2] = {};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) {
    throw std::runtime_error("BinaryDataset::load: truncated header");
  }
  BinaryDataset d(header[0], header[1]);
  in.read(reinterpret_cast<char*>(d.words_.data()),
          static_cast<std::streamsize>(d.words_.size() * sizeof(std::uint64_t)));
  if (!in) {
    throw std::runtime_error("BinaryDataset::load: truncated payload");
  }
  return d;
}

BinaryDataset perturbed_queries(const BinaryDataset& data, std::size_t count,
                                double flip_prob, std::uint64_t seed) {
  if (data.empty()) {
    throw std::invalid_argument("perturbed_queries: empty dataset");
  }
  util::Rng rng(seed);
  BinaryDataset q(count, data.dims());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = rng.below(data.size());
    const auto s = data.row(src);
    auto dst = q.row(i);
    std::copy(s.begin(), s.end(), dst.begin());
    for (std::size_t dim = 0; dim < data.dims(); ++dim) {
      if (rng.bernoulli(flip_prob)) {
        dst[dim >> 6] ^= std::uint64_t{1} << (dim & 63);
      }
    }
  }
  return q;
}

}  // namespace apss::knn
