#pragma once
// The paper's kNN workload parameters (Table II) plus the dataset-size
// regimes of the evaluation (Sec. V-B).

#include <cstddef>
#include <string>
#include <vector>

namespace apss::perf {

struct Workload {
  std::string name;
  std::size_t dims = 0;       ///< vector dimensionality (Table II)
  std::size_t k = 0;          ///< neighbors (Table II)
  std::size_t small_n = 0;    ///< small-dataset size (Table III)
  std::size_t vectors_per_config = 0;  ///< AP board capacity (Sec. V-A)
};

inline constexpr std::size_t kQueryCount = 4096;     ///< Sec. IV-A
inline constexpr std::size_t kLargeN = 1u << 20;     ///< Table IV (~1M)

/// kNN-WordEmbed (64, 2), kNN-SIFT (128, 4), kNN-TagSpace (256, 16).
std::vector<Workload> paper_workloads();

const Workload& workload(const std::string& name);

/// Paper-reported reference numbers for shape comparison in the benches.
struct PaperReference {
  // Table III (small): run time ms / energy q/J, per platform.
  double xeon_ms = 0, arm_ms = 0, jetson_ms = 0, kintex_ms = 0, ap_gen1_ms = 0;
  double xeon_qpj = 0, arm_qpj = 0, jetson_qpj = 0, kintex_qpj = 0,
         ap_gen1_qpj = 0;
  // Table IV (large): run time s / energy q/J.
  double l_xeon_s = 0, l_arm_s = 0, l_jetson_s = 0, l_titan_s = 0,
         l_kintex_s = 0, l_gen1_s = 0, l_gen2_s = 0, l_optext_s = 0;
  double l_xeon_qpj = 0, l_arm_qpj = 0, l_jetson_qpj = 0, l_titan_qpj = 0,
         l_kintex_qpj = 0, l_gen1_qpj = 0, l_gen2_qpj = 0, l_optext_qpj = 0;
  // Sec. V-A resource utilization (percent).
  double utilization_pct = 0;
};

const PaperReference& paper_reference(const std::string& workload_name);

}  // namespace apss::perf
