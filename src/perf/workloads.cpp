#include "perf/workloads.hpp"

#include <stdexcept>

namespace apss::perf {

std::vector<Workload> paper_workloads() {
  return {
      {"kNN-WordEmbed", 64, 2, 1024, 1024},
      {"kNN-SIFT", 128, 4, 1024, 1024},
      {"kNN-TagSpace", 256, 16, 512, 512},
  };
}

const Workload& workload(const std::string& name) {
  static const std::vector<Workload> all = paper_workloads();
  for (const Workload& w : all) {
    if (w.name == name) {
      return w;
    }
  }
  throw std::out_of_range("workload: unknown workload '" + name + "'");
}

const PaperReference& paper_reference(const std::string& workload_name) {
  // Values transcribed from Tables III and IV and Sec. V-A of the paper.
  static const PaperReference word_embed = {
      23.33, 103.63, 125.80, 1.89, 1.97,
      3344, 4941, 27133, 579214, 110445,
      19.89, 109.06, 16.09, 0.99, 1.85, 48.10, 2.48, 0.039,
      3.92, 4.69, 212.14, 83.84, 593.89, 4.53, 87.81, 1737.92,
      41.7};
  static const PaperReference sift = {
      37.50, 191.44, 155.94, 3.78, 3.94,
      2081, 2674, 21889, 289607, 44603,
      33.18, 199.5, 16.73, 1.02, 3.69, 50.11, 4.50, 0.062,
      2.35, 2.57, 204.02, 81.94, 296.95, 4.34, 48.40, 1091.86,
      90.9};
  static const PaperReference tagspace = {
      33.97, 185.34, 160.15, 4.33, 7.88,
      2297, 2762, 21314, 253406, 22301,
      60.12, 382.82, 16.41, 1.03, 7.38, 108.31, 17.07, 0.23,
      1.30, 1.34, 208.00, 81.05, 148.47, 1.62, 10.20, 236.30,
      78.6};
  if (workload_name == "kNN-WordEmbed") return word_embed;
  if (workload_name == "kNN-SIFT") return sift;
  if (workload_name == "kNN-TagSpace") return tagspace;
  throw std::out_of_range("paper_reference: unknown workload '" +
                          workload_name + "'");
}

}  // namespace apss::perf
