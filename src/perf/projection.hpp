#pragma once
// Run-time and energy projection models behind Tables III, IV and VIII.
//
// AP device time = configurations x queries x cycles_per_query / clock
//                + reconfiguration (one per configuration when > 1).
// Two throughput conventions are provided because the paper's tables use a
// d-cycle steady state (e.g. SIFT small: 4096 x 128 x 7.5 ns = 3.93 ms vs
// the reported 3.94 ms) while its Sec. VI-C text uses a 2d-cycle latency;
// our honest frame is 2d+L+3 cycles. Benches print both against the paper.

#include <cstddef>

#include "apsim/device.hpp"
#include "core/design.hpp"
#include "hwmodels/platforms.hpp"
#include "perf/workloads.hpp"

namespace apss::perf {

enum class ApThroughput {
  kPaperDCycles,  ///< d cycles/query (what Tables III/IV imply)
  kFrameCycles,   ///< 2d+L+3 cycles/query (our exact stream frame)
};

struct ApScenario {
  Workload workload;
  std::size_t n = 0;
  std::size_t queries = kQueryCount;
  apsim::DeviceConfig device = apsim::DeviceConfig::gen1();
  ApThroughput throughput = ApThroughput::kPaperDCycles;
};

struct ApEstimate {
  std::size_t configurations = 0;
  double cycles_per_query = 0.0;
  double compute_seconds = 0.0;
  double reconfig_seconds = 0.0;
  double total_seconds = 0.0;
  double queries_per_joule = 0.0;
};

ApEstimate estimate_ap(const ApScenario& scenario);

/// CPU/streaming platforms: time = q x n x d / effective scan rate, using
/// the paper-calibrated per-platform rates (hwmodels::Platform).
double scan_seconds(const hwmodels::Platform& platform, std::size_t queries,
                    std::size_t n, std::size_t dims);

// --- Table VIII: compounded Opt+Ext gains -----------------------------------

struct CompoundGains {
  double tech_scaling = 0.0;       ///< 50 nm -> 28 nm (Sec. VII-D: 3.19x)
  double vector_packing = 0.0;     ///< measured, groups of 4 (Sec. VI-A)
  double ste_decomposition = 0.0;  ///< measured, x = 4 (Sec. VII-C)
  double counter_increment = 0.0;  ///< frame shrink (Sec. VII-A, ~1.75x)

  double total() const {
    return tech_scaling * vector_packing * ste_decomposition *
           counter_increment;
  }
  /// Energy improves by total / tech_scaling: the added compute density
  /// costs proportional power (Sec. VII-D).
  double energy_total() const { return total() / tech_scaling; }
};

/// Computes the four factors from THIS REPO'S models: vector packing from
/// real packed networks over a random sample, STE decomposition from the
/// macro's LUT-width analysis (full-alphabet assumption), counter increment
/// from the dense-frame arithmetic.
CompoundGains compound_gains(const Workload& workload, std::uint64_t seed = 1);

/// AP Opt+Ext projection (Table IV last column): Gen-2 estimate scaled by
/// the compounded performance gain; energy by the power-adjusted gain.
ApEstimate estimate_ap_opt_ext(const ApScenario& gen2_scenario,
                               const CompoundGains& gains);

}  // namespace apss::perf
