#include "perf/projection.hpp"

#include <stdexcept>

#include "core/ext/counter_increment.hpp"
#include "core/ext/ste_decomposition.hpp"
#include "core/hamming_macro.hpp"
#include "core/opt/vector_packing.hpp"

namespace apss::perf {

ApEstimate estimate_ap(const ApScenario& s) {
  if (s.n == 0 || s.workload.vectors_per_config == 0) {
    throw std::invalid_argument("estimate_ap: bad scenario");
  }
  ApEstimate e;
  e.configurations = (s.n + s.workload.vectors_per_config - 1) /
                     s.workload.vectors_per_config;
  const core::StreamSpec frame{s.workload.dims, 1};
  e.cycles_per_query = s.throughput == ApThroughput::kPaperDCycles
                           ? static_cast<double>(s.workload.dims)
                           : static_cast<double>(frame.cycles_per_query());
  e.compute_seconds = static_cast<double>(s.queries) * e.cycles_per_query *
                      static_cast<double>(e.configurations) *
                      s.device.timing.cycle_seconds();
  e.reconfig_seconds = e.configurations > 1
                           ? static_cast<double>(e.configurations) *
                                 s.device.timing.reconfig_seconds
                           : 0.0;
  e.total_seconds = e.compute_seconds + e.reconfig_seconds;
  e.queries_per_joule = hwmodels::queries_per_joule(
      s.queries, e.total_seconds, hwmodels::ap_dynamic_power_w(s.workload.dims));
  return e;
}

double scan_seconds(const hwmodels::Platform& platform, std::size_t queries,
                    std::size_t n, std::size_t dims) {
  if (platform.scan_bits_per_second <= 0.0) {
    throw std::invalid_argument("scan_seconds: platform has no scan rate");
  }
  return static_cast<double>(queries) * static_cast<double>(n) *
         static_cast<double>(dims) / platform.scan_bits_per_second;
}

CompoundGains compound_gains(const Workload& workload, std::uint64_t seed) {
  CompoundGains g;
  g.tech_scaling = hwmodels::kApTechScaling;

  // Vector packing: measured STE savings on a 64-vector random sample
  // packed in groups of 4 (the Table VIII configuration).
  {
    const auto sample =
        knn::BinaryDataset::uniform(64, workload.dims, seed);
    core::VectorPackingOptions opt;
    opt.group_size = 4;
    g.vector_packing = core::packing_savings(sample, opt).ratio();
  }

  // STE decomposition at x = 4 under the full-alphabet assumption (control
  // states cost a whole 8-input STE, as in the paper's PCRE-level designs).
  {
    anml::AutomataNetwork net;
    core::append_hamming_macro(net, util::BitVector(workload.dims), 0);
    const auto analysis =
        core::analyze_ste_decomposition(net, anml::SymbolSet::all());
    g.ste_decomposition = analysis.savings(4);
  }

  // Counter-increment extension: exact frame-shrink ratio.
  g.counter_increment = core::CiStreamSpec{workload.dims}.speedup_vs_base();
  return g;
}

ApEstimate estimate_ap_opt_ext(const ApScenario& gen2_scenario,
                               const CompoundGains& gains) {
  ApEstimate base = estimate_ap(gen2_scenario);
  ApEstimate e = base;
  e.total_seconds = base.total_seconds / gains.total();
  e.compute_seconds = base.compute_seconds / gains.total();
  e.reconfig_seconds = base.reconfig_seconds / gains.total();
  e.queries_per_joule = base.queries_per_joule * gains.energy_total();
  return e;
}

}  // namespace apss::perf
