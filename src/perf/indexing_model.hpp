#pragma once
// Table V model: spatial-indexing speedups of ARM + AP over a
// single-threaded ARM CPU, following Sec. V-B's methodology — index
// traversal is benchmarked on the host, bucket scans run either on the CPU
// or on the AP (one board configuration per bucket), and searches to the
// same bucket are batched so each distinct bucket costs one
// reconfiguration per query batch.
//
//   T_cpu(technique) = q x (t_traversal + candidates x d / cpu_rate)
//   T_ap(technique)  = q x t_traversal
//                    + distinct_buckets x t_reconfig
//                    + q x buckets_per_query x t_bucket_scan_ap
//
// Traversal statistics (candidates per query, buckets probed, distinct
// buckets touched by the batch) are MEASURED from this repo's real index
// structures on a sampled dataset and scaled to the target n.

#include <cstddef>
#include <string>
#include <vector>

#include "apsim/device.hpp"
#include "perf/workloads.hpp"

namespace apss::perf {

struct IndexingTechniqueModel {
  std::string name;
  // Measured per-query traversal profile (from src/index structures).
  double traversal_seconds = 0.0;       ///< host-side walk per query
  double candidates_per_query = 0.0;    ///< vectors scanned per query
  double buckets_per_query = 0.0;       ///< AP bucket scans per query
  double distinct_buckets_per_batch = 0.0;  ///< reconfigurations per batch
  /// CPU-baseline backtracking factor. The paper's CPU tree baselines are
  /// FLANN randomized kd-trees / k-means trees, which backtrack through
  /// many leaf buckets per query (the `checks` parameter) to reach usable
  /// recall, while the AP design scans exactly one bucket per traversal
  /// (Sec. III-D). Without this asymmetry Table V's kd/k-means >> MPLSH
  /// ordering is not reproducible. 1.0 = no backtracking (linear, LSH).
  double cpu_backtrack_multiplier = 1.0;
};

struct IndexingScenario {
  Workload workload;            ///< Table V uses kNN-TagSpace
  std::size_t n = kLargeN;
  std::size_t queries = kQueryCount;
  /// Single-threaded ARM scan rate: the quad-core Cortex A15 rate divided
  /// by its core count (Sec. V-B compares against one thread).
  double cpu_scan_bits_per_second = 2.80e9 / 4.0;
};

struct IndexingResult {
  std::string technique;
  double cpu_seconds = 0.0;
  double ap_seconds = 0.0;
  double speedup = 0.0;  ///< cpu / ap — the Table V entry
};

/// Evaluates one technique under a device generation.
IndexingResult evaluate_indexing(const IndexingScenario& scenario,
                                 const IndexingTechniqueModel& technique,
                                 const apsim::DeviceConfig& device);

/// Builds the four Table V technique profiles by constructing this repo's
/// kd-forest / k-means tree / (MP)LSH over a sampled dataset of
/// `sample_n` vectors and measuring traversal behaviour, then scaling
/// bucket geometry to the scenario's n. "linear" is the no-index row.
std::vector<IndexingTechniqueModel> measure_techniques(
    const IndexingScenario& scenario, std::size_t sample_n = 1u << 15,
    std::uint64_t seed = 1);

}  // namespace apss::perf
