#include "perf/indexing_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/design.hpp"
#include "index/kd_tree.hpp"
#include "index/kmeans_tree.hpp"
#include "index/lsh.hpp"
#include "util/timer.hpp"

namespace apss::perf {

IndexingResult evaluate_indexing(const IndexingScenario& scenario,
                                 const IndexingTechniqueModel& technique,
                                 const apsim::DeviceConfig& device) {
  if (scenario.cpu_scan_bits_per_second <= 0.0) {
    throw std::invalid_argument("evaluate_indexing: bad cpu rate");
  }
  const double q = static_cast<double>(scenario.queries);
  const double dims = static_cast<double>(scenario.workload.dims);

  IndexingResult r;
  r.technique = technique.name;
  r.cpu_seconds =
      q * (technique.traversal_seconds +
           technique.candidates_per_query *
               std::max(1.0, technique.cpu_backtrack_multiplier) * dims /
               scenario.cpu_scan_bits_per_second);

  // AP side: traversal stays on the host; each distinct bucket touched by
  // the batch costs one reconfiguration; each per-query bucket probe costs
  // one d-cycle scan pass (the paper's steady-state convention).
  const double bucket_scan_seconds = dims * device.timing.cycle_seconds();
  r.ap_seconds = q * technique.traversal_seconds +
                 technique.distinct_buckets_per_batch *
                     device.timing.reconfig_seconds +
                 q * technique.buckets_per_query * bucket_scan_seconds;
  r.speedup = r.cpu_seconds / r.ap_seconds;
  return r;
}

std::vector<IndexingTechniqueModel> measure_techniques(
    const IndexingScenario& scenario, std::size_t sample_n,
    std::uint64_t seed) {
  const std::size_t bucket = scenario.workload.vectors_per_config;
  if (bucket == 0 || sample_n < 4 * bucket) {
    throw std::invalid_argument("measure_techniques: sample too small");
  }
  const std::size_t dims = scenario.workload.dims;
  const std::size_t target_buckets = scenario.n / bucket;
  const std::size_t sample_buckets = sample_n / bucket;
  // Tree depth grows with log2(n / bucket); scale traversal costs.
  const double depth_scale =
      std::max(1.0, std::log2(static_cast<double>(target_buckets))) /
      std::max(1.0, std::log2(static_cast<double>(sample_buckets)));

  const auto data = knn::BinaryDataset::clustered(sample_n, dims,
                                                  /*clusters=*/64, 0.25, seed);
  const std::size_t probe_queries = 512;  // traversal-profile sample
  const auto queries =
      knn::perturbed_queries(data, probe_queries, 0.05, seed + 1);

  std::vector<IndexingTechniqueModel> out;

  // --- Linear (no index): every configuration is scanned per query --------
  {
    IndexingTechniqueModel linear;
    linear.name = "Linear (No Index)";
    linear.traversal_seconds = 0.0;
    linear.candidates_per_query = static_cast<double>(scenario.n);
    linear.buckets_per_query = static_cast<double>(target_buckets);
    linear.distinct_buckets_per_batch = static_cast<double>(target_buckets);
    out.push_back(linear);
  }

  const auto profile = [&](const index::BucketIndex& idx,
                           const std::string& name) {
    IndexingTechniqueModel m;
    m.name = name;
    index::TraversalStats stats;
    std::size_t candidate_total = 0;
    util::Timer timer;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      candidate_total += idx.candidates(queries.row(q), stats).size();
    }
    const double per_query_seconds =
        timer.seconds() / static_cast<double>(queries.size());
    m.traversal_seconds = per_query_seconds * depth_scale;
    m.candidates_per_query =
        static_cast<double>(candidate_total) / queries.size();
    m.buckets_per_query =
        static_cast<double>(stats.buckets_probed) / queries.size();
    // Batching bound (Sec. V-B: "we batch searches to the same bucket where
    // possible"): a 4096-query batch probing several buckets each touches
    // essentially every bucket once, so reconfigurations per batch cap at
    // the bucket count.
    m.distinct_buckets_per_batch = std::min(
        static_cast<double>(target_buckets),
        m.buckets_per_query * static_cast<double>(scenario.queries));
    return m;
  };

  // FLANN-style backtracking on the CPU tree baselines: ~64 leaf checks
  // per query (see IndexingTechniqueModel::cpu_backtrack_multiplier).
  constexpr double kFlannBacktrack = 64.0;
  {
    index::KdTreeOptions opt;
    opt.trees = 4;
    opt.leaf_size = bucket;
    opt.seed = seed + 2;
    const index::RandomizedKdForest forest(data, opt);
    auto m = profile(forest, "KD-Tree");
    m.cpu_backtrack_multiplier = kFlannBacktrack / 4.0;  // per-tree checks
    out.push_back(m);
  }
  {
    index::KMeansTreeOptions opt;
    opt.branching = 8;
    opt.leaf_size = bucket;
    opt.lloyd_iterations = 3;
    opt.seed = seed + 3;
    const index::HierarchicalKMeansTree tree(data, opt);
    auto m = profile(tree, "K-Means");
    m.cpu_backtrack_multiplier = kFlannBacktrack;
    out.push_back(m);
  }
  {
    index::LshOptions opt;
    opt.tables = 4;
    opt.multi_probe = true;
    // Key width sized so mean bucket ~ one configuration.
    opt.hash_bits = static_cast<std::size_t>(
        std::max(2.0, std::log2(static_cast<double>(sample_buckets))));
    opt.seed = seed + 4;
    const index::LshIndex lsh(data, opt);
    out.push_back(profile(lsh, "MPLSH"));
  }
  return out;
}

}  // namespace apss::perf
