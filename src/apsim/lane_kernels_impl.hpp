#pragma once
// Shared kernel bodies for every lane-word backend. Each translation unit
// (portable, AVX2, AVX-512) instantiates these templates with its own
// vector policy type V — LaneWord<W> for the portable builds, an intrinsic
// wrapper for the SIMD ones. The dataflow is identical everywhere, which is
// what makes the widths bit-identical by construction: only the number of
// 64-bit words touched per iteration changes.
//
// V must provide: kWords, load/store/zero, operator| & ^, andnot(mask)
// (= *this & ~mask), and any(). Callers guarantee ctx.words (and the
// `words` of or_rows) is a multiple of V::kWords and that every array is
// zero-padded past the live lanes, so no tail handling exists here.

#include <cstddef>
#include <cstdint>

#include "apsim/lane_word.hpp"

namespace apss::apsim::detail {

template <class V>
inline void or_rows_impl(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t words) {
  for (std::size_t w = 0; w < words; w += V::kWords) {
    (V::load(dst + w) | V::load(src + w)).store(dst + w);
  }
}

/// One cycle of the bit-sliced counter bank, W lanes per iteration — the
/// exact per-word dataflow of the original 64-bit loop (see
/// BatchSimulator::step, step 5):
///   roots   = ring (the L-cycle collector delay line output)
///   ring    = scratch (this cycle's packed match word enters the line)
///   inc     = (roots | sort_enable) & ~reset
///   planes += inc (ripple carry; saturate past the top plane)
///   reset  -> reload the bias
///   pulse   = rising edge of (count >= threshold)
/// The only difference at W > 64: the ripple-carry early exit triggers per
/// BLOCK (all W lanes' carries zero) instead of per word — more work in
/// rare carry-skewed blocks, identical bits always.
template <class V>
inline void counter_update_impl(const LaneCounterCtx& ctx) {
  const std::size_t stride = ctx.words;
  for (std::size_t w = 0; w < ctx.words; w += V::kWords) {
    const V roots = V::load(ctx.ring + w);
    V::load(ctx.scratch + w).store(ctx.ring + w);
    const V valid = V::load(ctx.valid + w);
    const V reset = ctx.eof_now ? valid : V::zero();
    V inc = roots;
    if (ctx.sort_now) {
      inc = inc | valid;
    }
    inc = inc.andnot(reset);

    V add = inc;
    std::uint32_t q = 0;
    for (; q < ctx.plane_count && add.any(); ++q) {
      std::uint64_t* pw = ctx.planes + q * stride + w;
      const V plane = V::load(pw);
      (plane ^ add).store(pw);
      add = add & plane;  // carry out of plane q
    }
    if (add.any()) {  // overflow: pin the count at its (>= threshold) max
      for (std::uint32_t r = 0; r < ctx.plane_count; ++r) {
        std::uint64_t* pw = ctx.planes + r * stride + w;
        (V::load(pw) | add).store(pw);
      }
    }
    if (ctx.eof_now) {
      for (std::uint32_t r = 0; r < ctx.plane_count; ++r) {
        std::uint64_t* pw = ctx.planes + r * stride + w;
        V plane = V::load(pw).andnot(reset);
        if ((ctx.bias >> r) & 1) {
          plane = plane | reset;
        }
        plane.store(pw);
      }
    }
    const V cond = V::load(ctx.planes + ctx.cond_plane * stride + w) |
                   V::load(ctx.planes + (ctx.cond_plane + 1) * stride + w);
    const V prev = V::load(ctx.cond_prev + w);
    cond.andnot(prev).store(ctx.pulse + w);  // rising edge -> pulse
    cond.store(ctx.cond_prev + w);
  }
}

}  // namespace apss::apsim::detail
