#include "apsim/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/fault_injection.hpp"

namespace apss::apsim {

using anml::CounterPort;
using anml::Element;
using anml::ElementId;
using anml::ElementKind;

void rebase_events(std::vector<ReportEvent>& events,
                   std::uint64_t base_cycle) noexcept {
  for (ReportEvent& event : events) {
    event.cycle += base_cycle;
  }
}

Simulator::Simulator(const anml::AutomataNetwork& network, SimOptions options)
    : network_(network), options_(options) {
  const auto problems = network.validate(options.allow_dynamic_threshold);
  if (!problems.empty()) {
    std::ostringstream oss;
    oss << "Simulator: invalid network:";
    for (const auto& p : problems) {
      oss << "\n  - " << p;
    }
    throw std::invalid_argument(oss.str());
  }

  const std::size_t n = network.size();
  counter_index_.assign(n, ~std::uint32_t{0});

  for (ElementId id = 0; id < n; ++id) {
    const Element& e = network.element(id);
    switch (e.kind) {
      case ElementKind::kSte:
        if (e.start == anml::StartKind::kAllInput) {
          start_all_.push_back(id);
        } else if (e.start == anml::StartKind::kStartOfData) {
          start_sod_.push_back(id);
        }
        break;
      case ElementKind::kCounter: {
        counter_index_[id] = static_cast<std::uint32_t>(counters_.size());
        CounterState c;
        c.threshold = e.threshold;
        c.mode = e.mode;
        counters_.push_back(c);
        counter_elements_.push_back(id);
        break;
      }
      case ElementKind::kBoolean:
        break;
    }
  }

  // CSR out-adjacency (kThreshold edges are resolved separately below).
  {
    std::vector<std::uint32_t> counts(n + 1, 0);
    for (const anml::Edge& e : network.edges()) {
      if (e.port != CounterPort::kThreshold) {
        ++counts[e.from + 1];
      }
    }
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    out_offset_ = counts;
    out_edges_.resize(out_offset_.back());
    std::vector<std::uint32_t> cursor(out_offset_.begin(),
                                      out_offset_.end() - 1);
    for (const anml::Edge& e : network.edges()) {
      if (e.port != CounterPort::kThreshold) {
        out_edges_[cursor[e.from]++] = {e.to, e.port};
      }
    }
  }

  // Dynamic-threshold wiring.
  for (const anml::Edge& e : network.edges()) {
    if (e.port == CounterPort::kThreshold) {
      const std::uint32_t dst = counter_index_[e.to];
      const std::uint32_t src = counter_index_[e.from];
      counters_[dst].dynamic_source = static_cast<std::int32_t>(src);
    }
  }

  // Boolean in-adjacency + topological order (validation ruled out cycles).
  {
    std::vector<ElementId> booleans;
    for (ElementId id = 0; id < n; ++id) {
      if (network.element(id).kind == ElementKind::kBoolean) {
        booleans.push_back(id);
      }
    }
    std::vector<std::uint32_t> counts(n + 1, 0);
    for (const anml::Edge& e : network.edges()) {
      if (network.element(e.to).kind == ElementKind::kBoolean) {
        ++counts[e.to + 1];
      }
    }
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    bool_in_offset_ = counts;
    bool_in_edges_.resize(bool_in_offset_.back());
    std::vector<std::uint32_t> cursor(bool_in_offset_.begin(),
                                      bool_in_offset_.end() - 1);
    for (const anml::Edge& e : network.edges()) {
      if (network.element(e.to).kind == ElementKind::kBoolean) {
        bool_in_edges_[cursor[e.to]++] = e.from;
      }
    }

    // Kahn's algorithm restricted to boolean->boolean edges.
    std::vector<std::uint32_t> indegree(n, 0);
    for (const anml::Edge& e : network.edges()) {
      if (network.element(e.from).kind == ElementKind::kBoolean &&
          network.element(e.to).kind == ElementKind::kBoolean) {
        ++indegree[e.to];
      }
    }
    std::vector<ElementId> queue;
    for (const ElementId id : booleans) {
      if (indegree[id] == 0) {
        queue.push_back(id);
      }
    }
    while (!queue.empty()) {
      const ElementId u = queue.back();
      queue.pop_back();
      boolean_topo_.push_back(u);
      for (std::uint32_t i = out_offset_[u]; i < out_offset_[u + 1]; ++i) {
        const ElementId v = out_edges_[i].to;
        if (network.element(v).kind == ElementKind::kBoolean &&
            --indegree[v] == 0) {
          queue.push_back(v);
        }
      }
    }
  }

  outputs_.assign(n, 0);
  enabled_.assign(n, 0);
  enabled_next_.assign(n, 0);
  reset();
}

void Simulator::reset() {
  cycle_ = 0;
  for (const ElementId id : active_list_) {
    outputs_[id] = 0;
  }
  active_list_.clear();
  for (const ElementId id : enabled_list_) {
    enabled_[id] = 0;
  }
  enabled_list_.clear();
  for (const ElementId id : enabled_next_list_) {
    enabled_next_[id] = 0;
  }
  enabled_next_list_.clear();
  for (CounterState& c : counters_) {
    c.count = 0;
    c.dynamic_source_count = 0;
    c.condition_prev = false;
    c.latched = false;
    c.pending_increment = 0;
    c.pending_reset = false;
    c.output_now = false;
    c.output_next = false;
  }
  reports_.clear();
}

std::uint64_t Simulator::counter_value(ElementId id) const {
  const std::uint32_t slot = counter_index_.at(id);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("counter_value: element is not a counter");
  }
  return counters_[slot].count;
}

void Simulator::propagate_output(ElementId id) {
  for (std::uint32_t i = out_offset_[id]; i < out_offset_[id + 1]; ++i) {
    const OutEdge& edge = out_edges_[i];
    const std::uint32_t cslot = counter_index_[edge.to];
    if (cslot != ~std::uint32_t{0}) {
      CounterState& c = counters_[cslot];
      if (edge.port == CounterPort::kReset) {
        c.pending_reset = true;
      } else {
        ++c.pending_increment;
      }
      continue;
    }
    if (network_.element(edge.to).kind == ElementKind::kSte) {
      if (!enabled_next_[edge.to]) {
        enabled_next_[edge.to] = 1;
        enabled_next_list_.push_back(edge.to);
      }
    }
    // Boolean destinations read outputs_ combinationally; nothing to stage.
  }
}

void Simulator::evaluate_booleans() {
  for (const ElementId id : boolean_topo_) {
    const Element& e = network_.element(id);
    std::uint32_t ones = 0;
    std::uint32_t inputs = 0;
    for (std::uint32_t i = bool_in_offset_[id]; i < bool_in_offset_[id + 1];
         ++i) {
      ++inputs;
      ones += outputs_[bool_in_edges_[i]];
    }
    bool value = false;
    switch (e.op) {
      case anml::BooleanOp::kAnd: value = inputs > 0 && ones == inputs; break;
      case anml::BooleanOp::kOr: value = ones > 0; break;
      case anml::BooleanOp::kNot: value = ones == 0; break;
      case anml::BooleanOp::kNand: value = !(inputs > 0 && ones == inputs); break;
      case anml::BooleanOp::kNor: value = ones == 0; break;
      case anml::BooleanOp::kXor: value = (ones % 2) == 1; break;
      case anml::BooleanOp::kXnor: value = (ones % 2) == 0; break;
    }
    if (value && !outputs_[id]) {
      outputs_[id] = 1;
      active_list_.push_back(id);
    }
  }
}

void Simulator::finalize_counters() {
  // Snapshot counts so dynamic thresholds see simultaneous-update semantics.
  for (CounterState& c : counters_) {
    if (c.dynamic_source >= 0) {
      c.dynamic_source_count = counters_[c.dynamic_source].count;
    }
  }
  for (CounterState& c : counters_) {
    std::uint64_t new_count = c.count;
    if (c.pending_reset) {
      new_count = 0;
      c.latched = false;
    } else if (c.pending_increment > 0) {
      new_count += std::min(c.pending_increment, options_.max_counter_increment);
    }
    const std::uint64_t threshold =
        c.dynamic_source >= 0 ? c.dynamic_source_count + 1 : c.threshold;
    const bool condition = new_count >= threshold;
    if (condition && !c.condition_prev) {
      if (c.mode == anml::CounterMode::kPulse) {
        c.output_next = true;
      } else {
        c.latched = true;
      }
    }
    c.condition_prev = condition;
    c.count = new_count;
    c.pending_increment = 0;
    c.pending_reset = false;
  }
}

void Simulator::step(std::uint8_t symbol) {
  ++cycle_;

  // Age out last cycle's outputs and enables.
  for (const ElementId id : active_list_) {
    outputs_[id] = 0;
  }
  active_list_.clear();
  for (const ElementId id : enabled_list_) {
    enabled_[id] = 0;
  }
  enabled_list_.clear();
  std::swap(enabled_, enabled_next_);
  std::swap(enabled_list_, enabled_next_list_);

  const auto activate = [this](ElementId id) {
    if (!outputs_[id]) {
      outputs_[id] = 1;
      active_list_.push_back(id);
    }
  };

  // 1. Counter outputs staged at the end of the previous cycle.
  for (std::size_t slot = 0; slot < counters_.size(); ++slot) {
    CounterState& c = counters_[slot];
    c.output_now = c.output_next || c.latched;
    c.output_next = false;
    if (c.output_now) {
      activate(counter_elements_[slot]);
    }
  }

  // 2. STE evaluation: enabled states plus start states.
  for (const ElementId id : enabled_list_) {
    if (network_.element(id).symbols.test(symbol)) {
      activate(id);
    }
  }
  for (const ElementId id : start_all_) {
    if (network_.element(id).symbols.test(symbol)) {
      activate(id);
    }
  }
  if (cycle_ == 1) {
    for (const ElementId id : start_sod_) {
      if (network_.element(id).symbols.test(symbol)) {
        activate(id);
      }
    }
  }

  // 3. Combinational boolean evaluation.
  evaluate_booleans();

  // 4. Reports and signal propagation.
  for (const ElementId id : active_list_) {
    const Element& e = network_.element(id);
    if (e.reporting) {
      reports_.push_back({cycle_, id, e.report_code});
    }
    propagate_output(id);
  }

  // 5. End-of-cycle counter updates.
  finalize_counters();

  if (trace_ != nullptr) {
    trace_->on_cycle(cycle_, symbol, active_list_, *this);
  }
}

std::vector<ReportEvent> Simulator::run(std::span<const std::uint8_t> stream) {
  reset();
  return run_continue(stream);
}

std::vector<ReportEvent> Simulator::run_continue(
    std::span<const std::uint8_t> stream) {
  const std::size_t first_new = reports_.size();
  for (const std::uint8_t symbol : stream) {
    step(symbol);
  }
  return {reports_.begin() + static_cast<std::ptrdiff_t>(first_new),
          reports_.end()};
}

std::vector<ReportEvent> Simulator::run(std::span<const std::uint8_t> stream,
                                        const util::RunControl& control) {
  reset();
  return run_continue(stream, control);
}

std::vector<ReportEvent> Simulator::run_continue(
    std::span<const std::uint8_t> stream, const util::RunControl& control) {
  // Checkpoints are pure cost when nothing can fire; fall back to the
  // uninstrumented loop unless a deadline/token is live or a fault site
  // is armed (frame-boundary granularity either way).
  if (!control.engaged() && !util::FaultInjector::armed()) {
    return run_continue(stream);
  }
  const std::size_t first_new = reports_.size();
  const std::uint64_t period =
      control.checkpoint_period > 0 ? control.checkpoint_period : stream.size();
  std::uint64_t since = 0;
  for (const std::uint8_t symbol : stream) {
    step(symbol);
    if (++since >= period) {
      since = 0;
      control.checkpoint();
      util::FaultInjector::check(util::kFaultSimFrame, control.fault_key);
    }
  }
  return {reports_.begin() + static_cast<std::ptrdiff_t>(first_new),
          reports_.end()};
}

}  // namespace apss::apsim
