// AVX2 lane kernels: 256 lanes per operation on one ymm register. Built
// with -mavx2 when the compiler supports it (see the top-level
// CMakeLists.txt per-file flags); otherwise this TU degrades to a stub
// registry returning null and the dispatcher uses the portable
// LaneWord<256> path instead. Nothing here executes unless
// resolve_lane_kernels checked __builtin_cpu_supports("avx2") first.

#include "apsim/lane_word.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "apsim/lane_kernels_impl.hpp"

namespace apss::apsim::detail {
namespace {

/// Vector policy over one unaligned 256-bit integer register; the same
/// bitwise contract as LaneWord<256>.
struct Avx2Word {
  static constexpr std::size_t kWords = 4;
  __m256i v;

  static Avx2Word load(const std::uint64_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Avx2Word zero() noexcept { return {_mm256_setzero_si256()}; }
  friend Avx2Word operator|(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_or_si256(a.v, b.v)};
  }
  friend Avx2Word operator&(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_and_si256(a.v, b.v)};
  }
  friend Avx2Word operator^(Avx2Word a, Avx2Word b) noexcept {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  Avx2Word andnot(Avx2Word mask) const noexcept {
    return {_mm256_andnot_si256(mask.v, v)};  // intrinsic is ~a & b
  }
  bool any() const noexcept { return _mm256_testz_si256(v, v) == 0; }
};

constexpr LaneKernels make_kernels() {
  LaneKernels k;
  k.width = LaneWidth::k256;
  k.simd = true;
  k.isa = "avx2";
  k.or_rows = or_rows_impl<Avx2Word>;
  k.counter_update = counter_update_impl<Avx2Word>;
  return k;
}

const LaneKernels kAvx2Kernels = make_kernels();

}  // namespace

const LaneKernels* avx2_lane_kernels() noexcept { return &kAvx2Kernels; }

}  // namespace apss::apsim::detail

#else  // !defined(__AVX2__)

namespace apss::apsim::detail {
const LaneKernels* avx2_lane_kernels() noexcept { return nullptr; }
}  // namespace apss::apsim::detail

#endif
