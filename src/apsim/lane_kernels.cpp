// Portable lane kernels (LaneWord<W> instantiations for every width) and
// the runtime dispatch that picks between them and the SIMD translation
// units (lane_kernels_{avx2,avx512}.cpp). This file is compiled WITHOUT
// vector target flags, so the portable kernels run on any architecture —
// they are the semantics reference the width-sweep differential tests pin
// the SIMD variants against.

#include "apsim/lane_word.hpp"

#include <cstdlib>

#include "apsim/lane_kernels_impl.hpp"

namespace apss::apsim {

const char* to_string(LaneWidth width) noexcept {
  switch (width) {
    case LaneWidth::kAuto: return "auto";
    case LaneWidth::k64: return "64";
    case LaneWidth::k256: return "256";
    case LaneWidth::k512: return "512";
  }
  return "?";
}

bool parse_lane_width(std::string_view text, LaneWidth* out) noexcept {
  if (text == "auto") {
    *out = LaneWidth::kAuto;
  } else if (text == "64") {
    *out = LaneWidth::k64;
  } else if (text == "256") {
    *out = LaneWidth::k256;
  } else if (text == "512") {
    *out = LaneWidth::k512;
  } else {
    return false;
  }
  return true;
}

bool lane_simd_disabled_by_env() noexcept {
  const char* v = std::getenv("APSS_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

#if defined(__x86_64__) || defined(__i386__)
bool cpu_supports_avx2() noexcept { return __builtin_cpu_supports("avx2"); }
bool cpu_supports_avx512() noexcept {
  return __builtin_cpu_supports("avx512f");
}
#else
bool cpu_supports_avx2() noexcept { return false; }
bool cpu_supports_avx512() noexcept { return false; }
#endif

namespace {

template <std::size_t W>
constexpr LaneKernels portable_kernels(const char* isa) {
  LaneKernels k;
  k.width = static_cast<LaneWidth>(W);
  k.simd = false;
  k.isa = isa;
  k.or_rows = detail::or_rows_impl<LaneWord<W>>;
  k.counter_update = detail::counter_update_impl<LaneWord<W>>;
  return k;
}

// The 64-bit path is "scalar" (the original backend), the wider portable
// paths are "portable" — what APSS_DISABLE_SIMD and non-x86 builds run.
const LaneKernels kScalar64 = portable_kernels<64>("scalar");
const LaneKernels kPortable256 = portable_kernels<256>("portable");
const LaneKernels kPortable512 = portable_kernels<512>("portable");

}  // namespace

LaneKernels resolve_lane_kernels(LaneWidth requested) {
  const bool no_simd = lane_simd_disabled_by_env();
  const LaneKernels* avx2 =
      !no_simd && cpu_supports_avx2() ? detail::avx2_lane_kernels() : nullptr;
  const LaneKernels* avx512 = !no_simd && cpu_supports_avx512()
                                  ? detail::avx512_lane_kernels()
                                  : nullptr;
  switch (requested) {
    case LaneWidth::kAuto:
      if (avx512 != nullptr) {
        return *avx512;
      }
      if (avx2 != nullptr) {
        return *avx2;
      }
      return kScalar64;
    case LaneWidth::k64:
      return kScalar64;
    case LaneWidth::k256:
      return avx2 != nullptr ? *avx2 : kPortable256;
    case LaneWidth::k512:
      return avx512 != nullptr ? *avx512 : kPortable512;
  }
  return kScalar64;
}

}  // namespace apss::apsim
